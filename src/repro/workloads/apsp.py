"""All-pairs shortest paths by repeated min-plus squaring.

The classic reduction (Fox & Otto 1987 ran it on the same hardware and
schedule as their matmul): let ``W`` be the weighted adjacency matrix of a
digraph with ``W[i, i] = 0`` and ``W[i, j] = +inf`` for absent edges.
Under the ``min_plus`` semiring, ``(W ⊗ W)[i, j]`` is the shortest
``i -> j`` path using at most two edges, and after ``ceil(log2(n - 1))``
squarings every entry equals the true shortest-path distance (any simple
path has at most ``n - 1`` edges; the zero diagonal makes squaring
monotone, so extra squarings are fixed points).

Each squaring is one full distance product executed by a registered
parallel algorithm (default ``fox_otto``) over the ``min_plus`` semiring,
so every squaring comes back with the standard observables: simulated
communication cost and the Theorem 3 bound-attainment gauge.  Theorem 3
applies per squaring because the bound depends only on the matmul DAG,
which the distance product shares with classical matmul.

The final distance matrix is verified against a single-node reference —
:func:`scipy.sparse.csgraph.shortest_path` when scipy is importable, a
pure-numpy Floyd-Warshall otherwise (the import is gated; scipy is never
required).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.registry import AlgorithmRun, run_algorithm
from ..exceptions import SemiringError, ShapeError
from ..machine.cost import Cost
from ..machine.semiring import resolve_semiring
from ..obs.attainment import Attainment

__all__ = [
    "ApspResult",
    "SquaringRecord",
    "floyd_warshall_reference",
    "random_digraph",
    "reference_shortest_paths",
    "run_apsp",
]


def random_digraph(
    n: int,
    seed=0,
    density: float = 0.35,
    max_weight: float = 10.0,
) -> np.ndarray:
    """Seeded random weighted digraph as a min-plus adjacency matrix.

    Each ordered pair ``(i, j)``, ``i != j``, carries an edge with
    probability ``density`` and a uniform weight in ``(0.1, max_weight)``
    (strictly positive, so a dense reference that treats 0 as "no edge"
    cannot misread it); absent edges are ``+inf`` and the diagonal is 0.
    """
    if n < 1:
        raise ShapeError(f"digraph order must be positive, got {n}")
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"edge density must lie in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    W = np.full((n, n), np.inf)
    edges = rng.random((n, n)) < density
    weights = 0.1 + rng.random((n, n)) * (max_weight - 0.1)
    W[edges] = weights[edges]
    np.fill_diagonal(W, 0.0)
    return W


def floyd_warshall_reference(W: np.ndarray) -> np.ndarray:
    """Pure-numpy Floyd-Warshall: the scipy-free reference distances."""
    D = np.array(W, dtype=float, copy=True)
    n = D.shape[0]
    for k in range(n):
        D = np.minimum(D, D[:, k, None] + D[None, k, :])
    return D


def reference_shortest_paths(W: np.ndarray) -> Tuple[np.ndarray, str]:
    """Single-node reference distances and the engine that produced them.

    Prefers :func:`scipy.sparse.csgraph.shortest_path`; falls back to
    :func:`floyd_warshall_reference` when scipy is not installed.  Both
    treat ``+inf`` as "no edge"; the generator keeps real edge weights
    strictly positive so scipy's zero-means-absent dense convention is
    safe too.
    """
    try:
        from scipy.sparse.csgraph import shortest_path
    except ImportError:
        return floyd_warshall_reference(W), "floyd_warshall"
    D = shortest_path(np.asarray(W, dtype=float), method="FW", directed=True)
    return np.asarray(D), "scipy"


@dataclasses.dataclass(frozen=True)
class SquaringRecord:
    """Observables of one repeated-squaring step (one distance product).

    ``hop_limit`` is the path length (in edges) the distance matrix covers
    *after* this squaring; ``attainment`` is the per-squaring Theorem 3
    bound-attainment gauge (ratio 1.0 = bound attained exactly).
    """

    step: int
    hop_limit: int
    algorithm: str
    config: str
    P: int
    cost: Cost
    attainment: Attainment
    changed_entries: int


@dataclasses.dataclass
class ApspResult:
    """Output of :func:`run_apsp`: distances plus per-squaring gauges."""

    distances: np.ndarray
    n: int
    P: int
    algorithm: str
    semiring: str
    squarings: List[SquaringRecord]
    reference_engine: str
    correct: Optional[bool]
    max_abs_error: Optional[float]

    @property
    def total_cost(self) -> Cost:
        total = Cost()
        for rec in self.squarings:
            total = total + rec.cost
        return total

    @property
    def worst_attainment_ratio(self) -> float:
        """Largest measured-words / Theorem-3-bound ratio over the squarings."""
        return max(rec.attainment.ratio for rec in self.squarings)


def run_apsp(
    W: np.ndarray,
    P: int,
    algorithm: str = "fox_otto",
    semiring: str = "min_plus",
    verify: bool = True,
) -> ApspResult:
    """All-pairs shortest paths of ``W`` by repeated min-plus squaring.

    Runs ``ceil(log2(n - 1))`` distance products ``D <- D ⊗ D`` (at
    least one) through :func:`~repro.algorithms.registry.run_algorithm`,
    so ``algorithm`` may be any registered name applicable to an
    ``n x n x n`` problem on ``P`` processors.  Every squaring's simulated
    cost and bound-attainment gauge is recorded; when ``verify`` is true
    the final matrix is checked against the single-node reference.

    Raises
    ------
    SemiringError
        If ``semiring`` does not resolve to ``min_plus`` — repeated
        squaring computes shortest paths only under the tropical scalar
        pair, so any other request is a caller error.
    ShapeError
        If ``W`` is not square.
    """
    sr = resolve_semiring(semiring)
    if sr.name != "min_plus":
        raise SemiringError(
            f"APSP repeated squaring requires the min_plus semiring; "
            f"got {sr.name!r}"
        )
    W = np.asarray(W, dtype=float)
    if W.ndim != 2 or W.shape[0] != W.shape[1]:
        raise ShapeError(f"adjacency matrix must be square, got shape {W.shape}")
    n = W.shape[0]

    steps = max(1, math.ceil(math.log2(max(n - 1, 2))))
    D = np.array(W, copy=True)
    np.fill_diagonal(D, np.minimum(np.diag(D), 0.0))

    records: List[SquaringRecord] = []
    for step in range(1, steps + 1):
        run: AlgorithmRun = run_algorithm(algorithm, D, D, P, semiring=sr)
        new_D = np.asarray(run.C)
        # Tolerance-aware so the gauge counts genuine relaxations, not
        # floating-point reassociation noise on tied path sums
        # (np.isclose treats matching infinities as equal).
        changed = int(np.sum(~np.isclose(new_D, D, rtol=1e-12, atol=1e-12)))
        records.append(SquaringRecord(
            step=step,
            hop_limit=min(2 ** step, n - 1) if n > 1 else 1,
            algorithm=run.name,
            config=run.config,
            P=run.P,
            cost=run.cost,
            attainment=run.attainment,
            changed_entries=changed,
        ))
        D = new_D

    correct: Optional[bool] = None
    max_abs_error: Optional[float] = None
    engine = "skipped"
    if verify:
        ref, engine = reference_shortest_paths(W)
        finite = np.isfinite(ref)
        same_support = bool(np.array_equal(finite, np.isfinite(D)))
        max_abs_error = float(
            np.max(np.abs(D[finite] - ref[finite])) if finite.any() else 0.0
        )
        correct = same_support and bool(
            np.allclose(D[finite], ref[finite], rtol=1e-9, atol=1e-9)
        )

    return ApspResult(
        distances=D,
        n=n,
        P=P,
        algorithm=algorithm,
        semiring=sr.name,
        squarings=records,
        reference_engine=engine,
        correct=correct,
        max_abs_error=max_abs_error,
    )
