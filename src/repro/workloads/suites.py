"""Named problem-shape suites used across tests, examples and benchmarks.

The centerpiece is the paper's running example (Section 5.3, Figure 2):
multiplying a ``9600 x 2400`` matrix by a ``2400 x 600`` one, so that with
``m >= n >= k`` the aspect-ratio thresholds are ``m/n = 4`` and
``mn/k^2 = 64``; ``P = 3, 36, 512`` land in the 1D, 2D and 3D regimes with
optimal grids ``3x1x1``, ``12x3x1`` and ``32x8x2``.

``FIGURE2_SCALED`` keeps the exact 16:4:1 dimension ratios at 1/12.5 scale
(``768 x 192 x 48``), so the regime boundaries (``m/n = 4``,
``mn/k^2 = 64``) and the optimal grids are identical to the paper's — and
every block *and shard* divides evenly under all three Figure 2 grids, so
the simulated Algorithm 1 matches the lower bound to the word while the
full ``P = 512`` run completes in seconds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.shapes import ProblemShape

__all__ = [
    "FIGURE2_SHAPE",
    "FIGURE2_SCALED",
    "FIGURE2_PROCESSOR_COUNTS",
    "FIGURE2_EXPECTED_GRIDS",
    "square_suite",
    "tall_skinny_suite",
    "regime_suite",
    "paper_example",
]

#: The paper's Figure 2 problem: A is 9600 x 2400, B is 2400 x 600.
FIGURE2_SHAPE = ProblemShape(9600, 2400, 600)

#: Same aspect ratios at 1/12.5 scale — executable end-to-end at P = 512,
#: with even blocks AND even shards under all three Figure 2 grids.
FIGURE2_SCALED = ProblemShape(768, 192, 48)

#: The processor counts of Figure 2's three panels.
FIGURE2_PROCESSOR_COUNTS = (3, 36, 512)

#: The optimal grids Figure 2 displays for those counts.
FIGURE2_EXPECTED_GRIDS = {3: (3, 1, 1), 36: (12, 3, 1), 512: (32, 8, 2)}


def paper_example() -> Tuple[ProblemShape, Tuple[int, ...], Dict[int, tuple]]:
    """The Figure 2 problem, processor counts, and expected grids."""
    return FIGURE2_SHAPE, FIGURE2_PROCESSOR_COUNTS, dict(FIGURE2_EXPECTED_GRIDS)


def square_suite(sizes=(8, 16, 32, 64)) -> List[ProblemShape]:
    """Square problems (always regime 3 for ``P >= 1``)."""
    return [ProblemShape(s, s, s) for s in sizes]


def tall_skinny_suite() -> List[ProblemShape]:
    """Shapes with extreme aspect ratios, exercising regimes 1 and 2."""
    return [
        ProblemShape(256, 16, 4),
        ProblemShape(512, 8, 8),
        ProblemShape(64, 64, 2),
        ProblemShape(1024, 32, 2),
        ProblemShape(16, 256, 4),   # largest dimension is the contraction
        ProblemShape(4, 16, 256),   # largest dimension is n3
    ]


def regime_suite(shape: ProblemShape) -> Dict[str, int]:
    """Representative processor counts for each regime of ``shape``.

    Picks a ``P`` strictly inside each regime's interval where possible.
    """
    r1, r2 = shape.aspect_ratio_thresholds()
    out: Dict[str, int] = {}
    if r1 >= 2:
        out["1D"] = max(2, int(r1) // 2)
    out["2D"] = max(int(r1) + 1, min(int(r2) - 1, int((r1 * r2) ** 0.5))) if r2 > r1 + 1 else int(r1) + 1
    out["3D"] = int(r2) * 2 if r2 >= 1 else 8
    return out
