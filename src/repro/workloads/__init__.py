"""Workload generators, named problem suites and end-to-end drivers."""

from .apsp import (
    ApspResult,
    SquaringRecord,
    floyd_warshall_reference,
    random_digraph,
    reference_shortest_paths,
    run_apsp,
)
from .generators import integer_pair, operand_pair, random_pair, structured_pair
from .suites import (
    FIGURE2_EXPECTED_GRIDS,
    FIGURE2_PROCESSOR_COUNTS,
    FIGURE2_SCALED,
    FIGURE2_SHAPE,
    paper_example,
    regime_suite,
    square_suite,
    tall_skinny_suite,
)

__all__ = [
    "ApspResult",
    "FIGURE2_EXPECTED_GRIDS",
    "FIGURE2_PROCESSOR_COUNTS",
    "FIGURE2_SCALED",
    "FIGURE2_SHAPE",
    "SquaringRecord",
    "floyd_warshall_reference",
    "integer_pair",
    "operand_pair",
    "paper_example",
    "random_digraph",
    "random_pair",
    "reference_shortest_paths",
    "regime_suite",
    "run_apsp",
    "square_suite",
    "structured_pair",
    "tall_skinny_suite",
]
