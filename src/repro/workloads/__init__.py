"""Workload generators and named problem suites."""

from .generators import integer_pair, operand_pair, random_pair, structured_pair
from .suites import (
    FIGURE2_EXPECTED_GRIDS,
    FIGURE2_PROCESSOR_COUNTS,
    FIGURE2_SCALED,
    FIGURE2_SHAPE,
    paper_example,
    regime_suite,
    square_suite,
    tall_skinny_suite,
)

__all__ = [
    "FIGURE2_EXPECTED_GRIDS",
    "FIGURE2_PROCESSOR_COUNTS",
    "FIGURE2_SCALED",
    "FIGURE2_SHAPE",
    "integer_pair",
    "operand_pair",
    "paper_example",
    "random_pair",
    "regime_suite",
    "square_suite",
    "structured_pair",
    "tall_skinny_suite",
]
