"""Seeded matrix generators for tests, examples and benchmarks.

All generators take an explicit seed (or generator) so every experiment is
reproducible bit-for-bit.  ``integer_exact`` matrices keep all intermediate
products exactly representable in float64, letting tests assert *exact*
equality with the numpy reference rather than ``allclose``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.shapes import ProblemShape

__all__ = [
    "random_pair",
    "integer_pair",
    "structured_pair",
    "operand_pair",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_pair(
    shape: ProblemShape, seed=0
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform [0, 1) operands ``(A, B)`` for ``shape``."""
    rng = _rng(seed)
    return rng.random((shape.n1, shape.n2)), rng.random((shape.n2, shape.n3))


def integer_pair(
    shape: ProblemShape, seed=0, low: int = -4, high: int = 5
) -> Tuple[np.ndarray, np.ndarray]:
    """Small-integer operands whose products are exact in float64.

    With entries in ``[-4, 4]`` and ``n2 <= 2**44`` the dot products stay
    well inside the 2**53 exact-integer range of float64.
    """
    rng = _rng(seed)
    A = rng.integers(low, high, size=(shape.n1, shape.n2)).astype(float)
    B = rng.integers(low, high, size=(shape.n2, shape.n3)).astype(float)
    return A, B


def structured_pair(shape: ProblemShape) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic rank-revealing operands (no randomness).

    ``A[i, j] = i + 2j``, ``B[j, k] = j - k``; useful for debugging because
    every entry of the product has a closed form.
    """
    i = np.arange(shape.n1)[:, None]
    j = np.arange(shape.n2)[None, :]
    A = (i + 2.0 * j).astype(float)
    j2 = np.arange(shape.n2)[:, None]
    kk = np.arange(shape.n3)[None, :]
    B = (j2 - kk).astype(float)
    return A, B


def operand_pair(
    shape: ProblemShape, kind: str = "random", seed=0
) -> Tuple[np.ndarray, np.ndarray]:
    """Dispatch by ``kind``: ``random``, ``integer`` or ``structured``."""
    if kind == "random":
        return random_pair(shape, seed)
    if kind == "integer":
        return integer_pair(shape, seed)
    if kind == "structured":
        return structured_pair(shape)
    raise ValueError(f"unknown operand kind {kind!r}")
