"""The three regimes of Theorem 3 / Lemma 2.

Which of the paper's three bounds applies depends on how the number of
processors ``P`` compares with the aspect ratios of the sorted dimensions
``m >= n >= k``:

* ``1 <= P <= m/n`` — **ONE_D**: only the largest dimension is worth
  splitting; the optimal grid is ``P x 1 x 1`` and the per-processor
  footprint is dominated by the whole smallest array (``nk`` words).
* ``m/n <= P <= m n / k**2`` — **TWO_D**: the two largest dimensions are
  split; the smallest array is still replicated across fibers.
* ``m n / k**2 <= P`` — **THREE_D**: all three dimensions are split and the
  per-processor subvolume is a cube.

At a boundary both adjacent cases give the same bound value (the paper notes
the solutions coincide there); :func:`classify` breaks ties toward the
smaller case index for determinism.
"""

from __future__ import annotations

import enum
from typing import Tuple

from .shapes import ProblemShape

__all__ = ["Regime", "classify", "regime_interval", "boundary_processor_counts"]


class Regime(enum.Enum):
    """The three cases of Theorem 3, named by effective grid dimensionality."""

    ONE_D = 1
    TWO_D = 2
    THREE_D = 3

    def __str__(self) -> str:
        return {1: "1D", 2: "2D", 3: "3D"}[self.value]


def classify(shape: ProblemShape, P: int) -> Regime:
    """Which case of Theorem 3 applies for ``shape`` on ``P`` processors.

    Boundary values belong to the smaller case (the bounds agree there).

    Examples
    --------
    >>> s = ProblemShape(9600, 2400, 600)
    >>> classify(s, 3), classify(s, 36), classify(s, 512)
    (<Regime.ONE_D: 1>, <Regime.TWO_D: 2>, <Regime.THREE_D: 3>)
    """
    if P < 1:
        raise ValueError(f"P must be at least 1, got {P}")
    m, n, k = shape.sorted_dims
    # Compare with exact integer arithmetic: P <= m/n  <=>  P*n <= m, etc.
    if P * n <= m:
        return Regime.ONE_D
    if P * k * k <= m * n:
        return Regime.TWO_D
    return Regime.THREE_D


def regime_interval(shape: ProblemShape, regime: Regime) -> Tuple[float, float]:
    """The (closed) interval of ``P`` values in which ``regime`` applies.

    Returns ``(lo, hi)`` with ``hi = inf`` for the 3D case.
    """
    ratio1, ratio2 = shape.aspect_ratio_thresholds()
    if regime is Regime.ONE_D:
        return (1.0, ratio1)
    if regime is Regime.TWO_D:
        return (ratio1, ratio2)
    return (ratio2, float("inf"))


def boundary_processor_counts(shape: ProblemShape) -> Tuple[float, float]:
    """The two case boundaries ``(m/n, m*n/k**2)`` as floats."""
    return shape.aspect_ratio_thresholds()
