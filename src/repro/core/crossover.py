"""Section 6.2: interplay of memory-dependent and memory-independent bounds.

Theorem 3 is always a valid lower bound, but with limited local memory
``M`` the memory-dependent bound ``2 mnk / (P sqrt(M))`` can be larger
(tighter).  The paper's analysis:

* In the **3D case** (``P > mn/k^2``) the memory-dependent bound dominates
  exactly when ``P <= (8/27) mnk / M^(3/2)`` — equivalently when
  ``M < (4/9) (mnk/P)^(2/3)``, i.e. when memory is too small to run
  Algorithm 1 with a 3D grid (whose temporary footprint is
  ``3 (mnk/P)^(2/3)`` to leading order).
* In the **1D and 2D cases** (``P <= mn/k^2``) the memory-independent bound
  always dominates: since ``M > mn/P`` just to hold the largest matrix,
  ``2 mnk/(P sqrt(M)) < 2 sqrt(mnk^2/P)``, and the case-1 bound in turn
  dominates the case-2 expression by AM-GM.

This module computes the binding bound, the crossover thresholds, and the
memory Algorithm 1 itself needs — the inputs to
``benchmarks/bench_memory_crossover.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..exceptions import ShapeError
from .cases import Regime, classify
from .lower_bounds import accessed_data_bound
from .memory_dependent import (
    memory_dependent_bound,
    min_memory_to_hold_problem,
    strong_scaling_limit,
)
from .shapes import ProblemShape

__all__ = [
    "BoundComparison",
    "compare_bounds",
    "binding_bound",
    "memory_threshold_3d",
    "memory_independent_always_dominates",
]


@dataclasses.dataclass(frozen=True)
class BoundComparison:
    """Both bounds evaluated at one ``(shape, P, M)`` point.

    ``memory_independent`` is Theorem 3's full ``D`` (which in the 3D case
    equals its leading term ``3 (mnk/P)^(2/3)`` exactly — the quantity
    Section 6.2 compares; in cases 1-2 the paper's dominance argument also
    uses the full bound, e.g. ``2 sqrt(mnk^2/P) <= mk/P + nk`` by AM-GM);
    ``memory_dependent`` is ``2 mnk / (P sqrt(M))``; ``binding`` names the
    larger of the two ("memory_independent" on ties).
    """

    shape: ProblemShape
    P: int
    M: float
    regime: Regime
    memory_independent: float
    memory_dependent: float
    binding: str

    @property
    def max_bound(self) -> float:
        return max(self.memory_independent, self.memory_dependent)


def compare_bounds(shape: ProblemShape, P: int, M: float) -> BoundComparison:
    """Evaluate and compare both bounds' leading terms at ``(shape, P, M)``.

    Raises :class:`~repro.exceptions.ShapeError` when ``M`` cannot even
    hold the distributed problem (``M < (mn + mk + nk)/P``), where neither
    analysis applies.
    """
    min_m = min_memory_to_hold_problem(shape, P)
    if M < min_m:
        raise ShapeError(
            f"M={M} cannot hold the problem: need at least "
            f"(mn+mk+nk)/P = {min_m} words per processor"
        )
    mi = accessed_data_bound(shape, P)
    md = memory_dependent_bound(shape, P, M)
    return BoundComparison(
        shape=shape,
        P=P,
        M=M,
        regime=classify(shape, P),
        memory_independent=mi,
        memory_dependent=md,
        binding="memory_dependent" if md > mi else "memory_independent",
    )


def binding_bound(shape: ProblemShape, P: int, M: Optional[float] = None) -> float:
    """The larger (binding) lower bound at ``(shape, P, M)``.

    With ``M=None`` (infinite memory) this is just Theorem 3's ``D``.
    """
    if M is None:
        return accessed_data_bound(shape, P)
    return compare_bounds(shape, P, M).max_bound


def memory_threshold_3d(shape: ProblemShape, P: int) -> float:
    """The 3D-case memory threshold ``M* = (4/9) (mnk/P)^(2/3)``.

    For ``M < M*`` the memory-dependent bound dominates (and Algorithm 1's
    3D-grid temporaries no longer fit); for ``M >= M*`` Theorem 3's case-3
    bound binds.  Equivalent to ``P = (8/27) mnk / M^(3/2)`` solved for M.
    """
    if P < 1:
        raise ShapeError(f"P must be at least 1, got {P}")
    return (4.0 / 9.0) * (shape.volume / P) ** (2.0 / 3.0)


def memory_independent_always_dominates(shape: ProblemShape, P: int) -> bool:
    """True when Theorem 3 binds for *every* feasible ``M`` (cases 1-2).

    In cases 1 and 2 (``P <= mn/k^2``) the constraint ``M > mn/P`` needed
    just to store the largest matrix already forces the memory-dependent
    bound below the memory-independent one (Section 6.2); in case 3 it
    depends on ``M``, so the answer is False.
    """
    regime = classify(shape, P)
    if regime is not Regime.THREE_D:
        return True
    # In the 3D case the memory-dependent bound dominates on the window
    # mn/k^2 < P <= (8/27) mnk / M^(3/2) whenever that window is non-empty
    # for feasible M, so Theorem 3 does not always bind — except in the
    # degenerate situation where even the minimum feasible M exceeds the
    # threshold.
    min_m = min_memory_to_hold_problem(shape, P)
    return P > strong_scaling_limit(shape, min_m)
