"""Section 6.3: the proof technique applied beyond matrix multiplication.

The paper closes by observing that its argument — per-array access lower
bounds (Lemma 1) feeding a constrained optimization with a
Loomis-Whitney-type product constraint (Lemma 2) — "can be applied to many
other computations that have iteration spaces with uneven dimensions".

This module implements the generalization for the *one-index-omitted*
family of computations: a ``d``-dimensional iteration space of extents
``(n_1, ..., n_d)`` with ``d`` arrays, where array ``j`` is indexed by all
indices except the ``j``-th.  Matrix multiplication is the ``d = 3``
member (``C`` omits the contraction index, ``A`` omits ``i3``, ``B`` omits
``i1``).  For ``d > 3`` this family covers multi-way reductions such as
``OUT(i2..id) += IN1(i1, i3..id) * ... `` chains — any computation whose
element at ``(i_1, ..., i_d)`` multiplies one element of each array.

For this family the generalized Loomis-Whitney (Hölder / Brascamp-Lieb)
inequality with exponents ``1/(d-1)`` gives

    ``|V|^(d-1) <= prod_j |phi_j(V)|``

(each index appears in exactly ``d - 1`` of the projections, so the
exponent vector ``(1/(d-1), ..., 1/(d-1))`` is feasible), and Lemma 1's
counting argument gives per-array bounds ``|phi_j| >= (prod_{i != j} n_i)/P``.
The memory-independent bound is then the optimum of

    minimize sum x_j  s.t.  prod x_j >= (prod_i n_i / P)^(d-1),
                            x_j >= (prod_{i != j} n_i) / P

which :func:`repro.core.optimization.solve_general` solves by the same
water-filling argument as Lemma 2; for ``d = 3`` it reproduces Theorem 3
exactly (tested).
"""

from __future__ import annotations

import dataclasses
import math
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..exceptions import ShapeError
from .optimization import solve_general

__all__ = [
    "GeneralBound",
    "one_omitted_access_bounds",
    "one_omitted_lower_bound",
    "projections_d",
    "generalized_loomis_whitney_holds",
]


@dataclasses.dataclass(frozen=True)
class GeneralBound:
    """The generalized memory-independent bound for a one-omitted computation.

    Attributes
    ----------
    extents:
        The iteration-space extents ``(n_1, ..., n_d)``.
    P:
        Number of processors.
    x:
        Optimal per-array access sizes (in input order: ``x[j]`` belongs to
        the array omitting index ``j``).
    accessed:
        ``sum(x)`` — minimum words some processor must access.
    owned:
        ``sum_j prod_{i != j} n_i / P`` — data a processor may hold for free.
    communicated:
        ``accessed - owned``.
    active:
        Indices of per-array bounds tight at the optimum.
    """

    extents: Tuple[int, ...]
    P: int
    x: Tuple[float, ...]
    accessed: float
    owned: float
    communicated: float
    active: Tuple[int, ...]


def one_omitted_access_bounds(extents: Sequence[int], P: int) -> List[float]:
    """Lemma 1 generalized: array ``j`` (omitting index ``j``) has
    ``prod_{i != j} n_i`` elements, each involved in ``n_j`` of the
    ``prod n_i`` scalar products — so a ``1/P`` computation share needs at
    least ``prod_{i != j} n_i / P`` of its elements."""
    if P < 1:
        raise ShapeError(f"P must be at least 1, got {P}")
    extents = [int(n) for n in extents]
    if len(extents) < 2 or any(n < 1 for n in extents):
        raise ShapeError(f"need >= 2 positive extents, got {extents}")
    volume = math.prod(extents)
    return [volume / n / P for n in extents]


def one_omitted_lower_bound(extents: Sequence[int], P: int) -> GeneralBound:
    """The generalized Theorem 3 for a ``d``-dimensional one-omitted space.

    Examples
    --------
    >>> gb = one_omitted_lower_bound((8, 8, 8), 64)   # matmul, 3D regime
    >>> tuple(round(x, 9) for x in gb.x)
    (4.0, 4.0, 4.0)
    >>> gb4 = one_omitted_lower_bound((16, 16, 16, 16), 4096)
    >>> gb4.x                                         # (volume/P)^(3/4) each
    (8.0, 8.0, 8.0, 8.0)
    """
    extents = tuple(int(n) for n in extents)
    bounds = one_omitted_access_bounds(extents, P)
    d = len(extents)
    volume = math.prod(extents)
    L = (volume / P) ** (d - 1)
    x, accessed = solve_general(L, bounds)
    owned = sum(bounds)
    active = tuple(
        j for j, (xj, bj) in enumerate(zip(x, bounds))
        if math.isclose(xj, bj, rel_tol=1e-12)
    )
    return GeneralBound(
        extents=extents,
        P=P,
        x=tuple(x),
        accessed=accessed,
        owned=owned,
        communicated=accessed - owned,
        active=active,
    )


Point = Tuple[int, ...]


def projections_d(V: Iterable[Point], d: int) -> List[FrozenSet[Tuple[int, ...]]]:
    """The ``d`` one-omitted projections of a ``d``-dimensional lattice set."""
    projections: List[set] = [set() for _ in range(d)]
    for point in V:
        if len(point) != d:
            raise ShapeError(f"point {point} is not {d}-dimensional")
        for j in range(d):
            projections[j].add(point[:j] + point[j + 1:])
    return [frozenset(p) for p in projections]


def generalized_loomis_whitney_holds(V: Iterable[Point], d: int) -> bool:
    """Check ``|V|^(d-1) <= prod_j |phi_j(V)|`` on an explicit point set.

    For ``d = 3`` this is the classical Loomis-Whitney inequality; the
    property tests exercise ``d = 4`` as well (brute force on small sets).
    """
    points = set(V)
    projections = projections_d(points, d)
    product = math.prod(len(p) for p in projections)
    return len(points) ** (d - 1) <= product
