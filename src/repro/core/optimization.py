"""Lemma 2: the key constrained optimization problem, solved analytically.

The lower-bound proof reduces to

    minimize    x1 + x2 + x3
    subject to  (m n k / P)**2 <= x1 * x2 * x3          (Loomis-Whitney)
                n k / P <= x1                           (Lemma 1, smallest array)
                m k / P <= x2                           (Lemma 1, middle array)
                m n / P <= x3                           (Lemma 1, largest array)

with ``m >= n >= k >= 1`` and ``P >= 1``.  The analytic solution has three
cases (Lemma 2 of the paper), visualized on the ``P`` axis:

    1 ----------- m/n ----------- m n / k**2 ----------->
      x1* = nk        x1*=x2*=sqrt(mnk^2/P)     x1*=x2*=x3*=(mnk/P)^(2/3)
      x2* = mk/P      x3* = mn/P
      x3* = mn/P

This module provides:

* :func:`solve_lemma2` — the analytic solution, with the case;
* :func:`solve_numerically` — an independent scipy (SLSQP) solve used by the
  test suite to confirm the analytic optimum;
* :func:`solve_general` — the Section 6.3 generalization to ``d`` variables
  (minimize a sum subject to a product constraint and per-variable lower
  bounds), solved by the same "activate the big lower bounds first"
  water-filling argument; for ``d = 3`` it reproduces :func:`solve_lemma2`;
* :func:`feasible` — constraint check for arbitrary points (used by the
  property-based tests: no random feasible point may beat the optimum).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence, Tuple

from ..exceptions import ShapeError
from .cases import Regime

__all__ = [
    "Lemma2Solution",
    "solve_lemma2",
    "solve_numerically",
    "solve_general",
    "feasible",
    "lemma2_constraints",
]


def _validate(m: float, n: float, k: float, P: float) -> None:
    if not (m >= n >= k >= 1):
        raise ShapeError(f"need m >= n >= k >= 1, got m={m}, n={n}, k={k}")
    if P < 1:
        raise ShapeError(f"need P >= 1, got P={P}")


def lemma2_constraints(m: float, n: float, k: float, P: float) -> Tuple[float, Tuple[float, float, float]]:
    """The constraint data of Lemma 2.

    Returns ``(L, (b1, b2, b3))`` where the product constraint is
    ``x1*x2*x3 >= L = (mnk/P)**2`` and ``b_i`` are the per-variable lower
    bounds ``nk/P, mk/P, mn/P`` (sorted ascending, as in the paper).
    """
    _validate(m, n, k, P)
    L = (m * n * k / P) ** 2
    return L, (n * k / P, m * k / P, m * n / P)


@dataclasses.dataclass(frozen=True)
class Lemma2Solution:
    """The optimum of Lemma 2's problem.

    Attributes
    ----------
    x:
        The minimizer ``(x1*, x2*, x3*)``, ordered smallest array first.
    value:
        ``x1* + x2* + x3*`` — the quantity ``D`` of Theorem 3.
    regime:
        Which of the three cases applied.
    active:
        Indices (0-based, into the per-variable constraints) of the lower
        bounds that are tight at the optimum, as the proof's complementary
        slackness describes: case 1 -> {1, 2}; case 2 -> {2}; case 3 -> {}.
        (The Loomis-Whitney product constraint is tight in every case.)
    """

    x: Tuple[float, float, float]
    value: float
    regime: Regime
    active: Tuple[int, ...]


def solve_lemma2(m: float, n: float, k: float, P: float) -> Lemma2Solution:
    """Analytic solution of the Lemma 2 optimization problem.

    Examples
    --------
    >>> sol = solve_lemma2(8, 8, 8, 64)        # square, 3D regime
    >>> sol.regime
    <Regime.THREE_D: 3>
    >>> tuple(round(x, 9) for x in sol.x)
    (4.0, 4.0, 4.0)
    """
    _validate(m, n, k, P)
    if P * n <= m:  # Case 1: 1 <= P <= m/n
        x = (float(n * k), m * k / P, m * n / P)
        return Lemma2Solution(x=x, value=sum(x), regime=Regime.ONE_D, active=(1, 2))
    if P * k * k <= m * n:  # Case 2: m/n <= P <= mn/k^2
        s = math.sqrt(m * n * k * k / P)
        x = (s, s, m * n / P)
        return Lemma2Solution(x=x, value=sum(x), regime=Regime.TWO_D, active=(2,))
    # Case 3: mn/k^2 <= P
    c = (m * n * k / P) ** (2.0 / 3.0)
    x = (c, c, c)
    return Lemma2Solution(x=x, value=sum(x), regime=Regime.THREE_D, active=())


def feasible(
    x: Sequence[float],
    m: float,
    n: float,
    k: float,
    P: float,
    rel_tol: float = 1e-9,
) -> bool:
    """Check whether ``x`` satisfies all of Lemma 2's constraints.

    A small relative slack ``rel_tol`` avoids spurious failures at
    floating-point boundary points.
    """
    L, bounds = lemma2_constraints(m, n, k, P)
    x1, x2, x3 = (float(v) for v in x)
    slack = 1.0 - rel_tol
    if x1 * x2 * x3 < L * slack:
        return False
    for xi, bi in zip((x1, x2, x3), bounds):
        if xi < bi * slack:
            return False
    return True


def solve_numerically(
    m: float,
    n: float,
    k: float,
    P: float,
    x0: Optional[Sequence[float]] = None,
) -> Tuple[Tuple[float, float, float], float]:
    """Solve Lemma 2's problem with scipy's SLSQP as an independent check.

    Works in log-space (``x_i = exp(y_i)``), where the product constraint is
    linear and the objective convex, so SLSQP converges reliably.  Returns
    ``(x, value)``.
    """
    import numpy as np
    from scipy.optimize import minimize

    L, bounds = lemma2_constraints(m, n, k, P)

    # Normalize by the scale of the answer so SLSQP's absolute tolerances
    # behave identically for tiny and enormous problems: substitute
    # x_i = scale * u_i with scale chosen near the optimum's magnitude.
    scale = max(L ** (1.0 / 3.0), max(bounds))
    u_bounds = [b / scale for b in bounds]
    logL_u = math.log(L) - 3.0 * math.log(scale)
    log_u_bounds = [math.log(b) for b in u_bounds]

    def objective(y: "np.ndarray") -> float:
        return float(np.exp(y).sum())

    def objective_grad(y: "np.ndarray") -> "np.ndarray":
        return np.exp(y)

    constraints = [
        {"type": "ineq", "fun": lambda y: float(y.sum() - logL_u),
         "jac": lambda y: np.ones(3)},
    ]
    variable_bounds = [(lb, None) for lb in log_u_bounds]

    if x0 is None:
        sol = solve_lemma2(m, n, k, P)
        y0 = np.log(np.asarray(sol.x) * 1.3 / scale)  # start off-optimum on purpose
    else:
        y0 = np.log(np.asarray(x0, dtype=float) / scale)

    result = minimize(
        objective,
        y0,
        jac=objective_grad,
        bounds=variable_bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-14},
    )
    x = tuple(float(v) * scale for v in np.exp(result.x))
    return x, float(sum(x))


def solve_general(L: float, lower_bounds: Sequence[float]) -> Tuple[Tuple[float, ...], float]:
    """Section 6.3 generalization: minimize ``sum(x)`` s.t. ``prod(x) >= L``,
    ``x_i >= b_i > 0``.

    The structure of the optimum mirrors Lemma 2: sort the bounds
    descending; the largest bounds are *active* (``x_i = b_i``) until the
    equal value ``t`` assigned to the remaining free variables — chosen so
    the product constraint is tight — exceeds all remaining bounds.  With
    ``j`` active bounds of product ``B_j``, the free value is
    ``t_j = (L / B_j) ** (1 / (d - j))``; the optimal ``j`` is the smallest
    one making ``t_j`` feasible.  If even activating every bound leaves the
    product above ``L``, the bounds themselves are optimal.

    Returns ``(x, value)`` with ``x`` in the *original* input order.

    For ``d = 3`` with Lemma 2's data this reproduces the paper's three
    cases: ``j = 0`` is case 3, ``j = 1`` case 2, ``j = 2`` case 1.
    """
    if L <= 0:
        raise ValueError(f"product target L must be positive, got {L}")
    d = len(lower_bounds)
    if d == 0:
        raise ValueError("need at least one variable")
    bounds = [float(b) for b in lower_bounds]
    if any(b <= 0 for b in bounds):
        raise ValueError(f"lower bounds must be positive, got {bounds}")

    order = sorted(range(d), key=lambda i: -bounds[i])  # descending
    sorted_bounds = [bounds[i] for i in order]

    prod_all = math.prod(sorted_bounds)
    if prod_all >= L:
        return tuple(bounds), sum(bounds)

    x_sorted: Optional[list] = None
    prefix_product = 1.0
    for j in range(d):
        # Activate the j largest bounds; the d-j free variables share t.
        free = d - j
        t = (L / prefix_product) ** (1.0 / free)
        next_bound = sorted_bounds[j]
        if t >= next_bound * (1.0 - 1e-12):
            x_sorted = sorted_bounds[:j] + [t] * free
            break
        prefix_product *= next_bound
    assert x_sorted is not None, "solve_general: no feasible activation level"

    x = [0.0] * d
    for pos, i in enumerate(order):
        x[i] = x_sorted[pos]
    return tuple(x), sum(x)
