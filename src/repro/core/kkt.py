"""Karush-Kuhn-Tucker machinery for Lemma 2's optimization problem.

The paper proves Lemma 2 by exhibiting, for each of the three cases, dual
variables ``mu*`` that satisfy the KKT conditions (Definition 4) together
with the claimed primal point ``x*``; Lemma 6 shows the conditions are
*sufficient* here because the objective is convex and every constraint is
quasiconvex (Lemma 5 for the product constraint, affinity for the rest).

This module makes that argument executable:

* :func:`dual_variables` returns the paper's closed-form multipliers for
  each case;
* :func:`kkt_residuals` evaluates all four KKT conditions at an arbitrary
  primal/dual pair and reports the worst violation of each;
* :func:`check_kkt` asserts the conditions hold to tolerance;
* :func:`quasiconvexity_witness` numerically exercises Lemma 5's defining
  inequality for the function ``g0(x) = L - x1 x2 x3``.

Tests sweep these over many ``(m, n, k, P)`` tuples, which is a line-by-line
verification of the paper's proof.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence, Tuple

import numpy as np

from .cases import Regime
from .optimization import Lemma2Solution, lemma2_constraints, solve_lemma2

__all__ = [
    "KKTResiduals",
    "dual_variables",
    "kkt_residuals",
    "check_kkt",
    "quasiconvexity_witness",
]


def dual_variables(m: float, n: float, k: float, P: float) -> Tuple[float, float, float, float]:
    """The paper's closed-form KKT multipliers ``(mu1, mu2, mu3, mu4)``.

    Constraint order matches Lemma 2: the Loomis-Whitney product constraint
    first, then the lower bounds on ``x1``, ``x2``, ``x3``.

    Case 1 (``P <= m/n``)::

        mu = (P^2 / (m^2 n k), 0, 1 - P n / m, 1 - P k / m)

    Case 2 (``m/n <= P <= m n / k^2``)::

        mu = ((P / (m n k^(2/3)))^(3/2), 0, 0, 1 - sqrt(P k^2 / (m n)))

    Case 3 (``m n / k^2 <= P``)::

        mu = ((P / (m n k))^(4/3), 0, 0, 0)
    """
    sol = solve_lemma2(m, n, k, P)
    if sol.regime is Regime.ONE_D:
        return (
            P * P / (m * m * n * k),
            0.0,
            1.0 - P * n / m,
            1.0 - P * k / m,
        )
    if sol.regime is Regime.TWO_D:
        return (
            (P / (m * n * k ** (2.0 / 3.0))) ** 1.5,
            0.0,
            0.0,
            1.0 - math.sqrt(P * k * k / (m * n)),
        )
    return ((P / (m * n * k)) ** (4.0 / 3.0), 0.0, 0.0, 0.0)


@dataclasses.dataclass(frozen=True)
class KKTResiduals:
    """Worst-case violations of the four KKT conditions.

    All residuals are normalized so that *zero means satisfied*:

    * ``primal``: ``max_i max(g_i(x), 0)`` relative to the constraint scale;
    * ``dual``: ``max_i max(-mu_i, 0)``;
    * ``stationarity``: ``max | grad f + mu . J_g |`` (the gradient equation);
    * ``complementarity``: ``max_i | mu_i g_i(x) |`` relative to scale.
    """

    primal: float
    dual: float
    stationarity: float
    complementarity: float

    def max_violation(self) -> float:
        return max(self.primal, self.dual, self.stationarity, self.complementarity)


def _constraints_and_jacobian(x: Sequence[float], m: float, n: float, k: float, P: float):
    """Evaluate ``g(x)`` (in the <= 0 convention) and its Jacobian."""
    L, bounds = lemma2_constraints(m, n, k, P)
    x1, x2, x3 = (float(v) for v in x)
    g = np.array(
        [
            L - x1 * x2 * x3,
            bounds[0] - x1,
            bounds[1] - x2,
            bounds[2] - x3,
        ]
    )
    J = np.array(
        [
            [-x2 * x3, -x1 * x3, -x1 * x2],
            [-1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, 0.0, -1.0],
        ]
    )
    scales = np.array([L, bounds[0], bounds[1], bounds[2]])
    return g, J, scales


def kkt_residuals(
    x: Sequence[float],
    mu: Sequence[float],
    m: float,
    n: float,
    k: float,
    P: float,
) -> KKTResiduals:
    """Evaluate the KKT conditions of Definition 4 at ``(x, mu)``."""
    g, J, scales = _constraints_and_jacobian(x, m, n, k, P)
    mu_arr = np.asarray(mu, dtype=float)

    primal = float(np.max(np.maximum(g / scales, 0.0)))
    dual = float(np.max(np.maximum(-mu_arr, 0.0)))
    grad_f = np.ones(3)
    stationarity = float(np.max(np.abs(grad_f + mu_arr @ J)))
    complementarity = float(np.max(np.abs(mu_arr * g / scales)))
    return KKTResiduals(
        primal=primal,
        dual=dual,
        stationarity=stationarity,
        complementarity=complementarity,
    )


def check_kkt(m: float, n: float, k: float, P: float, tol: float = 1e-8) -> Lemma2Solution:
    """Verify the paper's primal/dual pair satisfies KKT; return the solution.

    Raises ``AssertionError`` with the residuals when a condition fails —
    used by the test suite as an executable version of the Lemma 2 proof.
    """
    sol = solve_lemma2(m, n, k, P)
    mu = dual_variables(m, n, k, P)
    res = kkt_residuals(sol.x, mu, m, n, k, P)
    if res.max_violation() > tol:
        raise AssertionError(
            f"KKT violation {res} for m={m}, n={n}, k={k}, P={P} "
            f"(case {sol.regime}, x*={sol.x}, mu*={mu})"
        )
    return sol


def quasiconvexity_witness(
    x: Sequence[float],
    y: Sequence[float],
    L: float = 0.0,
) -> float:
    """Exercise Lemma 5: ``g0(x) = L - x1 x2 x3`` is quasiconvex on the
    positive octant.

    For points with ``g0(y) <= g0(x)`` the definition requires
    ``<grad g0(x), y - x> <= 0``; this function returns that inner product
    when the premise holds (so tests can assert it is ``<= 0``), and
    ``-inf`` when the premise does not apply.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ValueError("quasiconvexity of g0 is claimed only on the positive octant")
    gx = L - float(np.prod(x_arr))
    gy = L - float(np.prod(y_arr))
    if gy > gx:
        return float("-inf")
    grad = -np.array(
        [x_arr[1] * x_arr[2], x_arr[0] * x_arr[2], x_arr[0] * x_arr[1]]
    )
    return float(grad @ (y_arr - x_arr))
