"""Theorem 3 and Corollary 4: the tight memory-independent lower bounds.

For matmul dimensions sorted as ``m >= n >= k`` on ``P`` processors, any
parallel algorithm that starts with one copy of the inputs, ends with one
copy of the output, and load balances either the computation or the data
must communicate at least ``D - (mn + mk + nk)/P`` words, where

    Case 1 (``P <= m/n``):        ``D = (mn + mk)/P + nk``
    Case 2 (``m/n <= P <= mn/k^2``): ``D = 2 sqrt(mnk^2/P) + mn/P``
    Case 3 (``mn/k^2 <= P``):     ``D = 3 (mnk/P)^(2/3)``

``D`` itself is the minimum number of words a processor must *access*
(the optimum of Lemma 2); subtracting the data a processor may already own,
``(mn + mk + nk)/P``, gives the words that must move over the network.

The leading terms and their constants (1, 2, 3) are the content of Table 1's
last row; the square specialization ``3 n^2 / P^(2/3) - 3 n^2 / P`` is
Corollary 4.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..exceptions import ShapeError
from .cases import Regime, classify
from .optimization import solve_lemma2
from .shapes import ProblemShape

__all__ = [
    "LowerBound",
    "memory_independent_bound",
    "accessed_data_bound",
    "communication_lower_bound",
    "leading_term",
    "leading_term_constant",
    "square_lower_bound",
]


@dataclasses.dataclass(frozen=True)
class LowerBound:
    """A fully resolved instance of Theorem 3.

    Attributes
    ----------
    shape:
        The problem dimensions.
    P:
        Number of processors.
    regime:
        Which of the three cases applies.
    accessed:
        ``D`` — the minimum words a critical processor must access.
    owned:
        ``(mn + mk + nk) / P`` — data the processor may hold for free.
    communicated:
        ``D - owned`` — the lower bound on communicated words.
    leading:
        The leading-order term of ``D`` (``nk``, ``2 sqrt(mnk^2/P)`` or
        ``3 (mnk/P)^(2/3)``).
    """

    shape: ProblemShape
    P: int
    regime: Regime
    accessed: float
    owned: float
    communicated: float
    leading: float


def accessed_data_bound(shape: ProblemShape, P: int) -> float:
    """``D`` of Theorem 3: minimum words accessed by some processor.

    Evaluated through the Lemma 2 optimum, which is *exactly* the
    case-wise expression of the theorem.
    """
    m, n, k = shape.sorted_dims
    return solve_lemma2(m, n, k, P).value


def leading_term(shape: ProblemShape, P: int) -> float:
    """The leading-order term of ``D`` (with its tight constant).

    Case 1: ``nk``;  case 2: ``2 (mnk^2/P)^(1/2)``;  case 3: ``3 (mnk/P)^(2/3)``.
    """
    m, n, k = shape.sorted_dims
    regime = classify(shape, P)
    if regime is Regime.ONE_D:
        return float(n * k)
    if regime is Regime.TWO_D:
        return 2.0 * (m * n * k * k / P) ** 0.5
    return 3.0 * (m * n * k / P) ** (2.0 / 3.0)


def leading_term_constant(regime: Regime) -> float:
    """The tight constant of this paper's bound in each case: 1, 2 or 3."""
    return {Regime.ONE_D: 1.0, Regime.TWO_D: 2.0, Regime.THREE_D: 3.0}[regime]


def memory_independent_bound(shape: ProblemShape, P: int) -> LowerBound:
    """Evaluate Theorem 3 completely for ``shape`` on ``P`` processors.

    Examples
    --------
    >>> lb = memory_independent_bound(ProblemShape(9600, 2400, 600), 512)
    >>> lb.regime
    <Regime.THREE_D: 3>
    >>> round(lb.communicated, 1)
    210937.5
    """
    if P < 1:
        raise ShapeError(f"P must be at least 1, got {P}")
    accessed = accessed_data_bound(shape, P)
    owned = shape.total_data / P
    return LowerBound(
        shape=shape,
        P=P,
        regime=classify(shape, P),
        accessed=accessed,
        owned=owned,
        communicated=accessed - owned,
        leading=leading_term(shape, P),
    )


def communication_lower_bound(shape: ProblemShape, P: int) -> float:
    """``D - (mn + mk + nk)/P``: the bound on communicated words."""
    return memory_independent_bound(shape, P).communicated


def square_lower_bound(n: int, P: int) -> Tuple[float, float]:
    """Corollary 4: for ``n x n`` matrices, at least
    ``3 n^2 / P^(2/3) - 3 n^2 / P`` words must be communicated.

    Returns ``(corollary value, Theorem 3 value)`` — they agree because a
    square problem always falls into case 3 (``mn/k^2 = 1 <= P``).
    """
    if n < 1 or P < 1:
        raise ShapeError(f"need n >= 1 and P >= 1, got n={n}, P={P}")
    corollary = 3.0 * n * n / P ** (2.0 / 3.0) - 3.0 * n * n / P
    theorem = communication_lower_bound(ProblemShape(n, n, n), P)
    return corollary, theorem
