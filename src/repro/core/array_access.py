"""Lemma 1: lower bounds on individual array access.

A processor that performs at least ``1/P``-th of the ``n1 n2 n3`` scalar
multiplications must access

* at least ``n1 n2 / P`` elements of ``A`` (each ``A`` element is involved
  in only ``n3`` multiplications),
* at least ``n2 n3 / P`` elements of ``B`` (each involved in ``n1``), and
* contribute to at least ``n1 n3 / P`` elements of ``C`` (each the sum of
  ``n2`` products).

These per-array bounds are what separate the 1D and 2D cases from the pure
Loomis-Whitney 3D case; they become *active* exactly when aspect ratios are
large relative to ``P`` (Section 6.3).  The same counting argument applies
verbatim to any computation once "operations per element" is known, so the
module also exposes the generic form :func:`min_elements_accessed`.
"""

from __future__ import annotations

from typing import Dict

from ..exceptions import ShapeError
from .shapes import ProblemShape

__all__ = [
    "min_elements_accessed",
    "access_lower_bounds",
    "sorted_access_lower_bounds",
    "multiplications_per_element",
]


def multiplications_per_element(shape: ProblemShape) -> Dict[str, int]:
    """How many scalar multiplications touch one element of each array.

    ``A[i1, i2]`` is used by the ``n3`` products over ``i3``;
    ``B[i2, i3]`` by the ``n1`` products over ``i1``;
    ``C[i1, i3]`` accumulates the ``n2`` products over ``i2``.
    """
    return {"A": shape.n3, "B": shape.n1, "C": shape.n2}


def min_elements_accessed(total_ops: float, ops_share: float, ops_per_element: float) -> float:
    """The generic Lemma 1 bound.

    A processor performing at least ``ops_share`` operations, where each
    element of some array is involved in at most ``ops_per_element`` of the
    ``total_ops`` operations, must access at least
    ``ops_share / ops_per_element`` of that array's elements.

    (``total_ops`` is accepted for interface clarity and sanity checking.)
    """
    if ops_share < 0 or ops_per_element <= 0:
        raise ShapeError(
            f"need ops_share >= 0 and ops_per_element > 0, got "
            f"{ops_share}, {ops_per_element}"
        )
    if ops_share > total_ops:
        raise ShapeError(
            f"a processor cannot perform {ops_share} of {total_ops} operations"
        )
    return ops_share / ops_per_element


def access_lower_bounds(shape: ProblemShape, P: int) -> Dict[str, float]:
    """Per-array access lower bounds for a ``1/P`` computation share.

    Returns ``{"A": n1*n2/P, "B": n2*n3/P, "C": n1*n3/P}``.

    Examples
    --------
    >>> access_lower_bounds(ProblemShape(4, 6, 8), 2)
    {'A': 12.0, 'B': 24.0, 'C': 16.0}
    """
    if P < 1:
        raise ShapeError(f"P must be at least 1, got {P}")
    share = shape.volume / P
    per_elem = multiplications_per_element(shape)
    return {
        name: min_elements_accessed(shape.volume, share, per_elem[name])
        for name in ("A", "B", "C")
    }


def sorted_access_lower_bounds(shape: ProblemShape, P: int) -> Dict[str, float]:
    """The bounds keyed by sorted role: smallest array first.

    Returns ``{"x1": nk/P, "x2": mk/P, "x3": mn/P}`` — the constraint
    right-hand sides of Lemma 2 in the paper's variable order.
    """
    m, n, k = shape.sorted_dims
    return {"x1": n * k / P, "x2": m * k / P, "x3": m * n / P}
