"""Problem shapes for classical matrix multiplication.

The paper multiplies an ``n1 x n2`` matrix ``A`` by an ``n2 x n3`` matrix
``B``.  All of its results are stated in terms of the *sorted* dimensions

    ``m = max{n1, n2, n3}``, ``n = median{n1, n2, n3}``, ``k = min{n1, n2, n3}``

so that ``m >= n >= k``.  :class:`ProblemShape` stores the raw dimensions,
exposes the sorted view, and keeps track of which sorted letter corresponds
to which original dimension — needed to map the abstract optimization
variables ``x1 <= x2 <= x3`` of Lemma 2 back onto the concrete matrices
``A`` (size ``n1*n2``), ``B`` (``n2*n3``) and ``C`` (``n1*n3``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..exceptions import ShapeError

__all__ = ["ProblemShape", "MATRIX_NAMES"]

#: The three arrays of the computation, in the index-pair convention used
#: throughout: ``A`` is indexed by (i1, i2), ``B`` by (i2, i3), ``C`` by (i1, i3).
MATRIX_NAMES = ("A", "B", "C")


@dataclasses.dataclass(frozen=True)
class ProblemShape:
    """Dimensions of a classical matmul ``C (n1 x n3) = A (n1 x n2) * B (n2 x n3)``.

    Examples
    --------
    >>> s = ProblemShape(9600, 2400, 600)   # the paper's Figure 2 example
    >>> (s.m, s.n, s.k)
    (9600, 2400, 600)
    >>> s.matrix_sizes()["A"]
    23040000
    """

    n1: int
    n2: int
    n3: int

    def __post_init__(self) -> None:
        for name, value in (("n1", self.n1), ("n2", self.n2), ("n3", self.n3)):
            if not isinstance(value, (int,)) or isinstance(value, bool):
                raise ShapeError(f"{name} must be an int, got {value!r}")
            if value < 1:
                raise ShapeError(f"{name} must be positive, got {value}")

    # ------------------------------------------------------------------ #
    # sorted view                                                        #
    # ------------------------------------------------------------------ #

    @property
    def dims(self) -> Tuple[int, int, int]:
        """The raw dimensions ``(n1, n2, n3)``."""
        return (self.n1, self.n2, self.n3)

    @property
    def sorted_dims(self) -> Tuple[int, int, int]:
        """``(m, n, k)`` with ``m >= n >= k``."""
        return tuple(sorted(self.dims, reverse=True))  # type: ignore[return-value]

    @property
    def m(self) -> int:
        """Largest dimension."""
        return self.sorted_dims[0]

    @property
    def n(self) -> int:
        """Median dimension."""
        return self.sorted_dims[1]

    @property
    def k(self) -> int:
        """Smallest dimension."""
        return self.sorted_dims[2]

    # ------------------------------------------------------------------ #
    # derived quantities                                                 #
    # ------------------------------------------------------------------ #

    @property
    def volume(self) -> int:
        """Number of scalar multiplications ``n1 * n2 * n3 = m * n * k``."""
        return self.n1 * self.n2 * self.n3

    def matrix_sizes(self) -> Dict[str, int]:
        """Word counts of the three arrays: ``A`` = n1*n2, ``B`` = n2*n3, ``C`` = n1*n3."""
        return {
            "A": self.n1 * self.n2,
            "B": self.n2 * self.n3,
            "C": self.n1 * self.n3,
        }

    @property
    def total_data(self) -> int:
        """``mn + mk + nk``: total words of input plus output."""
        return self.n1 * self.n2 + self.n2 * self.n3 + self.n1 * self.n3

    def matrices_by_size(self) -> Tuple[str, str, str]:
        """Array names ordered smallest-to-largest footprint.

        The abstract variables of Lemma 2 have ``x1`` as the *smallest*
        array's projection (size ``n*k``), ``x2`` the middle (``m*k``) and
        ``x3`` the largest (``m*n``).  Ties are broken alphabetically, which
        is harmless because tied arrays have identical constraint values.
        """
        sizes = self.matrix_sizes()
        return tuple(sorted(MATRIX_NAMES, key=lambda a: (sizes[a], a)))  # type: ignore[return-value]

    def is_square(self) -> bool:
        """True for ``n1 == n2 == n3`` (Corollary 4's setting)."""
        return self.n1 == self.n2 == self.n3

    def aspect_ratio_thresholds(self) -> Tuple[float, float]:
        """The two case boundaries of Theorem 3: ``(m/n, m*n/k**2)``.

        For ``P`` below the first the problem is effectively 1D; between
        them, 2D; above the second, 3D.
        """
        return (self.m / self.n, self.m * self.n / (self.k * self.k))

    def __str__(self) -> str:
        return f"{self.n1}x{self.n2}x{self.n3}"
