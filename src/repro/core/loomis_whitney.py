"""The Loomis-Whitney inequality (Lemma 1) for 3D lattice sets.

For a finite set ``V`` of integer points ``(i, j, k)`` and its three axis
projections ``phi_i, phi_j, phi_k`` (each dropping one coordinate), the
classical Loomis-Whitney inequality states

    ``|V|**2 <= |phi_i(V)| * |phi_j(V)| * |phi_k(V)|``.

(The paper's Lemma 1 prints the weaker unsquared form, but its Theorem 3
proof applies the squared version — that is where the constraint
``x1 x2 x3 >= (mnk/P)**2`` of Lemma 2 comes from — so we implement the
classical squared inequality, which is also the one that is *tight* for
bricks: ``(abc)**2 = (ab)(bc)(ca)``.)

In the matmul context ``V`` is the set of scalar multiplications a
processor performs, and the projections are exactly the entries of ``A``
(drop the third index), ``B`` (drop the first) and ``C`` (drop the second)
the processor must access — the inequality is what couples computation to
data access in the lower-bound proof.

The module works with explicit point sets (for property-based verification
on small random ``V``) and with the brick-shaped sets arising from grid
parallelizations (where the inequality is tight).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

__all__ = [
    "projections",
    "projection_sizes",
    "loomis_whitney_bound",
    "satisfies_loomis_whitney",
    "brick",
    "matmul_projections",
]

Point = Tuple[int, int, int]


def projections(V: Iterable[Point]) -> Dict[str, FrozenSet[Tuple[int, int]]]:
    """The three axis projections of a 3D lattice set.

    Keys follow the matmul convention: projecting out the third index gives
    the ``A`` footprint ``(i1, i2)``, projecting out the first gives ``B``'s
    ``(i2, i3)``, and projecting out the second gives ``C``'s ``(i1, i3)``.
    """
    pa, pb, pc = set(), set(), set()
    for (i, j, k) in V:
        pa.add((i, j))
        pb.add((j, k))
        pc.add((i, k))
    return {"A": frozenset(pa), "B": frozenset(pb), "C": frozenset(pc)}


def projection_sizes(V: Iterable[Point]) -> Tuple[int, int, int]:
    """``(|phi_A|, |phi_B|, |phi_C|)`` of the lattice set."""
    proj = projections(V)
    return (len(proj["A"]), len(proj["B"]), len(proj["C"]))


def loomis_whitney_bound(V: Iterable[Point]) -> int:
    """The projection product ``|phi_A| * |phi_B| * |phi_C|``.

    The inequality bounds ``|V|**2`` by this product; equivalently
    ``|V| <= sqrt(product)``, with equality exactly for (combinatorial)
    bricks.
    """
    a, b, c = projection_sizes(V)
    return a * b * c


def satisfies_loomis_whitney(V: Iterable[Point]) -> bool:
    """Check the classical inequality
    ``|V|**2 <= |phi_A(V)| * |phi_B(V)| * |phi_C(V)|``.

    Always true — the tests use this as an executable statement of
    Lemma 1 over random sets.
    """
    points = set(V)
    return len(points) ** 2 <= loomis_whitney_bound(points)


def brick(
    i_range: Tuple[int, int],
    j_range: Tuple[int, int],
    k_range: Tuple[int, int],
) -> FrozenSet[Point]:
    """The axis-aligned brick ``[i0, i1) x [j0, j1) x [k0, k1)``.

    Bricks are the per-processor subvolumes of grid parallelizations; the
    Loomis-Whitney inequality is an *equality* for bricks, which is why the
    lower bound is attainable.
    """
    (i0, i1), (j0, j1), (k0, k1) = i_range, j_range, k_range
    if i0 > i1 or j0 > j1 or k0 > k1:
        raise ValueError(f"empty or inverted ranges {i_range}, {j_range}, {k_range}")
    return frozenset(
        (i, j, k)
        for i in range(i0, i1)
        for j in range(j0, j1)
        for k in range(k0, k1)
    )


def matmul_projections(V: Iterable[Point]) -> Dict[str, int]:
    """Sizes of the ``A``/``B``/``C`` footprints of a multiplication set.

    ``V`` contains triples ``(i1, i2, i3)`` meaning the scalar product
    ``A[i1, i2] * B[i2, i3]`` contributing to ``C[i1, i3]``.
    """
    a, b, c = projection_sizes(V)
    return {"A": a, "B": b, "C": c}
