"""The paper's mathematical results: bounds, optimization, and KKT proofs.

This subpackage is the library's primary contribution layer:

* :mod:`~repro.core.shapes` / :mod:`~repro.core.cases` — problem dimensions
  and the three regimes of Theorem 3;
* :mod:`~repro.core.loomis_whitney` / :mod:`~repro.core.array_access` —
  Lemmas 1 (both of them: the geometric inequality and the per-array access
  bounds);
* :mod:`~repro.core.optimization` / :mod:`~repro.core.kkt` — Lemma 2's
  constrained optimization problem, its analytic solution, and the KKT
  certificate from the proof;
* :mod:`~repro.core.lower_bounds` — Theorem 3 and Corollary 4;
* :mod:`~repro.core.prior_bounds` — the comparison rows of Table 1;
* :mod:`~repro.core.memory_dependent` / :mod:`~repro.core.crossover` —
  the Section 6.2 limited-memory analysis.
"""

from .array_access import (
    access_lower_bounds,
    min_elements_accessed,
    multiplications_per_element,
    sorted_access_lower_bounds,
)
from .cases import Regime, boundary_processor_counts, classify, regime_interval
from .extensions import (
    GeneralBound,
    generalized_loomis_whitney_holds,
    one_omitted_access_bounds,
    one_omitted_lower_bound,
    projections_d,
)
from .crossover import (
    BoundComparison,
    binding_bound,
    compare_bounds,
    memory_independent_always_dominates,
    memory_threshold_3d,
)
from .kkt import (
    KKTResiduals,
    check_kkt,
    dual_variables,
    kkt_residuals,
    quasiconvexity_witness,
)
from .loomis_whitney import (
    brick,
    loomis_whitney_bound,
    matmul_projections,
    projection_sizes,
    projections,
    satisfies_loomis_whitney,
)
from .lower_bounds import (
    LowerBound,
    accessed_data_bound,
    communication_lower_bound,
    leading_term,
    leading_term_constant,
    memory_independent_bound,
    square_lower_bound,
)
from .memory_dependent import (
    MEMORY_DEPENDENT_CONSTANTS,
    memory_dependent_bound,
    memory_dependent_leading_term,
    min_memory_to_hold_problem,
    strong_scaling_limit,
)
from .optimization import (
    Lemma2Solution,
    feasible,
    lemma2_constraints,
    solve_general,
    solve_lemma2,
    solve_numerically,
)
from .prior_bounds import (
    PriorBound,
    TABLE1_CONSTANTS,
    aggarwal1990_bound,
    demmel2013_bound,
    evaluate_bound,
    irony2004_bound,
    leading_terms,
    table1_rows,
    thiswork_bound,
)
from .shapes import MATRIX_NAMES, ProblemShape

__all__ = [
    "BoundComparison",
    "GeneralBound",
    "KKTResiduals",
    "Lemma2Solution",
    "LowerBound",
    "MATRIX_NAMES",
    "MEMORY_DEPENDENT_CONSTANTS",
    "PriorBound",
    "ProblemShape",
    "Regime",
    "TABLE1_CONSTANTS",
    "access_lower_bounds",
    "accessed_data_bound",
    "aggarwal1990_bound",
    "binding_bound",
    "boundary_processor_counts",
    "brick",
    "check_kkt",
    "classify",
    "communication_lower_bound",
    "compare_bounds",
    "demmel2013_bound",
    "dual_variables",
    "evaluate_bound",
    "feasible",
    "generalized_loomis_whitney_holds",
    "irony2004_bound",
    "kkt_residuals",
    "leading_term",
    "leading_term_constant",
    "leading_terms",
    "lemma2_constraints",
    "loomis_whitney_bound",
    "matmul_projections",
    "memory_dependent_bound",
    "memory_dependent_leading_term",
    "memory_independent_always_dominates",
    "memory_independent_bound",
    "memory_threshold_3d",
    "min_elements_accessed",
    "min_memory_to_hold_problem",
    "multiplications_per_element",
    "one_omitted_access_bounds",
    "one_omitted_lower_bound",
    "projections_d",
    "projection_sizes",
    "projections",
    "quasiconvexity_witness",
    "regime_interval",
    "satisfies_loomis_whitney",
    "solve_general",
    "solve_lemma2",
    "solve_numerically",
    "sorted_access_lower_bounds",
    "square_lower_bound",
    "strong_scaling_limit",
    "table1_rows",
    "thiswork_bound",
]
