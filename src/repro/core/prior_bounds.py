"""Prior memory-independent lower bounds — the comparison rows of Table 1.

Table 1 of the paper compares, case by case, the explicit constants on the
leading term of memory-independent parallel matmul communication bounds:

====================  ==============  =======================  =======================
Work                  case 1 (``nk``)  case 2 ``sqrt(mnk^2/P)``  case 3 ``(mnk/P)^(2/3)``
====================  ==============  =======================  =======================
Aggarwal et al. 1990  —               —                        ``(1/2)^(2/3) ~ 0.63``
Irony et al. 2004     —               —                        ``1/2``
Demmel et al. 2013    ``16/25``       ``sqrt(2/3) ~ 0.82``     ``1``
**This paper (Thm 3)** ``1``          ``2``                    ``3``
====================  ==============  =======================  =======================

Each entry multiplies the corresponding leading term; a dash means the work
proves nothing for that case.  The functions below evaluate every row so
that ``benchmarks/bench_table1.py`` can regenerate the table and the test
suite can verify the orderings (each earlier bound is weaker — smaller —
than Theorem 3's wherever both apply).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

from .cases import Regime, classify
from .shapes import ProblemShape

__all__ = [
    "PriorBound",
    "TABLE1_CONSTANTS",
    "leading_terms",
    "evaluate_bound",
    "table1_rows",
    "aggarwal1990_bound",
    "irony2004_bound",
    "demmel2013_bound",
    "thiswork_bound",
]


@dataclasses.dataclass(frozen=True)
class PriorBound:
    """One row of Table 1: per-case constants (``None`` = no result)."""

    name: str
    citation: str
    constants: Tuple[Optional[float], Optional[float], Optional[float]]

    def constant_for(self, regime: Regime) -> Optional[float]:
        return self.constants[regime.value - 1]


#: The rows of Table 1.  Constants multiply the leading terms
#: ``nk``, ``(mnk^2/P)^(1/2)`` and ``(mnk/P)^(2/3)`` respectively.
TABLE1_CONSTANTS: Dict[str, PriorBound] = {
    "aggarwal1990": PriorBound(
        name="Aggarwal et al. (1990)",
        citation="Communication complexity of PRAMs, Thm 2.3 via Lemma 2.2",
        constants=(None, None, 0.5 ** (2.0 / 3.0)),
    ),
    "irony2004": PriorBound(
        name="Irony et al. (2004)",
        citation="Comm. lower bounds for distributed-memory matmul, Thm 5.1",
        constants=(None, None, 0.5),
    ),
    "demmel2013": PriorBound(
        name="Demmel et al. (2013)",
        citation="Comm.-optimal parallel recursive rectangular matmul, Sec II.B",
        constants=(16.0 / 25.0, math.sqrt(2.0 / 3.0), 1.0),
    ),
    "thiswork": PriorBound(
        name="Theorem 3 (this paper)",
        citation="Al Daas et al., SPAA 2022",
        constants=(1.0, 2.0, 3.0),
    ),
}


def leading_terms(shape: ProblemShape, P: int) -> Tuple[float, float, float]:
    """The three leading terms ``(nk, sqrt(mnk^2/P), (mnk/P)^(2/3))``.

    These are the *unit-constant* expressions each Table 1 entry
    multiplies (each is meaningful in its own case).
    """
    m, n, k = shape.sorted_dims
    return (
        float(n * k),
        (m * n * k * k / P) ** 0.5,
        (m * n * k / P) ** (2.0 / 3.0),
    )


def evaluate_bound(key: str, shape: ProblemShape, P: int) -> Optional[float]:
    """Leading-term value of a Table 1 row in the applicable case.

    Returns ``constant * leading_term`` for the case ``P`` falls into, or
    ``None`` when that work proves nothing for the case.
    """
    row = TABLE1_CONSTANTS[key]
    regime = classify(shape, P)
    constant = row.constant_for(regime)
    if constant is None:
        return None
    return constant * leading_terms(shape, P)[regime.value - 1]


def aggarwal1990_bound(shape: ProblemShape, P: int) -> Optional[float]:
    """Aggarwal-Chandra-Snir LPRAM bound: ``(1/2)^(2/3) (mnk/P)^(2/3)``.

    Derived for the 3D case only (their Lemma 2.2 constant, carried into
    Theorem 2.3); asymptotically valid for any ``P`` but vacuous against
    the case-1/2 structure, hence ``None`` outside case 3.
    """
    return evaluate_bound("aggarwal1990", shape, P)


def irony2004_bound(shape: ProblemShape, P: int) -> Optional[float]:
    """Irony-Toledo-Tiskin memory-independent bound, minimized over local
    memory: at least ``1/2 (mnk/P)^(2/3)``; no result below ``P = mn/k^2``."""
    return evaluate_bound("irony2004", shape, P)


def demmel2013_bound(shape: ProblemShape, P: int) -> Optional[float]:
    """Demmel et al. three-case bound: constants ``16/25``, ``sqrt(2/3)``, ``1``.

    The first work to identify the three asymptotic regimes; Theorem 3
    keeps the cases and tightens every constant.
    """
    return evaluate_bound("demmel2013", shape, P)


def thiswork_bound(shape: ProblemShape, P: int) -> float:
    """This paper's leading term with tight constants ``1 / 2 / 3``."""
    value = evaluate_bound("thiswork", shape, P)
    assert value is not None  # all three cases covered
    return value


def table1_rows(shape: ProblemShape, P: int):
    """All Table 1 rows evaluated at ``(shape, P)``.

    Yields ``(key, PriorBound, value-or-None)`` in the table's order.
    """
    for key in ("aggarwal1990", "irony2004", "demmel2013", "thiswork"):
        yield key, TABLE1_CONSTANTS[key], evaluate_bound(key, shape, P)
