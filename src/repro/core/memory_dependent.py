"""Memory-dependent communication lower bounds (Section 2.1 / 6.2 context).

When each processor's local memory is limited to ``M`` words, a different
family of bounds applies, with leading term ``c * mnk / (P * sqrt(M))``.
The constant ``c`` was tightened over two decades:

* Irony, Toledo & Tiskin (2004): ``c = (1/2)^(3/2) ~ 0.354``;
* Dongarra et al. (2008): ``c = (3/2)^(3/2) ~ 1.837``;
* Smith et al. (2019) and Kwasniewski et al. (2019): ``c = 2`` — tight.

Section 6.2 of the paper analyzes when the memory-dependent bound (with the
tight ``c = 2``) exceeds the memory-independent bound of Theorem 3; that
interplay is implemented in :mod:`repro.core.crossover`.
"""

from __future__ import annotations

import math
from typing import Dict

from ..exceptions import ShapeError
from .shapes import ProblemShape

__all__ = [
    "MEMORY_DEPENDENT_CONSTANTS",
    "memory_dependent_bound",
    "memory_dependent_leading_term",
    "min_memory_to_hold_problem",
    "strong_scaling_limit",
]

#: Historical constants of the ``mnk / (P sqrt(M))`` leading term.
MEMORY_DEPENDENT_CONSTANTS: Dict[str, float] = {
    "irony2004": 0.5 ** 1.5,
    "dongarra2008": 1.5 ** 1.5,
    "smith2019": 2.0,
    "kwasniewski2019": 2.0,
}


def memory_dependent_leading_term(shape: ProblemShape, P: int, M: float) -> float:
    """The unit-constant leading term ``mnk / (P sqrt(M))``."""
    if M <= 0:
        raise ShapeError(f"local memory M must be positive, got {M}")
    if P < 1:
        raise ShapeError(f"P must be at least 1, got {P}")
    return shape.volume / (P * math.sqrt(M))


def memory_dependent_bound(
    shape: ProblemShape,
    P: int,
    M: float,
    constant: str = "smith2019",
) -> float:
    """Leading term of the memory-dependent bound ``c * mnk/(P sqrt(M))``.

    ``constant`` selects the historical row (default: the tight ``c = 2``).

    Examples
    --------
    >>> memory_dependent_bound(ProblemShape(64, 64, 64), 8, M=1024.0)
    2048.0
    """
    c = MEMORY_DEPENDENT_CONSTANTS[constant]
    return c * memory_dependent_leading_term(shape, P, M)


def min_memory_to_hold_problem(shape: ProblemShape, P: int) -> float:
    """``(mn + mk + nk) / P``: memory needed just to store the problem.

    Any valid ``M`` satisfies ``M >= min_memory_to_hold_problem`` (the
    paper notes ``M > mn/P`` already for the largest matrix alone).
    """
    if P < 1:
        raise ShapeError(f"P must be at least 1, got {P}")
    return shape.total_data / P


def strong_scaling_limit(shape: ProblemShape, M: float) -> float:
    """The processor count beyond which the memory-dependent bound with
    tight constant stops dominating: ``P* = (8/27) * mnk / M^(3/2)``.

    For ``P > P*`` the memory-independent 3D bound ``3 (mnk/P)^(2/3)`` is
    the larger (binding) one; equivalently, perfect strong scaling of
    communication volume per processor ends at ``P*`` (Ballard et al. 2012b
    first made this observation; Section 6.2 gives the constant).
    """
    if M <= 0:
        raise ShapeError(f"local memory M must be positive, got {M}")
    return (8.0 / 27.0) * shape.volume / M ** 1.5
