"""Command-line interface: ``python -m repro <command> ...``.

Gives downstream users the paper's results without writing any code:

``bounds N1 N2 N3 --procs P [--memory M]``
    Theorem 3 (and, with ``--memory``, the Section 6.2 comparison).
``grid N1 N2 N3 --procs P``
    The Section 5.2 optimal processor grid and expression (3) cost.
``run N1 N2 N3 --procs P [--seed S] [--trace T.json] [--metrics M.jsonl]``
    Execute Algorithm 1 on the simulated machine and report measured
    cost versus the bound, with bound-attainment gauges; optionally
    export a Chrome-trace timeline (``--trace``) and JSON-lines
    span/metric records (``--metrics``).  With ``--oracle`` the cost is
    evaluated from the closed-form analytic oracle instead of simulating
    — same numbers (:func:`repro.analysis.verification.cross_check_oracle`
    proves exact equality), milliseconds at any P.
``inspect FILE.jsonl``
    Pretty-print a recorded trace: span (phase) tree, per-rank counter
    table (with the words-sent skew gauge), attainment summary, metrics
    digest.
``bench [--label L] [--compare] [--write-baseline] [--filter S]``
    Run every ``benchmarks/bench_*.py`` harness plus the standard sweep
    grid, write ``BENCH_<label>.json`` at the repository root, append run
    records to the experiment ledger, and optionally gate against a
    committed baseline (exact on model costs, ±20% on wall-clock).
``chaos [--algorithms A,B] [--schedules S,T] [--seeds N] [--json PATH]``
    Chaos-test registered algorithms under seeded fault schedules across
    one (shape, P) point per Theorem 3 case, asserting the fault-layer
    trichotomy: recovered with accounted cost, typed detection, or
    fail-stop — never silent corruption.  Exit 1 on any violation.
``sweep [--shapes N1xN2xN3,...] [--procs P,Q] [--workers N]``
    Run the generic parameter sweep over registered algorithms and print
    one row per (algorithm, shape, P) measurement; optionally append to
    the experiment ledger.
``large-p [--workers N]``
    The production-scale attainment sweep: Algorithm 1 on the symbolic
    backend at P up to 10^5, one point per Theorem 3 case, asserting the
    bound is attained with the tight constant.
``plan N1 N2 N3 --procs P,Q,... [--memory M] [--atlas PATH]``
    The oracle-backed capacity planner: score every registry algorithm
    through the vectorized oracle at each processor count, print the
    cheapest admissible choice with its Theorem 3 bound attainment and
    (with ``--memory``) the Section 6.2 memory-dependent crossover.
    ``--atlas`` additionally writes the case-1/2/3 planner atlases
    (``P`` up to ``--atlas-limit``, default 10^7) as one JSON file.
``profile DRIVER [--top N] [--collapsed PATH]``
    Run a representative DRIVER workload (sweep / chaos / large-p /
    bench) under cProfile — in every pool worker, merged across
    processes — and print the top-N hotspot table; ``--collapsed``
    writes flamegraph-ready folded stacks.
``ledger list | show N | diff N M | trajectory METRIC``
    Read the persistent experiment ledger back: the run history, one full
    record, or a field-by-field comparison of two records.  ``diff``
    warns (stderr, exit 0) when exactly one side measured a fault-injected
    execution; ``--allow-faulty`` silences the warning.

    Exit codes follow the usual Unix split — 0 for success, 1 for a
    detected failure, 2 for usage errors — and ``ledger diff``
    specifically exits **0** when the comparison ran (differing fields
    and the fault warning are still success: a diff that finds
    differences did its job) and **2** on usage errors (unreadable
    ledger, out-of-range index, mixed backends without
    ``--allow-mixed``).  It never exits 1: a diff has no "failure"
    verdict of its own.  ``tests/test_cli.py`` pins this contract.

    ``trajectory METRIC [--algorithm A] [--case C]`` prints one tracked
    metric's time-ordered history, one block per (algorithm, backend,
    Theorem-3 case, shape) series.
``trend [--check] [--metric M] [--window N]``
    Aggregate the ledger and every ``BENCH_*.json`` into per-metric
    trajectories and run the rolling-median regression detector
    (:mod:`repro.obs.analytics`): typed verdicts improved / flat /
    regressed per (series, metric, stream).  ``--check`` exits 1 on any
    regression (``--advisory`` reports but keeps exit 0); without it the
    command always exits 0.
``dashboard [--out PATH]``
    Write the self-contained HTML observability dashboard — trend
    verdicts, trajectory sparklines, Theorem-3 attainment heatmap,
    words-sent skew bars, worker-utilization timeline and profile
    hotspots — as one static file with inline data that opens from
    ``file://`` with zero external requests.
``table1 | fig1 | fig2 | lemma2 | crossover``
    Print a reproduction artifact (same output as the benchmark
    harnesses' standalone mode).

The driver commands (``sweep`` / ``chaos`` / ``bench`` / ``large-p``)
share an observability flag group — ``--telemetry`` / ``--trace-out`` /
``--telemetry-out`` / ``--profile`` / ``--profile-out`` / ``--progress``
— that records host-process stage spans, per-worker task spans and
cProfile hotspots (see docs/OBSERVABILITY.md).  All of it is opt-in and
zero-cost when off: model costs, results and ledger bytes are identical
with or without it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

#: Default ``repro sweep`` grid: six shapes spanning the Theorem 3
#: regimes, small enough for the data backend to simulate in seconds but
#: wide enough that a pooled sweep exercises several workers.
DEFAULT_SWEEP_SHAPES = "16x16x16,32x8x4,64x16x4,32x32x32,96x24x6,48x24x12"
DEFAULT_SWEEP_PROCS = "4,16"

#: Metrics the trend/trajectory commands track; mirrors
#: :data:`repro.obs.analytics.METRICS` (kept literal so building the
#: parser stays import-light).
TREND_METRICS = ("wall_clock", "words", "attainment", "skew_ratio")


def _add_observability_flags(p: argparse.ArgumentParser) -> None:
    """The shared driver-observability flag group (zero-cost when off)."""
    g = p.add_argument_group("driver observability")
    g.add_argument("--telemetry", action="store_true",
                   help="record driver stage spans and per-worker task "
                        "spans; print the utilization digest (straggler "
                        "skew, queue waits, throughput)")
    g.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write the merged driver+worker timeline as "
                        "chrome://tracing JSON (implies --telemetry)")
    g.add_argument("--telemetry-out", metavar="PATH", default=None,
                   help="write driver telemetry as JSON-lines records "
                        "(implies --telemetry)")
    g.add_argument("--profile", action="store_true",
                   help="run every task under cProfile (parent and pool "
                        "workers) and print the merged top-N hotspot table")
    g.add_argument("--profile-out", metavar="PATH", default=None,
                   help="write the merged profile as collapsed stacks for "
                        "flamegraph.pl / speedscope (implies --profile)")
    g.add_argument("--progress", action="store_true",
                   help="heartbeat progress lines (done/total, rate, ETA) "
                        "to stderr")


def _build_observability(args: argparse.Namespace, driver: str, total: int = 0):
    """(telemetry, profile, progress) sinks for a driver command's flags."""
    from .obs.profile import ProfileCollector
    from .obs.telemetry import ProgressReporter, Telemetry

    want_telemetry = args.telemetry or args.trace_out or args.telemetry_out
    telemetry = Telemetry(driver) if want_telemetry else None
    profile = ProfileCollector() if (args.profile or args.profile_out) else None
    progress = ProgressReporter(total, label=driver) if args.progress else None
    return telemetry, profile, progress


def _report_observability(
    args: argparse.Namespace, telemetry, profile, progress=None, top: int = 15
) -> int:
    """Print digests and write the requested exports; 0 ok, 2 on I/O error."""
    from .obs.exporters import export_telemetry_chrome, export_telemetry_jsonl
    from .obs.profile import write_collapsed

    if progress is not None:
        # Guaranteed final heartbeat: drivers that built the reporter
        # with an unknown total (0) would otherwise end in silence.
        progress.finish()
    try:
        if telemetry is not None:
            print(telemetry.render())
            if args.trace_out:
                n = export_telemetry_chrome(telemetry, args.trace_out)
                print(f"wrote merged Chrome trace ({n} events) to "
                      f"{args.trace_out}")
            if args.telemetry_out:
                n = export_telemetry_jsonl(telemetry, args.telemetry_out)
                print(f"wrote {n} telemetry records to {args.telemetry_out}")
        if profile is not None:
            print(profile.render(top=top))
            if args.profile_out:
                n = write_collapsed(profile.stats(), args.profile_out)
                print(f"wrote {n} collapsed stacks to {args.profile_out}")
    except OSError as exc:
        print(f"cannot write observability output: {exc}", file=sys.stderr)
        return 2
    return 0


def _parse_shapes(text: str):
    """Parse ``"16x16x16,32x8x4"`` into ProblemShape objects."""
    from .core import ProblemShape

    shapes = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        dims = part.lower().split("x")
        if len(dims) != 3:
            raise ValueError(
                f"shape {part!r} is not of the form N1xN2xN3"
            )
        shapes.append(ProblemShape(*(int(d) for d in dims)))
    if not shapes:
        raise ValueError("no shapes given")
    return shapes


def _parse_ints(text: str) -> List[int]:
    out = [int(p) for p in text.split(",") if p.strip()]
    if not out:
        raise ValueError("no values given")
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Tight memory-independent parallel matmul communication lower "
            "bounds (SPAA 2022) - reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_shape(p: argparse.ArgumentParser) -> None:
        p.add_argument("n1", type=int, help="rows of A")
        p.add_argument("n2", type=int, help="columns of A / rows of B")
        p.add_argument("n3", type=int, help="columns of B")
        p.add_argument("--procs", "-p", type=int, required=True, help="processor count P")

    p_bounds = sub.add_parser("bounds", help="evaluate Theorem 3 for a problem")
    add_shape(p_bounds)
    p_bounds.add_argument("--memory", "-m", type=float, default=None,
                          help="local memory M (words) for the Section 6.2 comparison")

    p_grid = sub.add_parser("grid", help="select the Section 5.2 optimal grid")
    add_shape(p_grid)

    p_run = sub.add_parser("run", help="execute Algorithm 1 on the simulator")
    add_shape(p_run)
    p_run.add_argument("--seed", type=int, default=0, help="operand RNG seed")
    p_run.add_argument("--backend", choices=["data", "symbolic"], default="data",
                       help="execution backend: 'data' moves real numpy "
                            "blocks and verifies C = A @ B; 'symbolic' moves "
                            "shape descriptors only (identical cost "
                            "accounting, no numerical check) and scales to "
                            "production-sized P")
    p_run.add_argument("--memory", "-m", type=float, default=None,
                       help="per-processor memory limit M (words); also "
                            "enables the memory-dependent attainment gauge")
    p_run.add_argument("--trace", metavar="PATH", default=None,
                       help="write a chrome://tracing-compatible timeline JSON")
    p_run.add_argument("--metrics", metavar="PATH", default=None,
                       help="write JSON-lines span/metric/per-rank records")
    p_run.add_argument("--oracle", action="store_true",
                       help="evaluate the closed-form analytic cost oracle "
                            "instead of simulating: identical cost numbers "
                            "(cross-checked exactly in the test suite) in "
                            "milliseconds at any P; incompatible with "
                            "--trace/--metrics/--memory (no machine exists)")
    p_run.add_argument("--semiring", choices=["plus_times", "min_plus"],
                       default="plus_times",
                       help="scalar multiply-add pair for the local GEMMs "
                            "and reductions; costs are identical for every "
                            "semiring, numerics are verified against the "
                            "chosen semiring's reference product")

    p_inspect = sub.add_parser(
        "inspect", help="pretty-print a recorded JSON-lines trace"
    )
    p_inspect.add_argument(
        "path", help=".jsonl file written by 'run --metrics'"
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark suite, write BENCH_<label>.json, "
             "optionally gate against a baseline",
    )
    p_bench.add_argument("--label", default="local",
                         help="run label; names the BENCH_<label>.json output")
    p_bench.add_argument("--filter", default=None, metavar="SUBSTR",
                         help="only run entries whose name contains SUBSTR")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="baseline file (default benchmarks/baseline.json)")
    p_bench.add_argument("--compare", action="store_true",
                         help="gate this run against the baseline; exit 1 on "
                              "regression")
    p_bench.add_argument("--write-baseline", action="store_true",
                         help="save this run's report as the baseline")
    p_bench.add_argument("--output", default=None, metavar="DIR",
                         help="directory for BENCH_<label>.json "
                              "(default: repository root)")
    p_bench.add_argument("--ledger", default=None, metavar="PATH",
                         help="experiment-ledger JSONL to append run records "
                              "to (default: repro_ledger.jsonl next to the "
                              "BENCH file)")
    p_bench.add_argument("--no-ledger", action="store_true",
                         help="do not append run records to the ledger")
    p_bench.add_argument("--wallclock-tol", type=float, default=0.20,
                         metavar="FRAC",
                         help="relative wall-clock regression tolerance "
                              "(default 0.20)")
    p_bench.add_argument("--wallclock-advisory", action="store_true",
                         help="report wall-clock regressions as warnings "
                              "instead of failures (cross-machine baselines)")
    p_bench.add_argument("--workers", type=int, default=1, metavar="N",
                         help="process-pool width for harnesses and sweep "
                              "points (default 1 = serial; model costs are "
                              "bit-identical for any N)")
    _add_observability_flags(p_bench)

    p_sweep = sub.add_parser(
        "sweep",
        help="run the generic parameter sweep over registered algorithms",
    )
    p_sweep.add_argument("--shapes", default=DEFAULT_SWEEP_SHAPES,
                         metavar="N1xN2xN3,...",
                         help=f"comma-separated problem shapes "
                              f"(default {DEFAULT_SWEEP_SHAPES})")
    p_sweep.add_argument("--procs", default=DEFAULT_SWEEP_PROCS,
                         metavar="P,Q,...",
                         help=f"comma-separated processor counts "
                              f"(default {DEFAULT_SWEEP_PROCS})")
    p_sweep.add_argument("--algorithms", default=None, metavar="A,B,...",
                         help="comma-separated registry names "
                              "(default: every applicable algorithm)")
    p_sweep.add_argument("--backend", choices=["data", "symbolic"],
                         default="data",
                         help="execution backend (symbolic scales to "
                              "production-sized P)")
    p_sweep.add_argument("--engine", choices=["simulate", "oracle"],
                         default="simulate",
                         help="'simulate' runs the machine model; 'oracle' "
                              "evaluates the closed-form cost oracle "
                              "(identical numbers where defined)")
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="operand RNG seed (per-shape streams are "
                              "derived from (seed, shape_index))")
    p_sweep.add_argument("--workers", type=int, default=1, metavar="N",
                         help="process-pool width (default 1 = serial; "
                              "records are bit-identical for any N)")
    p_sweep.add_argument("--ledger", metavar="PATH", default=None,
                         help="append records to this experiment ledger")
    p_sweep.add_argument("--label", default="sweep",
                         help="ledger record label (default 'sweep')")
    p_sweep.add_argument("--semiring", choices=["plus_times", "min_plus"],
                         default=None,
                         help="thread this semiring to every run (default: "
                              "each algorithm's own default)")
    _add_observability_flags(p_sweep)

    p_apsp = sub.add_parser(
        "apsp",
        help="all-pairs shortest paths by repeated min-plus squaring "
             "(Fox-Otto distance products with per-squaring Theorem 3 "
             "gauges)",
    )
    p_apsp.add_argument("--n", type=int, required=True,
                        help="number of graph vertices (the distance matrix "
                             "is n x n)")
    p_apsp.add_argument("--P", "--procs", "-p", dest="procs", type=int,
                        required=True, help="processor count P")
    p_apsp.add_argument("--seed", type=int, default=0,
                        help="digraph RNG seed")
    p_apsp.add_argument("--density", type=float, default=0.35,
                        help="edge probability of the random digraph "
                             "(default 0.35)")
    p_apsp.add_argument("--algorithm", default="fox_otto",
                        help="registry algorithm executing each distance "
                             "product (default fox_otto)")
    p_apsp.add_argument("--no-verify", action="store_true",
                        help="skip the single-node shortest-path reference "
                             "check")

    p_large = sub.add_parser(
        "large-p",
        help="production-scale attainment sweep (symbolic backend, "
             "P up to 10^5)",
    )
    p_large.add_argument("--workers", type=int, default=1, metavar="N",
                         help="process-pool width (default 1 = serial)")
    p_large.add_argument("--tight-tol", type=float, default=1e-9,
                         metavar="TOL",
                         help="relative attainment tolerance (default 1e-9)")
    p_large.add_argument("--ledger", metavar="PATH", default=None,
                         help="append records to this experiment ledger")
    p_large.add_argument("--label", default="large-p",
                         help="ledger record label (default 'large-p')")
    _add_observability_flags(p_large)

    p_plan = sub.add_parser(
        "plan",
        help="oracle-backed capacity planner: cheapest registry "
             "algorithm per (shape, P[, M]) query",
    )
    p_plan.add_argument("n1", type=int, help="rows of A")
    p_plan.add_argument("n2", type=int, help="columns of A / rows of B")
    p_plan.add_argument("n3", type=int, help="columns of B")
    p_plan.add_argument("--procs", "-p", required=True, metavar="P1,P2,...",
                        help="comma-separated processor counts to plan for")
    p_plan.add_argument("--memory", "-m", type=float, default=None,
                        help="local memory M (words); adds the Section 6.2 "
                             "memory-dependent crossover to every answer")
    p_plan.add_argument("--candidates", action="store_true",
                        help="list every admissible algorithm per query, "
                             "not just the winner")
    p_plan.add_argument("--json", metavar="PATH", default=None,
                        help="write the full answers as JSON "
                             "('-' for stdout)")
    p_plan.add_argument("--atlas", metavar="PATH", default=None,
                        help="also write the case-1/2/3 planner atlas "
                             "JSON to PATH")
    p_plan.add_argument("--atlas-limit", type=int, default=10**7,
                        metavar="P",
                        help="largest processor count in the atlas "
                             "(default 10^7)")
    p_plan.add_argument("--ledger", metavar="PATH", default=None,
                        help="append one planner record per query to this "
                             "experiment ledger")
    p_plan.add_argument("--label", default="plan",
                        help="ledger record label (default 'plan')")

    p_profile = sub.add_parser(
        "profile",
        help="profile a driver workload under cProfile (merged across "
             "pool workers) and print the hotspot table",
    )
    p_profile.add_argument("driver",
                           choices=["sweep", "chaos", "large-p", "bench"],
                           help="which driver workload to profile")
    p_profile.add_argument("--workers", type=int, default=1, metavar="N",
                           help="process-pool width; workers profile "
                                "themselves and ship stats back (default 1)")
    p_profile.add_argument("--top", type=int, default=15, metavar="N",
                           help="rows in the hotspot table (default 15)")
    p_profile.add_argument("--collapsed", metavar="PATH", default=None,
                           help="also write flamegraph-ready collapsed "
                                "stacks to PATH")

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos-test registered algorithms under seeded fault "
             "schedules; exit 1 on any quadchotomy violation",
    )
    p_chaos.add_argument("--algorithms", default=None, metavar="A,B,...",
                         help="comma-separated registry names "
                              "(default: every registered algorithm)")
    p_chaos.add_argument("--schedules", default=None, metavar="S,T,...",
                         help="comma-separated fault schedule names "
                              "(default: all; see docs/ROBUSTNESS.md)")
    p_chaos.add_argument("--seeds", type=int, default=4, metavar="N",
                         help="fault seeds 0..N-1 per schedule (default 4)")
    p_chaos.add_argument("--backend", choices=["data", "symbolic"],
                         default="data",
                         help="execution backend; 'data' additionally "
                              "verifies recovered numerics bit-for-bit")
    p_chaos.add_argument("--json", metavar="PATH", default=None,
                         help="write the full chaos report as JSON")
    p_chaos.add_argument("--ledger", metavar="PATH", default=None,
                         help="append completed runs as kind='chaos' "
                              "records to this experiment ledger")
    p_chaos.add_argument("--label", default="chaos",
                         help="ledger record label (default 'chaos')")
    p_chaos.add_argument("--workers", type=int, default=1, metavar="N",
                         help="process-pool width for the chaos matrix "
                              "(default 1 = serial; outcomes are identical "
                              "for any N)")
    p_chaos.add_argument("--recover", action="store_true",
                         help="also run the survivable rank-death "
                              "schedules (RecoveryConfig opted in): ABFT "
                              "algorithms reconstruct in place, the rest "
                              "checkpoint/restart")
    _add_observability_flags(p_chaos)

    p_survive = sub.add_parser(
        "survive",
        help="survivability report: kill a rank in every registered "
             "algorithm and state the recovery overhead against the "
             "Theorem 3 bound; exit 1 unless every cell reconstructs",
    )
    p_survive.add_argument("--algorithms", default=None, metavar="A,B,...",
                           help="comma-separated registry names "
                                "(default: every registered algorithm)")
    p_survive.add_argument("--seed", type=int, default=0,
                           help="fault-model seed (default 0)")
    p_survive.add_argument("--rank", type=int, default=1,
                           help="rank to kill (default 1)")
    p_survive.add_argument("--round", type=int, default=1, dest="at_round",
                           help="network round after which the rank dies "
                                "(default 1)")
    p_survive.add_argument("--strategy", choices=["spare", "shrink"],
                           default="spare",
                           help="recovery strategy: revive the slot from a "
                                "spare (default) or shrink onto survivors")
    p_survive.add_argument("--backend", choices=["data", "symbolic"],
                           default="data",
                           help="execution backend; 'data' additionally "
                                "verifies reconstructed numerics")
    p_survive.add_argument("--workers", type=int, default=1, metavar="N",
                           help="process-pool width (default 1 = serial); "
                                "rows are bit-identical for any value")
    p_survive.add_argument("--json", metavar="PATH", default=None,
                           help="write the survivability report as JSON")

    p_ledger = sub.add_parser(
        "ledger", help="read the persistent experiment ledger"
    )
    lsub = p_ledger.add_subparsers(dest="ledger_command", required=True)
    common = {"default": None, "metavar": "PATH",
              "help": "ledger file (default: repro_ledger.jsonl at the "
                      "repository root)"}
    l_list = lsub.add_parser("list", help="tabulate recorded runs")
    l_list.add_argument("--path", **common)
    l_list.add_argument("--algorithm", default=None,
                        help="only records for this algorithm")
    l_list.add_argument("--label", default=None,
                        help="only records with this label")
    l_list.add_argument("--limit", type=int, default=None, metavar="N",
                        help="show only the last N matching records")
    l_show = lsub.add_parser("show", help="print one record in full")
    l_show.add_argument("index", type=int,
                        help="record index from 'ledger list' (negative "
                             "counts from the end)")
    l_show.add_argument("--path", **common)
    l_diff = lsub.add_parser("diff", help="compare two records field by field")
    l_diff.add_argument("index_a", type=int, help="first record index")
    l_diff.add_argument("index_b", type=int, help="second record index")
    l_diff.add_argument("--path", **common)
    l_diff.add_argument("--allow-mixed", action="store_true",
                        help="permit comparing records from different "
                             "execution backends or semirings (wall-clock, "
                             "numerical verification and products are not "
                             "comparable across them; model costs are)")
    l_diff.add_argument("--allow-faulty", action="store_true",
                        help="silence the warning when comparing a "
                             "fault-injected record against a fault-free "
                             "one (fault-injected costs include recovery "
                             "resends, so model costs are expected to "
                             "differ)")
    l_traj = lsub.add_parser(
        "trajectory",
        help="print one metric's time-ordered history per configuration",
    )
    l_traj.add_argument("metric", choices=list(TREND_METRICS),
                        help="which tracked metric to tabulate")
    l_traj.add_argument("--path", **common)
    l_traj.add_argument("--algorithm", default=None,
                        help="only series for this algorithm")
    l_traj.add_argument("--case", default=None, choices=["1D", "2D", "3D"],
                        help="only series in this Theorem-3 case")
    l_traj.add_argument("--include-faulty", action="store_true",
                        help="include fault-injected records (their model "
                             "costs include recovery resends)")

    p_trend = sub.add_parser(
        "trend",
        help="rolling-median trend verdicts over the ledger and BENCH files",
    )
    p_trend.add_argument("--ledger", metavar="PATH", default=None,
                         help="ledger file (default: repro_ledger.jsonl at "
                              "the repository root)")
    p_trend.add_argument("--bench", metavar="PATH", action="append",
                         default=None,
                         help="BENCH_*.json report to include (repeatable; "
                              "default: every BENCH_*.json at the "
                              "repository root)")
    p_trend.add_argument("--no-bench", action="store_true",
                         help="trend the ledger only, ignore BENCH files")
    p_trend.add_argument("--metric", action="append", default=None,
                         choices=list(TREND_METRICS),
                         help="only these metrics (repeatable; default all)")
    p_trend.add_argument("--algorithm", default=None,
                         help="only series for this algorithm")
    p_trend.add_argument("--case", default=None, choices=["1D", "2D", "3D"],
                         help="only series in this Theorem-3 case")
    p_trend.add_argument("--window", type=int, default=None, metavar="N",
                         help="trailing rolling-median window "
                              "(default 3; needs N+1 samples to judge)")
    p_trend.add_argument("--tolerance", type=float, default=None,
                         metavar="FRAC",
                         help="override the wall-clock relative tolerance "
                              "(default 0.20; model metrics stay exact)")
    p_trend.add_argument("--include-faulty", action="store_true",
                         help="include fault-injected ledger records")
    p_trend.add_argument("--all", action="store_true",
                         help="list every trajectory, including flat ones")
    p_trend.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")
    p_trend.add_argument("--check", action="store_true",
                         help="exit 1 when any trajectory regressed "
                              "(default: report only, exit 0)")
    p_trend.add_argument("--advisory", action="store_true",
                         help="with --check: report regressions but still "
                              "exit 0 (CI advisory mode)")

    p_dash = sub.add_parser(
        "dashboard",
        help="write the self-contained HTML observability dashboard",
    )
    p_dash.add_argument("--out", metavar="PATH", default=None,
                        help="output HTML file (default: dashboard.html "
                             "at the repository root)")
    p_dash.add_argument("--ledger", metavar="PATH", default=None,
                        help="ledger file (default: repro_ledger.jsonl at "
                             "the repository root)")
    p_dash.add_argument("--bench", metavar="PATH", action="append",
                        default=None,
                        help="BENCH_*.json report to include (repeatable; "
                             "default: every BENCH_*.json at the "
                             "repository root)")
    p_dash.add_argument("--no-bench", action="store_true",
                        help="ignore BENCH files")
    p_dash.add_argument("--telemetry", metavar="PATH", default=None,
                        help="driver-telemetry JSONL export (default: "
                             "artifacts/telemetry_sweep.jsonl when present)")
    p_dash.add_argument("--profile", metavar="PATH", default=None,
                        help="collapsed-stack profile (default: "
                             "artifacts/hotspots_sweep.folded when present)")
    p_dash.add_argument("--window", type=int, default=None, metavar="N",
                        help="trend rolling-median window (default 3)")
    p_dash.add_argument("--top", type=int, default=15, metavar="N",
                        help="hotspot table depth (default 15)")
    p_dash.add_argument("--include-faulty", action="store_true",
                        help="include fault-injected ledger records")

    for name in ("table1", "fig1", "fig2", "lemma2", "crossover"):
        sub.add_parser(name, help=f"print the {name} reproduction artifact")

    sub.add_parser("report", help="run the quick end-to-end reproduction checks")

    return parser


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .core import (
        ProblemShape,
        classify,
        compare_bounds,
        memory_independent_bound,
        min_memory_to_hold_problem,
    )

    shape = ProblemShape(args.n1, args.n2, args.n3)
    lb = memory_independent_bound(shape, args.procs)
    print(f"problem {shape}, P = {args.procs}, regime {classify(shape, args.procs)}")
    print(f"minimum words accessed by some processor (D): {lb.accessed:g}")
    print(f"data a processor may own for free:            {lb.owned:g}")
    print(f"communication lower bound (D - owned):        {lb.communicated:g}")
    print(f"leading term (tight constant):                {lb.leading:g}")
    if args.memory is not None:
        needed = min_memory_to_hold_problem(shape, args.procs)
        if args.memory < needed:
            print(f"M = {args.memory:g} cannot hold the problem "
                  f"(needs {needed:g} words/processor)")
            return 1
        cmp = compare_bounds(shape, args.procs, args.memory)
        print(f"with M = {args.memory:g}: memory-dependent bound "
              f"2mnk/(P sqrt(M)) = {cmp.memory_dependent:g}; "
              f"binding: {cmp.binding}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .algorithms import continuous_optimal_grid, select_grid
    from .core import ProblemShape, communication_lower_bound

    shape = ProblemShape(args.n1, args.n2, args.n3)
    cont = continuous_optimal_grid(shape, args.procs)
    choice = select_grid(shape, args.procs)
    bound = communication_lower_bound(shape, args.procs)
    print(f"problem {shape}, P = {args.procs} ({choice.regime})")
    print(f"continuous optimum: {cont[0]:.3f} x {cont[1]:.3f} x {cont[2]:.3f}")
    print(f"best integer grid:  {choice.grid} "
          f"(divides dimensions: {choice.divides})")
    print(f"expression (3) cost: {choice.cost:g} words "
          f"(lower bound {bound:g}, ratio "
          f"{choice.cost / bound if bound else float('nan'):.4f})")
    return 0


def _cmd_run_oracle(args: argparse.Namespace) -> int:
    from .analysis.oracle import predict_cost
    from .core import ProblemShape
    from .exceptions import OracleUnsupportedError

    if args.trace or args.metrics or args.memory is not None:
        print("--oracle evaluates a closed form; no machine exists to "
              "trace, export metrics from, or bound memory on",
              file=sys.stderr)
        return 2
    shape = ProblemShape(args.n1, args.n2, args.n3)
    try:
        pred = predict_cost("alg1", shape, args.procs)
    except OracleUnsupportedError as exc:
        print(f"oracle cannot predict this configuration exactly: {exc}",
              file=sys.stderr)
        print("(drop --oracle to simulate it instead)", file=sys.stderr)
        return 1
    print(f"problem {shape}, P = {args.procs}, {pred.config}, "
          f"engine oracle (closed form; no simulation)")
    print(f"predicted words: {pred.cost.words:g}  rounds: {pred.cost.rounds}  "
          f"flops/proc: {pred.cost.flops:g}")
    bound = pred.bound
    print(f"lower bound:     {bound:g}  "
          f"(tight: {abs(pred.cost.words - bound) < 1e-9 * max(1.0, bound)})")
    print(f"attainment: {pred.attainment:.6f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .algorithms import run_alg1, select_grid
    from .core import ProblemShape, communication_lower_bound
    from .exceptions import MemoryLimitExceededError
    from .machine import Machine, resolve_backend

    if args.oracle:
        return _cmd_run_oracle(args)
    from .machine.semiring import resolve_semiring

    sr = resolve_semiring(args.semiring)
    shape = ProblemShape(args.n1, args.n2, args.n3)
    choice = select_grid(shape, args.procs)
    backend = resolve_backend(args.backend)
    if backend.verifies:
        rng = np.random.default_rng(args.seed)
        A = rng.random((shape.n1, shape.n2))
        B = rng.random((shape.n2, shape.n3))
    else:
        A, B = backend.operands((shape.n1, shape.n2, shape.n3))
    machine = None
    if args.memory is not None:
        machine = Machine(
            choice.grid.size, memory_limit=args.memory, backend=backend
        )
    try:
        res = run_alg1(A, B, choice.grid, machine=machine, semiring=sr)
    except MemoryLimitExceededError as exc:
        print(f"run aborted: {exc}", file=sys.stderr)
        print("(raise --memory; 'repro bounds ... -m M' shows the minimum)",
              file=sys.stderr)
        return 1
    ok = (
        bool(sr.allclose(res.C, sr.matmul_data(A, B)))
        if backend.verifies else None
    )
    bound = communication_lower_bound(shape, args.procs)
    print(f"problem {shape}, P = {args.procs}, grid {choice.grid}, "
          f"backend {backend.name}, semiring {sr.name}")
    if ok is None:
        print("numerically correct: skipped (symbolic backend moves shape "
              "descriptors, not elements)")
    else:
        print(f"numerically correct: {ok}")
    print(f"measured words: {res.cost.words:g}  rounds: {res.cost.rounds}  "
          f"flops/proc: {res.cost.flops:g}")
    print(f"lower bound:    {bound:g}  "
          f"(tight: {abs(res.cost.words - bound) < 1e-9 * max(1.0, bound)})")
    print(f"peak memory per processor: {res.peak_memory} words")
    print(f"attainment: {res.attainment.summary()}")
    try:
        if args.trace:
            from .obs import ChromeTraceExporter

            n = ChromeTraceExporter().export(
                res.machine, args.trace, attainment=res.attainment
            )
            print(f"wrote Chrome trace ({n} events) to {args.trace}")
        if args.metrics:
            from .obs import JSONLinesExporter

            n = JSONLinesExporter().export(
                res.machine, args.metrics, attainment=res.attainment
            )
            print(f"wrote {n} JSON-lines records to {args.metrics}")
    except OSError as exc:
        print(f"cannot write export: {exc}", file=sys.stderr)
        return 2
    return 0 if ok is not False else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .obs import inspect_report, read_jsonl

    try:
        records = read_jsonl(args.path)
    except OSError as exc:
        print(f"cannot read trace file: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"not a JSON-lines trace (expected the 'run --metrics' "
              f"format): {exc}", file=sys.stderr)
        return 2
    print(inspect_report(records))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from .exceptions import BaselineError, VerificationError
    from .obs.bench import load_bench_report, repo_root, run_bench_suite
    from .obs.ledger import Ledger
    from .obs.regress import compare_reports

    out_dir = args.output if args.output else repo_root()
    ledger = None
    if not args.no_ledger:
        ledger_path = args.ledger or os.path.join(out_dir, "repro_ledger.jsonl")
        ledger = Ledger(ledger_path)
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    telemetry, profile, progress = _build_observability(args, "bench")
    try:
        report = run_bench_suite(
            args.label, filter=args.filter, ledger=ledger,
            workers=args.workers,
            telemetry=telemetry, profile=profile, progress=progress,
        )
    except VerificationError as exc:
        print(f"bench aborted (reproduction claim violated): {exc}",
              file=sys.stderr)
        return 1
    code = _report_observability(args, telemetry, profile, progress)
    if code:
        return code
    if not report.entries:
        print(f"no bench entries matched filter {args.filter!r}",
              file=sys.stderr)
        return 2
    try:
        path = report.write(out_dir)
    except OSError as exc:
        print(f"cannot write BENCH file: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {len(report.entries)} entries to {path}")
    if ledger is not None:
        print(f"appended run records to {ledger.path}")

    baseline_path = args.baseline or os.path.join(
        repo_root(), "benchmarks", "baseline.json"
    )
    if args.write_baseline:
        try:
            with open(baseline_path, "w") as fh:
                json.dump(report.to_dict(), fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write baseline: {exc}", file=sys.stderr)
            return 2
        print(f"wrote baseline to {baseline_path}")
    if args.compare:
        try:
            baseline = load_bench_report(baseline_path)
        except BaselineError as exc:
            print(f"cannot compare: {exc}", file=sys.stderr)
            return 2
        gate = compare_reports(
            report,
            baseline,
            wallclock_tol=args.wallclock_tol,
            enforce_wallclock=not args.wallclock_advisory,
            allow_missing=args.filter is not None,
        )
        print(gate.render())
        return 0 if gate.passed else 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .analysis.chaos import ALL_SCHEDULES, run_chaos
    from .obs.ledger import Ledger

    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms else None
    )
    schedules = (
        [s.strip() for s in args.schedules.split(",") if s.strip()]
        if args.schedules else None
    )
    if schedules:
        unknown = [s for s in schedules if s not in ALL_SCHEDULES]
        if unknown:
            print(f"unknown schedule(s) {', '.join(unknown)}; known: "
                  f"{', '.join(ALL_SCHEDULES)}", file=sys.stderr)
            return 2
    if args.seeds < 1:
        print(f"--seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    ledger = Ledger(args.ledger) if args.ledger else None
    telemetry, profile, progress = _build_observability(args, "chaos")
    report = run_chaos(
        algorithms=algorithms,
        seeds=tuple(range(args.seeds)),
        schedules=schedules,
        backend=args.backend,
        ledger=ledger,
        label=args.label,
        workers=args.workers,
        telemetry=telemetry,
        profile=profile,
        progress=progress,
        recover=args.recover,
    )
    print(report.render())
    code = _report_observability(args, telemetry, profile, progress)
    if code:
        return code
    if args.json:
        try:
            report.write_json(args.json)
        except OSError as exc:
            print(f"cannot write chaos report: {exc}", file=sys.stderr)
            return 2
        print(f"wrote chaos report to {args.json}")
    if ledger is not None:
        print(f"appended completed runs to {ledger.path}")
    return 0 if report.ok else 1


def _cmd_survive(args: argparse.Namespace) -> int:
    from .analysis.survive import run_survive

    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms else None
    )
    if args.rank < 0 or args.at_round < 0:
        print(f"--rank and --round must be >= 0, got {args.rank} and "
              f"{args.at_round}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    report = run_survive(
        algorithms=algorithms,
        seed=args.seed,
        failure=(args.rank, args.at_round),
        strategy=args.strategy,
        backend=args.backend,
        workers=args.workers,
    )
    print(report.render())
    if args.json:
        try:
            report.write_json(args.json)
        except OSError as exc:
            print(f"cannot write survivability report: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote survivability report to {args.json}")
    return 0 if report.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweep import sweep
    from .analysis.tables import format_table
    from .obs.ledger import Ledger

    try:
        shapes = _parse_shapes(args.shapes)
        procs = _parse_ints(args.procs)
    except ValueError as exc:
        print(f"bad sweep grid: {exc}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms else None
    )
    ledger = Ledger(args.ledger) if args.ledger else None
    telemetry, profile, progress = _build_observability(
        args, "sweep", total=len(shapes)
    )
    records = sweep(
        shapes, procs,
        algorithms=algorithms,
        seed=args.seed,
        backend=args.backend,
        engine=args.engine,
        workers=args.workers,
        ledger=ledger,
        label=args.label,
        telemetry=telemetry,
        profile=profile,
        progress=progress,
        semiring=args.semiring,
    )
    headers = ["algorithm", "config", "shape", "P", "words", "rounds",
               "attainment", "correct", "wall"]
    rows = [
        [r.algorithm, r.config,
         "x".join(str(d) for d in r.shape.dims), str(r.P),
         f"{r.words:g}", str(r.rounds), f"{r.gap_ratio:.6f}",
         "-" if r.correct is None else str(r.correct),
         f"{r.wall_clock:.4f}s"]
        for r in records
    ]
    print(format_table(headers, rows))
    print(f"{len(records)} records over {len(shapes)} shape(s) x "
          f"{len(procs)} processor count(s)")
    if ledger is not None:
        print(f"appended {len(records)} records to {ledger.path}")
    return _report_observability(args, telemetry, profile, progress)


def _cmd_apsp(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .exceptions import ShapeError
    from .workloads.apsp import random_digraph, run_apsp

    try:
        W = random_digraph(args.n, seed=args.seed, density=args.density)
        result = run_apsp(
            W, args.procs,
            algorithm=args.algorithm,
            verify=not args.no_verify,
        )
    except ShapeError as exc:
        print(f"bad apsp problem: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"unknown algorithm: {exc}", file=sys.stderr)
        return 2

    print(f"APSP n = {result.n}, P = {result.P}, "
          f"algorithm {result.algorithm}, semiring {result.semiring}, "
          f"{len(result.squarings)} squaring(s)")
    headers = ["step", "hops<=", "config", "words", "rounds", "bound",
               "ratio", "changed"]
    rows = [
        [str(rec.step), str(rec.hop_limit), rec.config,
         f"{rec.cost.words:g}", str(rec.cost.rounds),
         f"{rec.attainment.bound:g}", f"{rec.attainment.ratio:.6f}",
         str(rec.changed_entries)]
        for rec in result.squarings
    ]
    print(format_table(headers, rows))
    total = result.total_cost
    print(f"total: words {total.words:g}, rounds {total.rounds}, "
          f"flops {total.flops:g} (semiring multiply-add pairs)")
    print(f"worst per-squaring attainment ratio: "
          f"{result.worst_attainment_ratio:.6f}")
    if result.correct is None:
        print("verification: skipped")
        return 0
    print(f"verification ({result.reference_engine}): "
          f"correct={result.correct}, max |err| = {result.max_abs_error:.3g}")
    return 0 if result.correct else 1


def _cmd_large_p(args: argparse.Namespace) -> int:
    from .analysis.large_p import run_large_p_sweep
    from .exceptions import BoundViolationError
    from .obs.ledger import Ledger

    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    ledger = Ledger(args.ledger) if args.ledger else None
    telemetry, profile, progress = _build_observability(
        args, "large-p", total=3
    )
    try:
        results = run_large_p_sweep(
            tight_tol=args.tight_tol,
            ledger=ledger,
            label=args.label,
            workers=args.workers,
            telemetry=telemetry,
            profile=profile,
            progress=progress,
        )
    except BoundViolationError as exc:
        print(f"large-P sweep failed: {exc}", file=sys.stderr)
        return 1
    print("case  shape                 P       grid              "
          "constant  words/bound   wall")
    for r in results:
        shape = "x".join(str(d) for d in r.point.shape.dims)
        print(f"{r.point.case:<5} {shape:<21} {r.point.P:<7} "
              f"{r.record.config:<17} {r.constant:<9g} {r.ratio:<13.9f} "
              f"{r.wall_clock:6.1f}s")
    if ledger is not None:
        print(f"appended {len(results)} records to {ledger.path}")
    return _report_observability(args, telemetry, profile, progress)


def _cmd_plan(args: argparse.Namespace) -> int:
    import json
    import time

    from .analysis.plan import (
        PlanCache,
        case_atlas,
        plan_batch,
        query_fingerprint,
    )
    from .core import ProblemShape
    from .exceptions import ShapeError
    from .obs.ledger import (
        Ledger,
        RunRecord,
        environment_fingerprint,
        git_revision,
    )

    try:
        procs = _parse_ints(args.procs)
    except ValueError as exc:
        print(f"bad --procs: {exc}", file=sys.stderr)
        return 2
    shape = ProblemShape(args.n1, args.n2, args.n3)
    cache = PlanCache()
    hits = [
        query_fingerprint(shape, P, args.memory) in cache for P in procs
    ]
    start = time.perf_counter()
    try:
        results = plan_batch(
            [shape] * len(procs), procs,
            memory=[args.memory] * len(procs), cache=cache,
        )
    except ShapeError as exc:
        print(f"plan failed: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start

    canonical = results[0].shape
    print(f"problem {shape} (canonical {canonical}), "
          f"{len(procs)} quer{'y' if len(procs) == 1 else 'ies'} "
          f"in {elapsed:.3f}s")
    print("P        regime  adm  best        config                "
          "words        attainment  binding")
    for r in results:
        if r.best is None:
            print(f"{r.P:<8} {str(r.regime):<7} {len(r.candidates):<4} "
                  f"(no admissible algorithm)")
            continue
        binding = "-" if r.crossover is None else r.crossover.binding
        print(f"{r.P:<8} {str(r.regime):<7} {len(r.candidates):<4} "
              f"{r.best.algorithm:<11} {r.best.config:<21} "
              f"{r.best.words:<12g} {r.best.attainment:<11.6g} {binding}")
        if args.candidates:
            for c in r.candidates[1:]:
                print(f"{'':21}  also: {c.algorithm:<11} {c.config:<21} "
                      f"{c.words:<12g} {c.attainment:.6g}")

    if args.json:
        payload = json.dumps(
            {"queries": [r.to_dict() for r in results]},
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {len(results)} answers to {args.json}")
    if args.atlas:
        atlas = case_atlas(args.atlas_limit, cache=cache)
        with open(args.atlas, "w") as fh:
            json.dump(atlas, fh, indent=2)
            fh.write("\n")
        print(f"wrote case-1/2/3 atlas (P up to {args.atlas_limit:g}) "
              f"to {args.atlas}")
    if args.ledger:
        ledger = Ledger(args.ledger)
        appended = 0
        for r, hit in zip(results, hits):
            if r.best is None:
                continue
            ledger.append(RunRecord(
                algorithm=r.best.algorithm,
                config=r.best.config,
                shape=tuple(r.shape.dims),
                P=r.P,
                words=r.best.words,
                rounds=r.best.rounds,
                flops=r.best.flops,
                bound=r.best.bound,
                attainment=r.best.attainment,
                wall_clock=elapsed / len(results),
                label=args.label,
                kind="plan",
                backend="oracle",
                timestamp=time.time(),
                git_sha=git_revision(),
                env=environment_fingerprint(),
                plan={
                    "fingerprint": r.fingerprint,
                    "M": r.M,
                    "candidates": len(r.candidates),
                    "binding": (
                        None if r.crossover is None
                        else r.crossover.binding
                    ),
                    "cache_hit": hit,
                },
            ))
            appended += 1
        print(f"appended {appended} planner records to {ledger.path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile DRIVER``: profiled run of a representative workload."""
    from .obs.profile import ProfileCollector, write_collapsed
    from .obs.telemetry import Telemetry

    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    profile = ProfileCollector()
    telemetry = Telemetry(args.driver)
    if args.driver == "sweep":
        from .analysis.sweep import sweep

        sweep(
            _parse_shapes(DEFAULT_SWEEP_SHAPES),
            _parse_ints(DEFAULT_SWEEP_PROCS),
            workers=args.workers, telemetry=telemetry, profile=profile,
        )
    elif args.driver == "chaos":
        from .analysis.chaos import run_chaos

        run_chaos(
            seeds=(0, 1), workers=args.workers,
            telemetry=telemetry, profile=profile,
        )
    elif args.driver == "large-p":
        from .analysis.large_p import run_large_p_sweep

        run_large_p_sweep(
            workers=args.workers, telemetry=telemetry, profile=profile
        )
    else:  # bench: the sweep-grid slice, no BENCH file or ledger writes
        from .obs.bench import run_bench_suite

        run_bench_suite(
            "profile", filter="sweep:", ledger=None,
            workers=args.workers, telemetry=telemetry, profile=profile,
        )
    print(telemetry.render())
    print(profile.render(top=args.top))
    if args.collapsed:
        try:
            n = write_collapsed(profile.stats(), args.collapsed)
        except OSError as exc:
            print(f"cannot write collapsed stacks: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {n} collapsed stacks to {args.collapsed}")
    return 0


def _default_ledger_path() -> str:
    import os

    from .obs.bench import repo_root

    return os.path.join(repo_root(), "repro_ledger.jsonl")


def _ledger_records(path):
    """Load ledger records for the CLI; returns (records, error_message)."""
    from .exceptions import LedgerError
    from .obs.ledger import Ledger

    try:
        return Ledger(path).records(), None
    except LedgerError as exc:
        return None, str(exc)


def _format_ledger_row(index: int, rec) -> List[str]:
    import datetime

    when = (
        datetime.datetime.fromtimestamp(rec.timestamp).strftime("%Y-%m-%d %H:%M")
        if rec.timestamp
        else "-"
    )
    shape = "x".join(str(d) for d in rec.shape)
    return [
        str(index), when, rec.label or "-", rec.kind, rec.algorithm,
        shape, str(rec.P), f"{rec.words:g}", f"{rec.attainment:.6f}",
        f"{rec.wall_clock:.4f}s",
        (rec.git_sha or "")[:10] or "-",
    ]


def _cmd_ledger(args: argparse.Namespace) -> int:
    """Ledger subcommands: list / show / diff.

    Exit-code contract (pinned by ``tests/test_cli.py``):

    * **0** — the requested read or comparison completed.  For ``diff``
      this includes records that differ and the one-sided fault-injection
      warning path (the warning goes to stderr; finding differences *is*
      the success case for a diff).
    * **2** — usage errors: unreadable or missing ledger file,
      out-of-range record index, or ``diff`` across different execution
      backends without ``--allow-mixed``.
    * ``diff`` never exits 1; there is no "failure" verdict distinct from
      usage error for a field-by-field comparison.
    """
    path = args.path or _default_ledger_path()
    records, error = _ledger_records(path)
    if error is not None:
        print(f"cannot read ledger: {error}", file=sys.stderr)
        return 2

    if args.ledger_command == "trajectory":
        return _cmd_ledger_trajectory(args, path, records)

    if args.ledger_command == "list":
        if args.algorithm is not None:
            matching = [
                (i, r) for i, r in enumerate(records)
                if r.algorithm == args.algorithm
            ]
        else:
            matching = list(enumerate(records))
        if args.label is not None:
            matching = [(i, r) for i, r in matching if r.label == args.label]
        if args.limit is not None:
            matching = matching[-args.limit:]
        if not matching:
            print(f"no matching records in {path}")
            return 0
        headers = ["#", "when", "label", "kind", "algorithm", "shape", "P",
                   "words", "attainment", "wall", "git"]
        rows = [_format_ledger_row(i, r) for i, r in matching]
        widths = [max(len(headers[c]), *(len(row[c]) for row in rows))
                  for c in range(len(headers))]
        print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        print("-+-".join("-" * w for w in widths))
        for row in rows:
            print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return 0

    def fetch(index: int):
        try:
            return records[index]
        except IndexError:
            print(f"no record {index} in {path} ({len(records)} records)",
                  file=sys.stderr)
            return None

    if args.ledger_command == "show":
        rec = fetch(args.index)
        if rec is None:
            return 2
        import json

        print(json.dumps(rec.to_dict(), indent=2))
        return 0

    # diff
    rec_a, rec_b = fetch(args.index_a), fetch(args.index_b)
    if rec_a is None or rec_b is None:
        return 2
    if rec_a.backend != rec_b.backend and not args.allow_mixed:
        print(
            f"refusing to diff records from different backends "
            f"({rec_a.backend!r} vs {rec_b.backend!r}): wall-clock and "
            f"numerical verification are not comparable across backends. "
            f"Model costs are identical by construction — pass "
            f"--allow-mixed to compare them anyway.",
            file=sys.stderr,
        )
        return 2
    if rec_a.semiring != rec_b.semiring and not args.allow_mixed:
        print(
            f"refusing to diff records from different semirings "
            f"({rec_a.semiring!r} vs {rec_b.semiring!r}): the products are "
            f"different mathematical objects. Model costs are "
            f"semiring-independent by construction — pass --allow-mixed "
            f"to compare them anyway.",
            file=sys.stderr,
        )
        return 2
    if rec_a.fault_injected != rec_b.fault_injected and not args.allow_faulty:
        faulty = args.index_a if rec_a.fault_injected else args.index_b
        print(
            f"warning: record {faulty} measured a fault-injected execution "
            f"(recovery resends are charged to its model costs), the other "
            f"record did not — cost differences below are expected. "
            f"Pass --allow-faulty to silence this warning.",
            file=sys.stderr,
        )
    print(f"ledger diff: record {args.index_a} vs record {args.index_b}")
    fields = ["label", "kind", "algorithm", "config", "shape", "P",
              "backend", "semiring", "words", "rounds", "flops", "bound",
              "attainment", "wall_clock", "git_sha"]
    identical = True
    for field in fields:
        a, b = getattr(rec_a, field), getattr(rec_b, field)
        if a != b:
            identical = False
            print(f"  {field}: {a} -> {b}")
    skew_a = None if rec_a.skew is None else rec_a.skew.ratio
    skew_b = None if rec_b.skew is None else rec_b.skew.ratio
    if skew_a != skew_b:
        identical = False
        print(f"  skew ratio: {skew_a} -> {skew_b}")
    if identical:
        print("  (records agree on every compared field)")
    return 0


def _cmd_ledger_trajectory(args: argparse.Namespace, path, records) -> int:
    """``repro ledger trajectory METRIC``: per-series time-ordered table.

    Exits 0 even when nothing matches (an empty history is a valid,
    empty trajectory — same contract as ``ledger list``).
    """
    import datetime

    from .obs.analytics import TrajectoryStore

    store = TrajectoryStore(include_faulty=args.include_faulty)
    skipped = 0
    for rec in records:
        skipped += not store.add_record(rec)

    keys = [
        k for k in store.keys()
        if (args.algorithm is None or k.algorithm == args.algorithm)
        and (args.case is None or k.case == args.case)
    ]
    shown = 0
    for key in keys:
        points = store.series(key, args.metric)
        if not points:
            continue
        shown += 1
        print(f"{key.label()}  ({len(points)} sample(s))")
        for p in points:
            when = (
                datetime.datetime.fromtimestamp(p.timestamp)
                .strftime("%Y-%m-%d %H:%M:%S")
                if p.timestamp else "-"
            )
            print(f"  {when}  {p.value:<14g} [{p.stream}]"
                  + (f" label={p.label}" if p.label else ""))
    if not shown:
        print(f"no {args.metric} samples in {path}")
    if skipped:
        print(f"(skipped {skipped} fault-injected record(s); "
              f"--include-faulty to include them)", file=sys.stderr)
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    """``repro trend``: rolling-median verdicts over ledger + BENCH files.

    Exit-code contract (pinned by ``tests/test_cli.py``):

    * **0** — analysis ran; without ``--check`` always, with ``--check``
      when no trajectory regressed (``--advisory`` restores 0 even on
      regression, for informational CI steps).
    * **1** — ``--check`` and at least one trajectory regressed.
    * **2** — usage errors: malformed ledger or BENCH file, bad window.
    """
    import os

    from .exceptions import BaselineError, LedgerError
    from .obs.analytics import (
        DEFAULT_WINDOW, TrajectoryStore, analyze, discover_bench_files,
    )

    window = DEFAULT_WINDOW if args.window is None else args.window
    if window < 1:
        print(f"--window must be >= 1, got {window}", file=sys.stderr)
        return 2
    ledger_path = args.ledger or _default_ledger_path()
    if args.no_bench:
        bench_paths = []
    elif args.bench is not None:
        missing = [p for p in args.bench if not os.path.exists(p)]
        if missing:
            print(f"no such BENCH file: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        bench_paths = args.bench
    else:
        bench_paths = discover_bench_files()
    try:
        store = TrajectoryStore.collect(
            ledger_path=ledger_path if os.path.exists(ledger_path) else None,
            bench_paths=bench_paths,
            include_faulty=args.include_faulty,
        )
    except (LedgerError, BaselineError) as exc:
        print(f"cannot read artifacts: {exc}", file=sys.stderr)
        return 2
    tolerances = (
        None if args.tolerance is None else {"wall_clock": args.tolerance}
    )
    report = analyze(
        store,
        metrics=tuple(args.metric) if args.metric else TREND_METRICS,
        window=window,
        tolerances=tolerances,
        algorithm=args.algorithm,
        case=args.case,
    )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(verbose=args.all))
    if args.check and not report.ok:
        if args.advisory:
            print("trend: regression detected (advisory mode, exiting 0)",
                  file=sys.stderr)
            return 0
        return 1
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    """``repro dashboard``: write the single-file HTML dashboard.

    Exits 0 on a written dashboard (even from partial artifacts — every
    missing input degrades to an explicit empty panel), 2 on malformed
    inputs.
    """
    import os

    from .exceptions import BaselineError, LedgerError
    from .obs.analytics import DEFAULT_WINDOW, discover_bench_files
    from .obs.bench import repo_root
    from .obs.dashboard import (
        DEFAULT_DASHBOARD, collect_payload, write_dashboard,
    )

    root = repo_root()
    out = args.out or os.path.join(root, DEFAULT_DASHBOARD)
    ledger_path = args.ledger or _default_ledger_path()
    if args.no_bench:
        bench_paths = []
    elif args.bench is not None:
        bench_paths = args.bench
    else:
        bench_paths = discover_bench_files()
    telemetry = args.telemetry or os.path.join(
        root, "artifacts", "telemetry_sweep.jsonl")
    profile = args.profile or os.path.join(
        root, "artifacts", "hotspots_sweep.folded")
    try:
        payload = collect_payload(
            ledger_path=ledger_path,
            bench_paths=bench_paths,
            telemetry_path=telemetry,
            profile_path=profile,
            window=DEFAULT_WINDOW if args.window is None else args.window,
            include_faulty=args.include_faulty,
            top=args.top,
        )
    except (LedgerError, BaselineError, ValueError) as exc:
        print(f"cannot read artifacts: {exc}", file=sys.stderr)
        return 2
    path = write_dashboard(out, payload)
    meta = payload["meta"]
    print(f"wrote {path} ({meta['points']} samples from "
          f"{len(meta['sources'])} artifact(s))")
    return 0


def _cmd_artifact(name: str) -> int:
    import importlib
    import os
    import sys as _sys

    bench_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "benchmarks")
    module_map = {
        "table1": "bench_table1",
        "fig1": "bench_fig1",
        "fig2": "bench_fig2",
        "lemma2": "bench_lemma2_cases",
        "crossover": "bench_memory_crossover",
    }
    if os.path.isdir(bench_dir) and bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    try:
        module = importlib.import_module(module_map[name])
    except ImportError:
        print(
            f"artifact modules live in the repository's benchmarks/ directory, "
            f"which was not found near {bench_dir!r}; run from a source checkout",
            file=sys.stderr,
        )
        return 2
    module.main()
    return 0


def _cmd_report() -> int:
    from .analysis import reproduction_report

    report = reproduction_report()
    print(report.text)
    return 0 if report.all_passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "grid":
        return _cmd_grid(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "apsp":
        return _cmd_apsp(args)
    if args.command == "large-p":
        return _cmd_large_p(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "survive":
        return _cmd_survive(args)
    if args.command == "ledger":
        return _cmd_ledger(args)
    if args.command == "trend":
        return _cmd_trend(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "report":
        return _cmd_report()
    return _cmd_artifact(args.command)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
