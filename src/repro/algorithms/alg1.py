"""Algorithm 1: the communication-optimal parallel matrix multiplication.

The paper's Algorithm 1 on a ``p1 x p2 x p3`` grid, for each processor
``(p1', p2', p3')``:

1. ``A_{p1' p2'} = All-Gather(A_shard, fiber (p1', p2', :))``
2. ``B_{p2' p3'} = All-Gather(B_shard, fiber (:, p2', p3'))``
3. ``D = A_{p1' p2'} @ B_{p2' p3'}``              (local compute)
4. ``C_shard = Reduce-Scatter(D, fiber (p1', :, p3'))``

With the Section 5.2 grid the measured communication equals the Theorem 3
lower bound exactly, proving the constants tight; our simulator reproduces
that equality to the word (see ``benchmarks/bench_alg1_optimality.py``).

The implementation runs every fiber's collective simultaneously (merged
network rounds), uses bandwidth-optimal All-Gather/Reduce-Scatter
algorithms, and performs the real numerical multiplication so the output is
checked against ``A @ B``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..collectives.communicator import (
    parallel_allgather,
    parallel_alltoall,
    parallel_reduce_scatter,
)
from ..core.shapes import ProblemShape
from ..machine.backend import SymbolicBlock, as_block, backend_for
from ..machine.cost import Cost, CostModel
from ..machine.machine import Machine
from ..machine.semiring import Semiring, resolve_semiring
from ..obs.attainment import Attainment, record_attainment
from .cost_models import Alg1CostBreakdown, alg1_cost_terms
from .distributions import (
    assemble_c,
    block_bounds,
    distribute_inputs,
    shard_bounds,
)
from .grid import ProcessorGrid

__all__ = ["Alg1Result", "run_alg1"]


@dataclasses.dataclass
class Alg1Result:
    """Everything measured from one Algorithm 1 execution.

    Attributes
    ----------
    C:
        The assembled product, numerically equal to ``A @ B`` under the
        data backend (a shape-only descriptor under the symbolic one).
    shape, grid:
        Problem and grid actually run.
    cost:
        Measured critical-path cost (rounds, words, flops).
    predicted:
        The closed-form expression (3) breakdown for comparison.
    phase_words:
        Measured critical-path words of each phase
        (``allgather_a``, ``allgather_b``, ``reduce_scatter_c``).
    peak_memory:
        Largest per-processor peak store footprint (words), for the
        Section 6.2 memory analysis.
    machine:
        The machine the run used (with full span trace, metrics registry
        and counters).
    attainment:
        Bound-attainment gauges for this run: measured words over the
        Theorem 3 bound (and over the memory-dependent bound when the
        machine has a memory limit).  Also published to
        ``machine.metrics`` as ``attainment_ratio`` gauges.
    """

    C: np.ndarray
    shape: ProblemShape
    grid: ProcessorGrid
    cost: Cost
    predicted: Alg1CostBreakdown
    phase_words: Dict[str, float]
    peak_memory: int
    machine: Machine
    attainment: Attainment


def run_alg1(
    A: np.ndarray,
    B: np.ndarray,
    grid: ProcessorGrid,
    machine: Optional[Machine] = None,
    collective_algorithm: str = "auto",
    cost_model: Optional[CostModel] = None,
    keep_blocks: bool = False,
    final_phase: str = "reduce_scatter",
    semiring: Optional[Semiring] = None,
) -> Alg1Result:
    """Run Algorithm 1 on the simulated machine.

    Parameters
    ----------
    A, B:
        Global operands (``n1 x n2`` and ``n2 x n3``).
    grid:
        The ``p1 x p2 x p3`` logical grid; ``grid.size`` processors are used.
        Any grid with ``p_i <= n_i`` runs (ragged blocks are supported);
        the cost matches expression (3) exactly when each ``p_i`` divides
        ``n_i``.
    machine:
        Reuse an existing machine (counters are reset); a fresh one is
        created by default.
    collective_algorithm:
        Forwarded to the All-Gather / Reduce-Scatter dispatchers
        (``"auto"``, ``"ring"``, ``"recursive_doubling"`` /
        ``"recursive_halving"``, or ``"bruck"`` — logarithmic-latency
        All-Gather for *any* fiber length, with the Reduce-Scatter falling
        back to its ``"auto"`` choice since no Bruck dual exists).  The
        ``"bruck"`` option is what makes non-power-of-two fibers feasible
        at very large ``P`` under the symbolic backend.
    keep_blocks:
        Keep the gathered ``A``/``B`` blocks in the stores after the local
        multiply instead of freeing them (affects only peak-memory
        reporting semantics; peak already includes them either way).
    final_phase:
        ``"reduce_scatter"`` (the paper's Algorithm 1, default) or
        ``"alltoall"`` — the original Agarwal et al. (1995) formulation,
        which exchanges the partial blocks with an All-to-All and sums
        locally.  Identical bandwidth, but ``p2 - 1`` rounds instead of
        the Reduce-Scatter's ``log2 p2`` — exactly the difference the
        paper points out in Section 5.1.
    semiring:
        Scalar semiring for the local products and the reduction
        (name, :class:`~repro.machine.semiring.Semiring`, or ``None`` =
        ``plus_times``).  Costs are identical for every semiring — all
        charges are shape-derived.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((8, 6)), rng.random((6, 4))
    >>> res = run_alg1(A, B, ProcessorGrid(2, 3, 2))
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    if machine is None:
        machine = Machine(grid.size, cost_model=cost_model, backend=backend_for(A, B))
    else:
        machine.reset()

    shape = distribute_inputs(machine, grid, A, B)
    n1, n2, n3 = shape.dims
    p1, p2, p3 = grid.dims
    phase_words: Dict[str, float] = {}

    # ---- Line 3: All-Gather A blocks along p3-fibers ------------------- #
    ag_alg = collective_algorithm
    with machine.span("allgather-A", kind="collective") as span_a:
        if p3 > 1:
            chunks = {r: machine.proc(r).store["A_shard"] for r in range(grid.size)}
            gathered = parallel_allgather(
                machine, grid.fibers(3), chunks, algorithm=ag_alg, label="A blocks"
            )
        else:
            gathered = {r: [machine.proc(r).store["A_shard"]] for r in range(grid.size)}
        for rank in range(grid.size):
            c1, c2, _ = grid.coord(rank)
            r0, r1 = block_bounds(n1, p1, c1)
            c0, c1b = block_bounds(n2, p2, c2)
            flat = np.concatenate([as_block(ch).reshape(-1) for ch in gathered[rank]])
            machine.proc(rank).store["A_block"] = flat.reshape(r1 - r0, c1b - c0)
    phase_words["allgather_a"] = span_a.cost.words

    # ---- Line 4: All-Gather B blocks along p1-fibers ------------------- #
    with machine.span("allgather-B", kind="collective") as span_b:
        if p1 > 1:
            chunks = {r: machine.proc(r).store["B_shard"] for r in range(grid.size)}
            gathered = parallel_allgather(
                machine, grid.fibers(1), chunks, algorithm=ag_alg, label="B blocks"
            )
        else:
            gathered = {r: [machine.proc(r).store["B_shard"]] for r in range(grid.size)}
        for rank in range(grid.size):
            _, c2, c3 = grid.coord(rank)
            r0, r1 = block_bounds(n2, p2, c2)
            c0, c1b = block_bounds(n3, p3, c3)
            flat = np.concatenate([as_block(ch).reshape(-1) for ch in gathered[rank]])
            machine.proc(rank).store["B_block"] = flat.reshape(r1 - r0, c1b - c0)
    phase_words["allgather_b"] = span_b.cost.words

    # ---- Line 6: local computation D = A_block @ B_block --------------- #
    with machine.trace.measure("local GEMM D = A_block @ B_block", "compute"):
        for rank in range(grid.size):
            store = machine.proc(rank).store
            a_blk = store["A_block"]
            b_blk = store["B_block"]
            d = sr.matmul(a_blk, b_blk)
            store["D"] = d
            # The paper counts semiring multiply-add pairs: (n1/p1)(n2/p2)(n3/p3).
            machine.compute(rank, float(a_blk.shape[0] * a_blk.shape[1] * b_blk.shape[1]))
            if not keep_blocks:
                store.free("A_block")
                store.free("B_block")

    # ---- Line 8: Reduce-Scatter D along p2-fibers ---------------------- #
    # The gather-phase algorithm names map onto their reduce-phase duals;
    # Bruck has no Reduce-Scatter dual, so it falls back to "auto".
    rs_alg = {"recursive_doubling": "recursive_halving", "bruck": "auto"}.get(
        collective_algorithm, collective_algorithm
    )
    with machine.span("reduce-scatter-C", kind="collective") as span_c:
        if p2 > 1:
            blocks = {}
            bounds_cache = {}
            shard_cache = {}
            for rank in range(grid.size):
                d_flat = machine.proc(rank).store["D"].reshape(-1)
                bounds = bounds_cache.get(d_flat.size)
                if bounds is None:
                    bounds = [shard_bounds(d_flat.size, p2, j) for j in range(p2)]
                    bounds_cache[d_flat.size] = bounds
                if type(d_flat) is SymbolicBlock:
                    # Symbolic blocks are immutable value objects: every
                    # rank with the same flat size shards into the same
                    # descriptors, so slice once per size, not per rank.
                    shards = shard_cache.get(d_flat.size)
                    if shards is None:
                        shards = [d_flat[lo:hi] for lo, hi in bounds]
                        shard_cache[d_flat.size] = shards
                    blocks[rank] = list(shards)
                else:
                    blocks[rank] = [d_flat[lo:hi] for lo, hi in bounds]
            if final_phase == "reduce_scatter":
                reduced = parallel_reduce_scatter(
                    machine, grid.fibers(2), blocks, algorithm=rs_alg, label="C blocks",
                    op=sr.reduce_op,
                )
            elif final_phase == "alltoall":
                exchanged = parallel_alltoall(
                    machine, grid.fibers(2), blocks, label="C blocks (all-to-all)",
                )
                reduced = {}
                for rank in range(grid.size):
                    partials = exchanged[rank]
                    total = as_block(partials[0], dtype=float)
                    for part in partials[1:]:
                        total = sr.add(total, as_block(part, dtype=float))
                    # Local reduction of p2 partials, charged as flops.
                    machine.compute(rank, float(total.size * (len(partials) - 1)))
                    reduced[rank] = total
            else:
                raise ValueError(
                    f"final_phase must be 'reduce_scatter' or 'alltoall', got "
                    f"{final_phase!r}"
                )
        else:
            reduced = {
                r: machine.proc(r).store["D"].reshape(-1).copy() for r in range(grid.size)
            }
        for rank in range(grid.size):
            store = machine.proc(rank).store
            store["C_shard"] = as_block(reduced[rank]).reshape(-1)
            store.free("D")
    phase_words["reduce_scatter_c"] = span_c.cost.words

    C = assemble_c(machine, shape, grid)
    return Alg1Result(
        C=C,
        shape=shape,
        grid=grid,
        cost=machine.cost,
        predicted=alg1_cost_terms(shape, grid),
        phase_words=phase_words,
        peak_memory=machine.peak_memory_words(),
        machine=machine,
        attainment=record_attainment(
            machine, shape, P=grid.size, algorithm="alg1"
        ),
    )
