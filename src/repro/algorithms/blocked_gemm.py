"""Sequential GEMM in the two-level I/O model: naive vs. blocked.

Companion to :mod:`repro.machine.sequential`, exercising the
memory-*dependent* bound ``2 n1 n2 n3 / sqrt(M)`` (Smith et al. 2019;
Kwasniewski et al. 2019 — the constant-2 row of Section 2.1):

``run_naive_gemm``
    The textbook triple loop processed one ``C`` row at a time: for each of
    the ``n1`` rows it loads the ``A`` row once but streams the *entire*
    ``B`` (when ``B`` does not fit), paying ``~n1 n2 n3 / b`` words for
    small row-block height ``b`` — far off the bound for large problems.

``run_blocked_gemm``
    Classic square tiling with tile side ``b``: loads an ``A`` tile and a
    ``B`` tile per inner step and keeps a ``C`` tile resident, paying
    ``2 n1 n2 n3 / b + lower order`` words.  With the largest feasible tile
    ``b ~ sqrt(M/3)`` this is ``2 sqrt(3) mnk / sqrt(M) ~ 3.46 mnk/sqrt(M)``
    — within a constant of the lower bound (the truly optimal schedule
    keeps a ``sqrt(M) x sqrt(M)`` C tile and streams A and B in thin
    panels; ``run_optimal_gemm`` implements it and achieves
    ``2 mnk / sqrt(M)`` to leading order, matching the tight constant).

All three produce numerically exact products and report exact word
traffic, letting the tests pin the constants.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..core.shapes import ProblemShape
from ..exceptions import ShapeError
from ..machine.backend import as_block, backend_for, empty_block, is_symbolic
from ..machine.semiring import Semiring, resolve_semiring
from ..machine.sequential import FastMemory, IOStats

__all__ = [
    "SequentialGemmResult",
    "run_naive_gemm",
    "run_blocked_gemm",
    "run_optimal_gemm",
    "sequential_lower_bound",
]


@dataclasses.dataclass
class SequentialGemmResult:
    """Output of a sequential two-level GEMM run."""

    C: np.ndarray
    shape: ProblemShape
    M: float
    io: IOStats
    peak_words: int

    @property
    def total_io(self) -> float:
        return self.io.total


def sequential_lower_bound(shape: ProblemShape, M: float) -> float:
    """The tight sequential I/O lower bound ``2 n1 n2 n3 / sqrt(M)``.

    (Leading term; Smith et al. 2019 prove the constant 2 and its
    attainability.)
    """
    if M <= 0:
        raise ShapeError(f"fast memory M must be positive, got {M}")
    return 2.0 * shape.volume / math.sqrt(M)


def _init_accumulator(fm: FastMemory, name: str, sr: Semiring) -> None:
    """Fill a freshly allocated tile with the semiring's additive identity.

    ``FastMemory.alloc`` zero-fills; only a non-zero identity (``min_plus``'s
    ``+inf``) needs a rewrite.  Symbolic tiles are shape-only and skip it.
    """
    tile = fm.get(name)
    if sr.zero != 0.0 and not is_symbolic(tile):
        tile[:] = sr.zero


def run_naive_gemm(
    A: np.ndarray, B: np.ndarray, M: float, semiring: Optional[Semiring] = None,
) -> SequentialGemmResult:
    """Row-at-a-time GEMM: streams all of ``B`` for every row block of ``A``.

    Row-block height is chosen as large as fits alongside one column of B
    working set; the point is the *shape* of its cost (proportional to
    ``n1 n2 n3 / block``), not cleverness.
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    fm = FastMemory(M, backend=backend_for(A, B))

    # Choose a row-block height h and a B column-panel width w such that
    # h*n2 (A rows) + n2*w (B panel) + h*w (C block) <= M.
    w = max(1, min(n3, int(M // (4 * n2))))
    h = max(1, min(n1, int((M - n2 * w) // (n2 + w))))
    if h < 1 or n2 * w + h * n2 + h * w > M:
        raise ShapeError(
            f"M={M} too small for even one row/column of the {shape} problem"
        )

    C = empty_block((n1, n3), like=A)
    for i0 in range(0, n1, h):
        i1 = min(i0 + h, n1)
        fm.load("A_rows", A[i0:i1, :])
        for j0 in range(0, n3, w):
            j1 = min(j0 + w, n3)
            fm.load("B_panel", B[:, j0:j1])
            fm.alloc("C_block", (i1 - i0, j1 - j0))
            fm.get("C_block")[:] = sr.matmul(fm.get("A_rows"), fm.get("B_panel"))
            C[i0:i1, j0:j1] = fm.store("C_block")
            fm.evict("B_panel")
        fm.evict("A_rows")

    return SequentialGemmResult(C=C, shape=shape, M=M, io=fm.stats,
                                peak_words=fm.peak_words)


def run_blocked_gemm(
    A: np.ndarray,
    B: np.ndarray,
    M: float,
    tile: Optional[int] = None,
    semiring: Optional[Semiring] = None,
) -> SequentialGemmResult:
    """Square-tiled GEMM with tile side ``tile`` (default ``sqrt(M/3)``)."""
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if tile is None:
        tile = max(1, int(math.isqrt(int(M // 3))))
    if 3 * tile * tile > M:
        raise ShapeError(f"tile {tile} needs 3*{tile}^2 = {3*tile*tile} > M = {M}")
    fm = FastMemory(M, backend=backend_for(A, B))

    C = empty_block((n1, n3), like=A)
    for i0 in range(0, n1, tile):
        i1 = min(i0 + tile, n1)
        for j0 in range(0, n3, tile):
            j1 = min(j0 + tile, n3)
            fm.alloc("C_tile", (i1 - i0, j1 - j0))
            _init_accumulator(fm, "C_tile", sr)
            for k0 in range(0, n2, tile):
                k1 = min(k0 + tile, n2)
                fm.load("A_tile", A[i0:i1, k0:k1])
                fm.load("B_tile", B[k0:k1, j0:j1])
                fm.get("C_tile")[:] = sr.add(
                    fm.get("C_tile"), sr.matmul(fm.get("A_tile"), fm.get("B_tile"))
                )
                fm.evict("A_tile")
                fm.evict("B_tile")
            C[i0:i1, j0:j1] = fm.store("C_tile")

    return SequentialGemmResult(C=C, shape=shape, M=M, io=fm.stats,
                                peak_words=fm.peak_words)


def run_optimal_gemm(
    A: np.ndarray,
    B: np.ndarray,
    M: float,
    panel: int = 1,
    semiring: Optional[Semiring] = None,
) -> SequentialGemmResult:
    """The I/O-optimal schedule: resident ``C`` tile, streamed A/B panels.

    Keeps a ``b x b`` tile of ``C`` resident with ``b`` close to
    ``sqrt(M)``, streaming ``b x panel`` slivers of ``A`` and ``panel x b``
    slivers of ``B`` through the remaining space.  Traffic:
    ``2 n1 n2 n3 / b + n1 n3`` plus lower-order terms — the constant-2
    bound attained (up to the choice of ``b`` vs ``sqrt(M)``).
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    # b^2 (C tile) + 2*b*panel (slivers) <= M.
    b = int((math.isqrt(int(panel * panel + M)) - panel))
    b = max(1, min(b, n1, n3))
    if b * b + 2 * b * panel > M:
        raise ShapeError(f"M={M} too small for a C tile with panel={panel}")
    fm = FastMemory(M, backend=backend_for(A, B))

    C = empty_block((n1, n3), like=A)
    for i0 in range(0, n1, b):
        i1 = min(i0 + b, n1)
        for j0 in range(0, n3, b):
            j1 = min(j0 + b, n3)
            fm.alloc("C_tile", (i1 - i0, j1 - j0))
            _init_accumulator(fm, "C_tile", sr)
            for k0 in range(0, n2, panel):
                k1 = min(k0 + panel, n2)
                fm.load("A_sliver", A[i0:i1, k0:k1])
                fm.load("B_sliver", B[k0:k1, j0:j1])
                fm.get("C_tile")[:] = sr.add(
                    fm.get("C_tile"), sr.matmul(fm.get("A_sliver"), fm.get("B_sliver"))
                )
                fm.evict("A_sliver")
                fm.evict("B_sliver")
            C[i0:i1, j0:j1] = fm.store("C_tile")

    return SequentialGemmResult(C=C, shape=shape, M=M, io=fm.stats,
                                peak_words=fm.peak_words)
