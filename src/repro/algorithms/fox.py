"""Fox's algorithm (broadcast-multiply-roll, a.k.a. BMR / PUMMA) — baseline.

The other classic 2D algorithm (Fox & Otto 1987; generalized by PUMMA):
on a ``q x q`` grid, stage ``t`` broadcasts the ``A`` block on the
``t``-th generalized diagonal along each grid row, multiplies with the
*resident* ``B`` block, and rolls ``B`` upward by one position.

Compared with Cannon: identical asymptotic cost, but the ``A`` traffic is
a row *broadcast* per stage (one-to-many) instead of a point-to-point
shift, so Fox pays the broadcast overhead (binomial: a ``log q`` factor on
``A``'s words; with the long-message scatter+allgather broadcast, a factor
~2).  Including it in the baseline pool shows that the 2D family's
position against Theorem 3 is robust to implementation flavor.

Requires a ``q x q`` grid with ``q <= min(n1, n2, n3)``; ragged blocks
are supported (blocks move whole, like Cannon).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..collectives.communicator import parallel_broadcast
from ..core.shapes import ProblemShape
from ..exceptions import GridError
from ..machine.backend import as_block, backend_for, empty_block
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.message import Message
from ..machine.semiring import Semiring, resolve_semiring
from .distributions import block_bounds

__all__ = ["FoxResult", "run_fox"]


@dataclasses.dataclass
class FoxResult:
    """Output of a Fox/BMR run."""

    C: np.ndarray
    shape: ProblemShape
    q: int
    cost: Cost
    machine: Machine


def run_fox(
    A: np.ndarray,
    B: np.ndarray,
    q: int,
    machine: Optional[Machine] = None,
    broadcast_algorithm: str = "scatter_allgather",
    semiring: Optional[Semiring] = None,
) -> FoxResult:
    """Run Fox's algorithm on a ``q x q`` grid.

    ``semiring`` selects the scalar operations of the local
    multiply-accumulate (default ``plus_times``); with ``"min_plus"`` this
    is exactly the Fox-Otto all-pairs-shortest-path step (see
    :mod:`repro.algorithms.fox_otto`).  The schedule — and therefore every
    cost counter — is identical for every semiring.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((6, 9)), rng.random((9, 6))
    >>> res = run_fox(A, B, 3)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if q < 1:
        raise GridError(f"grid side q must be positive, got {q}")
    if q > min(n1, n2, n3):
        raise GridError(f"q={q} exceeds the smallest dimension of {shape}")
    P = q * q
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(f"machine has {machine.n_procs} processors, Fox needs {P}")

    def rank(i: int, j: int) -> int:
        return i * q + j

    for i in range(q):
        for j in range(q):
            r = rank(i, j)
            r0, r1 = block_bounds(n1, q, i)
            c0, c1 = block_bounds(n2, q, j)
            machine.proc(r).store["A"] = A[r0:r1, c0:c1].copy()
            r0, r1 = block_bounds(n2, q, i)
            c0, c1 = block_bounds(n3, q, j)
            machine.proc(r).store["B"] = B[r0:r1, c0:c1].copy()
    machine.trace.record("distribute", f"Fox blocks on {q}x{q} grid")

    partials: Dict[tuple, np.ndarray] = {}
    row_groups = [tuple(rank(i, j) for j in range(q)) for i in range(q)]
    for t in range(q):
        # Stage t: row i's pivot column is (i + t) mod q.
        if q > 1:
            roots = [rank(i, (i + t) % q) for i in range(q)]
            values = {root: machine.proc(root).store["A"] for root in roots}
            a_recv = parallel_broadcast(
                machine, row_groups, roots, values,
                algorithm=broadcast_algorithm, label=f"A diag {t}",
            )
        else:
            a_recv = {rank(0, 0): machine.proc(rank(0, 0)).store["A"]}

        for i in range(q):
            for j in range(q):
                r = rank(i, j)
                a_blk = as_block(a_recv[r])
                b_blk = machine.proc(r).store["B"]
                prod = sr.matmul(a_blk, b_blk)
                machine.compute(r, float(a_blk.shape[0] * a_blk.shape[1] * b_blk.shape[1]))
                key = (i, j)
                partials[key] = prod if key not in partials else sr.add(partials[key], prod)

        if t < q - 1 and q > 1:
            msgs = []
            for i in range(q):
                for j in range(q):
                    src = rank(i, j)
                    msgs.append(Message(
                        src=src, dest=rank((i - 1) % q, j),
                        payload=machine.proc(src).store["B"], tag="roll B",
                    ))
            for dest, payload in machine.exchange(msgs).items():
                machine.proc(dest).store["B"] = payload
    machine.trace.record("compute", f"{q} Fox stages")

    C = empty_block((n1, n3), like=A)
    for i in range(q):
        for j in range(q):
            machine.proc(rank(i, j)).store["C"] = partials[(i, j)]
            r0, r1 = block_bounds(n1, q, i)
            c0, c1 = block_bounds(n3, q, j)
            C[r0:r1, c0:c1] = partials[(i, j)]

    return FoxResult(C=C, shape=shape, q=q, cost=machine.cost, machine=machine)
