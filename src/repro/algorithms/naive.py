"""One-dimensional baseline algorithms.

Two classic 1D schemes, each a standalone implementation (they coincide
with Algorithm 1 on degenerate grids, which the tests exploit as a
cross-check):

``run_row_1d`` — *all-gather-B* algorithm
    ``A`` and ``C`` are row-sharded; ``B`` starts sharded and is
    All-Gathered by everyone.  Per-processor communication
    ``(1 - 1/P) n2 n3`` words.  Communication-optimal exactly when
    ``P <= m/n`` and the largest dimension is ``n1``
    (then it equals Algorithm 1 on the ``P x 1 x 1`` grid).

``run_outer_1d`` — *outer-product* algorithm
    The contraction dimension ``n2`` is sharded: each processor holds a
    column block of ``A`` and a row block of ``B``, computes a full-size
    rank-``n2/P`` contribution to ``C``, and a Reduce-Scatter sums the
    contributions leaving ``C`` row-sharded.  Per-processor communication
    ``(1 - 1/P) n1 n3`` words — optimal when the largest dimension is the
    contraction dimension ``n2`` and ``P <= m/n``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..collectives.communicator import Communicator
from ..core.shapes import ProblemShape
from ..machine.backend import as_block, backend_for, empty_block
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.semiring import Semiring, resolve_semiring
from .distributions import block_bounds, shard_bounds

__all__ = ["OneDResult", "run_row_1d", "run_outer_1d"]


@dataclasses.dataclass
class OneDResult:
    """Output of a 1D baseline run."""

    C: np.ndarray
    shape: ProblemShape
    P: int
    cost: Cost
    predicted_words: float
    machine: Machine


def run_row_1d(
    A: np.ndarray,
    B: np.ndarray,
    P: int,
    machine: Optional[Machine] = None,
    collective_algorithm: str = "auto",
    semiring: Optional[Semiring] = None,
) -> OneDResult:
    """All-gather-B 1D algorithm: row-shard ``A``/``C``, replicate ``B``.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((12, 5)), rng.random((5, 7))
    >>> res = run_row_1d(A, B, 4)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
    comm = Communicator(machine, tuple(range(P)))

    # Initial distribution: A rows blocked; B flattened into P shards.
    b_flat = B.reshape(-1)
    for r in range(P):
        r0, r1 = block_bounds(n1, P, r)
        machine.proc(r).store["A_rows"] = A[r0:r1].copy()
        lo, hi = shard_bounds(b_flat.size, P, r)
        machine.proc(r).store["B_shard"] = b_flat[lo:hi].copy()

    gathered = comm.allgather(
        {r: machine.proc(r).store["B_shard"] for r in range(P)},
        algorithm=collective_algorithm,
        label="replicate B",
    )
    C = empty_block((n1, n3), like=A)
    for r in range(P):
        full_b = np.concatenate([c.reshape(-1) for c in gathered[r]]).reshape(n2, n3)
        machine.proc(r).store["B_full"] = full_b
        a_rows = machine.proc(r).store["A_rows"]
        c_rows = sr.matmul(a_rows, full_b)
        machine.proc(r).store["C_rows"] = c_rows
        machine.compute(r, float(a_rows.shape[0] * n2 * n3))
        r0, r1 = block_bounds(n1, P, r)
        C[r0:r1] = c_rows
    machine.trace.record("compute", "local GEMM on row shards")

    predicted = n2 * n3 * (P - 1) / P
    return OneDResult(
        C=C, shape=shape, P=P, cost=machine.cost,
        predicted_words=predicted, machine=machine,
    )


def run_outer_1d(
    A: np.ndarray,
    B: np.ndarray,
    P: int,
    machine: Optional[Machine] = None,
    collective_algorithm: str = "auto",
    semiring: Optional[Semiring] = None,
) -> OneDResult:
    """Outer-product 1D algorithm: shard the contraction dimension.

    Each processor multiplies its ``n1 x (n2/P)`` column block of ``A``
    by its ``(n2/P) x n3`` row block of ``B`` and the ``n1 x n3`` partial
    products are Reduce-Scattered (leaving ``C`` evenly sharded).
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
    comm = Communicator(machine, tuple(range(P)))

    partials = {}
    for r in range(P):
        k0, k1 = block_bounds(n2, P, r)
        a_cols = A[:, k0:k1].copy()
        b_rows = B[k0:k1].copy()
        machine.proc(r).store["A_cols"] = a_cols
        machine.proc(r).store["B_rows"] = b_rows
        d = sr.matmul(a_cols, b_rows)
        machine.proc(r).store["D"] = d
        machine.compute(r, float(n1 * (k1 - k0) * n3))
        partials[r] = d.reshape(-1)
    machine.trace.record("compute", "local rank-(n2/P) outer products")

    rs_alg = {"recursive_doubling": "recursive_halving"}.get(
        collective_algorithm, collective_algorithm
    )
    blocks = {
        r: [partials[r][lo:hi] for lo, hi in
            (shard_bounds(n1 * n3, P, j) for j in range(P))]
        for r in range(P)
    }
    reduced = comm.reduce_scatter(
        blocks, algorithm=rs_alg, label="sum C contributions", op=sr.reduce_op
    )

    flat = empty_block((n1 * n3,), like=A)
    for r in range(P):
        machine.proc(r).store["C_shard"] = as_block(reduced[r]).reshape(-1)
        machine.proc(r).store.free("D")
        lo, hi = shard_bounds(n1 * n3, P, r)
        flat[lo:hi] = reduced[r].reshape(-1)
    C = flat.reshape(n1, n3)

    predicted = n1 * n3 * (P - 1) / P
    return OneDResult(
        C=C, shape=shape, P=P, cost=machine.cost,
        predicted_words=predicted, machine=machine,
    )
