"""ABFT checksum-encoded matrix multiplication: survive a rank failure.

Algorithm-based fault tolerance (Huang & Abraham 1984) encodes the
operands with checksums *before* the multiplication so that the partial
results a dead processor held can be reconstructed from the survivors —
no checkpoint, no global restart.  This module ships checksum-encoded
variants of the repo's two workhorse schedules:

``summa_abft``
    SUMMA on a ``pr x pc`` grid extended with one **checksum row** of
    processors: row ``pr`` owns ``S_j = sum_i A_{ij}``, so its stationary
    ``C`` blocks satisfy ``C-hat_j = sum_i C_{ij}`` at *every* stage
    boundary — the checksum row rides the unmodified SUMMA schedule.  When
    a rank dies mid-run, its ``A`` block and accumulated ``C`` block are
    both linear combinations of what its grid column's survivors hold;
    its stationary ``B`` block (not covered by the row checksum) is
    replicated to a buddy in one charged permutation round at encode time.

``alg1_abft``
    Algorithm 1 with **checksum shards**: each All-Gather fiber all-reduces
    its input shards at encode time (``cks = sum over the fiber``), so a
    dead rank's shard equals ``cks - sum(surviving shards)``.  Fibers of
    length 1 fall back to buddy replication.  After reconstruction the
    four phases simply re-run — shards are never mutated, so the redo is
    exact.

Accounting contract (the quadchotomy's "reconstructed" leg):

* Encoding is charged: the checksum all-reduces / buddy replication rounds
  appear in rounds, words and flops — this is the ABFT overhead the
  survivability report compares against the Theorem 3 bound.
* The *initial* checksum-row contents (``S_j``) and block layout are set
  up conductor-side for free, mirroring the repo-wide "assumed initial
  distribution" convention (:func:`~repro.algorithms.distributions.distribute_inputs`).
* Reconstruction runs on the :meth:`~repro.machine.recovery.RecoveryManager.fence`
  channel: fully charged, not re-faulted (the single-failure model), and
  attributed to ``words_recovered`` together with the wasted partial
  attempt, so ``measured == fault-free + words_resent + words_recovered``
  holds exactly.
* Fault-free runs never touch the recovery path and their costs are the
  closed forms in :mod:`repro.analysis.oracle`.

Checksum reconstruction needs additive inverses, so both variants refuse
non-ring semirings (``min_plus`` has no subtraction) with a
:class:`~repro.exceptions.SemiringError`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..collectives.communicator import (
    parallel_allgather,
    parallel_allreduce,
    parallel_broadcast,
    parallel_reduce_scatter,
)
from ..collectives.schedules import is_power_of_two
from ..core.shapes import ProblemShape
from ..exceptions import (
    FaultDetectedError,
    GridError,
    RankFailedError,
    SemiringError,
)
from ..machine.backend import SymbolicBlock, as_block, backend_for, empty_block
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.message import Message
from ..machine.recovery import RecoveryManager
from ..machine.semiring import Semiring, resolve_semiring
from .distributions import (
    assemble_c,
    block_bounds,
    distribute_inputs,
    shard_bounds,
)
from .grid import ProcessorGrid
from .grid_selection import select_grid, sorted_divisors

__all__ = [
    "ABFT_ALGORITHMS",
    "AbftResult",
    "abft_summa_grid",
    "alg1_abft_grid",
    "run_alg1_abft",
    "run_summa_abft",
]

#: Registry names whose runs self-heal rank failures in place (no external
#: checkpoint/restart wrapper needed).
ABFT_ALGORITHMS: Tuple[str, ...] = ("alg1_abft", "summa_abft")


def _require_ring(sr: Semiring, what: str) -> None:
    if sr.name != "plus_times":
        raise SemiringError(
            f"{what} reconstructs lost blocks as checksum differences, which "
            f"needs additive inverses; the {sr.name!r} semiring is not a ring"
        )


def _combine(blocks):
    """Sum of same-shaped blocks (numpy or symbolic)."""
    total = blocks[0]
    for blk in blocks[1:]:
        total = total + blk
    return total


@dataclasses.dataclass
class AbftResult:
    """Output of one ABFT-encoded run.

    ``recovered`` counts the rank-failure reconstructions the run absorbed
    (0 on a fault-free run, whose cost then equals the oracle closed form
    exactly).
    """

    C: np.ndarray
    shape: ProblemShape
    cost: Cost
    machine: Machine
    recovered: int


# ---------------------------------------------------------------------- #
# grid choosers (shared with the analytic oracle)                        #
# ---------------------------------------------------------------------- #


def abft_summa_grid(shape: ProblemShape, P: int) -> Optional[Tuple[int, int]]:
    """Most balanced ``(pr, pc)`` with ``(pr + 1) * pc == P`` for ABFT SUMMA.

    The grid spends one full processor row on checksums, so ``pr`` real
    rows plus the checksum row must exactly tile ``P``.  Divisibility
    mirrors SUMMA's (``pr | n1``, ``pc | n3``, ``pc | n2``) with the panel
    constraint on the *extended* row count: ``(pr + 1) | n2``.  Public
    because the oracle must predict costs for exactly the grid the
    registry run would pick; ``None`` when no feasible grid exists.
    """
    best = None
    # qr = pr + 1 must divide P, so scan the divisors >= 2 ascending —
    # the same candidates, in the same order, as the historical
    # range(1, P) scan over pr.
    for qr in sorted_divisors(P):
        if qr == 1:
            continue
        pr = qr - 1
        pc = P // qr
        if shape.n1 % pr or shape.n2 % qr or shape.n2 % pc or shape.n3 % pc:
            continue
        score = abs(qr - pc)
        if best is None or score < best[0]:
            best = (score, pr, pc)
    return None if best is None else (best[1], best[2])


def alg1_abft_grid(shape: ProblemShape, P: int) -> Optional[ProcessorGrid]:
    """The Section 5.2 grid, when ABFT encoding is feasible on it.

    Checksum shards are built with recursive-doubling all-reduces over the
    All-Gather fibers, so any fiber longer than 1 must be a power of two
    and must divide its shard evenly; buddy replication (the length-1
    fallback) needs ``P >= 2``.  Shared with the oracle; ``None`` when
    infeasible.
    """
    if P < 2:
        return None
    try:
        choice = select_grid(shape, P)
    except Exception:
        return None
    g = choice.grid
    if not (g.p1 <= shape.n1 and g.p2 <= shape.n2 and g.p3 <= shape.n3):
        return None
    if not g.divides(*shape.dims):
        return None
    a_block = (shape.n1 // g.p1) * (shape.n2 // g.p2)
    b_block = (shape.n2 // g.p2) * (shape.n3 // g.p3)
    if g.p3 > 1 and (not is_power_of_two(g.p3) or a_block % g.p3):
        return None
    if g.p1 > 1 and (not is_power_of_two(g.p1) or b_block % g.p1):
        return None
    return g


# ---------------------------------------------------------------------- #
# SUMMA with a checksum row                                              #
# ---------------------------------------------------------------------- #


def run_summa_abft(
    A: np.ndarray,
    B: np.ndarray,
    pr: int,
    pc: int,
    machine: Optional[Machine] = None,
    semiring: Optional[Semiring] = None,
) -> AbftResult:
    """SUMMA on ``pr`` real rows plus one checksum row (``P = (pr+1) pc``).

    Fault-free, the schedule is exactly SUMMA on the extended
    ``(pr+1) x pc`` grid after one charged permutation round replicating
    each rank's stationary ``B`` block to its column buddy.  Under an
    ambient fault injector whose model carries a
    :class:`~repro.machine.faults.RecoveryConfig`, a single rank failure
    is absorbed: the dead rank's ``A`` and ``C`` blocks are reconstructed
    as checksum differences over its grid column's survivors, its ``B``
    block is fetched from the buddy, and the interrupted stage re-runs.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((4, 6)), rng.random((6, 4))
    >>> res = run_summa_abft(A, B, 2, 2)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    _require_ring(sr, "ABFT SUMMA")
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    qr = pr + 1
    if pr < 1 or pc < 1:
        raise GridError(f"ABFT SUMMA needs pr >= 1 and pc >= 1, got {pr}x{pc}")
    if n1 % pr or n3 % pc or n2 % qr or n2 % pc:
        raise GridError(
            f"ABFT SUMMA needs pr | n1, pc | n3, (pr+1) | n2 and pc | n2; "
            f"got real grid {pr}x{pc} (+1 checksum row) for {shape}"
        )
    P = qr * pc
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(
                f"machine has {machine.n_procs} processors, ABFT SUMMA needs "
                f"{P} (= ({pr}+1) x {pc})"
            )

    def rank(i: int, j: int) -> int:
        return i * pc + j

    a_rows, a_cols = n1 // pr, n2 // pc
    b_rows, c_cols = n2 // qr, n3 // pc

    def _distribute() -> None:
        # Conductor-side and free, like every initial distribution in the
        # repo; the checksum row's S_j = sum_i A_ij is part of that layout.
        for j in range(pc):
            col_blocks = []
            for i in range(pr):
                blk = as_block(
                    A[i * a_rows:(i + 1) * a_rows, j * a_cols:(j + 1) * a_cols]
                ).copy()
                col_blocks.append(blk)
                machine.proc(rank(i, j)).store["A"] = blk
            machine.proc(rank(pr, j)).store["A"] = _combine(col_blocks)
        for i in range(qr):
            for j in range(pc):
                machine.proc(rank(i, j)).store["B"] = as_block(
                    B[i * b_rows:(i + 1) * b_rows, j * c_cols:(j + 1) * c_cols]
                ).copy()
        for i in range(qr):
            for j in range(pc):
                machine.proc(rank(i, j)).store["C"] = sr.zeros(
                    (a_rows, c_cols), like=A
                )
        machine.trace.record(
            "distribute",
            f"ABFT SUMMA blocks on {pr}x{pc} grid + checksum row",
        )

    def _encode() -> None:
        # The stationary B blocks are outside the row checksum's span, so
        # they get a buddy replica: one charged permutation round down
        # each grid column, (i, j) -> ((i+1) mod (pr+1), j).
        with machine.span("abft-encode", kind="recovery"):
            msgs = [
                Message(
                    rank(i, j), rank((i + 1) % qr, j),
                    machine.proc(rank(i, j)).store["B"], tag="abft-b-copy",
                )
                for i in range(qr) for j in range(pc)
            ]
            deliveries = machine.exchange(msgs)
            for dest, payload in deliveries.items():
                machine.proc(dest).store["B_ckpt"] = as_block(payload)

    panel = math.gcd(b_rows, a_cols)
    stages = n2 // panel
    row_groups = [tuple(rank(i, j) for j in range(pc)) for i in range(qr)]
    col_groups = [tuple(rank(i, j) for i in range(qr)) for j in range(pc)]

    def _stage(t: int) -> None:
        # One SUMMA stage on the extended grid; local C accumulation only
        # happens after both broadcasts succeed, so an interrupted stage
        # leaves every store exactly at the stage-(t-1) boundary and the
        # redo is exact.
        k0 = t * panel
        jt = k0 // a_cols
        a_off = k0 - jt * a_cols
        a_panels: Dict[int, np.ndarray] = {}
        for i in range(qr):
            holder = rank(i, jt)
            a_panels[holder] = machine.proc(holder).store["A"][:, a_off:a_off + panel]
        if pc > 1:
            a_recv = parallel_broadcast(
                machine, row_groups, [rank(i, jt) for i in range(qr)], a_panels,
                algorithm="scatter_allgather", label=f"A panel {t}",
            )
        else:
            a_recv = {rank(i, 0): a_panels[rank(i, 0)] for i in range(qr)}
        it = k0 // b_rows
        b_off = k0 - it * b_rows
        b_panels: Dict[int, np.ndarray] = {}
        for j in range(pc):
            holder = rank(it, j)
            b_panels[holder] = machine.proc(holder).store["B"][b_off:b_off + panel, :]
        # qr = pr + 1 >= 2, so the column broadcast always runs.
        b_recv = parallel_broadcast(
            machine, col_groups, [rank(it, j) for j in range(pc)], b_panels,
            algorithm="scatter_allgather", label=f"B panel {t}",
        )
        for i in range(qr):
            for j in range(pc):
                r = rank(i, j)
                a_p = as_block(a_recv[r])
                b_p = as_block(b_recv[r])
                store = machine.proc(r).store
                store["C"] = sr.add(store["C"], sr.matmul(a_p, b_p))
                machine.compute(r, float(a_p.shape[0] * panel * b_p.shape[1]))

    def _reconstruct(dead: int, encoded: bool) -> None:
        i0, j0 = divmod(dead, pc)
        mgr.revive(dead)
        store = machine.proc(dead).store
        if not encoded:
            # Death before any replica existed: every store is still in
            # its (free) initial-distribution state, so restage it the
            # same way and redo the encode round.
            _distribute()
            return
        with machine.span("abft-reconstruct", kind="recovery"):
            # A and C come back as checksum differences over the column's
            # survivors (the checksum row itself is the plain column sum).
            for key in ("A", "C"):
                peer_blocks = {}
                for i in range(qr):
                    if i == i0:
                        continue
                    peer = rank(i, j0)
                    recv = machine.exchange([
                        Message(peer, dead, machine.proc(peer).store[key],
                                tag=f"abft-restore-{key}")
                    ])
                    peer_blocks[i] = as_block(recv[dead])
                if i0 == pr:
                    block = _combine(list(peer_blocks.values()))
                else:
                    others = [blk for i, blk in peer_blocks.items() if i != pr]
                    # pr == 1: the dead real row IS the column sum.
                    block = (
                        peer_blocks[pr] - _combine(others) if others
                        else peer_blocks[pr]
                    )
                store[key] = block
                machine.compute(dead, float(block.size * (qr - 1)))
            # B comes back from the buddy replica; then the replica the
            # dead rank held for its predecessor is re-established.
            buddy = rank((i0 + 1) % qr, j0)
            recv = machine.exchange([
                Message(buddy, dead, machine.proc(buddy).store["B_ckpt"],
                        tag="abft-restore-B")
            ])
            store["B"] = as_block(recv[dead])
            pred = rank((i0 - 1) % qr, j0)
            recv = machine.exchange([
                Message(pred, dead, machine.proc(pred).store["B"],
                        tag="abft-b-copy")
            ])
            store["B_ckpt"] = as_block(recv[dead])

    mgr = RecoveryManager(machine)
    _distribute()
    encoded = False
    while not encoded:
        before = mgr.begin_attempt()
        try:
            _encode()
            encoded = True
        except RankFailedError as exc:
            plan = mgr.on_failure(exc, before)
            with mgr.fence():
                _reconstruct(plan.failed_rank, encoded=False)
    t = 0
    while t < stages:
        before = mgr.begin_attempt()
        try:
            _stage(t)
            t += 1
        except RankFailedError as exc:
            plan = mgr.on_failure(exc, before)
            with mgr.fence():
                _reconstruct(plan.failed_rank, encoded=True)
    machine.trace.record(
        "compute", f"{stages} ABFT SUMMA stages of width {panel}"
    )

    # Assemble from the real rows; the checksum row's C-hat blocks are the
    # run's self-check: each must equal its column sum.
    C = empty_block((n1, n3), like=A)
    for i in range(pr):
        for j in range(pc):
            C[i * a_rows:(i + 1) * a_rows, j * c_cols:(j + 1) * c_cols] = (
                machine.proc(rank(i, j)).store["C"]
            )
    if not isinstance(C, SymbolicBlock):
        for j in range(pc):
            column_sum = _combine(
                [np.asarray(machine.proc(rank(i, j)).store["C"]) for i in range(pr)]
            )
            if not np.allclose(machine.proc(rank(pr, j)).store["C"], column_sum):
                raise FaultDetectedError(
                    f"ABFT checksum column {j} drifted from its C blocks: "
                    f"silent corruption survived the run"
                )
    return AbftResult(
        C=C, shape=shape, cost=machine.cost, machine=machine,
        recovered=mgr.recovered,
    )


# ---------------------------------------------------------------------- #
# Algorithm 1 with checksum shards                                       #
# ---------------------------------------------------------------------- #


def run_alg1_abft(
    A: np.ndarray,
    B: np.ndarray,
    grid: ProcessorGrid,
    machine: Optional[Machine] = None,
    semiring: Optional[Semiring] = None,
) -> AbftResult:
    """Algorithm 1 with checksum-encoded input shards.

    The encode phase all-reduces each All-Gather fiber's shards into a
    per-rank checksum (``cks_A`` over the p3-fibers, ``cks_B`` over the
    p1-fibers); length-1 fibers fall back to a buddy replica in one
    permutation round.  Because the four phases never mutate the shards,
    a failed attempt is survived by reconstructing the dead rank's shards
    (checksum minus surviving shards, or the buddy copy) and re-running
    the phases.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((8, 4)), rng.random((4, 4))
    >>> res = run_alg1_abft(A, B, ProcessorGrid(2, 1, 2))
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    _require_ring(sr, "ABFT Algorithm 1")
    p1, p2, p3 = grid.dims
    P = grid.size
    if P < 2:
        raise GridError(
            f"ABFT Algorithm 1 needs P >= 2 (a rank cannot be its own "
            f"buddy), got grid {grid}"
        )
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(
                f"machine has {machine.n_procs} processors, grid {grid} needs {P}"
            )
    shape = distribute_inputs(machine, grid, A, B)
    n1, n2, n3 = shape.dims
    if not grid.divides(n1, n2, n3):
        raise GridError(
            f"ABFT Algorithm 1 needs every p_i | n_i, got grid {grid} for {shape}"
        )
    a_block = (n1 // p1) * (n2 // p2)
    b_block = (n2 // p2) * (n3 // p3)
    if p3 > 1 and (not is_power_of_two(p3) or a_block % p3):
        raise GridError(
            f"checksum shards need p3 a power of two dividing the A block "
            f"({a_block} words), got p3={p3}"
        )
    if p1 > 1 and (not is_power_of_two(p1) or b_block % p1):
        raise GridError(
            f"checksum shards need p1 a power of two dividing the B block "
            f"({b_block} words), got p1={p1}"
        )

    def _encode() -> None:
        with machine.span("abft-encode", kind="recovery"):
            if p3 > 1:
                shards = {r: machine.proc(r).store["A_shard"] for r in range(P)}
                sums = parallel_allreduce(
                    machine, grid.fibers(3), shards,
                    algorithm="recursive_doubling", label="A shard checksums",
                    op="sum",
                )
                for r in range(P):
                    machine.proc(r).store["cks_A"] = as_block(sums[r])
            if p1 > 1:
                shards = {r: machine.proc(r).store["B_shard"] for r in range(P)}
                sums = parallel_allreduce(
                    machine, grid.fibers(1), shards,
                    algorithm="recursive_doubling", label="B shard checksums",
                    op="sum",
                )
                for r in range(P):
                    machine.proc(r).store["cks_B"] = as_block(sums[r])
            if p3 == 1 or p1 == 1:
                # Length-1 fibers have nothing to checksum against: buddy
                # replication in one permutation round r -> (r+1) mod P.
                msgs = []
                for r in range(P):
                    store = machine.proc(r).store
                    items = []
                    if p3 == 1:
                        items.append(store["A_shard"])
                    if p1 == 1:
                        items.append(store["B_shard"])
                    msgs.append(
                        Message(r, (r + 1) % P, tuple(items), tag="abft-buddy")
                    )
                deliveries = machine.exchange(msgs)
                for dest, payload in deliveries.items():
                    store = machine.proc(dest).store
                    idx = 0
                    if p3 == 1:
                        store["buddy_A"] = as_block(payload[idx])
                        idx += 1
                    if p1 == 1:
                        store["buddy_B"] = as_block(payload[idx])

    def _phases() -> None:
        # The four phases of run_alg1, verbatim schedule (auto collectives,
        # blocks freed after the local product).
        with machine.span("allgather-A", kind="collective"):
            if p3 > 1:
                chunks = {r: machine.proc(r).store["A_shard"] for r in range(P)}
                gathered = parallel_allgather(
                    machine, grid.fibers(3), chunks, algorithm="auto",
                    label="A blocks",
                )
            else:
                gathered = {
                    r: [machine.proc(r).store["A_shard"]] for r in range(P)
                }
            for r in range(P):
                c1, c2, _ = grid.coord(r)
                r0, r1 = block_bounds(n1, p1, c1)
                c0, c1b = block_bounds(n2, p2, c2)
                flat = np.concatenate(
                    [as_block(ch).reshape(-1) for ch in gathered[r]]
                )
                machine.proc(r).store["A_block"] = flat.reshape(r1 - r0, c1b - c0)
        with machine.span("allgather-B", kind="collective"):
            if p1 > 1:
                chunks = {r: machine.proc(r).store["B_shard"] for r in range(P)}
                gathered = parallel_allgather(
                    machine, grid.fibers(1), chunks, algorithm="auto",
                    label="B blocks",
                )
            else:
                gathered = {
                    r: [machine.proc(r).store["B_shard"]] for r in range(P)
                }
            for r in range(P):
                _, c2, c3 = grid.coord(r)
                r0, r1 = block_bounds(n2, p2, c2)
                c0, c1b = block_bounds(n3, p3, c3)
                flat = np.concatenate(
                    [as_block(ch).reshape(-1) for ch in gathered[r]]
                )
                machine.proc(r).store["B_block"] = flat.reshape(r1 - r0, c1b - c0)
        with machine.trace.measure("local GEMM D = A_block @ B_block", "compute"):
            for r in range(P):
                store = machine.proc(r).store
                a_blk = store["A_block"]
                b_blk = store["B_block"]
                store["D"] = sr.matmul(a_blk, b_blk)
                machine.compute(
                    r, float(a_blk.shape[0] * a_blk.shape[1] * b_blk.shape[1])
                )
                store.free("A_block")
                store.free("B_block")
        with machine.span("reduce-scatter-C", kind="collective"):
            if p2 > 1:
                blocks = {}
                for r in range(P):
                    d_flat = machine.proc(r).store["D"].reshape(-1)
                    bounds = [shard_bounds(d_flat.size, p2, j) for j in range(p2)]
                    blocks[r] = [d_flat[lo:hi] for lo, hi in bounds]
                reduced = parallel_reduce_scatter(
                    machine, grid.fibers(2), blocks, algorithm="auto",
                    label="C blocks", op=sr.reduce_op,
                )
            else:
                reduced = {
                    r: machine.proc(r).store["D"].reshape(-1).copy()
                    for r in range(P)
                }
            for r in range(P):
                store = machine.proc(r).store
                store["C_shard"] = as_block(reduced[r]).reshape(-1)
                store.free("D")

    def _restore_shard(dead: int, axis: int, key: str, cks_key: str,
                       buddy_key: str, fiber_len: int) -> None:
        store = machine.proc(dead).store
        if fiber_len > 1:
            fiber = grid.fiber(axis, grid.coord(dead))
            peers = [r for r in fiber if r != dead]
            recv = machine.exchange([
                Message(peers[0], dead, machine.proc(peers[0]).store[cks_key],
                        tag=f"abft-{cks_key}")
            ])
            total = as_block(recv[dead])
            shards = []
            for peer in peers:
                recv = machine.exchange([
                    Message(peer, dead, machine.proc(peer).store[key],
                            tag=f"abft-restore-{key}")
                ])
                shards.append(as_block(recv[dead]))
            store[key] = total - _combine(shards)
            store[cks_key] = total
            machine.compute(dead, float(total.size * len(peers)))
        else:
            buddy = (dead + 1) % P
            recv = machine.exchange([
                Message(buddy, dead, machine.proc(buddy).store[buddy_key],
                        tag=f"abft-restore-{key}")
            ])
            store[key] = as_block(recv[dead])

    def _reconstruct(dead: int, encoded: bool) -> None:
        mgr.revive(dead)
        if not encoded:
            # Shards are still pure initial-distribution state: restage
            # them free (the convention all entry points share) and redo
            # the encode from the top.
            distribute_inputs(machine, grid, A, B)
            return
        with machine.span("abft-reconstruct", kind="recovery"):
            _restore_shard(dead, 3, "A_shard", "cks_A", "buddy_A", p3)
            _restore_shard(dead, 1, "B_shard", "cks_B", "buddy_B", p1)
            if p3 == 1 or p1 == 1:
                # Re-establish the buddy copies the dead rank held for its
                # predecessor.
                pred = (dead - 1) % P
                items = []
                if p3 == 1:
                    items.append(machine.proc(pred).store["A_shard"])
                if p1 == 1:
                    items.append(machine.proc(pred).store["B_shard"])
                recv = machine.exchange([
                    Message(pred, dead, tuple(items), tag="abft-buddy")
                ])
                payload = recv[dead]
                store = machine.proc(dead).store
                idx = 0
                if p3 == 1:
                    store["buddy_A"] = as_block(payload[idx])
                    idx += 1
                if p1 == 1:
                    store["buddy_B"] = as_block(payload[idx])

    mgr = RecoveryManager(machine)
    encoded = False
    while not encoded:
        before = mgr.begin_attempt()
        try:
            _encode()
            encoded = True
        except RankFailedError as exc:
            plan = mgr.on_failure(exc, before)
            with mgr.fence():
                _reconstruct(plan.failed_rank, encoded=False)
    while True:
        before = mgr.begin_attempt()
        try:
            _phases()
            break
        except RankFailedError as exc:
            plan = mgr.on_failure(exc, before)
            with mgr.fence():
                _reconstruct(plan.failed_rank, encoded=True)

    C = assemble_c(machine, shape, grid)
    return AbftResult(
        C=C, shape=shape, cost=machine.cost, machine=machine,
        recovered=mgr.recovered,
    )
