"""CARMA-style recursive matrix multiplication (baseline).

A breadth-first recursive algorithm in the spirit of Demmel et al. (2013):
at each level the *largest* remaining dimension is halved and the processor
group splits in two; pairs of processors across the halves exchange exactly
the data the other half's subproblem needs.  When the contraction dimension
``n2`` was split, the two halves compute contributions to the *same* region
of ``C`` and a pairwise exchange-and-add combines them on the way back up.
When a single processor remains it multiplies its subproblem locally.

Because it always halves the largest dimension, the recursion adapts its
effective grid to the aspect ratios just like the Section 5.2 selection —
this is the algorithm Demmel et al. used to show the three asymptotic
regimes are attainable (without tracking constants).  Our benchmarks show
it tracks Algorithm 1 within a small constant factor across all three
regimes, while never beating the exact-constant Algorithm 1 + optimal-grid
combination.

Implementation notes
--------------------
* Data is represented as *rectangle pieces* ``(r0, r1, c0, c1, array)`` of
  the global matrices; every exchange moves real subarrays through the
  simulated network.
* Both halves of every split run their communication in *merged* rounds
  (:func:`repro.collectives.schedules.merge_schedules`), so the measured
  critical path reflects the parallel recursion, not a sequential replay.
* Requirements: ``P`` a power of two; every dimension the recursion
  decides to split must be even at that point (guaranteed when the
  dimensions are multiples of suitable powers of two, e.g. all equal to
  ``P``-smooth even numbers); ``n1 >= P`` and ``n2 >= P`` for the initial
  slab distribution.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives.schedules import Schedule, is_power_of_two, merge_schedules, run_schedule
from ..core.shapes import ProblemShape
from ..exceptions import GridError
from ..machine.backend import SymbolicBlock, as_block, backend_for, is_symbolic
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.message import Message
from ..machine.semiring import Semiring, resolve_semiring

__all__ = ["CarmaResult", "run_carma"]

# A piece is (r0, r1, c0, c1, array) with array.shape == (r1-r0, c1-c0).
Piece = Tuple[int, int, int, int, np.ndarray]
Region = Tuple[int, int, int, int]  # (r0, r1, c0, c1)


def _clip(piece: Piece, region: Region) -> Optional[Piece]:
    """The part of ``piece`` inside ``region`` (None when disjoint)."""
    pr0, pr1, pc0, pc1, arr = piece
    rr0, rr1, rc0, rc1 = region
    r0, r1 = max(pr0, rr0), min(pr1, rr1)
    c0, c1 = max(pc0, rc0), min(pc1, rc1)
    if r0 >= r1 or c0 >= c1:
        return None
    return (r0, r1, c0, c1, arr[r0 - pr0:r1 - pr0, c0 - pc0:c1 - pc0])


def _clip_all(pieces: Sequence[Piece], region: Region) -> List[Piece]:
    out = []
    for p in pieces:
        clipped = _clip(p, region)
        if clipped is not None:
            out.append(clipped)
    return out


def _pack(pieces: Sequence[Piece]):
    """Payload encoding: a tuple of (meta row, array) pairs, flattened.

    Message payloads must be arrays or nested tuples of arrays, so the
    rectangle coordinates ride along as tiny int arrays; their 4 words per
    piece are a negligible, honest header cost.
    """
    return tuple(
        (np.array([r0, r1, c0, c1]),
         arr if is_symbolic(arr) else np.ascontiguousarray(arr))
        for (r0, r1, c0, c1, arr) in pieces
    )


def _unpack(payload) -> List[Piece]:
    return [
        (int(meta[0]), int(meta[1]), int(meta[2]), int(meta[3]), arr)
        for (meta, arr) in payload
    ]


def _assemble(pieces: Sequence[Piece], region: Region) -> np.ndarray:
    """Tile ``pieces`` into a dense array covering ``region`` exactly."""
    r0, r1, c0, c1 = region
    if any(is_symbolic(arr) for (_, _, _, _, arr) in pieces):
        # Symbolic mode: the NaN-sentinel check needs elements, so verify
        # the tiling geometrically instead (containment + exact area).
        covered = 0
        for (pr0, pr1, pc0, pc1, arr) in pieces:
            if pr0 < r0 or pr1 > r1 or pc0 < c0 or pc1 > c1:
                raise GridError(
                    f"CARMA invariant violated: piece outside region {region}"
                )
            covered += (pr1 - pr0) * (pc1 - pc0)
        if covered != (r1 - r0) * (c1 - c0):
            raise GridError(
                f"CARMA invariant violated: pieces do not tile region {region}"
            )
        return SymbolicBlock((r1 - r0, c1 - c0))
    out = np.full((r1 - r0, c1 - c0), np.nan)
    for (pr0, pr1, pc0, pc1, arr) in pieces:
        out[pr0 - r0:pr1 - r0, pc0 - c0:pc1 - c0] = arr
    if np.isnan(out).any():
        raise GridError(
            f"CARMA invariant violated: pieces do not tile region {region}"
        )
    return out


def _split_piece_for_combine(piece: Piece) -> Tuple[Optional[Piece], Optional[Piece]]:
    """Split a C piece into (first, second) halves for the pairwise combine.

    Rows are split when possible, else columns; a 1x1 piece goes entirely
    into the first half.
    """
    r0, r1, c0, c1, arr = piece
    if r1 - r0 > 1:
        mid = (r0 + r1) // 2
        return (r0, mid, c0, c1, arr[: mid - r0]), (mid, r1, c0, c1, arr[mid - r0:])
    if c1 - c0 > 1:
        mid = (c0 + c1) // 2
        return (r0, r1, c0, mid, arr[:, : mid - c0]), (r0, r1, mid, c1, arr[:, mid - c0:])
    return piece, None


@dataclasses.dataclass
class CarmaResult:
    """Output of a CARMA run."""

    C: np.ndarray
    shape: ProblemShape
    P: int
    cost: Cost
    machine: Machine
    splits: List[str]


def run_carma(
    A: np.ndarray,
    B: np.ndarray,
    P: int,
    machine: Optional[Machine] = None,
    semiring: Optional[Semiring] = None,
) -> CarmaResult:
    """Run the CARMA-style recursive algorithm on ``P`` processors.

    ``semiring`` selects the scalar multiply-accumulate of the leaf
    products and the pairwise combines (default ``plus_times``); the
    recursion and all costs are identical for every semiring.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((16, 8)), rng.random((8, 12))
    >>> res = run_carma(A, B, 4)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if not is_power_of_two(P):
        raise GridError(f"CARMA requires a power-of-two processor count, got {P}")
    if n1 < P or n2 < P:
        raise GridError(
            f"initial slab distribution needs n1 >= P and n2 >= P, got {shape}, P={P}"
        )
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(f"machine has {machine.n_procs} processors, need {P}")

    # Initial one-copy distribution: horizontal slabs of A and of B.
    holdings_a: Dict[int, List[Piece]] = {}
    holdings_b: Dict[int, List[Piece]] = {}
    holdings_c: Dict[int, List[Piece]] = {}
    bounds_a = np.array_split(np.arange(n1), P)
    bounds_b = np.array_split(np.arange(n2), P)
    for r in range(P):
        ra = bounds_a[r]
        holdings_a[r] = [(int(ra[0]), int(ra[-1]) + 1, 0, n2,
                          A[int(ra[0]):int(ra[-1]) + 1].copy())]
        rb = bounds_b[r]
        holdings_b[r] = [(int(rb[0]), int(rb[-1]) + 1, 0, n3,
                          B[int(rb[0]):int(rb[-1]) + 1].copy())]
        holdings_c[r] = []
        machine.proc(r).store["A_slab"] = holdings_a[r][0][4]
        machine.proc(r).store["B_slab"] = holdings_b[r][0][4]
    machine.trace.record("distribute", f"CARMA slabs over {P} processors")

    splits: List[str] = []

    def recurse(
        group: Tuple[int, ...],
        i_rng: Tuple[int, int],
        k_rng: Tuple[int, int],
        j_rng: Tuple[int, int],
    ) -> Schedule:
        """Schedule computing C[i_rng, j_rng] += A[i_rng, k_rng] @ B[k_rng, j_rng]."""
        a_region: Region = (i_rng[0], i_rng[1], k_rng[0], k_rng[1])
        b_region: Region = (k_rng[0], k_rng[1], j_rng[0], j_rng[1])
        c_region: Region = (i_rng[0], i_rng[1], j_rng[0], j_rng[1])

        if len(group) == 1:
            rank = group[0]
            a_sub = _assemble(_clip_all(holdings_a[rank], a_region), a_region)
            b_sub = _assemble(_clip_all(holdings_b[rank], b_region), b_region)
            c_sub = sr.matmul(a_sub, b_sub)
            machine.compute(rank, float(a_sub.shape[0] * a_sub.shape[1] * b_sub.shape[1]))
            holdings_c[rank].append(
                (c_region[0], c_region[1], c_region[2], c_region[3], c_sub)
            )
            return
            yield  # pragma: no cover - marks this function as a generator

        d1 = i_rng[1] - i_rng[0]
        d2 = k_rng[1] - k_rng[0]
        d3 = j_rng[1] - j_rng[0]
        largest = max(d1, d2, d3)
        half = len(group) // 2
        G0, G1 = group[:half], group[half:]

        if largest % 2:
            raise GridError(
                f"CARMA wants to halve a dimension of odd size {largest} "
                f"at subproblem {d1}x{d2}x{d3}; choose dimensions divisible "
                f"by 2^(levels splitting them)"
            )

        if d1 == largest:  # split the i (n1) dimension; B is shared
            axis = "n1"
            mid = (i_rng[0] + i_rng[1]) // 2
            sub0 = ((i_rng[0], mid), k_rng, j_rng)
            sub1 = ((mid, i_rng[1]), k_rng, j_rng)
            a_reg0: Region = (i_rng[0], mid, k_rng[0], k_rng[1])
            a_reg1: Region = (mid, i_rng[1], k_rng[0], k_rng[1])
            msgs = []
            for g0, g1 in zip(G0, G1):
                send01 = (_pack(_clip_all(holdings_a[g0], a_reg1)),
                          _pack(_clip_all(holdings_b[g0], b_region)))
                send10 = (_pack(_clip_all(holdings_a[g1], a_reg0)),
                          _pack(_clip_all(holdings_b[g1], b_region)))
                msgs.append(Message(src=g0, dest=g1, payload=send01, tag="carma n1"))
                msgs.append(Message(src=g1, dest=g0, payload=send10, tag="carma n1"))
            deliveries = yield msgs
            for g0, g1 in zip(G0, G1):
                for rank, keep_a in ((g0, a_reg0), (g1, a_reg1)):
                    in_a = _unpack(deliveries[rank][0])
                    in_b = _unpack(deliveries[rank][1])
                    holdings_a[rank] = _clip_all(holdings_a[rank] + in_a, keep_a)
                    holdings_b[rank] = _clip_all(holdings_b[rank] + in_b, b_region)
        elif d3 == largest:  # split the j (n3) dimension; A is shared
            axis = "n3"
            mid = (j_rng[0] + j_rng[1]) // 2
            sub0 = (i_rng, k_rng, (j_rng[0], mid))
            sub1 = (i_rng, k_rng, (mid, j_rng[1]))
            b_reg0: Region = (k_rng[0], k_rng[1], j_rng[0], mid)
            b_reg1: Region = (k_rng[0], k_rng[1], mid, j_rng[1])
            msgs = []
            for g0, g1 in zip(G0, G1):
                send01 = (_pack(_clip_all(holdings_a[g0], a_region)),
                          _pack(_clip_all(holdings_b[g0], b_reg1)))
                send10 = (_pack(_clip_all(holdings_a[g1], a_region)),
                          _pack(_clip_all(holdings_b[g1], b_reg0)))
                msgs.append(Message(src=g0, dest=g1, payload=send01, tag="carma n3"))
                msgs.append(Message(src=g1, dest=g0, payload=send10, tag="carma n3"))
            deliveries = yield msgs
            for rank, keep_b in [(g, b_reg0) for g in G0] + [(g, b_reg1) for g in G1]:
                in_a = _unpack(deliveries[rank][0])
                in_b = _unpack(deliveries[rank][1])
                holdings_b[rank] = _clip_all(holdings_b[rank] + in_b, keep_b)
                holdings_a[rank] = _clip_all(holdings_a[rank] + in_a, a_region)
        else:  # split the contraction (n2) dimension; C contributions combine
            axis = "n2"
            mid = (k_rng[0] + k_rng[1]) // 2
            sub0 = (i_rng, (k_rng[0], mid), j_rng)
            sub1 = (i_rng, (mid, k_rng[1]), j_rng)
            a_reg0: Region = (i_rng[0], i_rng[1], k_rng[0], mid)
            a_reg1: Region = (i_rng[0], i_rng[1], mid, k_rng[1])
            b_reg0: Region = (k_rng[0], mid, j_rng[0], j_rng[1])
            b_reg1: Region = (mid, k_rng[1], j_rng[0], j_rng[1])
            msgs = []
            for g0, g1 in zip(G0, G1):
                send01 = (_pack(_clip_all(holdings_a[g0], a_reg1)),
                          _pack(_clip_all(holdings_b[g0], b_reg1)))
                send10 = (_pack(_clip_all(holdings_a[g1], a_reg0)),
                          _pack(_clip_all(holdings_b[g1], b_reg0)))
                msgs.append(Message(src=g0, dest=g1, payload=send01, tag="carma n2"))
                msgs.append(Message(src=g1, dest=g0, payload=send10, tag="carma n2"))
            deliveries = yield msgs
            for rank, keep_a, keep_b in (
                [(g, a_reg0, b_reg0) for g in G0] + [(g, a_reg1, b_reg1) for g in G1]
            ):
                in_a = _unpack(deliveries[rank][0])
                in_b = _unpack(deliveries[rank][1])
                holdings_a[rank] = _clip_all(holdings_a[rank] + in_a, keep_a)
                holdings_b[rank] = _clip_all(holdings_b[rank] + in_b, keep_b)

        splits.append(axis)
        results = yield from merge_schedules(
            [recurse(G0, *sub0), recurse(G1, *sub1)]
        )
        del results

        if axis == "n2":
            # Pairwise exchange-and-add of the partial C contributions.
            firsts: Dict[int, List[Piece]] = {}
            seconds: Dict[int, List[Piece]] = {}
            for rank in group:
                f, s = [], []
                for piece in holdings_c[rank]:
                    if _clip(piece, c_region) is None:
                        continue  # belongs to an outer region; untouched
                    p0, p1 = _split_piece_for_combine(piece)
                    if p0 is not None:
                        f.append(p0)
                    if p1 is not None:
                        s.append(p1)
                firsts[rank], seconds[rank] = f, s
            msgs = []
            for g0, g1 in zip(G0, G1):
                msgs.append(Message(src=g0, dest=g1, payload=_pack(seconds[g0]),
                                    tag="carma combine"))
                msgs.append(Message(src=g1, dest=g0, payload=_pack(firsts[g1]),
                                    tag="carma combine"))
            deliveries = yield msgs
            for g0, g1 in zip(G0, G1):
                for rank, keep in ((g0, firsts[g0]), (g1, seconds[g1])):
                    incoming = _unpack(deliveries[rank])
                    merged = _merge_add(keep, incoming)
                    outer = [p for p in holdings_c[rank] if _clip(p, c_region) is None]
                    holdings_c[rank] = outer + merged
                    machine.compute(rank, float(sum(p[4].size for p in incoming)))

    def _merge_add(kept: List[Piece], incoming: List[Piece]) -> List[Piece]:
        """Combine geometrically identical piece lists with the semiring add."""
        by_region = {(p[0], p[1], p[2], p[3]): p[4].copy() for p in kept}
        for (r0, r1, c0, c1, arr) in incoming:
            key = (r0, r1, c0, c1)
            if key not in by_region:
                raise GridError(
                    f"CARMA combine: received piece {key} with no local match "
                    f"(geometry asymmetry)"
                )
            by_region[key] = sr.add(by_region[key], arr)
        return [(r0, r1, c0, c1, arr) for (r0, r1, c0, c1), arr in by_region.items()]

    run_schedule(machine, recurse(tuple(range(P)), (0, n1), (0, n2), (0, n3)))
    machine.trace.record("compute", f"CARMA recursion, splits: {splits}")

    C = sr.zeros((n1, n3), like=A)
    for r in range(P):
        for (r0, r1, c0, c1, arr) in holdings_c[r]:
            C[r0:r1, c0:c1] = sr.add(C[r0:r1, c0:c1], arr)

    return CarmaResult(C=C, shape=shape, P=P, cost=machine.cost,
                       machine=machine, splits=splits)
