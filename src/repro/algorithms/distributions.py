"""Block distributions of matrices onto processor grids.

Algorithm 1 requires (paper, Section 5):

* ``A``'s block ``A_{p1', p2'}`` distributed evenly across the p3-fiber
  ``(p1', p2', :)``;
* ``B``'s block ``B_{p2', p3'}`` distributed evenly across the p1-fiber
  ``(:, p2', p3')``;
* ``C``'s block ``C_{p1', p3'}`` ending up evenly distributed across the
  p2-fiber ``(p1', :, p3')``.

"Any even distribution ... suffices" (Figure 1's caption), so we use the
simplest one: flatten the block row-major and give fiber member ``t`` the
``t``-th of ``p`` nearly equal 1D shards.  Row/column block boundaries use
``numpy.array_split`` semantics, so *any* grid with ``p_i <= n_i`` works —
perfectly even blocks (and exact cost formulas) arise when each ``p_i``
divides ``n_i``.

The helpers here are also reused by the baseline algorithms (2D and 2.5D
grids are special cases with unit dimensions).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.shapes import ProblemShape
from ..exceptions import DistributionError
from ..machine.backend import as_block, empty_block
from ..machine.machine import Machine
from .grid import ProcessorGrid

__all__ = [
    "block_bounds",
    "block_of",
    "shard_bounds",
    "distribute_inputs",
    "expected_shard_words",
    "shards_divide_evenly",
    "assemble_c",
    "reference_product",
]


def block_bounds(extent: int, parts: int, index: int) -> Tuple[int, int]:
    """Half-open bounds of block ``index`` of ``extent`` split into ``parts``.

    ``numpy.array_split`` semantics: the first ``extent % parts`` blocks get
    one extra element.  Requires ``parts <= extent`` so no block is empty.
    """
    if parts < 1 or index < 0 or index >= parts:
        raise DistributionError(f"bad split: extent={extent}, parts={parts}, index={index}")
    if parts > extent:
        raise DistributionError(
            f"cannot split extent {extent} into {parts} non-empty blocks"
        )
    base, extra = divmod(extent, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def block_of(matrix: np.ndarray, parts: Tuple[int, int], index: Tuple[int, int]) -> np.ndarray:
    """The 2D block of ``matrix`` at block-index ``index`` of a
    ``parts[0] x parts[1]`` blocking (a view, not a copy)."""
    r0, r1 = block_bounds(matrix.shape[0], parts[0], index[0])
    c0, c1 = block_bounds(matrix.shape[1], parts[1], index[1])
    return matrix[r0:r1, c0:c1]


def shard_bounds(words: int, parts: int, index: int) -> Tuple[int, int]:
    """Bounds of 1D shard ``index`` when ``words`` are split into ``parts``.

    Unlike :func:`block_bounds` empty shards are allowed (``parts`` may
    exceed ``words``), because fibers can be longer than a block has words
    in degenerate tiny problems.
    """
    if parts < 1 or index < 0 or index >= parts:
        raise DistributionError(f"bad shard: words={words}, parts={parts}, index={index}")
    base, extra = divmod(words, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def expected_shard_words(shape: ProblemShape, grid: ProcessorGrid) -> Dict[str, float]:
    """Average per-processor words of each matrix's initial/final shards.

    With divisible dimensions these are exact:
    ``A``: ``n1 n2 / P``, ``B``: ``n2 n3 / P``, ``C``: ``n1 n3 / P``.
    """
    P = grid.size
    return {
        "A": shape.n1 * shape.n2 / P,
        "B": shape.n2 * shape.n3 / P,
        "C": shape.n1 * shape.n3 / P,
    }


def shards_divide_evenly(shape: ProblemShape, grid: ProcessorGrid) -> bool:
    """True when every Algorithm 1 message is perfectly even.

    Expression (3) matches the *measured* critical path exactly only when,
    in addition to each ``p_i`` dividing ``n_i``, each matrix block's word
    count divides by the fiber it is sharded across: ``p3`` must divide
    ``|A block|``, ``p1`` must divide ``|B block|`` and ``p2`` must divide
    ``|C block|``.  With ragged shards the rounds charge the largest shard
    and the measured cost sits slightly above the formula (the model is
    honest about imbalance).
    """
    if not grid.divides(shape.n1, shape.n2, shape.n3):
        return False
    a_block = (shape.n1 // grid.p1) * (shape.n2 // grid.p2)
    b_block = (shape.n2 // grid.p2) * (shape.n3 // grid.p3)
    c_block = (shape.n1 // grid.p1) * (shape.n3 // grid.p3)
    return (
        a_block % grid.p3 == 0
        and b_block % grid.p1 == 0
        and c_block % grid.p2 == 0
    )


def distribute_inputs(
    machine: Machine,
    grid: ProcessorGrid,
    A: np.ndarray,
    B: np.ndarray,
) -> ProblemShape:
    """Place one copy of ``A`` and ``B`` into the processors' stores.

    Each processor ``(c1, c2, c3)`` receives

    * ``"A_shard"``: shard ``c3`` of the flattened block ``A[c1, c2]``;
    * ``"B_shard"``: shard ``c1`` of the flattened block ``B[c2, c3]``.

    This is the algorithm's *assumed initial distribution* — the lower
    bound allows the algorithm to pick it (Section 5) — so no
    communication is charged.  Returns the problem shape.
    """
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise DistributionError(
            f"operand mismatch: A is {A.shape}, B is {B.shape}"
        )
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if grid.p1 > n1 or grid.p2 > n2 or grid.p3 > n3:
        raise DistributionError(
            f"grid {grid} too large for problem {shape}: each p_i must be <= n_i"
        )
    if machine.n_procs != grid.size:
        raise DistributionError(
            f"machine has {machine.n_procs} processors but grid {grid} needs {grid.size}"
        )

    for rank in range(grid.size):
        c1, c2, c3 = grid.coord(rank)
        a_block = block_of(A, (grid.p1, grid.p2), (c1, c2)).reshape(-1)
        lo, hi = shard_bounds(a_block.size, grid.p3, c3)
        machine.proc(rank).store["A_shard"] = a_block[lo:hi].copy()

        b_block = block_of(B, (grid.p2, grid.p3), (c2, c3)).reshape(-1)
        lo, hi = shard_bounds(b_block.size, grid.p1, c1)
        machine.proc(rank).store["B_shard"] = b_block[lo:hi].copy()

    machine.trace.record("distribute", f"inputs onto grid {grid}")
    return shape


def assemble_c(
    machine: Machine,
    shape: ProblemShape,
    grid: ProcessorGrid,
    key: str = "C_shard",
) -> np.ndarray:
    """Reassemble the global ``C`` from per-processor shards (verification).

    This is a god-view read of the stores used only to check numerical
    correctness; it charges no communication (a real program would leave
    ``C`` distributed, exactly as the lower bound's "one copy of the output"
    accounting assumes).
    """
    sample = machine.proc(0).store[key]
    C = empty_block((shape.n1, shape.n3), like=sample)
    for c1 in range(grid.p1):
        for c3 in range(grid.p3):
            r0, r1 = block_bounds(shape.n1, grid.p1, c1)
            k0, k1 = block_bounds(shape.n3, grid.p3, c3)
            block_words = (r1 - r0) * (k1 - k0)
            flat = empty_block((block_words,), like=sample)
            for c2 in range(grid.p2):
                lo, hi = shard_bounds(block_words, grid.p2, c2)
                shard = machine.proc(grid.rank((c1, c2, c3))).store[key]
                if shard.size != hi - lo:
                    raise DistributionError(
                        f"shard {key} at {(c1, c2, c3)} has {shard.size} words, "
                        f"expected {hi - lo}"
                    )
                flat[lo:hi] = shard.reshape(-1)
            C[r0:r1, k0:k1] = flat.reshape(r1 - r0, k1 - k0)
    return C


def reference_product(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """The numpy reference ``A @ B`` all algorithms are checked against."""
    return as_block(A) @ as_block(B)
