"""Optimal processor grid selection — Section 5.2.

Given matrix dimensions and ``P`` processors, choose grid dimensions
``p, q, r`` (associated with the sorted dimensions ``m >= n >= k``) so
Algorithm 1 attains the Theorem 3 lower bound:

* **Case 1** (``P <= m/n``): 1D grid ``(P, 1, 1)`` — split only the
  largest dimension.
* **Case 2** (``m/n <= P <= mn/k^2``): 2D grid with ``m/p = n/q``:
  ``p = sqrt(P m / n)``, ``q = sqrt(P n / m)``, ``r = 1``.
* **Case 3** (``mn/k^2 <= P``): 3D grid with cubical local volumes
  ``m/p = n/q = k/r``: ``p = (P/(mnk))^(1/3) m`` etc. (Agarwal et al. 1995).

The continuous formulas above rarely give integers, so this module offers
two entries:

* :func:`continuous_optimal_grid` — the exact real-valued optimum (used to
  verify the case structure and as a search anchor);
* :func:`select_grid` — the best *integer* grid, found by enumerating all
  ordered factor triples of ``P`` and minimizing expression (3), optionally
  restricted to grids that divide the matrix dimensions (required to run
  the executable Algorithm 1 evenly).

For the paper's Figure 2 example (9600 x 2400 x 600) the integer search
recovers exactly the grids in the figure: ``3x1x1``, ``12x3x1``, ``32x8x2``.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Iterator, List, Optional, Tuple

from ..core.cases import Regime, classify
from ..core.shapes import ProblemShape
from ..exceptions import GridError
from .cost_models import alg1_cost
from .grid import ProcessorGrid

__all__ = [
    "GridChoice",
    "continuous_optimal_grid",
    "factor_triples",
    "select_grid",
    "sorted_divisors",
    "grid_is_exactly_optimal",
]


@dataclasses.dataclass(frozen=True)
class GridChoice:
    """A selected grid together with its predicted cost and context."""

    grid: ProcessorGrid
    cost: float
    regime: Regime
    divides: bool


def _sorted_axis_order(shape: ProblemShape) -> Tuple[int, int, int]:
    """Positions of the dimensions sorted descending.

    Returns indices ``(im, in_, ik)`` into ``(n1, n2, n3)`` such that
    ``dims[im] >= dims[in_] >= dims[ik]`` (stable on ties).
    """
    dims = shape.dims
    order = sorted(range(3), key=lambda i: (-dims[i], i))
    return tuple(order)  # type: ignore[return-value]


def continuous_optimal_grid(shape: ProblemShape, P: int) -> Tuple[float, float, float]:
    """Real-valued optimal grid ``(p1, p2, p3)`` in the original axis order.

    The case formulas of Section 5.2, mapped from sorted ``(p, q, r)`` back
    to the dimensions they split.  Products equal ``P`` exactly.
    """
    if P < 1:
        raise GridError(f"P must be at least 1, got {P}")
    m, n, k = shape.sorted_dims
    regime = classify(shape, P)
    if regime is Regime.ONE_D:
        p, q, r = float(P), 1.0, 1.0
    elif regime is Regime.TWO_D:
        p = (P * m / n) ** 0.5
        q = (P * n / m) ** 0.5
        r = 1.0
    else:
        scale = (P / (m * n * k)) ** (1.0 / 3.0)
        p, q, r = scale * m, scale * n, scale * k
    grid = [0.0, 0.0, 0.0]
    im, in_, ik = _sorted_axis_order(shape)
    grid[im], grid[in_], grid[ik] = p, q, r
    return tuple(grid)  # type: ignore[return-value]


@functools.lru_cache(maxsize=4096)
def sorted_divisors(P: int) -> Tuple[int, ...]:
    """Ascending divisors of ``P``, found by trial division up to ``sqrt(P)``.

    ``O(sqrt(P))`` instead of the naive ``O(P)`` scan — the difference
    between milliseconds and minutes for the planner's ``P = 10^7``
    atlases.  Cached: sweeps and planners ask for the same processor
    counts over and over.
    """
    if P < 1:
        raise GridError(f"P must be at least 1, got {P}")
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= P:
        if P % d == 0:
            small.append(d)
            if d != P // d:
                large.append(P // d)
        d += 1
    return tuple(small + large[::-1])


def factor_triples(P: int) -> Iterator[Tuple[int, int, int]]:
    """All ordered triples ``(p1, p2, p3)`` of positive ints with product ``P``.

    Iteration order (``p1`` ascending, then ``p2`` ascending) is part of
    the contract: :func:`select_grid`'s tie-break depends on which
    candidate it sees first, and the golden fixtures pin the result.
    The divisors of ``P`` that divide ``rest = P // p1`` are exactly the
    divisors of ``rest``, so enumerating ``sorted_divisors(rest)`` yields
    the same triples in the same order as the historical scan over all
    divisors of ``P`` filtered by ``rest % d == 0``.
    """
    for p1 in sorted_divisors(P):
        rest = P // p1
        for p2 in sorted_divisors(rest):
            yield (p1, p2, rest // p2)


def select_grid(
    shape: ProblemShape,
    P: int,
    require_divisibility: bool = False,
    alpha: float = 0.0,
    beta: float = 1.0,
) -> GridChoice:
    """The best integer grid for ``shape`` on ``P`` processors.

    Enumerates every ordered factor triple of ``P`` and picks the one
    minimizing ``alpha * rounds + beta * words`` — with the default
    ``alpha = 0`` that is exactly expression (3), the paper's
    bandwidth-only objective.  A positive ``alpha`` trades bandwidth for
    latency (fewer, larger messages), which matters for small problems on
    high-latency networks.

    With ``require_divisibility=True`` only grids whose dimensions divide
    the matrix dimensions are considered (needed to *run* Algorithm 1 with
    perfectly even blocks); a :class:`~repro.exceptions.GridError` is
    raised when none exists.

    Ties are broken toward the lexicographically largest-first grid, which
    matches the paper's convention of splitting bigger dimensions more.

    The returned ``GridChoice.cost`` is always the bandwidth words
    (expression 3), regardless of the selection objective.

    Examples
    --------
    >>> s = ProblemShape(9600, 2400, 600)
    >>> select_grid(s, 3).grid.dims
    (3, 1, 1)
    >>> select_grid(s, 36).grid.dims
    (12, 3, 1)
    >>> select_grid(s, 512).grid.dims
    (32, 8, 2)
    """
    outcome = _select_grid_outcome(shape, P, require_divisibility, alpha, beta)
    if isinstance(outcome, GridError):
        raise outcome
    return outcome


@functools.lru_cache(maxsize=65536)
def _select_grid_outcome(
    shape: ProblemShape,
    P: int,
    require_divisibility: bool,
    alpha: float,
    beta: float,
):
    """The memoized body of :func:`select_grid`.

    Returns the :class:`GridChoice`, or the :class:`GridError` to raise —
    refusals are as hot as successes in applicability scans and planner
    sweeps, and ``lru_cache`` alone would recompute a raising call every
    time, so both outcomes are cached as values.
    """
    from .cost_models import alg1_time

    best: Optional[GridChoice] = None
    best_objective = float("inf")
    n1, n2, n3 = shape.dims
    for dims in factor_triples(P):
        grid = ProcessorGrid(*dims)
        divides = grid.divides(n1, n2, n3)
        if require_divisibility and not divides:
            continue
        objective = alg1_time(shape, grid, alpha=alpha, beta=beta)
        candidate = GridChoice(
            grid=grid, cost=alg1_cost(shape, grid),
            regime=classify(shape, P), divides=divides,
        )
        if best is None or objective < best_objective - 1e-12 or (
            abs(objective - best_objective) <= 1e-12 and dims > best.grid.dims
        ):
            best = candidate
            best_objective = objective
    if best is None:
        return GridError(
            f"no factor triple of P={P} divides the dimensions {shape.dims}"
        )
    return best


def grid_is_exactly_optimal(shape: ProblemShape, P: int, grid: ProcessorGrid) -> bool:
    """Does ``grid`` attain the Theorem 3 bound *exactly*?

    True iff expression (3) on this grid equals
    ``D - (mn + mk + nk)/P``; this happens precisely when the grid matches
    the continuous optimum (the integrality assumption of Section 5.2).
    """
    from ..core.lower_bounds import communication_lower_bound

    cost = alg1_cost(shape, grid)
    bound = communication_lower_bound(shape, P)
    return abs(cost - bound) <= 1e-9 * max(1.0, bound)


def divisor_grids(shape: ProblemShape, P: int) -> List[GridChoice]:
    """All divisibility-respecting grids, sorted by predicted cost.

    Useful for ablations over suboptimal grid choices.
    """
    n1, n2, n3 = shape.dims
    out = []
    for dims in factor_triples(P):
        grid = ProcessorGrid(*dims)
        if grid.divides(n1, n2, n3):
            out.append(
                GridChoice(
                    grid=grid,
                    cost=alg1_cost(shape, grid),
                    regime=classify(shape, P),
                    divides=True,
                )
            )
    out.sort(key=lambda c: c.cost)
    return out
