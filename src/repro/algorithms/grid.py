"""Logical 3D processor grids.

Algorithm 1 organizes the ``P`` processors into a ``p1 x p2 x p3`` grid
(``p1 p2 p3 = P``); processor coordinates index the 3D iteration space of
the multiplication, and each processor participates in three *fibers* —
the 1D sub-grids obtained by freezing two of its coordinates:

* the **p3-fiber** ``(p1', p2', :)`` — the All-Gather group for its block
  of ``A``;
* the **p1-fiber** ``(:, p2', p3')`` — the All-Gather group for its block
  of ``B``;
* the **p2-fiber** ``(p1', :, p3')`` — the Reduce-Scatter group for its
  block of ``C``.

Coordinates here are 0-based (the paper uses 1-based); ranks are laid out
with ``p3`` fastest, matching ``numpy.unravel_index`` on shape
``(p1, p2, p3)``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

from ..exceptions import GridError

__all__ = ["ProcessorGrid"]

Coord = Tuple[int, int, int]


@dataclasses.dataclass(frozen=True)
class ProcessorGrid:
    """A ``p1 x p2 x p3`` logical grid over ranks ``0 .. p1*p2*p3 - 1``.

    Examples
    --------
    >>> g = ProcessorGrid(3, 3, 3)       # the Figure 1 grid
    >>> g.size
    27
    >>> g.coord(g.rank((0, 2, 0)))       # the paper's processor (1, 3, 1)
    (0, 2, 0)
    >>> g.fiber(3, (0, 2, 0))            # its All-Gather group for A
    (6, 7, 8)
    """

    p1: int
    p2: int
    p3: int

    def __post_init__(self) -> None:
        for name, value in (("p1", self.p1), ("p2", self.p2), ("p3", self.p3)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise GridError(f"grid dimension {name} must be a positive int, got {value!r}")

    # ------------------------------------------------------------------ #
    # geometry                                                           #
    # ------------------------------------------------------------------ #

    @property
    def dims(self) -> Coord:
        return (self.p1, self.p2, self.p3)

    @property
    def size(self) -> int:
        """Total number of processors ``P = p1 p2 p3``."""
        return self.p1 * self.p2 * self.p3

    def effective_dimensionality(self) -> int:
        """How many grid dimensions exceed 1 (3D, 2D, 1D or 0D grid)."""
        return sum(1 for p in self.dims if p > 1)

    def rank(self, coord: Coord) -> int:
        """Global rank of the processor at ``coord`` (row-major, p3 fastest)."""
        c1, c2, c3 = coord
        if not (0 <= c1 < self.p1 and 0 <= c2 < self.p2 and 0 <= c3 < self.p3):
            raise GridError(f"coordinate {coord} outside grid {self.dims}")
        return (c1 * self.p2 + c2) * self.p3 + c3

    def coord(self, rank: int) -> Coord:
        """Grid coordinate of a global rank."""
        if not 0 <= rank < self.size:
            raise GridError(f"rank {rank} outside grid of size {self.size}")
        c3 = rank % self.p3
        c2 = (rank // self.p3) % self.p2
        c1 = rank // (self.p2 * self.p3)
        return (c1, c2, c3)

    def coords(self) -> Iterator[Coord]:
        """All coordinates in rank order."""
        for r in range(self.size):
            yield self.coord(r)

    # ------------------------------------------------------------------ #
    # fibers                                                             #
    # ------------------------------------------------------------------ #

    def fiber(self, axis: int, coord: Coord) -> Tuple[int, ...]:
        """The 1D fiber through ``coord`` along grid ``axis`` (1, 2 or 3).

        Returns the global ranks of the group, ordered by the varying
        coordinate.  Axis 3 varies ``p3'`` (A's All-Gather group), axis 1
        varies ``p1'`` (B's), axis 2 varies ``p2'`` (C's Reduce-Scatter).
        """
        c1, c2, c3 = coord
        if axis == 1:
            return tuple(self.rank((v, c2, c3)) for v in range(self.p1))
        if axis == 2:
            return tuple(self.rank((c1, v, c3)) for v in range(self.p2))
        if axis == 3:
            return tuple(self.rank((c1, c2, v)) for v in range(self.p3))
        raise GridError(f"axis must be 1, 2 or 3, got {axis}")

    def fibers(self, axis: int) -> List[Tuple[int, ...]]:
        """All disjoint fibers along ``axis``, covering every processor once.

        These are the groups over which Algorithm 1's collectives run
        simultaneously: ``p1*p2`` fibers of length ``p3`` for axis 3, etc.
        """
        groups: List[Tuple[int, ...]] = []
        if axis == 1:
            for c2 in range(self.p2):
                for c3 in range(self.p3):
                    groups.append(self.fiber(1, (0, c2, c3)))
        elif axis == 2:
            for c1 in range(self.p1):
                for c3 in range(self.p3):
                    groups.append(self.fiber(2, (c1, 0, c3)))
        elif axis == 3:
            for c1 in range(self.p1):
                for c2 in range(self.p2):
                    groups.append(self.fiber(3, (c1, c2, 0)))
        else:
            raise GridError(f"axis must be 1, 2 or 3, got {axis}")
        return groups

    def divides(self, n1: int, n2: int, n3: int) -> bool:
        """True when each grid dimension divides its matrix dimension."""
        return n1 % self.p1 == 0 and n2 % self.p2 == 0 and n3 % self.p3 == 0

    def __str__(self) -> str:
        return f"{self.p1}x{self.p2}x{self.p3}"
