"""The 2.5D matrix multiplication algorithm of Solomonik & Demmel (baseline).

On a ``q x q x c`` grid (``P = q^2 c``, ``c | q``), the inputs are stored
once on layer 0, replicated ``c`` ways with depth broadcasts, and each
layer executes ``q/c`` of Cannon's shift stages on its own offset of the
contraction index; finally ``C`` contributions are summed across layers
with depth reductions.

Per-processor communication is ``O(n^2 / sqrt(c P))`` for square ``n`` —
interpolating between Cannon (``c = 1``, where this implementation
degenerates to exactly Cannon's schedule) and a 3D algorithm
(``c = P^(1/3)``).  The 2.5D family is the classic way to trade extra
memory (``c`` copies) for less communication in the limited-memory regime
of Section 6.2; the bench suite compares it against Algorithm 1 and the
memory-dependent bound.

The broadcast delivers each block directly to the *skewed* position every
layer needs (the replication and Cannon pre-skew are fused), so layer
``l``'s processor ``(i, j)`` starts holding ``A(i, i + j + l q/c)`` and
``B(i + j + l q/c, j)`` (indices mod ``q``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..collectives.communicator import parallel_broadcast
from ..collectives.reduce import reduce_schedule
from ..collectives.schedules import run_schedules
from ..core.shapes import ProblemShape
from ..exceptions import GridError
from ..machine.backend import as_block, backend_for, empty_block
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.message import Message
from ..machine.semiring import Semiring, resolve_semiring
from .distributions import block_bounds

__all__ = ["C25DResult", "run_25d"]


@dataclasses.dataclass
class C25DResult:
    """Output of a 2.5D run."""

    C: np.ndarray
    shape: ProblemShape
    q: int
    c: int
    cost: Cost
    machine: Machine


def _reduce_scatter_gather(group, root, values, machine, op="sum"):
    """Depth reduction as Reduce-Scatter + binomial gather to ``root``.

    Bandwidth ``2 (1 - 1/c) w`` versus the binomial tree's
    ``ceil(log2 c) w`` — the standard long-message reduction.
    """
    import numpy as _np

    from ..collectives.gather import gather_binomial
    from ..collectives.reduce_scatter import reduce_scatter_ring

    group = tuple(group)
    p = len(group)
    shape = as_block(values[group[0]]).shape
    splits = {
        r: _np.array_split(as_block(values[r], dtype=float).reshape(-1), p)
        for r in group
    }
    reduced = yield from reduce_scatter_ring(group, splits, machine=machine, op=op)
    gathered = yield from gather_binomial(group, root, {r: reduced[r] for r in group})
    flat = _np.concatenate([as_block(chunk).reshape(-1) for chunk in gathered[root]])
    out = {r: None for r in group}
    out[root] = flat.reshape(shape)
    return out


def run_25d(
    A: np.ndarray,
    B: np.ndarray,
    q: int,
    c: int,
    machine: Optional[Machine] = None,
    pre_skewed: bool = False,
    reduce_algorithm: str = "binomial",
    semiring: Optional[Semiring] = None,
) -> C25DResult:
    """Run the 2.5D algorithm on a ``q x q x c`` grid.

    Requires ``c | q`` and ``q <= min(n1, n2, n3)`` (ragged blocks are
    supported like in Cannon).

    ``pre_skewed=True`` starts from the Cannon-skewed initial distribution
    (processor ``(i, j, 0)`` owns ``A(i, (j+i) mod q)`` and
    ``B((i+j) mod q, j)``) — a legitimate choice since the lower bound lets
    the algorithm pick its distribution — saving the two skew rounds.
    ``reduce_algorithm`` selects the depth reduction: ``"binomial"``
    (``log2 c`` rounds of full blocks) or ``"reduce_scatter_gather"``
    (bandwidth ``2 (1 - 1/c) w``, better for ``c > 4``).
    ``semiring`` selects the scalar multiply-accumulate and the depth
    reduction's operator (default ``plus_times``); costs are identical
    for every semiring.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((8, 8)), rng.random((8, 8))
    >>> res = run_25d(A, B, q=4, c=2)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if c < 1 or q < 1 or q % c:
        raise GridError(f"2.5D needs c | q, got q={q}, c={c}")
    if q > min(n1, n2, n3):
        raise GridError(f"q={q} exceeds the smallest dimension of {shape}")
    P = q * q * c
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(f"machine has {machine.n_procs} processors, need {P}")

    def rank(i: int, j: int, l: int) -> int:
        return (i * q + j) * c + l

    stride = q // c

    if pre_skewed:
        # Skewed initial distribution: (i, j, 0) directly owns the block
        # Cannon's skews would have delivered — no communication.
        for i in range(q):
            for j in range(q):
                r = rank(i, j, 0)
                jj = (j + i) % q
                r0, r1 = block_bounds(n1, q, i)
                c0, c1 = block_bounds(n2, q, jj)
                machine.proc(r).store["A0"] = A[r0:r1, c0:c1].copy()
                ii = (i + j) % q
                r0, r1 = block_bounds(n2, q, ii)
                c0, c1 = block_bounds(n3, q, j)
                machine.proc(r).store["B0"] = B[r0:r1, c0:c1].copy()
        machine.trace.record(
            "distribute", f"2.5D pre-skewed layer-0 blocks on {q}x{q}x{c} grid"
        )
    else:
        # Layer 0 holds the canonical block distribution.
        for i in range(q):
            for j in range(q):
                r = rank(i, j, 0)
                r0, r1 = block_bounds(n1, q, i)
                c0, c1 = block_bounds(n2, q, j)
                machine.proc(r).store["A0"] = A[r0:r1, c0:c1].copy()
                r0, r1 = block_bounds(n2, q, i)
                c0, c1 = block_bounds(n3, q, j)
                machine.proc(r).store["B0"] = B[r0:r1, c0:c1].copy()
        machine.trace.record("distribute", f"2.5D layer-0 blocks on {q}x{q}x{c} grid")

        # Phase 1: Cannon pre-skew on layer 0.  A(i, j) moves left by i so
        # processor (i, j, 0) holds A(i, (j + i) % q); B(i, j) moves up by j.
        msgs = []
        for i in range(q):
            for j in range(q):
                if i % q == 0:
                    continue
                src = rank(i, j, 0)
                msgs.append(Message(
                    src=src, dest=rank(i, (j - i) % q, 0),
                    payload=machine.proc(src).store["A0"], tag="skew A",
                ))
        for dest, payload in machine.exchange(msgs).items():
            machine.proc(dest).store["A0"] = payload
        msgs = []
        for i in range(q):
            for j in range(q):
                if j % q == 0:
                    continue
                src = rank(i, j, 0)
                msgs.append(Message(
                    src=src, dest=rank((i - j) % q, j, 0),
                    payload=machine.proc(src).store["B0"], tag="skew B",
                ))
        for dest, payload in machine.exchange(msgs).items():
            machine.proc(dest).store["B0"] = payload
        machine.trace.record("shift", "layer-0 Cannon pre-skews")

    # Phase 2: replicate along skewed depth groups.  Layer l's processor
    # (i, j, l) must start from A(i, (j + i + l*stride) % q), which after
    # the skew resides at layer-0 processor (i, (j + l*stride) % q, 0); so
    # the group rooted at (i, j0, 0) is {(i, (j0 - l*stride) % q, l)}.
    # These groups are disjoint (per layer the map is a bijection) and each
    # contains its root (the l = 0 member), so they broadcast in parallel.
    if c > 1:
        a_groups, a_roots, a_values = [], [], {}
        b_groups, b_roots, b_values = [], [], {}
        for i in range(q):
            for j0 in range(q):
                root = rank(i, j0, 0)
                a_groups.append(tuple(rank(i, (j0 - l * stride) % q, l) for l in range(c)))
                a_roots.append(root)
                a_values[root] = machine.proc(root).store["A0"]
        for i0 in range(q):
            for j in range(q):
                root = rank(i0, j, 0)
                b_groups.append(tuple(rank((i0 - l * stride) % q, j, l) for l in range(c)))
                b_roots.append(root)
                b_values[root] = machine.proc(root).store["B0"]
        a_recv = parallel_broadcast(machine, a_groups, a_roots, a_values, label="replicate A")
        b_recv = parallel_broadcast(machine, b_groups, b_roots, b_values, label="replicate B")
        for grp in a_groups:
            for r in grp:
                machine.proc(r).store["A"] = as_block(a_recv[r])
        for grp in b_groups:
            for r in grp:
                machine.proc(r).store["B"] = as_block(b_recv[r])
    else:
        for i in range(q):
            for j in range(q):
                r = rank(i, j, 0)
                machine.proc(r).store["A"] = machine.proc(r).store["A0"]
                machine.proc(r).store["B"] = machine.proc(r).store["B0"]

    # Each layer runs q/c Cannon stages, shifting within its own layer.
    partials: Dict[Tuple[int, int, int], Optional[np.ndarray]] = {}
    for step in range(stride):
        for l in range(c):
            for i in range(q):
                for j in range(q):
                    r = rank(i, j, l)
                    a_blk = machine.proc(r).store["A"]
                    b_blk = machine.proc(r).store["B"]
                    prod = sr.matmul(a_blk, b_blk)
                    machine.compute(
                        r, float(a_blk.shape[0] * a_blk.shape[1] * b_blk.shape[1])
                    )
                    key = (i, j, l)
                    partials[key] = (
                        prod if key not in partials else sr.add(partials[key], prod)
                    )
        if step < stride - 1:
            msgs = []
            for l in range(c):
                for i in range(q):
                    for j in range(q):
                        src = rank(i, j, l)
                        msgs.append(Message(
                            src=src, dest=rank(i, (j - 1) % q, l),
                            payload=machine.proc(src).store["A"], tag="shift A",
                        ))
            deliveries = machine.exchange(msgs)
            for dest, payload in deliveries.items():
                machine.proc(dest).store["A"] = payload
            msgs = []
            for l in range(c):
                for i in range(q):
                    for j in range(q):
                        src = rank(i, j, l)
                        msgs.append(Message(
                            src=src, dest=rank((i - 1) % q, j, l),
                            payload=machine.proc(src).store["B"], tag="shift B",
                        ))
            deliveries = machine.exchange(msgs)
            for dest, payload in deliveries.items():
                machine.proc(dest).store["B"] = payload
    machine.trace.record("compute", f"{stride} Cannon stages per layer")

    # Sum C contributions across depth fibers onto layer 0.
    if c > 1:
        schedules = []
        groups = []
        for i in range(q):
            for j in range(q):
                group = tuple(rank(i, j, l) for l in range(c))
                values = {rank(i, j, l): partials[(i, j, l)] for l in range(c)}
                if reduce_algorithm == "binomial":
                    schedules.append(
                        reduce_schedule(group, rank(i, j, 0), values, machine=machine,
                                        op=sr.reduce_op)
                    )
                elif reduce_algorithm == "reduce_scatter_gather":
                    schedules.append(
                        _reduce_scatter_gather(group, rank(i, j, 0), values, machine,
                                               op=sr.reduce_op)
                    )
                else:
                    raise GridError(
                        f"reduce_algorithm must be 'binomial' or "
                        f"'reduce_scatter_gather', got {reduce_algorithm!r}"
                    )
                groups.append(group)
        before = machine.cost
        results = run_schedules(machine, schedules)
        machine.trace.record(
            "reduce", "sum C across layers", groups=tuple(groups),
            cost=machine.cost - before,
        )
        summed: Dict[Tuple[int, int], np.ndarray] = {}
        for res, group in zip(results, groups):
            root = group[0]
            i, j = root // (q * c), (root // c) % q
            summed[(i, j)] = res[root]
    else:
        summed = {(i, j): partials[(i, j, 0)] for i in range(q) for j in range(q)}

    C = empty_block((n1, n3), like=A)
    for i in range(q):
        for j in range(q):
            machine.proc(rank(i, j, 0)).store["C"] = summed[(i, j)]
            r0, r1 = block_bounds(n1, q, i)
            c0, c1 = block_bounds(n3, q, j)
            C[r0:r1, c0:c1] = summed[(i, j)]

    return C25DResult(C=C, shape=shape, q=q, c=c, cost=machine.cost, machine=machine)
