"""Parallel matrix multiplication algorithms on the simulated machine.

* :mod:`~repro.algorithms.alg1` — the paper's Algorithm 1 (All-Gather /
  All-Gather / Reduce-Scatter on a 3D grid), which attains Theorem 3's
  bound exactly with the Section 5.2 grid;
* :mod:`~repro.algorithms.grid` / :mod:`~repro.algorithms.grid_selection` /
  :mod:`~repro.algorithms.cost_models` — grids, the optimal-grid selection
  and the closed-form expression (3);
* baselines: :mod:`~repro.algorithms.summa`, :mod:`~repro.algorithms.cannon`,
  :mod:`~repro.algorithms.c25d`, :mod:`~repro.algorithms.carma`,
  :mod:`~repro.algorithms.naive`;
* :mod:`~repro.algorithms.registry` — a uniform interface for sweeps.
"""

from .alg1 import Alg1Result, run_alg1
from .blocked_gemm import (
    SequentialGemmResult,
    run_blocked_gemm,
    run_naive_gemm,
    run_optimal_gemm,
    sequential_lower_bound,
)
from .c25d import C25DResult, run_25d
from .cannon import CannonResult, cannon_predicted_words, run_cannon
from .carma import CarmaResult, run_carma
from .fox import FoxResult, run_fox
from .fox_otto import run_fox_otto
from .cost_models import (
    Alg1CostBreakdown,
    alg1_cost,
    alg1_cost_terms,
    alg1_latency_rounds,
    alg1_memory_words,
    alg1_time,
)
from .distributions import (
    assemble_c,
    block_bounds,
    block_of,
    distribute_inputs,
    expected_shard_words,
    reference_product,
    shard_bounds,
    shards_divide_evenly,
)
from .grid import ProcessorGrid
from .limited_memory import run_alg1_chunked
from .grid_selection import (
    GridChoice,
    continuous_optimal_grid,
    divisor_grids,
    factor_triples,
    grid_is_exactly_optimal,
    select_grid,
)
from .naive import OneDResult, run_outer_1d, run_row_1d
from .registry import (
    REGISTRY,
    AlgorithmEntry,
    AlgorithmRun,
    applicable_algorithms,
    run_algorithm,
)
from .summa import SummaResult, run_summa

__all__ = [
    "Alg1CostBreakdown",
    "Alg1Result",
    "AlgorithmEntry",
    "AlgorithmRun",
    "C25DResult",
    "CannonResult",
    "CarmaResult",
    "GridChoice",
    "OneDResult",
    "ProcessorGrid",
    "REGISTRY",
    "SummaResult",
    "alg1_cost",
    "alg1_cost_terms",
    "alg1_latency_rounds",
    "alg1_time",
    "alg1_memory_words",
    "applicable_algorithms",
    "assemble_c",
    "block_bounds",
    "block_of",
    "cannon_predicted_words",
    "continuous_optimal_grid",
    "distribute_inputs",
    "divisor_grids",
    "expected_shard_words",
    "factor_triples",
    "grid_is_exactly_optimal",
    "reference_product",
    "run_25d",
    "run_alg1",
    "run_alg1_chunked",
    "run_algorithm",
    "FoxResult",
    "run_cannon",
    "run_fox",
    "run_fox_otto",
    "run_naive_gemm",
    "run_optimal_gemm",
    "run_blocked_gemm",
    "sequential_lower_bound",
    "SequentialGemmResult",
    "run_carma",
    "run_outer_1d",
    "run_row_1d",
    "run_summa",
    "select_grid",
    "shard_bounds",
    "shards_divide_evenly",
]
