"""Name-based algorithm registry for sweeps and benchmarks.

Each entry adapts an algorithm to the common signature
``run(A, B, P) -> AlgorithmRun`` choosing reasonable configuration
(e.g. the Section 5.2 optimal grid for Algorithm 1, the nearest square
grid for Cannon/SUMMA).  Entries report applicability so sweeps can skip
combinations an algorithm does not support (Cannon needs a square ``P``,
CARMA a power of two, ...).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Optional

import numpy as np

from ..collectives.schedules import is_power_of_two
from ..core.shapes import ProblemShape
from ..exceptions import InvalidProblemError, ShapeError
from ..machine.backend import SymbolicBlock, is_symbolic, resolve_backend
from ..machine.cost import Cost
from ..machine.semiring import Semiring, resolve_semiring
from ..obs.attainment import Attainment, bound_attainment
from .abft import (
    abft_summa_grid,
    alg1_abft_grid,
    run_alg1_abft,
    run_summa_abft,
)
from .alg1 import run_alg1
from .cannon import run_cannon
from .fox import run_fox
from .fox_otto import run_fox_otto
from .carma import run_carma
from .c25d import run_25d
from .grid_selection import select_grid, sorted_divisors
from .naive import run_outer_1d, run_row_1d
from .summa import run_summa

__all__ = [
    "AlgorithmRun",
    "AlgorithmEntry",
    "REGISTRY",
    "run_algorithm",
    "validate_problem",
    "applicable_algorithms",
    "summa_grid",
    "c25d_grid",
    "abft_summa_grid",
    "alg1_abft_grid",
]


@dataclasses.dataclass
class AlgorithmRun:
    """Uniform result record for registry-driven runs.

    ``attainment`` (populated by :func:`run_algorithm`) carries the
    bound-attainment gauges: measured words over the Theorem 3 lower
    bound — 1.0 exactly for Algorithm 1 on an optimal grid, strictly
    above 1.0 for suboptimal baselines.  ``machine`` is the simulated
    machine the run executed on (span trace, metrics registry and per-rank
    counters included), so sweeps and the experiment ledger can derive
    load-imbalance gauges without re-running anything.
    """

    name: str
    C: np.ndarray
    shape: ProblemShape
    P: int
    cost: Cost
    config: str
    attainment: Optional[Attainment] = None
    machine: Optional[object] = None
    semiring: str = "plus_times"


@dataclasses.dataclass(frozen=True)
class AlgorithmEntry:
    """A runnable algorithm with an applicability predicate."""

    name: str
    description: str
    applicable: Callable[[ProblemShape, int], bool]
    run: Callable[[np.ndarray, np.ndarray, int], AlgorithmRun]


def _shape_of(A: np.ndarray, B: np.ndarray) -> ProblemShape:
    return ProblemShape(A.shape[0], A.shape[1], B.shape[1])


def _sr_name(semiring, default: str = "plus_times") -> str:
    """Resolved semiring name for the run record (``default`` when unset)."""
    if semiring is None:
        return default
    return resolve_semiring(semiring).name


def _run_alg1_optimal(
    A: np.ndarray, B: np.ndarray, P: int, collective_algorithm: str = "auto",
    semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    shape = _shape_of(A, B)
    choice = select_grid(shape, P)
    res = run_alg1(
        A, B, choice.grid, collective_algorithm=collective_algorithm,
        semiring=semiring,
    )
    config = f"grid {choice.grid}"
    if collective_algorithm != "auto":
        config += f", collectives {collective_algorithm}"
    return AlgorithmRun(
        name="alg1", C=res.C, shape=shape, P=P, cost=res.cost,
        config=config, machine=res.machine, semiring=_sr_name(semiring),
    )


def _alg1_applicable(shape: ProblemShape, P: int) -> bool:
    try:
        choice = select_grid(shape, P)
    except Exception:
        return False
    g = choice.grid
    return g.p1 <= shape.n1 and g.p2 <= shape.n2 and g.p3 <= shape.n3


def _run_cannon_square(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    q = math.isqrt(P)
    res = run_cannon(A, B, q, semiring=semiring)
    return AlgorithmRun(
        name="cannon", C=res.C, shape=res.shape, P=P, cost=res.cost,
        config=f"grid {q}x{q}", machine=res.machine, semiring=_sr_name(semiring),
    )


def _run_fox_square(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    q = math.isqrt(P)
    res = run_fox(A, B, q, semiring=semiring)
    return AlgorithmRun(
        name="fox", C=res.C, shape=res.shape, P=P, cost=res.cost,
        config=f"grid {q}x{q}", machine=res.machine, semiring=_sr_name(semiring),
    )


def _run_fox_otto_square(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    q = math.isqrt(P)
    res = run_fox_otto(A, B, q, semiring=semiring)
    return AlgorithmRun(
        name="fox_otto", C=res.C, shape=res.shape, P=P, cost=res.cost,
        config=f"grid {q}x{q}", machine=res.machine,
        semiring=_sr_name(semiring, default="min_plus"),
    )


def _cannon_applicable(shape: ProblemShape, P: int) -> bool:
    q = math.isqrt(P)
    return q * q == P and q <= min(shape.dims)


def summa_grid(shape: ProblemShape, P: int) -> Optional[tuple]:
    """Most balanced pr x pc factorization satisfying SUMMA's divisibility.

    Public because the analytic oracle (:mod:`repro.analysis.oracle`) must
    predict costs for *exactly* the grid the registry run would use.
    """
    best = None
    for pr in sorted_divisors(P):  # ascending: same scan order as range(1, P+1)
        pc = P // pr
        if shape.n1 % pr or shape.n2 % pr or shape.n2 % pc or shape.n3 % pc:
            continue
        score = abs(pr - pc)
        if best is None or score < best[0]:
            best = (score, pr, pc)
    return None if best is None else (best[1], best[2])


#: Backward-compatible alias (the picker predates its public exposure).
_summa_grid = summa_grid


def c25d_grid(shape: ProblemShape, P: int) -> Optional[tuple]:
    """The ``(q, c)`` the 2.5D auto-runner picks: largest ``c`` with
    ``P = q^2 c``, ``c | q`` and ``q <= min(dims)``; ``None`` if infeasible.

    Shared with the analytic oracle so both sides agree on the grid.
    """
    best = None
    for c in sorted_divisors(P):  # ascending: same scan order as range(1, P+1)
        q = math.isqrt(P // c)
        if q * q * c != P or q % c or q > min(shape.dims):
            continue
        if best is None or c > best[1]:
            best = (q, c)
    return best


def _run_summa_auto(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    shape = _shape_of(A, B)
    grid = summa_grid(shape, P)
    if grid is None:
        raise ValueError(f"no SUMMA grid for {shape} on P={P}")
    res = run_summa(A, B, *grid, semiring=semiring)
    return AlgorithmRun(
        name="summa", C=res.C, shape=shape, P=P, cost=res.cost,
        config=f"grid {grid[0]}x{grid[1]}", machine=res.machine,
        semiring=_sr_name(semiring),
    )


def _run_25d_auto(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    shape = _shape_of(A, B)
    best = c25d_grid(shape, P)
    if best is None:
        raise ValueError(f"no 2.5D grid for {shape} on P={P}")
    res = run_25d(A, B, best[0], best[1], semiring=semiring)
    return AlgorithmRun(
        name="c25d", C=res.C, shape=shape, P=P, cost=res.cost,
        config=f"grid {best[0]}x{best[0]}x{best[1]}", machine=res.machine,
        semiring=_sr_name(semiring),
    )


def _c25d_applicable(shape: ProblemShape, P: int) -> bool:
    return c25d_grid(shape, P) is not None


def _run_alg1_abft_auto(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    shape = _shape_of(A, B)
    grid = alg1_abft_grid(shape, P)
    if grid is None:
        raise ValueError(f"no ABFT-encodable Algorithm 1 grid for {shape} on P={P}")
    res = run_alg1_abft(A, B, grid, semiring=semiring)
    return AlgorithmRun(
        name="alg1_abft", C=res.C, shape=shape, P=P, cost=res.cost,
        config=f"grid {grid}", machine=res.machine, semiring=_sr_name(semiring),
    )


def _run_summa_abft_auto(
    A: np.ndarray, B: np.ndarray, P: int, semiring: Optional[Semiring] = None,
) -> AlgorithmRun:
    shape = _shape_of(A, B)
    grid = abft_summa_grid(shape, P)
    if grid is None:
        raise ValueError(f"no ABFT SUMMA grid for {shape} on P={P}")
    res = run_summa_abft(A, B, *grid, semiring=semiring)
    return AlgorithmRun(
        name="summa_abft", C=res.C, shape=shape, P=P, cost=res.cost,
        config=f"grid {grid[0]}x{grid[1]} + checksum row", machine=res.machine,
        semiring=_sr_name(semiring),
    )


REGISTRY: Dict[str, AlgorithmEntry] = {
    "alg1": AlgorithmEntry(
        name="alg1",
        description="Algorithm 1 with the Section 5.2 optimal grid (this paper)",
        applicable=_alg1_applicable,
        run=_run_alg1_optimal,
    ),
    "row_1d": AlgorithmEntry(
        name="row_1d",
        description="1D all-gather-B baseline",
        applicable=lambda s, P: P <= s.n1,
        run=lambda A, B, P, semiring=None: _wrap_1d(
            run_row_1d(A, B, P, semiring=semiring), "row_1d", semiring),
    ),
    "outer_1d": AlgorithmEntry(
        name="outer_1d",
        description="1D outer-product (contraction-split) baseline",
        applicable=lambda s, P: P <= s.n2,
        run=lambda A, B, P, semiring=None: _wrap_1d(
            run_outer_1d(A, B, P, semiring=semiring), "outer_1d", semiring),
    ),
    "cannon": AlgorithmEntry(
        name="cannon",
        description="Cannon's algorithm on a square 2D grid",
        applicable=_cannon_applicable,
        run=_run_cannon_square,
    ),
    "fox": AlgorithmEntry(
        name="fox",
        description="Fox's broadcast-multiply-roll algorithm on a square 2D grid",
        applicable=_cannon_applicable,
        run=_run_fox_square,
    ),
    "fox_otto": AlgorithmEntry(
        name="fox_otto",
        description="Fox-Otto min-plus distance product on a square 2D grid",
        applicable=_cannon_applicable,
        run=_run_fox_otto_square,
    ),
    "summa": AlgorithmEntry(
        name="summa",
        description="SUMMA on the most balanced divisible 2D grid",
        applicable=lambda s, P: _summa_grid(s, P) is not None,
        run=_run_summa_auto,
    ),
    "c25d": AlgorithmEntry(
        name="c25d",
        description="2.5D algorithm with the largest feasible replication factor",
        applicable=_c25d_applicable,
        run=_run_25d_auto,
    ),
    "carma": AlgorithmEntry(
        name="carma",
        description="CARMA-style recursive algorithm",
        applicable=lambda s, P: _carma_feasible(s, P),
        run=lambda A, B, P, semiring=None: _wrap_carma(
            run_carma(A, B, P, semiring=semiring), semiring),
    ),
    "alg1_abft": AlgorithmEntry(
        name="alg1_abft",
        description="Algorithm 1 with ABFT checksum shards "
                    "(survives one rank failure)",
        applicable=lambda s, P: alg1_abft_grid(s, P) is not None,
        run=_run_alg1_abft_auto,
    ),
    "summa_abft": AlgorithmEntry(
        name="summa_abft",
        description="SUMMA with a Huang-Abraham checksum row "
                    "(survives one rank failure)",
        applicable=lambda s, P: abft_summa_grid(s, P) is not None,
        run=_run_summa_abft_auto,
    ),
}


def _carma_feasible(shape: ProblemShape, P: int) -> bool:
    """Dry-run CARMA's split decisions: every chosen dimension must be even."""
    if not is_power_of_two(P) or shape.n1 < P or shape.n2 < P:
        return False
    dims = list(shape.dims)
    p = P
    while p > 1:
        # Tie-breaking must match run_carma's: n1 first, then n3, then n2.
        idx = max([0, 2, 1], key=lambda i: dims[i])
        if dims[idx] % 2:
            return False
        dims[idx] //= 2
        p //= 2
    return True


def _wrap_1d(res, name: str, semiring=None) -> AlgorithmRun:
    return AlgorithmRun(
        name=name, C=res.C, shape=res.shape, P=res.P, cost=res.cost,
        config=f"P={res.P}", machine=res.machine, semiring=_sr_name(semiring),
    )


def _wrap_carma(res, semiring=None) -> AlgorithmRun:
    return AlgorithmRun(
        name="carma", C=res.C, shape=res.shape, P=res.P, cost=res.cost,
        config=f"{len(res.splits)} splits", machine=res.machine,
        semiring=_sr_name(semiring),
    )


#: Why each algorithm's applicability predicate can say no — surfaced in
#: the :class:`~repro.exceptions.InvalidProblemError` message so the caller
#: knows what to change.
_APPLICABILITY_HINTS: Dict[str, str] = {
    "alg1": "needs an optimal grid with every p_i <= n_i "
            "(P may exceed the problem's parallelism)",
    "row_1d": "needs P <= n1 (one row block per processor)",
    "outer_1d": "needs P <= n2 (one contraction slice per processor)",
    "cannon": "needs P = q^2 a perfect square with q <= min(n1, n2, n3)",
    "fox": "needs P = q^2 a perfect square with q <= min(n1, n2, n3)",
    "fox_otto": "needs P = q^2 a perfect square with q <= min(n1, n2, n3)",
    "summa": "needs a pr x pc factorization of P with pr | n1, pr | n2, "
             "pc | n2 and pc | n3",
    "c25d": "needs P = q^2 c with the replication factor c dividing q and "
            "q <= min(n1, n2, n3)",
    "carma": "needs P a power of two with n1 >= P, n2 >= P and every "
             "recursive split landing on an even dimension",
    "alg1_abft": "needs P >= 2, the optimal grid dividing every dimension, "
                 "and each All-Gather fiber longer than 1 a power of two "
                 "dividing its shard",
    "summa_abft": "needs a pr x pc factorization with (pr+1) pc = P, "
                  "pr | n1, (pr+1) | n2, pc | n2 and pc | n3",
}


def validate_problem(name: str, A, B, P) -> ProblemShape:
    """Validate a ``(name, A, B, P)`` request before any machine is built.

    Raises
    ------
    InvalidProblemError
        For an unknown algorithm name, non-2-D or non-positive operand
        shapes, mismatched inner dimensions, a non-positive processor
        count, or a combination the named algorithm's applicability
        predicate rejects.  The message states the reason and which
        registered algorithms *could* run the problem.
    """
    if name not in REGISTRY:
        raise InvalidProblemError(
            f"unknown algorithm {name!r}; registered algorithms: "
            f"{', '.join(sorted(REGISTRY))}"
        )
    # SymbolicBlock rejects __array_function__ protocols by design, so read
    # the ``shape`` attribute directly; fall back to np.shape for lists etc.
    a_shape = tuple(A.shape) if hasattr(A, "shape") else tuple(np.shape(A))
    b_shape = tuple(B.shape) if hasattr(B, "shape") else tuple(np.shape(B))
    if len(a_shape) != 2 or len(b_shape) != 2:
        raise InvalidProblemError(
            f"operands must be 2-D matrices, got A with shape {a_shape} "
            f"and B with shape {b_shape}"
        )
    if a_shape[1] != b_shape[0]:
        raise InvalidProblemError(
            f"inner dimensions do not match: A is {a_shape[0]}x{a_shape[1]} "
            f"but B is {b_shape[0]}x{b_shape[1]}"
        )
    try:
        shape = ProblemShape(a_shape[0], a_shape[1], b_shape[1])
    except ShapeError as exc:
        raise InvalidProblemError(
            f"invalid problem shape {a_shape[0]}x{a_shape[1]}x{b_shape[1]}: {exc}"
        ) from exc
    if isinstance(P, bool) or not isinstance(P, (int, np.integer)) or P < 1:
        raise InvalidProblemError(
            f"processor count must be a positive integer, got {P!r}"
        )
    P = int(P)
    if not REGISTRY[name].applicable(shape, P):
        others = applicable_algorithms(shape, P)
        alternatives = (
            f" Applicable here: {', '.join(others)}." if others
            else " No registered algorithm can run this combination."
        )
        raise InvalidProblemError(
            f"{name} cannot run {shape} on P={P}: "
            f"{_APPLICABILITY_HINTS[name]}.{alternatives}"
        )
    return shape


def run_algorithm(
    name: str,
    A: np.ndarray,
    B: np.ndarray,
    P: int,
    backend=None,
    collective_algorithm: Optional[str] = None,
    semiring=None,
) -> AlgorithmRun:
    """Run a registered algorithm by name.

    Every run comes back with its bound-attainment gauge filled in, so
    sweeps and the report can surface ``measured / Theorem-3-bound``
    ratios uniformly across algorithms.

    The ``(name, A, B, P)`` combination is validated up front
    (:func:`validate_problem`): infeasible requests raise
    :class:`~repro.exceptions.InvalidProblemError` with an actionable
    message instead of failing deep inside grid construction.

    ``backend`` (a name or :class:`~repro.machine.backend.Backend`)
    selects the execution mode: under ``"symbolic"`` real operands are
    demoted to shape descriptors before the run, so no elements are
    allocated or moved while every counter is accounted identically.
    ``collective_algorithm`` forces a specific collective implementation
    where the algorithm exposes the choice (currently Algorithm 1; other
    entries use their fixed defaults).  ``semiring`` (a name or
    :class:`~repro.machine.semiring.Semiring`) selects the scalar
    multiply-add pair; every entry threads it to its algorithm, the
    schedule — and with it every cost counter — is semiring-independent,
    and the resolved name lands on ``AlgorithmRun.semiring``.  When unset,
    entries use their natural default (``plus_times`` everywhere except
    ``fox_otto``, which defaults to ``min_plus``).
    """
    validate_problem(name, A, B, P)
    if semiring is not None:
        semiring = resolve_semiring(semiring)
    if backend is not None:
        backend = resolve_backend(backend)
        if not backend.verifies and not is_symbolic(A):
            A = SymbolicBlock(np.shape(A))
            B = SymbolicBlock(np.shape(B))
        elif backend.verifies and is_symbolic(A):
            raise ValueError(
                "data backend requested but the operands are symbolic; "
                "pass real arrays or backend='symbolic'"
            )
    if name == "alg1" and collective_algorithm is not None:
        run = _run_alg1_optimal(
            A, B, P, collective_algorithm=collective_algorithm, semiring=semiring,
        )
    else:
        run = REGISTRY[name].run(A, B, P, semiring=semiring)
    run.attainment = bound_attainment(run.shape, run.P, run.cost.words)
    return run


def applicable_algorithms(shape: ProblemShape, P: int):
    """Names of all registered algorithms runnable on ``(shape, P)``."""
    return [name for name, entry in REGISTRY.items() if entry.applicable(shape, P)]
