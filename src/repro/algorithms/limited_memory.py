"""Memory-constrained variant of Algorithm 1 (Section 6.2's remark).

The paper notes that for 1D and 2D grids, "Alg. 1 can be adapted to reduce
the temporary memory required to a negligible amount at the expense of
higher latency cost but without affecting the bandwidth cost".  This module
implements that adaptation and demonstrates the claim executably.

Instead of All-Gathering the *entire* ``A`` and ``B`` blocks before the
local multiply, the gathered fibers are processed in ``chunks`` pieces:

1. All-Gather the ``t``-th slice of the ``B`` block along the p1-fiber;
2. multiply the local ``A`` panel columns against it, accumulating into a
   local partial ``D``;
3. free the slice and continue.

Each slice's All-Gather moves ``(1 - 1/p1) |B block| / chunks`` words, so
the total bandwidth is unchanged while the peak temporary footprint drops
by roughly the chunk factor; the latency grows by the same factor (one
collective per chunk).  The implementation supports chunking the
contraction dimension, which covers the 1D/2D-grid cases the paper's
remark targets (for 3D grids the output temporaries themselves dominate
and chunking cannot help — also asserted by the tests).

For simplicity this variant requires a 2D grid (``p3 == 1``) with even
divisions; the general function :func:`run_alg1_chunked` falls back to the
plain algorithm when ``chunks == 1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..collectives.communicator import parallel_allgather, parallel_reduce_scatter
from ..core.shapes import ProblemShape
from ..exceptions import GridError
from ..machine.backend import as_block, backend_for
from ..machine.machine import Machine
from ..machine.semiring import Semiring, resolve_semiring
from ..obs.attainment import record_attainment
from .alg1 import Alg1Result, run_alg1
from .cost_models import alg1_cost_terms
from .distributions import (
    assemble_c,
    block_bounds,
    distribute_inputs,
    shard_bounds,
)
from .grid import ProcessorGrid

__all__ = ["run_alg1_chunked"]


def run_alg1_chunked(
    A: np.ndarray,
    B: np.ndarray,
    grid: ProcessorGrid,
    chunks: int = 1,
    machine: Optional[Machine] = None,
    semiring: Optional[Semiring] = None,
) -> Alg1Result:
    """Algorithm 1 with the contraction dimension gathered in ``chunks`` pieces.

    Requires ``grid.p3 == 1`` (a 1D or 2D grid — the regime where the
    Section 6.2 remark applies), ``chunks`` dividing the per-processor
    contraction extent ``n2 / p2``, and even blocks.

    Same bandwidth as :func:`~repro.algorithms.alg1.run_alg1`, ``chunks``
    times the collective latency, and a peak temporary footprint reduced
    by roughly the chunk factor.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((16, 8)), rng.random((8, 4))
    >>> res = run_alg1_chunked(A, B, ProcessorGrid(4, 2, 1), chunks=2)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    if chunks == 1:
        return run_alg1(A, B, grid, machine=machine, semiring=sr)
    if grid.p3 != 1:
        raise GridError(
            f"the chunked variant targets 1D/2D grids (p3 == 1); got {grid}. "
            f"On 3D grids the output temporaries dominate and chunking the "
            f"gather cannot reduce the footprint (Section 6.2)."
        )
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if n1 % grid.p1 or n2 % grid.p2:
        raise GridError(f"grid {grid} must divide the dimensions of {shape}")
    local_k = n2 // grid.p2
    if chunks < 1 or local_k % chunks:
        raise GridError(
            f"chunks={chunks} must divide the local contraction extent {local_k}"
        )

    if machine is None:
        machine = Machine(grid.size, backend=backend_for(A, B))
    else:
        machine.reset()

    distribute_inputs(machine, grid, A, B)
    p1, p2, _ = grid.dims
    phase_words = {"allgather_a": 0.0, "allgather_b": 0.0, "reduce_scatter_c": 0.0}

    # p3 == 1 means the A block is already local: reshape the shard.
    for rank in range(grid.size):
        c1, c2, _ = grid.coord(rank)
        r0, r1 = block_bounds(n1, p1, c1)
        k0, k1 = block_bounds(n2, p2, c2)
        store = machine.proc(rank).store
        store["A_block"] = store["A_shard"].reshape(r1 - r0, k1 - k0)
        store["D"] = sr.zeros((r1 - r0, n3), like=A)

    # The B block (local_k x n3) is gathered slice by slice.  The variant
    # picks a *chunk-aligned* initial distribution (the lower bound lets the
    # algorithm choose it): each fiber member owns 1/p1-th of every chunk's
    # rows, so slice t's All-Gather sources exactly the member's own data.
    # We materialize those shares from the global operand for brevity; the
    # words match the stored "B_shard" count, so the accounting is honest.
    step = local_k // chunks
    before = machine.cost
    for t in range(chunks):
        chunk_shards = {}
        for rank in range(grid.size):
            c1, c2, _ = grid.coord(rank)
            k0, k1 = block_bounds(n2, p2, c2)
            b_block_rows = B[k0 + t * step:k0 + (t + 1) * step, :]
            flat = b_block_rows.reshape(-1)
            lo, hi = shard_bounds(flat.size, p1, c1)
            chunk_shards[rank] = flat[lo:hi].copy()
        if p1 > 1:
            gathered = parallel_allgather(
                machine, grid.fibers(1), chunk_shards, label=f"B slice {t}",
            )
        else:
            gathered = {r: [chunk_shards[r]] for r in range(grid.size)}
        for rank in range(grid.size):
            store = machine.proc(rank).store
            flat = np.concatenate([as_block(ch).reshape(-1) for ch in gathered[rank]])
            b_slice = flat.reshape(step, n3)
            store["B_slice"] = b_slice
            a_block = store["A_block"]
            a_panel = a_block[:, t * step:(t + 1) * step]
            store["D"] = sr.add(store["D"], sr.matmul(a_panel, b_slice))
            machine.compute(rank, float(a_panel.shape[0] * step * n3))
            store.free("B_slice")
    phase_words["allgather_b"] = (machine.cost - before).words
    machine.trace.record("compute", f"chunked gather-multiply, {chunks} slices")

    # Reduce-Scatter D along p2-fibers, exactly as in the plain algorithm.
    before = machine.cost
    if p2 > 1:
        blocks = {}
        for rank in range(grid.size):
            d_flat = machine.proc(rank).store["D"].reshape(-1)
            blocks[rank] = [
                d_flat[lo:hi]
                for lo, hi in (shard_bounds(d_flat.size, p2, j) for j in range(p2))
            ]
        reduced = parallel_reduce_scatter(
            machine, grid.fibers(2), blocks, label="C blocks", op=sr.reduce_op,
        )
    else:
        reduced = {r: machine.proc(r).store["D"].reshape(-1).copy()
                   for r in range(grid.size)}
    for rank in range(grid.size):
        store = machine.proc(rank).store
        store["C_shard"] = as_block(reduced[rank]).reshape(-1)
        store.free("D")
        store.free("A_block")
    phase_words["reduce_scatter_c"] = (machine.cost - before).words

    C = assemble_c(machine, shape, grid)
    return Alg1Result(
        C=C,
        shape=shape,
        grid=grid,
        cost=machine.cost,
        predicted=alg1_cost_terms(shape, grid),
        phase_words=phase_words,
        peak_memory=machine.peak_memory_words(),
        machine=machine,
        attainment=record_attainment(
            machine, shape, P=grid.size, algorithm="alg1_limited_memory"
        ),
    )
