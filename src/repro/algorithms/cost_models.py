"""Closed-form communication cost of Algorithm 1 — expression (3).

Section 5.1 of the paper derives the per-processor (critical-path)
communication cost of Algorithm 1 on a ``p1 x p2 x p3`` grid:

* All-Gather of ``A``-blocks over p3-fibers: ``(1 - 1/p3) n1 n2 / (p1 p2)``
* All-Gather of ``B``-blocks over p1-fibers: ``(1 - 1/p1) n2 n3 / (p2 p3)``
* Reduce-Scatter of ``C``-blocks over p2-fibers: ``(1 - 1/p2) n1 n3 / (p1 p3)``

summing to

    ``n1 n2/(p1 p2) + n2 n3/(p2 p3) + n1 n3/(p1 p3)
      - (n1 n2 + n2 n3 + n1 n3)/P``.

The test suite asserts the simulator reproduces each line of this breakdown
*exactly*; the grid-selection module minimizes the total over grids.
"""

from __future__ import annotations

import dataclasses

from ..core.shapes import ProblemShape
from ..exceptions import GridError
from .grid import ProcessorGrid

__all__ = [
    "Alg1CostBreakdown",
    "alg1_cost",
    "alg1_cost_terms",
    "alg1_latency_rounds",
    "alg1_memory_words",
    "alg1_time",
]


def _exact_fraction(words: int, p: int) -> float:
    """``(1 - 1/p) * words`` computed as ``words * (p - 1) / p`` for float
    exactness on integer word counts."""
    return words * (p - 1) / p


@dataclasses.dataclass(frozen=True)
class Alg1CostBreakdown:
    """Per-collective communication words of Algorithm 1 (critical path).

    ``allgather_a``/``allgather_b``/``reduce_scatter_c`` are the three
    collective terms; ``total`` is expression (3).
    """

    shape: ProblemShape
    grid: ProcessorGrid
    allgather_a: float
    allgather_b: float
    reduce_scatter_c: float

    @property
    def total(self) -> float:
        return self.allgather_a + self.allgather_b + self.reduce_scatter_c

    @property
    def accessed(self) -> float:
        """Words accessed per processor: cost plus initially owned data.

        Equals the positive terms of expression (3) — the quantity matched
        against ``D`` of Theorem 3 (and, per Section 6.2, the local memory
        Algorithm 1 needs to leading order).
        """
        s, g = self.shape, self.grid
        return (
            s.n1 * s.n2 / (g.p1 * g.p2)
            + s.n2 * s.n3 / (g.p2 * g.p3)
            + s.n1 * s.n3 / (g.p1 * g.p3)
        )


def alg1_cost_terms(shape: ProblemShape, grid: ProcessorGrid) -> Alg1CostBreakdown:
    """Expression (3)'s three collective terms for ``shape`` on ``grid``.

    Works for any grid (divisibility is only needed by the executable
    algorithm, not the formula).
    """
    p1, p2, p3 = grid.dims
    n1, n2, n3 = shape.dims
    return Alg1CostBreakdown(
        shape=shape,
        grid=grid,
        allgather_a=_exact_fraction(n1 * n2, p3) / (p1 * p2),
        allgather_b=_exact_fraction(n2 * n3, p1) / (p2 * p3),
        reduce_scatter_c=_exact_fraction(n1 * n3, p2) / (p1 * p3),
    )


def alg1_cost(shape: ProblemShape, grid: ProcessorGrid) -> float:
    """Total communication words of Algorithm 1 — expression (3).

    Examples
    --------
    >>> alg1_cost(ProblemShape(9600, 2400, 600), ProcessorGrid(32, 8, 2))
    210937.5
    """
    return alg1_cost_terms(shape, grid).total


def _collective_rounds(p: int) -> int:
    """Rounds of one bandwidth-optimal collective over a ``p``-fiber.

    ``log2 p`` when ``p`` is a power of two (recursive doubling/halving),
    else ``p - 1`` (ring) — matching the ``auto`` dispatch the executable
    Algorithm 1 uses.  (Bruck would give ``ceil(log2 p)`` for All-Gathers
    at any ``p``; we model the default dispatch.)
    """
    if p <= 1:
        return 0
    if p & (p - 1) == 0:
        return p.bit_length() - 1
    return p - 1


def alg1_latency_rounds(shape: ProblemShape, grid: ProcessorGrid) -> int:
    """Communication rounds of Algorithm 1 on ``grid`` (``auto`` collectives).

    The three collectives run over disjoint fiber families, but the phases
    are sequential: total rounds = rounds(p3) + rounds(p1) + rounds(p2).
    """
    del shape  # rounds depend only on the grid under the auto dispatch
    p1, p2, p3 = grid.dims
    return _collective_rounds(p3) + _collective_rounds(p1) + _collective_rounds(p2)


def alg1_time(
    shape: ProblemShape,
    grid: ProcessorGrid,
    alpha: float = 0.0,
    beta: float = 1.0,
) -> float:
    """Modelled communication time ``alpha * rounds + beta * words``.

    With ``alpha = 0`` this is expression (3) scaled by ``beta`` — the
    paper's bandwidth-only objective; a positive ``alpha`` lets
    :func:`~repro.algorithms.grid_selection.select_grid` trade a slightly
    larger bandwidth for far fewer messages (relevant for small problems
    on high-latency networks, per the Section 3.1 discussion).
    """
    if alpha < 0 or beta < 0:
        raise GridError(f"alpha and beta must be non-negative, got {alpha}, {beta}")
    return alpha * alg1_latency_rounds(shape, grid) + beta * alg1_cost(shape, grid)


def alg1_memory_words(shape: ProblemShape, grid: ProcessorGrid) -> float:
    """Leading-order per-processor memory footprint of Algorithm 1.

    Each processor ends the gather phase holding its full ``A`` and ``B``
    blocks and the local product ``D`` before reduce-scattering:
    ``n1 n2/(p1 p2) + n2 n3/(p2 p3) + n1 n3/(p1 p3)`` words — the
    ``accessed`` term.  Section 6.2's observation: for 3D grids this
    asymptotically exceeds the minimum ``(n1 n2 + n2 n3 + n1 n3)/P`` needed
    to store the problem, while for 1D/2D grids it is within a constant.
    """
    if grid.size < 1:
        raise GridError("empty grid")
    return alg1_cost_terms(shape, grid).accessed
