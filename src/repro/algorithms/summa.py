"""SUMMA — Scalable Universal Matrix Multiplication Algorithm (baseline).

Van de Geijn & Watts' stationary-``C`` algorithm on a ``pr x pc`` grid:
``A``, ``B`` and ``C`` are block-distributed; the contraction dimension is
processed in panels, and at each stage the owners of the current ``A``
column panel broadcast it along their grid *rows* while the owners of the
current ``B`` row panel broadcast it along their grid *columns*; every
processor accumulates ``C_local += A_panel @ B_panel``.

Panel width is ``gcd(n2/pr, n2/pc)`` blocks so that each panel lies inside
a single block row/column (requires ``pr | n2`` and ``pc | n2``).

Per-processor communication (with the long-message scatter+allgather
broadcast, bandwidth ``~2w``): about ``2 (n1 n2 / pr + n2 n3 / pc) / p*``
— the classic ``O((n1 n2 + n2 n3)/sqrt(P))`` 2D cost on square grids.
SUMMA never attains Theorem 3's constants (it re-broadcasts panels and
never exploits a third grid dimension), which is exactly the gap the
baseline benchmarks display.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

import numpy as np

from ..collectives.communicator import parallel_broadcast
from ..core.shapes import ProblemShape
from ..exceptions import GridError
from ..machine.backend import as_block, backend_for, empty_block
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.semiring import Semiring, resolve_semiring
from .distributions import block_bounds

__all__ = ["SummaResult", "run_summa"]


@dataclasses.dataclass
class SummaResult:
    """Output of a SUMMA run."""

    C: np.ndarray
    shape: ProblemShape
    pr: int
    pc: int
    stages: int
    cost: Cost
    machine: Machine


def run_summa(
    A: np.ndarray,
    B: np.ndarray,
    pr: int,
    pc: int,
    machine: Optional[Machine] = None,
    broadcast_algorithm: str = "scatter_allgather",
    semiring: Optional[Semiring] = None,
) -> SummaResult:
    """Run SUMMA on a ``pr x pc`` grid (``P = pr * pc`` processors).

    Requires ``pr | n1``, ``pc | n3`` and both ``pr | n2`` and ``pc | n2``
    (so panels align with blocks).  ``semiring`` selects the scalar
    multiply-accumulate (default ``plus_times``); costs are identical for
    every semiring.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((4, 12)), rng.random((12, 6))
    >>> res = run_summa(A, B, 2, 3)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if n1 % pr or n3 % pc or n2 % pr or n2 % pc:
        raise GridError(
            f"SUMMA needs pr | n1, pc | n3, pr | n2 and pc | n2; "
            f"got grid {pr}x{pc} for {shape}"
        )
    P = pr * pc
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(f"machine has {machine.n_procs} processors, SUMMA needs {P}")

    def rank(i: int, j: int) -> int:
        return i * pc + j

    # Block-distribute all three matrices on the 2D grid.
    for i in range(pr):
        for j in range(pc):
            r = rank(i, j)
            r0, r1 = block_bounds(n1, pr, i)
            c0, c1 = block_bounds(n2, pc, j)
            machine.proc(r).store["A"] = A[r0:r1, c0:c1].copy()
            r0, r1 = block_bounds(n2, pr, i)
            c0, c1 = block_bounds(n3, pc, j)
            machine.proc(r).store["B"] = B[r0:r1, c0:c1].copy()
            machine.proc(r).store["C"] = sr.zeros(
                (block_bounds(n1, pr, i)[1] - block_bounds(n1, pr, i)[0],
                 block_bounds(n3, pc, j)[1] - block_bounds(n3, pc, j)[0]),
                like=A,
            )
    machine.trace.record("distribute", f"SUMMA blocks on {pr}x{pc} grid")

    panel = math.gcd(n2 // pr, n2 // pc)
    stages = n2 // panel
    row_groups = [tuple(rank(i, j) for j in range(pc)) for i in range(pr)]
    col_groups = [tuple(rank(i, j) for i in range(pr)) for j in range(pc)]

    for t in range(stages):
        k0, k1 = t * panel, (t + 1) * panel

        # Owners of A's panel columns: grid column jt; broadcast along rows.
        jt = k0 // (n2 // pc)
        a_off = k0 - jt * (n2 // pc)
        a_panels: Dict[int, np.ndarray] = {}
        for i in range(pr):
            holder = rank(i, jt)
            a_panels[holder] = machine.proc(holder).store["A"][:, a_off:a_off + panel]
        if pc > 1:
            a_recv = parallel_broadcast(
                machine, row_groups, [rank(i, jt) for i in range(pr)], a_panels,
                algorithm=broadcast_algorithm, label=f"A panel {t}",
            )
        else:
            a_recv = {rank(i, 0): a_panels[rank(i, 0)] for i in range(pr)}

        # Owners of B's panel rows: grid row it; broadcast along columns.
        it = k0 // (n2 // pr)
        b_off = k0 - it * (n2 // pr)
        b_panels: Dict[int, np.ndarray] = {}
        for j in range(pc):
            holder = rank(it, j)
            b_panels[holder] = machine.proc(holder).store["B"][b_off:b_off + panel, :]
        if pr > 1:
            b_recv = parallel_broadcast(
                machine, col_groups, [rank(it, j) for j in range(pc)], b_panels,
                algorithm=broadcast_algorithm, label=f"B panel {t}",
            )
        else:
            b_recv = {rank(0, j): b_panels[rank(0, j)] for j in range(pc)}

        for i in range(pr):
            for j in range(pc):
                r = rank(i, j)
                a_p = as_block(a_recv[r])
                b_p = as_block(b_recv[r])
                machine.proc(r).store["C"] = sr.add(
                    machine.proc(r).store["C"], sr.matmul(a_p, b_p)
                )
                machine.compute(r, float(a_p.shape[0] * panel * b_p.shape[1]))
    machine.trace.record("compute", f"{stages} SUMMA stages of width {panel}")

    C = empty_block((n1, n3), like=A)
    for i in range(pr):
        for j in range(pc):
            r0, r1 = block_bounds(n1, pr, i)
            c0, c1 = block_bounds(n3, pc, j)
            C[r0:r1, c0:c1] = machine.proc(rank(i, j)).store["C"]

    return SummaResult(
        C=C, shape=shape, pr=pr, pc=pc, stages=stages,
        cost=machine.cost, machine=machine,
    )
