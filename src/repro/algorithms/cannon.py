"""Cannon's algorithm on a square 2D grid (baseline).

The classic systolic algorithm (1969): on a ``q x q`` grid,

1. skew ``A`` — block ``(i, j)`` moves left by ``i`` positions;
2. skew ``B`` — block ``(i, j)`` moves up by ``j`` positions;
3. repeat ``q`` times: multiply-accumulate the resident blocks, then shift
   ``A`` left by one and ``B`` up by one.

Every shift is a single network round (each processor sends one block and
receives one).  Per-processor communication: the skews cost at most
``n1 n2/q^2 + n2 n3/q^2`` and the ``q - 1`` shifts cost
``(q - 1)(n1 n2 + n2 n3)/q^2`` — asymptotically ``(n1 n2 + n2 n3)/q``,
the classic 2D cost.  Cannon never communicates ``C``, so it beats
Algorithm 1 nowhere but matches its ``q x 1 x q``-style costs on square
problems up to constants; the bench suite uses it as the "practical 2D"
reference point alongside SUMMA.

Requires ``P = q^2`` and works for any dimensions with ``q <= min(n_i)``
(ragged blocks supported; skews/shifts always move whole resident blocks).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.shapes import ProblemShape
from ..exceptions import GridError
from ..machine.backend import as_block, backend_for, empty_block
from ..machine.cost import Cost
from ..machine.machine import Machine
from ..machine.message import Message
from ..machine.semiring import Semiring, resolve_semiring
from .distributions import block_bounds

__all__ = ["CannonResult", "run_cannon", "cannon_predicted_words"]


@dataclasses.dataclass
class CannonResult:
    """Output of a Cannon run."""

    C: np.ndarray
    shape: ProblemShape
    q: int
    cost: Cost
    predicted_words: float
    machine: Machine


def cannon_predicted_words(shape: ProblemShape, q: int) -> float:
    """Critical-path words of Cannon on a ``q x q`` grid (divisible dims).

    Two skews of one block each plus ``q - 1`` shifts of two blocks each,
    all rounds charging the larger of the ``A``/``B`` block sizes:

        ``(q + 1) * max(n1 n2, n2 n3) / q^2``  (critical path)

    but per-processor *volume* is ``(q + 1)(n1 n2 + n2 n3)/q^2``.  This
    helper returns the critical-path figure used against measurements.
    """
    a_block = shape.n1 * shape.n2 / (q * q)
    b_block = shape.n2 * shape.n3 / (q * q)
    # Skews: one round moving A blocks, one moving B blocks.  Shifts: each
    # of the q-1 steps does one A round and one B round.
    return q * a_block + q * b_block  # (1 skew + (q-1) shifts) per matrix


def _rotate(
    machine: Machine,
    grid_rank: Dict[tuple, int],
    q: int,
    key: str,
    axis: int,
    amounts: Dict[tuple, int],
) -> None:
    """Rotate stored blocks along grid rows (axis=1) or columns (axis=0).

    ``amounts[(i, j)]`` gives how many positions the block at ``(i, j)``
    moves (leftward for axis=1, upward for axis=0).  Each distinct amount
    is applied as its own sequence of single-step rounds would be wasteful;
    instead each processor sends its block directly to its destination —
    still one send and one receive per processor per round because the
    rotation is a permutation.
    """
    msgs: List[Message] = []
    for (i, j), shift in amounts.items():
        shift = shift % q
        if shift == 0:
            continue
        src = grid_rank[(i, j)]
        if axis == 1:
            dest = grid_rank[(i, (j - shift) % q)]
        else:
            dest = grid_rank[((i - shift) % q, j)]
        msgs.append(Message(src=src, dest=dest, payload=machine.proc(src).store[key], tag=key))
    if not msgs:
        return
    deliveries = machine.exchange(msgs)
    for dest, payload in deliveries.items():
        machine.proc(dest).store[key] = payload


def run_cannon(
    A: np.ndarray,
    B: np.ndarray,
    q: int,
    machine: Optional[Machine] = None,
    semiring: Optional[Semiring] = None,
) -> CannonResult:
    """Run Cannon's algorithm on a ``q x q`` grid.

    ``semiring`` selects the scalar multiply-accumulate (default
    ``plus_times``); the systolic schedule and all costs are identical
    for every semiring.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A, B = rng.random((6, 9)), rng.random((9, 6))
    >>> res = run_cannon(A, B, 3)
    >>> bool(np.allclose(res.C, A @ B))
    True
    """
    A = as_block(A, dtype=float)
    B = as_block(B, dtype=float)
    sr = resolve_semiring(semiring)
    n1, n2 = A.shape
    n3 = B.shape[1]
    shape = ProblemShape(n1, n2, n3)
    if q < 1:
        raise GridError(f"grid side q must be positive, got {q}")
    if q > min(n1, n2, n3):
        raise GridError(f"q={q} exceeds the smallest dimension of {shape}")
    P = q * q
    if machine is None:
        machine = Machine(P, backend=backend_for(A, B))
    else:
        machine.reset()
        if machine.n_procs != P:
            raise GridError(f"machine has {machine.n_procs} processors, Cannon needs {P}")

    grid_rank = {(i, j): i * q + j for i in range(q) for j in range(q)}

    # Block-distribute A (n2 split by columns of the grid), B (n2 by rows).
    for (i, j), r in grid_rank.items():
        r0, r1 = block_bounds(n1, q, i)
        c0, c1 = block_bounds(n2, q, j)
        machine.proc(r).store["A"] = A[r0:r1, c0:c1].copy()
        r0, r1 = block_bounds(n2, q, i)
        c0, c1 = block_bounds(n3, q, j)
        machine.proc(r).store["B"] = B[r0:r1, c0:c1].copy()
        # The (i, j) processor owns C block (i, j); accumulated over stages.
    machine.trace.record("distribute", f"Cannon blocks on {q}x{q} grid")

    # Initial skews: A(i, j) -> left by i; B(i, j) -> up by j.
    _rotate(machine, grid_rank, q, "A", axis=1,
            amounts={(i, j): i for i in range(q) for j in range(q)})
    _rotate(machine, grid_rank, q, "B", axis=0,
            amounts={(i, j): j for i in range(q) for j in range(q)})
    machine.trace.record("shift", "initial skews")

    # q multiply-accumulate + shift stages.
    partials: Dict[tuple, np.ndarray] = {}
    for step in range(q):
        for (i, j), r in grid_rank.items():
            a_blk = machine.proc(r).store["A"]
            b_blk = machine.proc(r).store["B"]
            prod = sr.matmul(a_blk, b_blk)
            machine.compute(r, float(a_blk.shape[0] * a_blk.shape[1] * b_blk.shape[1]))
            if (i, j) in partials:
                partials[(i, j)] = sr.add(partials[(i, j)], prod)
            else:
                partials[(i, j)] = prod
        if step < q - 1:
            ones = {(i, j): 1 for i in range(q) for j in range(q)}
            _rotate(machine, grid_rank, q, "A", axis=1, amounts=ones)
            _rotate(machine, grid_rank, q, "B", axis=0, amounts=ones)
    machine.trace.record("compute", f"{q} Cannon stages")

    C = empty_block((n1, n3), like=A)
    for (i, j), r in grid_rank.items():
        machine.proc(r).store["C"] = partials[(i, j)]
        r0, r1 = block_bounds(n1, q, i)
        c0, c1 = block_bounds(n3, q, j)
        C[r0:r1, c0:c1] = partials[(i, j)]

    return CannonResult(
        C=C, shape=shape, q=q, cost=machine.cost,
        predicted_words=cannon_predicted_words(shape, q) if
        (n1 % q == 0 and n2 % q == 0 and n3 % q == 0) else float("nan"),
        machine=machine,
    )
