"""Fox-Otto min-plus matrix "multiplication" (tropical GEMM).

Fox & Otto's 1987 paper presented the broadcast-multiply-roll schedule as
an algorithm for *both* ordinary matrix multiplication and the all-pairs
shortest-path distance product — the same data movement with the scalar
``(+, x)`` swapped for ``(min, +)``.  This module is the second half of
that pairing: :func:`run_fox_otto` is :func:`~repro.algorithms.fox.run_fox`
instantiated over the ``min_plus`` semiring.

Why the Theorem 3 bounds still apply: the memory-independent communication
lower bound depends only on the computation DAG — which ``(i, k, j)``
triples are combined, and where operands/outputs live — never on what the
scalar multiply and add *do*.  The min-plus distance product has exactly
the classical-matmul DAG (every ``C[i, j]`` combines ``A[i, k]`` with
``B[k, j]`` over all ``k``), so the per-processor bound and its attained
constants transfer verbatim.  The schedule here is byte-for-byte the Fox
schedule, so every cost counter (words, messages, flops — counted as
semiring multiply-add pairs) is identical to the ``plus_times`` run.

Squaring the weighted adjacency matrix of a digraph under ``min_plus``
relaxes every 2-hop path; ``ceil(log2(n-1))`` repeated squarings yield the
full all-pairs shortest-path matrix (:mod:`repro.workloads.apsp`).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..machine.machine import Machine
from ..machine.semiring import MIN_PLUS, Semiring, resolve_semiring
from .fox import FoxResult, run_fox

__all__ = ["run_fox_otto"]


def run_fox_otto(
    A: np.ndarray,
    B: np.ndarray,
    q: int,
    machine: Optional[Machine] = None,
    broadcast_algorithm: str = "scatter_allgather",
    semiring: Optional[Union[str, Semiring]] = None,
) -> FoxResult:
    """Fox's schedule over the min-plus semiring (distance product).

    ``semiring`` defaults to ``min_plus`` — pass another semiring only to
    reuse the entry point generically.  All grid/shape requirements and
    every cost counter match :func:`~repro.algorithms.fox.run_fox`.

    Examples
    --------
    >>> import numpy as np
    >>> inf = np.inf
    >>> W = np.array([[0., 1., inf], [inf, 0., 1.], [1., inf, 0.]])
    >>> res = run_fox_otto(W, W, 3)
    >>> res.C  # doctest: +NORMALIZE_WHITESPACE
    array([[0., 1., 2.],
           [2., 0., 1.],
           [1., 2., 0.]])
    """
    sr = MIN_PLUS if semiring is None else resolve_semiring(semiring)
    return run_fox(
        A, B, q,
        machine=machine,
        broadcast_algorithm=broadcast_algorithm,
        semiring=sr,
    )
