"""Bound-attainment gauges: measured cost over lower bound, per regime.

The paper's headline claim is that Algorithm 1 *attains* the Theorem 3
memory-independent lower bound exactly — constant included — in all three
regimes (1D/2D/3D with tight constants 1/2/3).  This module turns that
claim into a first-class observable: after any algorithm run,
:func:`bound_attainment` computes

* ``ratio``        = measured words / Theorem 3 bound, and
* ``memory_ratio`` = measured words / memory-dependent bound
  ``2mnk/(P sqrt(M))`` (when a memory limit is known),

and :func:`record_attainment` publishes them as gauges in the machine's
metrics registry, so they travel with every trace/metrics export instead
of living only inside test assertions.  A ratio of 1.0 (within 1e-9) means
the bound is attained exactly; suboptimal baselines (SUMMA, naive 1D
schemes off the optimal grid) report ratios strictly above 1.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..core.cases import Regime, classify
from ..core.lower_bounds import communication_lower_bound
from ..core.memory_dependent import memory_dependent_bound
from ..core.shapes import ProblemShape

__all__ = ["Attainment", "bound_attainment", "record_attainment"]

#: Relative tolerance under which a ratio counts as "attains the bound".
ATTAINMENT_TOL = 1e-9


def _ratio(measured: float, bound: float) -> float:
    """``measured / bound`` with the zero-bound corner handled explicitly."""
    if bound == 0.0:
        return 1.0 if measured == 0.0 else math.inf
    return measured / bound


@dataclasses.dataclass(frozen=True)
class Attainment:
    """Measured-cost-to-bound ratios for one algorithm execution.

    Attributes
    ----------
    shape, P, regime:
        Problem, processor count, and the Theorem 3 case that applies.
    measured_words:
        Critical-path words the run actually moved.
    bound:
        The Theorem 3 memory-independent communication lower bound.
    ratio:
        ``measured_words / bound`` (1.0 = bound attained exactly).
    memory, memory_bound, memory_ratio:
        The per-processor memory limit, the memory-dependent bound
        ``2mnk/(P sqrt(M))`` and its ratio; ``None`` when the machine ran
        without a memory limit (the paper's memory-independent setting).
    """

    shape: ProblemShape
    P: int
    regime: Regime
    measured_words: float
    bound: float
    ratio: float
    memory: Optional[float] = None
    memory_bound: Optional[float] = None
    memory_ratio: Optional[float] = None

    @property
    def attains(self) -> bool:
        """True when the Theorem 3 bound is attained exactly (within 1e-9)."""
        return abs(self.ratio - 1.0) <= ATTAINMENT_TOL

    def summary(self) -> str:
        """One-line human-readable rendering."""
        line = (
            f"{self.regime.name} regime: measured/bound = "
            f"{self.measured_words:g}/{self.bound:g} = {self.ratio:.9f}"
            f" ({'attains' if self.attains else 'above'} Theorem 3)"
        )
        if self.memory_ratio is not None:
            line += f"; vs memory-dependent bound (M={self.memory:g}): {self.memory_ratio:.4f}"
        return line


def bound_attainment(
    shape: ProblemShape,
    P: int,
    measured_words: float,
    memory: Optional[float] = None,
) -> Attainment:
    """Compute the attainment ratios for one measured execution.

    Examples
    --------
    >>> a = bound_attainment(ProblemShape(48, 48, 48), 64, 324.0)
    >>> a.regime.name, round(a.ratio, 9)
    ('THREE_D', 1.0)
    """
    bound = communication_lower_bound(shape, P)
    mem_bound = mem_ratio = None
    if memory is not None:
        mem_bound = memory_dependent_bound(shape, P, memory)
        mem_ratio = _ratio(measured_words, mem_bound)
    return Attainment(
        shape=shape,
        P=P,
        regime=classify(shape, P),
        measured_words=measured_words,
        bound=bound,
        ratio=_ratio(measured_words, bound),
        memory=memory,
        memory_bound=mem_bound,
        memory_ratio=mem_ratio,
    )


def record_attainment(
    machine,
    shape: ProblemShape,
    P: Optional[int] = None,
    algorithm: str = "",
) -> Attainment:
    """Measure a finished run on ``machine`` and publish attainment gauges.

    Uses the machine's cumulative critical-path words and (if set) its
    per-processor memory limit.  Sets the gauges

    * ``attainment_ratio{bound="memory_independent"}``
    * ``attainment_ratio{bound="memory_dependent"}`` (with a memory limit)

    in ``machine.metrics`` and returns the full :class:`Attainment` record.
    """
    P = machine.n_procs if P is None else P
    att = bound_attainment(
        shape, P, machine.cost.words, memory=machine.memory_limit
    )
    labels = {"bound": "memory_independent"}
    if algorithm:
        labels["algorithm"] = algorithm
    machine.metrics.gauge("attainment_ratio", **labels).set(att.ratio)
    if att.memory_ratio is not None:
        labels = dict(labels, bound="memory_dependent")
        machine.metrics.gauge("attainment_ratio", **labels).set(att.memory_ratio)
    return att
