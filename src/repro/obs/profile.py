"""Driver profiling: cProfile in every worker, one merged hotspot view.

The vectorized-sweep roadmap item needs to know *where driver wall-clock
goes* before anything can be rewritten — and a multiprocess sweep hides
most of it inside pool workers, where ``python -m cProfile`` cannot
follow.  This module closes that gap with three pieces:

* **Capture** — :func:`capture_stats` runs a callable under
  :class:`cProfile.Profile` and returns the profiler's raw stats mapping
  ``{(file, line, func): (cc, nc, tt, ct, callers)}``.  That mapping is
  plain picklable data, so pool workers can profile themselves and ship
  the result back through :func:`repro.parallel.parallel_map` (enabled
  by passing a :class:`ProfileCollector`).
* **Aggregation** — :class:`ProfileCollector` merges any number of stats
  mappings (parent stages plus every worker task) into one, summing call
  counts and times and unioning caller edges — the cross-process
  equivalent of ``pstats.Stats.add``, without temp files.
* **Rendering** — :func:`hotspot_table` formats the merged profile as a
  top-N table (sorted by internal time, the "where is the hot loop"
  question), and :func:`collapsed_stacks` emits folded ``caller;callee
  value`` lines in the Brendan Gregg flamegraph format, ready for
  ``flamegraph.pl`` or speedscope.  cProfile records caller *pairs*, not
  full stacks, so the collapse is two-deep — wide enough to see which
  driver stage feeds which hot function, which is the question the
  table answers in text form.

Profiling perturbs wall-clock (cProfile's tracing overhead is real), so
it is opt-in exactly like telemetry: ``profile=None`` leaves every
driver on the uninstrumented path, and model costs are independent of it
either way (asserted in ``tests/obs/test_profile.py``).

The CLI front-ends are ``repro profile <driver>`` and the ``--profile``
flag on ``repro sweep / bench / chaos / large-p``.
"""

from __future__ import annotations

import cProfile
import os
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

__all__ = [
    "FuncKey",
    "ProfileCollector",
    "capture_stats",
    "merge_stats",
    "hotspot_table",
    "collapsed_stacks",
    "write_collapsed",
]

_R = TypeVar("_R")

#: A cProfile function key: (filename, line number, function name).
FuncKey = Tuple[str, int, str]

#: A cProfile stats value: (primitive calls, total calls, internal time,
#: cumulative time, {caller key: 4-tuple}).
_StatValue = Tuple[int, int, float, float, dict]


def capture_stats(fn: Callable[[], _R]) -> Tuple[_R, Dict[FuncKey, _StatValue]]:
    """Run ``fn()`` under cProfile; return ``(result, raw stats mapping)``.

    The mapping is ``profiler.stats`` after ``create_stats()`` — plain
    tuples and dicts, picklable across process boundaries, mergeable with
    :func:`merge_stats`.  Exceptions from ``fn`` propagate unprofiled
    side effects intact (the profiler is disabled first).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    profiler.create_stats()
    return result, dict(profiler.stats)


def merge_stats(
    parts: List[Dict[FuncKey, _StatValue]],
) -> Dict[FuncKey, _StatValue]:
    """Merge raw cProfile stats mappings by summing counts and times.

    The cross-process analogue of ``pstats.Stats.add``: primitive/total
    call counts, internal (``tt``) and cumulative (``ct``) times sum per
    function; caller edges union, summing their per-edge 4-tuples.
    """
    merged: Dict[FuncKey, list] = {}
    for part in parts:
        for key, (cc, nc, tt, ct, callers) in part.items():
            if key not in merged:
                merged[key] = [cc, nc, tt, ct, dict(callers)]
                continue
            entry = merged[key]
            entry[0] += cc
            entry[1] += nc
            entry[2] += tt
            entry[3] += ct
            for caller, value in callers.items():
                if caller in entry[4]:
                    entry[4][caller] = tuple(
                        a + b for a, b in zip(entry[4][caller], value)
                    )
                else:
                    entry[4][caller] = value
    return {
        key: (cc, nc, tt, ct, callers)
        for key, (cc, nc, tt, ct, callers) in merged.items()
    }


class ProfileCollector:
    """Accumulates cProfile stats from the parent and every pool worker.

    Pass an instance as ``profile=`` to :func:`repro.parallel.parallel_map`
    (or to any driver that threads it through): each task runs under its
    own profiler and the collector merges the returned stats here in the
    parent.  ``sources`` counts merged contributions — for a 4-worker
    sweep over 8 shapes, 8 task profiles (plus any :meth:`profiled`
    parent sections).
    """

    def __init__(self) -> None:
        self._parts: List[Dict[FuncKey, _StatValue]] = []

    def add(self, stats: Dict[FuncKey, _StatValue]) -> None:
        """Merge one raw stats mapping (typically shipped from a worker)."""
        self._parts.append(stats)

    def profiled(self, fn: Callable[[], _R]) -> _R:
        """Run ``fn()`` under cProfile in this process and collect it."""
        result, stats = capture_stats(fn)
        self.add(stats)
        return result

    @property
    def sources(self) -> int:
        """How many stats mappings have been merged in."""
        return len(self._parts)

    def stats(self) -> Dict[FuncKey, _StatValue]:
        """The merged profile across every collected source."""
        return merge_stats(self._parts)

    def render(self, top: int = 15) -> str:
        """The top-N hotspot table for the merged profile."""
        return hotspot_table(self.stats(), top=top)


def _func_label(key: FuncKey) -> str:
    """Human-readable ``file:line(func)`` with a shortened path."""
    filename, line, name = key
    if filename == "~":  # C / built-in functions have no file
        return f"<built-in>({name})"
    return f"{os.path.basename(filename)}:{line}({name})"


def hotspot_table(
    stats: Dict[FuncKey, _StatValue], top: int = 15
) -> str:
    """Render the top-N functions by internal time as an aligned table.

    Columns mirror ``pstats`` (ncalls as ``total/primitive`` when they
    differ, tottime, percall, cumtime) so the output reads like the
    familiar profiler report, summed across every profiled process.
    """
    rows = []
    ranked = sorted(stats.items(), key=lambda kv: kv[1][2], reverse=True)
    for key, (cc, nc, tt, ct, _callers) in ranked[:max(0, top)]:
        ncalls = str(nc) if nc == cc else f"{nc}/{cc}"
        percall = tt / nc if nc else 0.0
        rows.append([
            ncalls, f"{tt:.4f}", f"{percall:.6f}", f"{ct:.4f}",
            _func_label(key),
        ])
    headers = ["ncalls", "tottime", "percall", "cumtime", "function"]
    total_tt = sum(v[2] for v in stats.values())
    total_calls = sum(v[1] for v in stats.values())
    if not rows:
        return "profile: no calls recorded"
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows))
        for c in range(len(headers))
    ]
    lines = [
        f"profile: {total_calls} calls, {total_tt:.4f}s internal time, "
        f"top {len(rows)} by tottime",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
    ]
    lines.extend(
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows
    )
    return "\n".join(lines)


def collapsed_stacks(
    stats: Dict[FuncKey, _StatValue], scale: float = 1e6
) -> List[str]:
    """Folded-stack lines (``caller;callee value``) for flamegraph tools.

    ``value`` is the callee's internal time attributed to that caller
    edge, in microseconds (``scale=1e6``) rounded to an integer as the
    flamegraph format expects.  Root functions (no recorded caller)
    collapse to a single frame.  cProfile keeps caller *pairs* rather
    than full stacks, so frames are at most two deep; the totals still
    sum to the profile's internal time (modulo integer rounding), which
    keeps relative widths honest.
    """
    lines = []
    for key, (_cc, _nc, tt, _ct, callers) in sorted(stats.items()):
        label = _func_label(key)
        if not callers:
            value = int(round(tt * scale))
            if value > 0:
                lines.append(f"{label} {value}")
            continue
        # Attribute internal time across caller edges proportionally to
        # each edge's cumulative time, falling back to an even split when
        # cProfile recorded zero-duration edges.
        edge_ct = {c: v[3] for c, v in callers.items()}
        total_ct = sum(edge_ct.values())
        for caller in sorted(edge_ct):
            if total_ct > 0:
                share = tt * (edge_ct[caller] / total_ct)
            else:
                share = tt / len(edge_ct)
            value = int(round(share * scale))
            if value > 0:
                lines.append(f"{_func_label(caller)};{label} {value}")
    return lines


def write_collapsed(
    stats: Dict[FuncKey, _StatValue], path: str, scale: float = 1e6
) -> int:
    """Write the folded-stack export to ``path``; returns the line count."""
    lines = collapsed_stacks(stats, scale=scale)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
