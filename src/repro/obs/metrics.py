"""Counters, gauges, histograms and the registry that owns them.

A deliberately small, dependency-free metrics layer in the Prometheus
style.  Instruments are identified by a name plus optional key=value
labels; get-or-create access makes call sites one-liners::

    registry.counter("words_total", kind="allgather").inc(48)
    registry.gauge("attainment_ratio", bound="theorem3").set(1.0)
    registry.histogram("event_words", kind="allgather").observe(48)

Every :class:`~repro.machine.machine.Machine` owns a registry
(``machine.metrics``); the span recorder feeds it automatically whenever an
event span closes, and :func:`update_machine_gauges` derives the per-rank
load-imbalance gauges from the machine's cumulative counters.  Exporters
(see :mod:`repro.obs.exporters`) serialize :meth:`MetricsRegistry.collect`.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RankSkew",
    "rank_skew",
    "update_machine_gauges",
    "load_imbalance",
]

#: Default histogram buckets: powers of two up to 2^30 words.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(2 ** e) for e in range(31))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (load imbalance, attainment ratio)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    Buckets are upper-bound inclusive (``value <= le``), with an implicit
    final +Inf bucket; the default buckets are powers of two, matching the
    message-size structure of the bandwidth-optimal collectives.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram buckets must be sorted, got {self.buckets}")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": [
                {"le": le, "count": c}
                for le, c in zip(list(self.buckets) + [math.inf], self.counts)
                if c
            ],
        }


def _key(name: str, labels: Dict[str, str]) -> Tuple:
    return (name,) + tuple(sorted(labels.items()))


class MetricsRegistry:
    """Owns all instruments of one machine run; get-or-create access."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple, object] = {}

    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} {labels} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def collect(self) -> List[dict]:
        """JSON-serializable snapshots of every instrument, sorted by key."""
        return [
            self._metrics[key].snapshot() for key in sorted(self._metrics.keys())
        ]

    def reset(self) -> None:
        """Drop every instrument (machine reset)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._metrics)


def load_imbalance(values) -> float:
    """``max / mean`` of a per-rank counter vector (1.0 = perfectly even).

    Returns 1.0 for an empty or all-zero vector, so the gauge is neutral
    on machines that have not communicated/computed yet.
    """
    values = list(values)
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 1.0
    return max(values) / mean


@dataclasses.dataclass(frozen=True)
class RankSkew:
    """Load-imbalance summary of one per-rank counter vector.

    The critical-path view of a counter: the straggler (the rank with the
    largest value) sets the pace, ``ratio = max / mean`` quantifies how far
    the machine is from perfect balance (1.0 exactly for the shard-even
    executions where Algorithm 1 attains the Theorem 3 constant).
    """

    max_value: float
    mean_value: float
    straggler: int
    ratio: float

    def to_dict(self) -> dict:
        return {
            "max": self.max_value,
            "mean": self.mean_value,
            "straggler": self.straggler,
            "ratio": self.ratio,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RankSkew":
        return cls(
            max_value=float(data["max"]),
            mean_value=float(data["mean"]),
            straggler=int(data["straggler"]),
            ratio=float(data["ratio"]),
        )


def rank_skew(values: Sequence[float]) -> RankSkew:
    """Skew statistics of a per-rank counter vector.

    Mirrors :func:`load_imbalance`'s conventions: an empty or all-zero
    vector is reported as perfectly balanced (ratio 1.0, straggler rank 0)
    so the gauge stays neutral before any communication happens.
    """
    values = list(values)
    if not values:
        return RankSkew(0.0, 0.0, 0, 1.0)
    mean = sum(values) / len(values)
    straggler = max(range(len(values)), key=lambda r: values[r])
    peak = values[straggler]
    ratio = 1.0 if mean == 0 else peak / mean
    return RankSkew(
        max_value=float(peak), mean_value=float(mean),
        straggler=straggler, ratio=float(ratio),
    )


def update_machine_gauges(machine) -> None:
    """Refresh the derived per-rank gauges from the machine's counters.

    Sets ``load_imbalance{counter=...}`` for flops and sent/received words,
    plus ``peak_memory_words``.  Called by the exporters before writing and
    usable any time in between.
    """
    net = machine.network
    metrics = machine.metrics
    metrics.gauge("load_imbalance", counter="flops").set(
        load_imbalance(p.flops for p in machine.processors)
    )
    metrics.gauge("load_imbalance", counter="sent_words").set(
        load_imbalance(net.sent_words)
    )
    metrics.gauge("load_imbalance", counter="recv_words").set(
        load_imbalance(net.recv_words)
    )
    skew = rank_skew(net.sent_words)
    metrics.gauge("words_sent_skew", stat="max").set(skew.max_value)
    metrics.gauge("words_sent_skew", stat="mean").set(skew.mean_value)
    metrics.gauge("words_sent_skew", stat="ratio").set(skew.ratio)
    metrics.gauge("words_sent_skew", stat="straggler_rank").set(float(skew.straggler))
    metrics.gauge("peak_memory_words").set(machine.peak_memory_words())
    injector = getattr(net, "fault_injector", None)
    if injector is None:
        return
    # Cumulative fault-layer gauges; absent on clean machines AND on
    # machines whose injector never materialized anything, so an attached
    # all-zero-probability model exports byte-identically to no injector.
    materialized = (
        injector.faults_injected or injector.retries or injector.words_resent
    )
    if materialized:
        metrics.gauge("faults_injected").set(float(injector.faults_injected))
        metrics.gauge("fault_retries").set(float(injector.retries))
        metrics.gauge("words_resent").set(float(injector.words_resent))
    # Recovery gauges appear only once a reconstruction actually happened.
    if getattr(injector, "recoveries", 0):
        metrics.gauge("recoveries").set(float(injector.recoveries))
        metrics.gauge("words_recovered").set(float(injector.words_recovered))
