"""Self-contained HTML dashboard over the repo's observability artifacts.

``repro dashboard`` folds the same artifacts the CLI gates read — the
experiment ledger, every ``BENCH_*.json``, a driver-telemetry JSONL and
a collapsed-stack profile — into **one static HTML file**: data inline
as JSON, rendering in vanilla JS + SVG, zero external requests, so the
file opens from ``file://`` (or a CI artifact download) with no server
and no network.  Panels:

* stat tiles + trend verdicts — the :mod:`repro.obs.analytics` report,
  so the dashboard and ``repro trend --check`` can never disagree;
* bench-trajectory sparklines per (algorithm, backend, case, shape)
  series, from :class:`~repro.obs.analytics.TrajectoryStore`;
* attainment heatmap per Theorem-3 case (latest attainment of every
  configuration, sequential ramp — darker is further from the bound);
* per-configuration ``words_sent`` skew bars (``max/mean`` ratio with
  the straggler rank), from the ledger's :class:`RankSkew` summaries;
* worker-utilization timeline (driver stage spans + per-worker task
  spans on one wall-clock axis) from a telemetry JSONL export;
* top-N hotspot table from a collapsed-stack (folded) profile.

The Python side only *collects* (:func:`collect_payload`) and
*templates* (:func:`render_html`); every mark is drawn client-side from
the embedded JSON, so the payload stays inspectable and the HTML stays
free of generated geometry.  Missing artifacts degrade to an explicit
"not collected" note per panel — a partial dashboard is valid, a silent
gap is not.
"""

from __future__ import annotations

import html as _html
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from .analytics import (
    DEFAULT_WINDOW,
    METRICS,
    TrajectoryStore,
    analyze,
    discover_bench_files,
    shape_fingerprint,
    theorem3_case,
)

__all__ = [
    "collect_payload",
    "render_html",
    "write_dashboard",
    "load_telemetry_jsonl",
    "parse_folded",
    "hotspot_rows",
    "DEFAULT_DASHBOARD",
]

#: Default output filename (repo root, next to the BENCH files).
DEFAULT_DASHBOARD = "dashboard.html"


# ---------------------------------------------------------------------- #
# artifact readers                                                       #
# ---------------------------------------------------------------------- #

def load_telemetry_jsonl(path: str) -> Dict[str, list]:
    """Group a telemetry JSONL export's records by their ``type`` field.

    Returns ``{"meta": [...], "stage_span": [...], "task_span": [...],
    "metric": [...], "worker": [...], "summary": [...]}`` (absent types
    map to empty lists, unknown types are kept under their own name so
    future record kinds survive a round-trip).
    """
    out: Dict[str, list] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            out.setdefault(record.get("type", "unknown"), []).append(record)
    return out


def parse_folded(text: str) -> List[Tuple[List[str], int]]:
    """Parse Brendan Gregg folded stacks: ``caller;callee value`` lines."""
    stacks: List[Tuple[List[str], int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            continue
        try:
            stacks.append((stack.split(";"), int(value)))
        except ValueError:
            continue
    return stacks


def hotspot_rows(
    stacks: List[Tuple[List[str], int]], top: int = 15
) -> List[dict]:
    """Top-``top`` functions by self time from folded stacks.

    ``self_us`` sums the samples where the function is the leaf;
    ``total_us`` sums every stack it appears in (each stack counted
    once, so recursion does not double-bill).
    """
    self_us: Dict[str, int] = {}
    total_us: Dict[str, int] = {}
    for frames, value in stacks:
        if not frames:
            continue
        leaf = frames[-1]
        self_us[leaf] = self_us.get(leaf, 0) + value
        for name in set(frames):
            total_us[name] = total_us.get(name, 0) + value
    rows = [
        {"name": name, "self_us": us, "total_us": total_us[name]}
        for name, us in self_us.items()
    ]
    rows.sort(key=lambda r: (-r["self_us"], r["name"]))
    return rows[:top]


# ---------------------------------------------------------------------- #
# payload assembly                                                       #
# ---------------------------------------------------------------------- #

def _series_payload(store: TrajectoryStore) -> List[dict]:
    """Every (series, metric, stream) trajectory as plain JSON."""
    out: List[dict] = []
    for key in store.keys():
        for metric in METRICS:
            for (stream, _env), points in sorted(
                store.streams(key, metric).items()
            ):
                out.append({
                    "key": key.to_dict(),
                    "metric": metric,
                    "stream": stream,
                    "points": [
                        {
                            "t": p.timestamp,
                            "v": p.value,
                            "label": p.label,
                            "source": p.source,
                            "env": p.env_key,
                        }
                        for p in points
                    ],
                })
    return out


def _attainment_payload(store: TrajectoryStore) -> dict:
    """Latest attainment per configuration, gridded by Theorem-3 case."""
    cells: List[dict] = []
    for key in store.keys():
        points = store.series(key, "attainment")
        if not points:
            continue
        latest = points[-1]
        cells.append({
            "algorithm": key.algorithm,
            "backend": key.backend,
            "case": key.case,
            "shape": key.shape,
            "value": latest.value,
            "label": latest.label,
        })
    cases = sorted({c["case"] for c in cells})
    rows = sorted({f"{c['algorithm']}/{c['backend']}" for c in cells})
    return {"cases": cases, "rows": rows, "cells": cells}


def _skew_payload(store: TrajectoryStore) -> List[dict]:
    """Latest words_sent skew ratio per configuration (where measured)."""
    bars: List[dict] = []
    for key in store.keys():
        points = store.series(key, "skew_ratio")
        if not points:
            continue
        latest = points[-1]
        bars.append({
            "label": key.label(),
            "case": key.case,
            "ratio": latest.value,
            "stream": latest.stream,
        })
    bars.sort(key=lambda b: (-b["ratio"], b["label"]))
    return bars


def _recovery_payload(ledger_path: Optional[str]) -> List[dict]:
    """Rank-failure recovery provenance: one row per reconstructed record.

    Reconstructed runs carry a ``recovery`` dict (mechanism, count,
    ``words_recovered``); their inflated words are kept *out* of the
    clean trajectories, so the dashboard surfaces them here instead —
    the survivability story next to the fault-free one.
    """
    if ledger_path is None:
        return []
    from .ledger import Ledger

    rows: List[dict] = []
    for record in Ledger(ledger_path).records():
        if record.recovery is None:
            continue
        rows.append({
            "algorithm": record.algorithm,
            "case": theorem3_case(record.shape, record.P),
            "shape": shape_fingerprint(record.shape, record.P),
            "mechanism": record.recovery.get("mechanism", ""),
            "recoveries": record.recovery.get("recoveries", 0),
            "words_recovered": record.recovery.get("words_recovered", 0.0),
            "words": record.words,
            "bound": record.bound,
            "overhead": (
                record.recovery.get("words_recovered", 0.0) / record.bound
                if record.bound else None
            ),
        })
    return rows


def collect_payload(
    ledger_path: Optional[str] = None,
    bench_paths: Iterable[str] = (),
    telemetry_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    include_faulty: bool = False,
    top: int = 15,
) -> dict:
    """Aggregate every artifact into the dashboard's embedded JSON.

    Missing *optional* paths (``None``, or a ledger file that does not
    exist yet) produce explicit ``null`` sections; a path that exists
    but is malformed raises, same as the CLI gates.
    """
    sources: List[str] = []
    if ledger_path is not None and os.path.exists(ledger_path):
        sources.append(ledger_path)
    else:
        ledger_path = None
    bench_paths = [p for p in bench_paths if os.path.exists(p)]
    sources.extend(bench_paths)

    store = TrajectoryStore.collect(
        ledger_path=ledger_path,
        bench_paths=bench_paths,
        include_faulty=include_faulty,
    )
    report = analyze(store, window=window)

    telemetry = None
    if telemetry_path is not None and os.path.exists(telemetry_path):
        groups = load_telemetry_jsonl(telemetry_path)
        telemetry = {
            "meta": (groups.get("meta") or [{}])[0],
            "stages": groups.get("stage_span", []),
            "tasks": groups.get("task_span", []),
            "workers": groups.get("worker", []),
            "summary": (groups.get("summary") or [{}])[0],
        }
        sources.append(telemetry_path)

    hotspots = None
    if profile_path is not None and os.path.exists(profile_path):
        with open(profile_path) as fh:
            hotspots = hotspot_rows(parse_folded(fh.read()), top=top)
        sources.append(profile_path)

    return {
        "meta": {
            "title": "repro observability dashboard",
            "window": window,
            "sources": sources,
            "points": len(store),
        },
        "trend": report.to_dict(),
        "series": _series_payload(store),
        "attainment": _attainment_payload(store),
        "skew": _skew_payload(store),
        "recovery": _recovery_payload(ledger_path),
        "telemetry": telemetry,
        "hotspots": hotspots,
    }


# ---------------------------------------------------------------------- #
# rendering                                                              #
# ---------------------------------------------------------------------- #

def render_html(payload: dict) -> str:
    """The complete single-file dashboard for one collected payload.

    The JSON is embedded in an inert ``<script type="application/json">``
    block (``</`` escaped so record contents cannot terminate the tag);
    all drawing happens in the inline script.  No URL of any scheme
    appears in the output — SVG elements are created via markup strings,
    which the HTML parser namespaces automatically.
    """
    data = json.dumps(payload, sort_keys=True).replace("</", "<\\/")
    title = _html.escape(payload.get("meta", {}).get("title", "dashboard"))
    return (
        _TEMPLATE
        .replace("__TITLE__", title)
        .replace("__REPRO_DATA__", data)
    )


def write_dashboard(out_path: str, payload: dict) -> str:
    """Render ``payload`` and write it to ``out_path``; returns the path."""
    text = render_html(payload)
    parent = os.path.dirname(os.path.abspath(out_path))
    os.makedirs(parent, exist_ok=True)
    with open(out_path, "w") as fh:
        fh.write(text)
    return out_path


# The template is plain text (no f-string) so the JS braces stay
# literal; the two __TOKENS__ above are the only substitution points.
_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --ink: #0b0b0b;
    --ink-2: #52514e;
    --muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --ring: rgba(11,11,11,0.10);
    --series-1: #2a78d6;
    --series-2: #eb6834;
    --series-3: #1baf7a;
    --good: #0ca30c;
    --warning: #fab219;
    --critical: #d03b3b;
    --good-text: #006300;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --ink: #ffffff;
      --ink-2: #c3c2b7;
      --muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --ring: rgba(255,255,255,0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --good-text: #0ca30c;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --good-text: #0ca30c;
  }
  * { box-sizing: border-box; }
  body.viz-root {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--ink);
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
    font-size: 14px; line-height: 1.45;
  }
  h1 { font-size: 20px; margin: 0 0 4px; }
  h3 { font-size: 14px; margin: 0; font-weight: 600; }
  .sub { color: var(--ink-2); margin: 0 0 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile {
    background: var(--surface-1); border: 1px solid var(--ring);
    border-radius: 8px; padding: 12px 16px; min-width: 150px;
  }
  .tile .v { font-size: 28px; font-weight: 650; }
  .tile .k { color: var(--ink-2); font-size: 12px; }
  .grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(420px, 1fr)); gap: 16px; }
  .card {
    background: var(--surface-1); border: 1px solid var(--ring);
    border-radius: 8px; padding: 16px; margin-bottom: 16px;
  }
  .card-head { display: flex; align-items: baseline; justify-content: space-between; margin-bottom: 10px; }
  .card-note { color: var(--muted); font-size: 12px; }
  .toggle { display: inline-flex; border: 1px solid var(--ring); border-radius: 6px; overflow: hidden; }
  .toggle button {
    border: 0; background: transparent; color: var(--ink-2);
    font: inherit; font-size: 12px; padding: 2px 10px; cursor: pointer;
  }
  .toggle button[aria-pressed="true"] { background: var(--grid); color: var(--ink); }
  table { border-collapse: collapse; width: 100%; font-size: 13px; }
  th { text-align: left; color: var(--ink-2); font-weight: 600; }
  th, td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  .hidden { display: none; }
  .chip {
    display: inline-block; border-radius: 10px; padding: 0 8px;
    font-size: 12px; font-weight: 600; border: 1px solid var(--ring);
  }
  .chip.regressed { color: var(--critical); }
  .chip.improved { color: var(--good-text); }
  .chip.flat { color: var(--ink-2); }
  .spark-grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(240px, 1fr)); gap: 10px; }
  .spark {
    border: 1px solid var(--grid); border-radius: 6px; padding: 8px 10px;
  }
  .spark .name { font-size: 11px; color: var(--ink-2); overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .spark .val { font-size: 16px; font-weight: 650; }
  .heat { display: grid; gap: 2px; }
  .heat .cell {
    min-height: 26px; border-radius: 3px; display: flex;
    align-items: center; justify-content: center; font-size: 11px;
    cursor: default;
  }
  .heat .hdr { background: transparent; color: var(--ink-2); font-weight: 600; justify-content: flex-start; }
  .bars .row { display: flex; align-items: center; gap: 8px; margin: 2px 0; }
  .bars .lbl { flex: 0 0 46%; font-size: 12px; color: var(--ink-2);
    overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .bars .track { flex: 1; }
  .bars .bar {
    height: 16px; background: var(--series-1);
    border-radius: 0 4px 4px 0;
  }
  .bars .bv { font-size: 12px; font-variant-numeric: tabular-nums; }
  svg { display: block; }
  .legend { display: flex; gap: 16px; font-size: 12px; color: var(--ink-2); margin-top: 6px; }
  .legend .key { display: inline-block; width: 14px; height: 3px; border-radius: 2px; vertical-align: middle; margin-right: 5px; }
  .legend .key.rect { height: 10px; border-radius: 2px; }
  #tooltip {
    position: fixed; pointer-events: none; z-index: 10;
    background: var(--surface-1); color: var(--ink);
    border: 1px solid var(--ring); border-radius: 6px;
    padding: 6px 10px; font-size: 12px; display: none;
    box-shadow: 0 2px 8px rgba(0,0,0,0.15);
  }
  #tooltip .tv { font-weight: 650; }
  #tooltip .tk { color: var(--ink-2); }
</style>
</head>
<body class="viz-root">
<h1>__TITLE__</h1>
<p class="sub" id="subtitle"></p>
<div class="tiles" id="tiles"></div>
<div id="panels"></div>
<div id="tooltip" role="status"></div>
<script type="application/json" id="repro-data">__REPRO_DATA__</script>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("repro-data").textContent);
const RAMP = ["#cde2fb","#b7d3f6","#9ec5f4","#86b6ef","#6da7ec","#5598e7",
              "#3987e5","#2a78d6","#256abf","#1c5cab","#184f95","#104281",
              "#0d366b"];
const css = (name) =>
  getComputedStyle(document.body).getPropertyValue(name).trim();
const fmt = (v) => {
  if (v === null || v === undefined) return "-";
  const a = Math.abs(v);
  if (a >= 1e6 || (a > 0 && a < 1e-3)) return v.toExponential(2);
  return (Math.round(v * 1000) / 1000).toLocaleString("en-US");
};

// --- tooltip (shared; textContent only — labels are untrusted data) ---
const tip = document.getElementById("tooltip");
function showTip(evt, rows) {
  tip.replaceChildren();
  for (const [k, v] of rows) {
    const line = document.createElement("div");
    const vs = document.createElement("span");
    vs.className = "tv"; vs.textContent = v;
    const ks = document.createElement("span");
    ks.className = "tk"; ks.textContent = k ? " " + k : "";
    line.append(vs, ks);
    tip.append(line);
  }
  tip.style.display = "block";
  const pad = 12;
  const w = tip.offsetWidth, h = tip.offsetHeight;
  let x = evt.clientX + pad, y = evt.clientY + pad;
  if (x + w > innerWidth - 4) x = evt.clientX - w - pad;
  if (y + h > innerHeight - 4) y = evt.clientY - h - pad;
  tip.style.left = x + "px"; tip.style.top = y + "px";
}
function hideTip() { tip.style.display = "none"; }
function hover(el, rows) {
  el.tabIndex = 0;
  el.addEventListener("pointermove", (e) => showTip(e, rows()));
  el.addEventListener("pointerleave", hideTip);
  el.addEventListener("focus", () => {
    const r = el.getBoundingClientRect();
    showTip({clientX: r.right, clientY: r.top}, rows());
  });
  el.addEventListener("blur", hideTip);
}

// --- card scaffolding: every chart ships its table-view twin ----------
function card(title, note) {
  const root = document.createElement("div");
  root.className = "card";
  const head = document.createElement("div");
  head.className = "card-head";
  const h = document.createElement("h3");
  h.textContent = title;
  const right = document.createElement("div");
  if (note) {
    const n = document.createElement("span");
    n.className = "card-note"; n.textContent = note + "  ";
    right.append(n);
  }
  const toggle = document.createElement("span");
  toggle.className = "toggle";
  const chart = document.createElement("div");
  const table = document.createElement("div");
  table.className = "hidden";
  for (const [label, el, other] of [["Chart", chart, table],
                                    ["Table", table, chart]]) {
    const b = document.createElement("button");
    b.type = "button"; b.textContent = label;
    b.setAttribute("aria-pressed", label === "Chart" ? "true" : "false");
    b.addEventListener("click", () => {
      el.classList.remove("hidden"); other.classList.add("hidden");
      for (const bb of toggle.querySelectorAll("button"))
        bb.setAttribute("aria-pressed", bb === b ? "true" : "false");
    });
    toggle.append(b);
  }
  right.append(toggle);
  head.append(h, right);
  root.append(head, chart, table);
  document.getElementById("panels").append(root);
  return {root, chart, table};
}
function buildTable(host, headers, rows, numeric) {
  const t = document.createElement("table");
  const tr = document.createElement("tr");
  headers.forEach((hd, i) => {
    const th = document.createElement("th");
    if (numeric.includes(i)) th.className = "num";
    th.textContent = hd; tr.append(th);
  });
  t.append(tr);
  for (const row of rows) {
    const r = document.createElement("tr");
    row.forEach((cell, i) => {
      const td = document.createElement("td");
      if (numeric.includes(i)) td.className = "num";
      td.textContent = cell; r.append(td);
    });
    t.append(r);
  }
  host.replaceChildren(t);
}
function emptyNote(host, text) {
  const p = document.createElement("p");
  p.className = "card-note"; p.textContent = text;
  host.append(p);
}

// --- stat tiles -------------------------------------------------------
function tiles() {
  const meta = DATA.meta, counts = DATA.trend.counts;
  const sub = document.getElementById("subtitle");
  sub.textContent = "sources: " + (meta.sources.join(", ") || "none") +
    " - " + meta.points + " samples, trend window " + meta.window;
  const host = document.getElementById("tiles");
  const items = [
    [String(meta.points), "metric samples"],
    [String(DATA.series.length), "trajectories"],
    [(DATA.trend.ok ? "\\u2713 OK" : "\\u2717 REGRESSED"), "trend verdict",
     DATA.trend.ok ? "var(--good-text)" : "var(--critical)"],
    [String(counts.regressed), "regressed"],
    [String(counts.improved), "improved"],
    [String(counts.flat), "flat"],
  ];
  for (const [v, k, color] of items) {
    const tile = document.createElement("div");
    tile.className = "tile";
    const vd = document.createElement("div");
    vd.className = "v"; vd.textContent = v;
    if (color) vd.style.color = color;
    const kd = document.createElement("div");
    kd.className = "k"; kd.textContent = k;
    tile.append(vd, kd);
    host.append(tile);
  }
}

// --- trend verdicts ---------------------------------------------------
function trendPanel() {
  const verdicts = DATA.trend.verdicts;
  const notable = verdicts.filter((v) => v.verdict !== "flat");
  const c = card("Trend verdicts",
    notable.length ? notable.length + " non-flat of " + verdicts.length
                   : "all " + verdicts.length + " trajectories flat");
  const shown = notable.length ? notable : [];
  if (!shown.length) {
    emptyNote(c.chart,
      "\\u2713 no regressions or improvements detected; " +
      "the table lists every trajectory.");
  } else {
    const t = document.createElement("table");
    const hr = document.createElement("tr");
    for (const hd of ["verdict", "metric", "series", "stream", "change"]) {
      const th = document.createElement("th");
      th.textContent = hd;
      if (hd === "change") th.className = "num";
      hr.append(th);
    }
    t.append(hr);
    for (const v of shown) {
      const r = document.createElement("tr");
      const chip = document.createElement("span");
      chip.className = "chip " + v.verdict;
      chip.textContent = (v.verdict === "regressed" ? "\\u2717 " : "\\u2713 ")
        + v.verdict;
      const cells = [chip, v.metric,
        v.key.algorithm + "/" + v.key.backend + " " + v.key.case + " " +
        v.key.shape,
        v.stream,
        (v.change >= 0 ? "+" : "") + (100 * v.change).toFixed(1) + "%"];
      cells.forEach((cell, i) => {
        const td = document.createElement("td");
        if (i === 4) td.className = "num";
        if (cell instanceof Node) td.append(cell);
        else td.textContent = cell;
        r.append(td);
      });
      t.append(r);
    }
    c.chart.append(t);
  }
  buildTable(c.table,
    ["verdict", "metric", "series", "stream", "n", "baseline", "recent"],
    verdicts.map((v) => [v.verdict, v.metric,
      v.key.algorithm + "/" + v.key.backend + " " + v.key.case + " " +
      v.key.shape, v.stream, String(v.points),
      fmt(v.baseline), fmt(v.recent)]),
    [4, 5, 6]);
}

// --- sparklines -------------------------------------------------------
function sparkSvg(points, w, h) {
  const vs = points.map((p) => p.v);
  const lo = Math.min(...vs), hi = Math.max(...vs);
  const span = hi - lo || 1;
  const x = (i) => points.length === 1
    ? w / 2 : 2 + (w - 4) * i / (points.length - 1);
  const y = (v) => h - 3 - (h - 6) * (v - lo) / span;
  const pts = points.map((p, i) => x(i) + "," + y(p.v)).join(" ");
  const last = points[points.length - 1];
  // Markup string (not createElementNS) keeps URL-shaped namespace
  // identifiers out of the document entirely.
  const holder = document.createElement("div");
  holder.innerHTML =
    '<svg width="' + w + '" height="' + h + '" role="img">' +
    (points.length > 1
      ? '<polyline fill="none" stroke="' + css("--series-1") +
        '" stroke-width="2" stroke-linejoin="round" points="' + pts + '"/>'
      : "") +
    '<circle cx="' + x(points.length - 1) + '" cy="' + y(last.v) +
    '" r="3" fill="' + css("--series-1") + '"/></svg>';
  return holder.firstChild;
}
function sparkPanel() {
  const byMetric = {};
  for (const s of DATA.series) {
    if (!s.points.length) continue;
    (byMetric[s.metric] = byMetric[s.metric] || []).push(s);
  }
  for (const metric of ["wall_clock", "words", "attainment", "skew_ratio"]) {
    const all = (byMetric[metric] || [])
      .slice()
      .sort((a, b) => b.points.length - a.points.length ||
        (a.key.shape < b.key.shape ? -1 : 1));
    if (!all.length) continue;
    const cap = 12;
    const shown = all.slice(0, cap);
    const c = card("Trajectories: " + metric,
      all.length > cap
        ? "showing " + cap + " of " + all.length +
          " (most history first; all in table)"
        : all.length + " trajectories");
    const grid = document.createElement("div");
    grid.className = "spark-grid";
    for (const s of shown) {
      const box = document.createElement("div");
      box.className = "spark";
      const name = document.createElement("div");
      name.className = "name";
      name.textContent = s.key.algorithm + "/" + s.key.backend + " " +
        s.key.case + " " + s.key.shape + " [" + s.stream + "]";
      const val = document.createElement("div");
      val.className = "val";
      val.textContent = fmt(s.points[s.points.length - 1].v);
      box.append(name, val, sparkSvg(s.points, 220, 36));
      hover(box, () => [
        [metric, fmt(s.points[s.points.length - 1].v)],
        ["samples", String(s.points.length)],
        ["", s.key.algorithm + "/" + s.key.backend + " " + s.key.case],
        ["", s.stream],
      ]);
      grid.append(box);
    }
    c.chart.append(grid);
    buildTable(c.table,
      ["series", "stream", "n", "first", "latest"],
      all.map((s) => [
        s.key.algorithm + "/" + s.key.backend + " " + s.key.case + " " +
        s.key.shape,
        s.stream, String(s.points.length),
        fmt(s.points[0].v), fmt(s.points[s.points.length - 1].v)]),
      [2, 3, 4]);
  }
}

// --- attainment heatmap ----------------------------------------------
function heatPanel() {
  const att = DATA.attainment;
  const c = card("Bound attainment by Theorem-3 case",
    "words / lower bound; darker = further above the bound");
  if (!att.cells.length) {
    emptyNote(c.chart, "no attainment samples collected");
    emptyNote(c.table, "no attainment samples collected");
    return;
  }
  const cols = [];
  for (const cs of att.cases)
    for (const shape of [...new Set(att.cells
        .filter((x) => x.case === cs).map((x) => x.shape))].sort())
      cols.push({case: cs, shape});
  const vals = att.cells.map((x) => x.value);
  const lo = Math.min(...vals), hi = Math.max(...vals);
  const ramp = (v) => {
    const t = hi === lo ? 0.5 : (v - lo) / (hi - lo);
    return RAMP[Math.round(t * (RAMP.length - 1))];
  };
  const grid = document.createElement("div");
  grid.className = "heat";
  grid.style.gridTemplateColumns =
    "minmax(120px, auto) repeat(" + cols.length + ", minmax(46px, 1fr))";
  const corner = document.createElement("div");
  corner.className = "cell hdr";
  grid.append(corner);
  for (const col of cols) {
    const hd = document.createElement("div");
    hd.className = "cell hdr";
    hd.style.justifyContent = "center";
    hd.textContent = col.case;
    hover(hd, () => [[col.case, "case"], ["", col.shape]]);
    grid.append(hd);
  }
  for (const row of att.rows) {
    const hd = document.createElement("div");
    hd.className = "cell hdr";
    hd.textContent = row;
    grid.append(hd);
    for (const col of cols) {
      const cell = document.createElement("div");
      cell.className = "cell";
      const hit = att.cells.find((x) =>
        x.algorithm + "/" + x.backend === row &&
        x.case === col.case && x.shape === col.shape);
      if (hit) {
        const bg = ramp(hit.value);
        cell.style.background = bg;
        cell.style.color =
          RAMP.indexOf(bg) >= 6 ? "#ffffff" : "#0b0b0b";
        cell.textContent = hit.value.toFixed(2);
        hover(cell, () => [
          [fmt(hit.value), "x lower bound"],
          ["", row + " - case " + hit.case],
          ["", hit.shape],
        ]);
      } else {
        cell.style.background = "var(--grid)";
        cell.textContent = "\\u00b7";
        cell.style.color = "var(--muted)";
      }
      grid.append(cell);
    }
  }
  c.chart.append(grid);
  buildTable(c.table,
    ["algorithm", "case", "shape", "attainment"],
    att.cells.slice().sort((a, b) => a.value - b.value).map((x) => [
      x.algorithm + "/" + x.backend, x.case, x.shape, fmt(x.value)]),
    [3]);
}

// --- skew bars --------------------------------------------------------
function skewPanel() {
  const bars = DATA.skew;
  const c = card("words_sent skew (max / mean per rank)",
    "1.00 = perfectly balanced");
  if (!bars.length) {
    emptyNote(c.chart, "no per-rank skew recorded");
    emptyNote(c.table, "no per-rank skew recorded");
    return;
  }
  const cap = 14;
  const shown = bars.slice(0, cap);
  if (bars.length > cap)
    emptyNote(c.chart, "showing the " + cap + " most-skewed of " +
      bars.length + "; all in table");
  const host = document.createElement("div");
  host.className = "bars";
  const hi = Math.max(...bars.map((b) => b.ratio));
  for (const b of shown) {
    const row = document.createElement("div");
    row.className = "row";
    const lbl = document.createElement("div");
    lbl.className = "lbl"; lbl.textContent = b.label;
    const track = document.createElement("div");
    track.className = "track";
    const bar = document.createElement("div");
    bar.className = "bar";
    bar.style.width = Math.max(2, 100 * b.ratio / hi) + "%";
    track.append(bar);
    const bv = document.createElement("div");
    bv.className = "bv"; bv.textContent = b.ratio.toFixed(3);
    hover(row, () => [
      [b.ratio.toFixed(4), "max / mean"],
      ["", b.label],
      ["", b.stream],
    ]);
    row.append(lbl, track, bv);
    host.append(row);
  }
  c.chart.append(host);
  buildTable(c.table, ["series", "stream", "skew ratio"],
    bars.map((b) => [b.label, b.stream, b.ratio.toFixed(4)]), [2]);
}

// --- rank-failure recovery provenance ---------------------------------
function recoveryPanel() {
  const rows = DATA.recovery || [];
  const c = card("Rank-failure recovery (survived runs)",
    "overhead = words_recovered / Theorem 3 bound");
  if (!rows.length) {
    emptyNote(c.chart, "no reconstructed runs recorded " +
      "(run repro chaos --recover with --ledger)");
    emptyNote(c.table, "no reconstructed runs recorded");
    return;
  }
  const host = document.createElement("div");
  host.className = "bars";
  const hi = Math.max(...rows.map((r) => r.words_recovered));
  const cap = 14;
  for (const r of rows.slice(0, cap)) {
    const row = document.createElement("div");
    row.className = "row";
    const lbl = document.createElement("div");
    lbl.className = "lbl";
    lbl.textContent = r.algorithm + "/" + r.shape + " (" + r.mechanism + ")";
    const track = document.createElement("div");
    track.className = "track";
    const bar = document.createElement("div");
    bar.className = "bar";
    bar.style.width = Math.max(2, 100 * r.words_recovered / hi) + "%";
    track.append(bar);
    const bv = document.createElement("div");
    bv.className = "bv";
    bv.textContent = r.words_recovered.toFixed(0);
    hover(row, () => [
      [r.words_recovered.toFixed(0), "words recovered"],
      [r.overhead == null ? "n/a" : r.overhead.toFixed(3), "x bound"],
      ["", r.mechanism + ", " + r.case],
    ]);
    row.append(lbl, track, bv);
    host.append(row);
  }
  c.chart.append(host);
  buildTable(c.table,
    ["algorithm", "case", "shape", "mechanism", "recovered", "overhead"],
    rows.map((r) => [r.algorithm, r.case, r.shape, r.mechanism,
      r.words_recovered.toFixed(0),
      r.overhead == null ? "n/a" : r.overhead.toFixed(3)]), [4, 5]);
}

// --- worker-utilization timeline -------------------------------------
function timelinePanel() {
  const t = DATA.telemetry;
  const c = card("Worker utilization timeline",
    t ? "driver stage spans + per-worker task spans, one wall-clock axis"
      : "");
  if (!t || (!t.stages.length && !t.tasks.length)) {
    emptyNote(c.chart, "no telemetry JSONL collected " +
      "(pass --telemetry to repro dashboard)");
    emptyNote(c.table, "no telemetry JSONL collected");
    return;
  }
  const spans = t.stages.map((s) => ({
    lane: "driver", name: s.name, start: s.start, end: s.end,
    kind: "stage", extra: "depth " + s.depth,
  })).concat(t.tasks.map((k) => ({
    lane: "worker " + k.worker_pid, name: k.label || ("task " + k.index),
    start: k.started, end: k.ended, kind: "task",
    extra: "queue wait " + fmt(k.queue_wait) + "s, " + k.items + " item(s)",
  })));
  const t0 = Math.min(...spans.map((s) => s.start));
  const t1 = Math.max(...spans.map((s) => s.end));
  const span = t1 - t0 || 1;
  const lanes = [...new Set(spans.map((s) => s.lane))];
  lanes.sort((a, b) => (a === "driver" ? -1 : b === "driver" ? 1
    : a.localeCompare(b, "en", {numeric: true})));
  const W = 860, LANE_H = 26, LEFT = 110;
  const H = lanes.length * LANE_H + 26;
  const holder = document.createElement("div");
  holder.style.overflowX = "auto";
  let svg = '<svg width="' + W + '" height="' + H + '" role="img">';
  lanes.forEach((_, i) => {
    const y = (i + 1) * LANE_H;
    svg += '<line x1="' + LEFT + '" y1="' + y + '" x2="' + W + '" y2="' +
      y + '" stroke="' + css("--grid") + '" stroke-width="1"/>';
  });
  for (let g = 0; g <= 4; g++) {
    const x = LEFT + (W - LEFT - 8) * g / 4;
    svg += '<line x1="' + x + '" y1="4" x2="' + x + '" y2="' +
      (H - 22) + '" stroke="' + css("--grid") + '" stroke-width="1"/>' +
      '<text x="' + x + '" y="' + (H - 8) + '" fill="' + css("--muted") +
      '" font-size="11" text-anchor="middle">' +
      (span * g / 4).toFixed(2) + 's</text>';
  }
  svg += "</svg>";
  holder.innerHTML = svg;
  const root = holder.firstChild;
  const mk = document.createElement("div");
  lanes.forEach((lane, i) => {
    mk.innerHTML = '<svg><text x="0" y="' + (i * LANE_H + 18) +
      '" fill="' + css("--ink-2") + '" font-size="12">' + "</text></svg>";
    const label = mk.firstChild.firstChild;
    label.textContent = lane;   // lane names are data: textContent
    root.append(label);
  });
  const x = (v) => LEFT + (W - LEFT - 8) * (v - t0) / span;
  for (const s of spans) {
    const i = lanes.indexOf(s.lane);
    const y = i * LANE_H + 5;
    const w = Math.max(2, x(s.end) - x(s.start));
    mk.innerHTML = '<svg><rect x="' + x(s.start) + '" y="' + y +
      '" width="' + w + '" height="' + (LANE_H - 10) + '" rx="2" fill="' +
      css(s.kind === "stage" ? "--series-1" : "--series-2") + '"/></svg>';
    const rect = mk.firstChild.firstChild;
    hover(rect, () => [
      [fmt(s.end - s.start) + "s", s.name],
      ["", s.lane + (s.extra ? " - " + s.extra : "")],
    ]);
    root.append(rect);
  }
  holder.replaceChildren(root);
  c.chart.append(holder);
  const legend = document.createElement("div");
  legend.className = "legend";
  for (const [name, varName] of [["stage span", "--series-1"],
                                 ["task span", "--series-2"]]) {
    const item = document.createElement("span");
    const key = document.createElement("span");
    key.className = "key rect";
    key.style.background = css(varName);
    item.append(key, document.createTextNode(name));
    legend.append(item);
  }
  c.chart.append(legend);
  const wrows = (t.workers || []).map((w) => [
    "worker " + w.pid, String(w.tasks), fmt(w.busy),
    (100 * w.busy_fraction).toFixed(1) + "%"]);
  buildTable(c.table,
    ["lane", "tasks", "busy (s)", "busy fraction"],
    wrows.length ? wrows
      : spans.map((s) => [s.lane, "1", fmt(s.end - s.start), "-"]),
    [1, 2, 3]);
}

// --- hotspot table ----------------------------------------------------
function hotspotPanel() {
  const rows = DATA.hotspots;
  const c = card("Profile hotspots", rows ? "top functions by self time" : "");
  if (!rows || !rows.length) {
    emptyNote(c.chart, "no collapsed-stack profile collected " +
      "(pass --profile to repro dashboard)");
    emptyNote(c.table, "no collapsed-stack profile collected");
    return;
  }
  const hi = Math.max(...rows.map((r) => r.self_us));
  const t = document.createElement("table");
  const hr = document.createElement("tr");
  for (const hd of ["function", "self (\\u00b5s)", "total (\\u00b5s)", ""]) {
    const th = document.createElement("th");
    if (hd && hd !== "function") th.className = "num";
    th.textContent = hd; hr.append(th);
  }
  t.append(hr);
  for (const r of rows) {
    const tr = document.createElement("tr");
    const name = document.createElement("td");
    name.textContent = r.name;
    const self = document.createElement("td");
    self.className = "num";
    self.textContent = r.self_us.toLocaleString("en-US");
    const total = document.createElement("td");
    total.className = "num";
    total.textContent = r.total_us.toLocaleString("en-US");
    const barTd = document.createElement("td");
    barTd.style.width = "30%";
    const track = document.createElement("div");
    track.className = "bars";
    const bar = document.createElement("div");
    bar.className = "bar";
    bar.style.height = "10px";
    bar.style.background = css("--series-1");
    bar.style.borderRadius = "0 4px 4px 0";
    bar.style.width = Math.max(1, 100 * r.self_us / hi) + "%";
    track.append(bar);
    barTd.append(track);
    hover(tr, () => [
      [r.self_us.toLocaleString("en-US") + " \\u00b5s self", r.name],
      [r.total_us.toLocaleString("en-US") + " \\u00b5s total", ""],
    ]);
    tr.append(name, self, total, barTd);
    t.append(tr);
  }
  c.chart.append(t);
  buildTable(c.table, ["function", "self (\\u00b5s)", "total (\\u00b5s)"],
    rows.map((r) => [r.name, String(r.self_us), String(r.total_us)]),
    [1, 2]);
}

tiles();
trendPanel();
sparkPanel();
heatPanel();
skewPanel();
recoveryPanel();
timelinePanel();
hotspotPanel();
</script>
</body>
</html>
"""
