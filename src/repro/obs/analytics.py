"""Trajectory analytics: trend detection over the ledger and BENCH files.

PRs 1-6 made every run *emit* rich artifacts — schema-versioned ledger
records, ``BENCH_<label>.json`` reports, driver telemetry, merged
profiles — but nothing aggregated them across runs: the bench gate
compares one run against one baseline, and the ledger is history nobody
reads back as a whole.  This module is the read side.  It folds every
artifact into per-metric **time series** and runs a rolling-median
regression detector over them, the same trajectory-analytics pass a
training or serving stack runs over its own perf counters:

* :class:`SeriesKey` — the aggregation key ``(algorithm, backend,
  Theorem-3 case, shape fingerprint)``.  The case comes from
  :func:`repro.core.cases.classify`, so a 1D probe and a 3D probe of the
  same algorithm never share a trend line (their bounds, constants and
  cost regimes differ by theorem, not by noise).
* :class:`TrajectoryStore` — collects :class:`TrajectoryPoint` samples
  for the four tracked metrics (:data:`METRICS`: wall-clock, total
  words, bound attainment, per-rank ``words_sent`` skew ratio) from any
  number of ledgers (via :meth:`~repro.obs.ledger.Ledger.records`) and
  BENCH reports.  Within a series, points are sub-grouped into *streams*
  (one per entry/record name) so a module-harness timing never trends
  against a sweep-point timing that happens to share its configuration.
* :func:`detect_trend` — the changepoint detector.  It compares the
  median of the trailing ``window`` samples against the median of the
  preceding history, so a single noisy sample can neither trip nor mask
  a verdict; the typed verdict is one of :data:`IMPROVED` /
  :data:`FLAT` / :data:`REGRESSED`.  Thresholds mirror
  :mod:`repro.obs.regress`: model-level metrics (words, attainment,
  skew) are exact — any drift beyond float representation noise is a
  verdict — while wall-clock gets the gate's relative tolerance plus an
  absolute floor, and is only ever compared between samples whose
  environment fingerprints match (the ledger's own comparability rule).
* :func:`analyze` — runs the detector over every (series, metric,
  stream) triple in a store and returns a :class:`TrendReport`, the
  backend of ``repro trend`` (exit contract under ``--check``: 0 = no
  regression, 1 = regression detected, 2 = usage error — the same split
  ``repro bench`` uses).

The dashboard (:mod:`repro.obs.dashboard`) renders the same store and
report as HTML, so the CLI gate and the visual trajectory can never
disagree about what regressed.
"""

from __future__ import annotations

import dataclasses
import glob
import os
import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.cases import classify
from ..core.shapes import ProblemShape
from .bench import BenchReport, load_bench_report, repo_root
from .ledger import Ledger, RunRecord

__all__ = [
    "METRICS",
    "IMPROVED",
    "FLAT",
    "REGRESSED",
    "SeriesKey",
    "TrajectoryPoint",
    "TrajectoryStore",
    "TrendVerdict",
    "TrendReport",
    "discover_bench_files",
    "detect_trend",
    "rolling_median",
    "analyze",
    "record_metric_value",
    "shape_fingerprint",
    "theorem3_case",
]

#: The tracked per-series metrics, in report order.
METRICS: Tuple[str, ...] = ("wall_clock", "words", "attainment", "skew_ratio")

#: Typed trend verdicts.  Every metric is oriented so *lower is better*
#: (attainment is ``words / bound`` >= 1; skew ratio is ``max / mean`` >= 1).
IMPROVED = "improved"
FLAT = "flat"
REGRESSED = "regressed"

#: Relative change a metric must exceed before it is a verdict.  Model
#: metrics are exact (the tolerance only absorbs float representation
#: noise across serialization round-trips); wall-clock reuses the bench
#: gate's default.
TREND_TOLERANCES: Dict[str, float] = {
    "wall_clock": 0.20,
    "words": 1e-9,
    "attainment": 1e-9,
    "skew_ratio": 1e-9,
}

#: Absolute floors, same role as the bench gate's wall-clock floor:
#: micro-entries cannot trip the detector on scheduler jitter.
TREND_FLOORS: Dict[str, float] = {
    "wall_clock": 0.25,
    "words": 0.0,
    "attainment": 0.0,
    "skew_ratio": 0.0,
}

#: Default trailing-window width for the rolling median.
DEFAULT_WINDOW = 3


def shape_fingerprint(shape: Sequence[int], P: int) -> str:
    """The canonical ``"n1xn2xn3:P<p>"`` key for one configuration."""
    return "x".join(str(d) for d in shape) + f":P{P}"


def theorem3_case(shape: Sequence[int], P: int) -> str:
    """The Theorem 3 case (``"1D"``/``"2D"``/``"3D"``) of a configuration."""
    return str(classify(ProblemShape(*shape), P))


@dataclasses.dataclass(frozen=True, order=True)
class SeriesKey:
    """What one trend line is *about*: who ran, how, and in which regime."""

    algorithm: str
    backend: str
    case: str
    shape: str

    def label(self) -> str:
        return f"{self.algorithm}/{self.backend} case {self.case} {self.shape}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TrajectoryPoint:
    """One metric sample: when it was measured and where it came from.

    ``stream`` is the sub-series discriminator (the ledger record's
    ``kind:config`` or the BENCH entry's name): two streams under one
    :class:`SeriesKey` describe the same configuration measured by
    different harnesses, whose wall-clocks are not mutually comparable.
    ``env_key`` is a flattened environment fingerprint; wall-clock trends
    never cross it.
    """

    timestamp: float
    value: float
    stream: str
    env_key: str
    source: str  # "ledger" | "bench"
    label: str = ""
    git_sha: Optional[str] = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _env_key(env: Optional[dict]) -> str:
    if not env:
        return "unknown"
    return "|".join(f"{k}={env[k]}" for k in sorted(env))


def record_metric_value(record, metric: str) -> Optional[float]:
    """Pull one :data:`METRICS` value off a ledger record or bench entry.

    Returns ``None`` when the record did not measure it (e.g. a
    skew-less oracle evaluation), so callers can skip the sample instead
    of inventing a zero.
    """
    if metric == "skew_ratio":
        return None if record.skew is None else float(record.skew.ratio)
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; tracked: {METRICS}")
    return float(getattr(record, metric))


def discover_bench_files(directory: Optional[str] = None) -> List[str]:
    """Sorted ``BENCH_*.json`` paths at the repo root (or ``directory``)."""
    directory = repo_root() if directory is None else directory
    return sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))


class TrajectoryStore:
    """Per-metric time series aggregated from ledgers and BENCH reports.

    Fault-injected ledger records are excluded by default: their model
    costs include recovery resends (see ``repro ledger diff``'s warning),
    so trending them against fault-free history would report phantom
    regressions.
    """

    def __init__(self, include_faulty: bool = False) -> None:
        self.include_faulty = include_faulty
        self._series: Dict[SeriesKey, Dict[str, List[TrajectoryPoint]]] = {}
        self.sources: List[str] = []

    # ------------------------------------------------------------------ #
    # ingestion                                                          #
    # ------------------------------------------------------------------ #

    def add_point(
        self, key: SeriesKey, metric: str, point: TrajectoryPoint
    ) -> None:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; tracked: {METRICS}")
        self._series.setdefault(key, {m: [] for m in METRICS})
        self._series[key][metric].append(point)

    def add_record(self, record: RunRecord, source: str = "ledger") -> bool:
        """Ingest one ledger record; returns whether it was kept."""
        if record.fault_injected and not self.include_faulty:
            return False
        # A reconstructed run's words include its recovery traffic; like
        # fault-degraded runs, it must not pollute the clean trajectories.
        if getattr(record, "recovery", None) is not None and not self.include_faulty:
            return False
        key = SeriesKey(
            algorithm=record.algorithm,
            backend=record.backend,
            case=theorem3_case(record.shape, record.P),
            shape=shape_fingerprint(record.shape, record.P),
        )
        stream = f"{record.kind}:{record.config}" if record.config else record.kind
        env = _env_key(record.env)
        for metric in METRICS:
            value = record_metric_value(record, metric)
            if value is None:
                continue
            self.add_point(key, metric, TrajectoryPoint(
                timestamp=record.timestamp,
                value=value,
                stream=stream,
                env_key=env,
                source=source,
                label=record.label,
                git_sha=record.git_sha,
            ))
        return True

    def add_ledger(self, ledger: Ledger) -> int:
        """Ingest every record of a ledger; returns how many were kept."""
        kept = 0
        for record in ledger.records():
            kept += bool(self.add_record(record))
        self.sources.append(ledger.path)
        return kept

    def add_bench_report(self, report: BenchReport, path: str = "") -> int:
        """Ingest every entry of one BENCH report (all share its timestamp)."""
        env = _env_key(report.env)
        for entry in report.entries:
            key = SeriesKey(
                algorithm=entry.algorithm,
                backend=entry.backend,
                case=theorem3_case(entry.shape, entry.P),
                shape=shape_fingerprint(entry.shape, entry.P),
            )
            for metric in METRICS:
                value = record_metric_value(entry, metric)
                if value is None:
                    continue
                self.add_point(key, metric, TrajectoryPoint(
                    timestamp=report.timestamp,
                    value=value,
                    stream=entry.name,
                    env_key=env,
                    source="bench",
                    label=report.label,
                    git_sha=report.git_sha,
                ))
        self.sources.append(path or f"BENCH_{report.label}.json")
        return len(report.entries)

    @classmethod
    def collect(
        cls,
        ledger_path: Optional[str] = None,
        bench_paths: Iterable[str] = (),
        include_faulty: bool = False,
    ) -> "TrajectoryStore":
        """Build a store from artifact paths.

        Raises
        ------
        LedgerError
            On a malformed ledger file (missing files are fine: an empty
            history is a valid, empty store).
        BaselineError
            On a malformed BENCH file.
        """
        store = cls(include_faulty=include_faulty)
        if ledger_path is not None:
            store.add_ledger(Ledger(ledger_path))
        for path in bench_paths:
            store.add_bench_report(load_bench_report(path), path=path)
        return store

    # ------------------------------------------------------------------ #
    # access                                                             #
    # ------------------------------------------------------------------ #

    def keys(self) -> List[SeriesKey]:
        return sorted(self._series)

    def series(self, key: SeriesKey, metric: str) -> List[TrajectoryPoint]:
        """Time-ordered samples of one metric under one key."""
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; tracked: {METRICS}")
        points = self._series.get(key, {}).get(metric, [])
        return sorted(points, key=lambda p: p.timestamp)

    def streams(
        self, key: SeriesKey, metric: str, split_env: bool = False
    ) -> Dict[Tuple[str, str], List[TrajectoryPoint]]:
        """Samples grouped by stream (and env fingerprint when asked).

        ``split_env=True`` is the wall-clock mode: timings from different
        environment fingerprints land in different groups, so a machine
        change restarts the trend instead of faking a regression.  The
        group key is ``(stream, env_key)`` either way (env collapses to
        ``""`` when not splitting).
        """
        out: Dict[Tuple[str, str], List[TrajectoryPoint]] = {}
        for point in self.series(key, metric):
            group = (point.stream, point.env_key if split_env else "")
            out.setdefault(group, []).append(point)
        return out

    def __len__(self) -> int:
        return sum(
            len(points)
            for metrics in self._series.values()
            for points in metrics.values()
        )


def rolling_median(values: Sequence[float], window: int) -> List[float]:
    """Trailing-window medians: element i covers ``values[max(0,i-w+1):i+1]``."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return [
        statistics.median(values[max(0, i - window + 1):i + 1])
        for i in range(len(values))
    ]


def detect_trend(
    values: Sequence[float],
    tolerance: float,
    floor: float = 0.0,
    window: int = DEFAULT_WINDOW,
) -> Tuple[str, Optional[float], Optional[float], float, Optional[int]]:
    """Classify one time-ordered sample vector.

    Returns ``(verdict, baseline, recent, change, changepoint)`` where
    ``baseline`` is the median of everything before the trailing window,
    ``recent`` the median of the trailing window, ``change`` the signed
    relative drift ``(recent - baseline) / baseline``, and
    ``changepoint`` the index where the rolling median first crossed the
    tolerance in the verdict's direction (``None`` when flat).

    With fewer than ``window + 1`` samples there is no history to trend
    against and the verdict is :data:`FLAT` with ``baseline=None``.
    Medians on both sides make the detector robust to single-sample
    noise: one straggler run neither trips nor masks a verdict.
    """
    values = [float(v) for v in values]
    n = len(values)
    window = max(1, window)
    if n < window + 1:
        return (FLAT, None, None, 0.0, None)
    baseline = statistics.median(values[:-window])
    recent = statistics.median(values[-window:])
    delta = recent - baseline
    scale = abs(baseline) if baseline != 0 else 1.0
    change = delta / scale
    verdict = FLAT
    if change > tolerance and delta > floor:
        verdict = REGRESSED
    elif -change > tolerance and -delta > floor:
        verdict = IMPROVED
    if verdict == FLAT:
        return (FLAT, baseline, recent, change, None)
    medians = rolling_median(values, window)
    changepoint = None
    for i in range(1, n):
        drift = (medians[i] - baseline) / scale
        if (verdict == REGRESSED and drift > tolerance) or (
            verdict == IMPROVED and -drift > tolerance
        ):
            changepoint = i
            break
    return (verdict, baseline, recent, change, changepoint)


@dataclasses.dataclass(frozen=True)
class TrendVerdict:
    """One detector decision: a (series, metric, stream) triple classified."""

    key: SeriesKey
    metric: str
    stream: str
    env_key: str
    verdict: str
    points: int
    baseline: Optional[float] = None
    recent: Optional[float] = None
    change: float = 0.0
    changepoint: Optional[float] = None  # timestamp of the detected shift
    detail: str = ""

    def render(self) -> str:
        head = (f"[{self.verdict.upper():9s}] {self.metric:<10s} "
                f"{self.key.label()} [{self.stream}]")
        if self.baseline is None:
            return f"{head}: {self.detail or 'insufficient history'}"
        body = (f"median {self.baseline:g} -> {self.recent:g} "
                f"({self.change:+.1%}, n={self.points})")
        return f"{head}: {body}" + (f"; {self.detail}" if self.detail else "")

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["key"] = self.key.to_dict()
        return out


@dataclasses.dataclass
class TrendReport:
    """Every verdict from one :func:`analyze` pass."""

    verdicts: List[TrendVerdict]
    window: int = DEFAULT_WINDOW

    @property
    def regressions(self) -> List[TrendVerdict]:
        return [v for v in self.verdicts if v.verdict == REGRESSED]

    @property
    def improvements(self) -> List[TrendVerdict]:
        return [v for v in self.verdicts if v.verdict == IMPROVED]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> Dict[str, int]:
        out = {IMPROVED: 0, FLAT: 0, REGRESSED: 0}
        for v in self.verdicts:
            out[v.verdict] += 1
        return out

    def render(self, verbose: bool = False) -> str:
        counts = self.counts()
        lines = [
            f"trend: {len(self.verdicts)} trajectories "
            f"(window {self.window}): "
            f"{counts[REGRESSED]} regressed, {counts[IMPROVED]} improved, "
            f"{counts[FLAT]} flat"
        ]
        shown = [
            v for v in self.verdicts
            if verbose or v.verdict != FLAT
        ]
        lines.extend(v.render() for v in shown)
        if not shown and self.verdicts:
            lines.append("(every trajectory is flat; --all lists them)")
        lines.append("TREND " + ("OK" if self.ok else "REGRESSED"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "counts": self.counts(),
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def analyze(
    store: TrajectoryStore,
    metrics: Sequence[str] = METRICS,
    window: int = DEFAULT_WINDOW,
    tolerances: Optional[Dict[str, float]] = None,
    algorithm: Optional[str] = None,
    case: Optional[str] = None,
) -> TrendReport:
    """Run :func:`detect_trend` over every (series, metric, stream) triple.

    Wall-clock streams are additionally split per environment
    fingerprint; model-metric streams trend across environments (they
    are environment-independent by construction).  ``algorithm`` and
    ``case`` filter the serieses considered.
    """
    for metric in metrics:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; tracked: {METRICS}")
    tolerances = {**TREND_TOLERANCES, **(tolerances or {})}
    verdicts: List[TrendVerdict] = []
    for key in store.keys():
        if algorithm is not None and key.algorithm != algorithm:
            continue
        if case is not None and key.case != case:
            continue
        for metric in metrics:
            grouped = store.streams(
                key, metric, split_env=(metric == "wall_clock")
            )
            for (stream, env), points in sorted(grouped.items()):
                values = [p.value for p in points]
                verdict, baseline, recent, change, cp_index = detect_trend(
                    values,
                    tolerance=tolerances[metric],
                    floor=TREND_FLOORS[metric],
                    window=window,
                )
                verdicts.append(TrendVerdict(
                    key=key,
                    metric=metric,
                    stream=stream,
                    env_key=env,
                    verdict=verdict,
                    points=len(values),
                    baseline=baseline,
                    recent=recent,
                    change=change,
                    changepoint=(
                        None if cp_index is None
                        else points[cp_index].timestamp
                    ),
                    detail=(
                        f"insufficient history ({len(values)} sample(s), "
                        f"window {window})"
                        if baseline is None else ""
                    ),
                ))
    return TrendReport(verdicts=verdicts, window=window)
