"""Observability: span tracing, metrics, bound-attainment gauges, exporters.

This subpackage makes the simulator's cost claims *inspectable*.  The
reproduction's whole point is exact accounting — Theorem 3's tight
constants (1/2/3 across the 1D/2D/3D regimes) only show up if every word
moved by every collective is attributed to the right phase — so the
instrumentation layer is structured around that invariant:

* :mod:`repro.obs.span` — nested, auto-measured spans with per-rank
  send/recv word counts, message counts and flop deltas.  The machine's
  legacy flat :class:`~repro.machine.trace.Trace` API is a view over the
  event spans, so existing callers are unaffected.
* :mod:`repro.obs.metrics` — counters, gauges and histograms in a
  per-machine :class:`~repro.obs.metrics.MetricsRegistry`, fed
  automatically as event spans close.
* :mod:`repro.obs.attainment` — ``measured cost / lower bound`` gauges,
  published after every algorithm run: "Algorithm 1 attains the bound
  exactly" becomes a first-class observable rather than a test assertion.
* :mod:`repro.obs.exporters` — pluggable exporters: JSON-lines (with a
  zero-drift guarantee against the machine counters) and Chrome
  ``chrome://tracing`` timeline JSON.
* :mod:`repro.obs.inspect` — the ``repro inspect`` pretty-printer (phase
  tree, per-rank table, attainment summary).

Cross-run observability (this layer's second half) persists what the
in-run layer measures:

* :mod:`repro.obs.ledger` — the experiment ledger: schema-versioned,
  append-only JSONL run records (model costs, attainment, skew,
  wall-clock, git SHA, environment fingerprint) with query/trajectory/
  merge helpers; the backend of ``repro ledger``.
* :mod:`repro.obs.bench` — the ``repro bench`` driver: times every
  ``benchmarks/bench_*.py`` harness plus a standard sweep grid and writes
  one ``BENCH_<label>.json`` trajectory file.
* :mod:`repro.obs.regress` — the regression gate: exact on model-level
  costs and attainment, thresholded (default ±20%) on wall-clock.
* :mod:`repro.obs.analytics` — trajectory analytics over everything the
  other modules persist: per-metric time series keyed by (algorithm,
  backend, Theorem-3 case, shape) with a rolling-median trend detector
  (typed improved/flat/regressed verdicts); the backend of
  ``repro trend`` and ``repro ledger trajectory``.
* :mod:`repro.obs.dashboard` — the ``repro dashboard`` renderer: one
  self-contained static HTML file (inline JSON + vanilla JS/SVG, zero
  external requests) with trend verdicts, trajectory sparklines, the
  Theorem-3 attainment heatmap, words-sent skew bars, the
  worker-utilization timeline and the profile hotspot table.

Driver-level observability (this layer's third half — the host process
that orchestrates simulations, rather than the simulated machine):

* :mod:`repro.obs.telemetry` — wall-clock stage spans for every driver
  phase, per-task :class:`~repro.obs.telemetry.TaskSpan` records
  propagated across the :func:`repro.parallel.parallel_map` process
  boundary, worker-utilization/straggler statistics, and a throttled
  progress heartbeat.  Strictly opt-in; a telemetry-off run executes the
  pre-telemetry code path and produces byte-identical output.
* :mod:`repro.obs.profile` — cProfile capture inside pool workers, raw
  stats merged across processes into one hotspot table and a
  collapsed-stack (flamegraph-ready) export; the backend of
  ``repro profile`` and the ``--profile`` driver flags.

See ``docs/OBSERVABILITY.md`` for a guided tour.
"""

from .span import Span, SpanRecorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RankSkew,
    load_imbalance,
    rank_skew,
    update_machine_gauges,
)
from .attainment import Attainment, bound_attainment, record_attainment
from .exporters import (
    EXPORTERS,
    ChromeTraceExporter,
    JSONLinesExporter,
    export_telemetry_chrome,
    export_telemetry_jsonl,
    get_exporter,
    read_jsonl,
    telemetry_jsonl_records,
    telemetry_trace_events,
)
from .telemetry import (
    ProgressReporter,
    StageSpan,
    TaskSpan,
    Telemetry,
    WorkerStats,
    maybe_stage,
)
from .profile import (
    ProfileCollector,
    capture_stats,
    collapsed_stacks,
    hotspot_table,
    merge_stats,
    write_collapsed,
)
from .inspect import inspect_report, render_rank_table, render_span_tree
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    RunRecord,
    environment_fingerprint,
    git_revision,
    merge_ledgers,
)
from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchEntry,
    BenchReport,
    discover_bench_modules,
    load_bench_report,
    run_bench_suite,
)
from .regress import (
    GateResult,
    RegressionReport,
    compare_entries,
    compare_reports,
)
from .analytics import (
    METRICS,
    SeriesKey,
    TrajectoryPoint,
    TrajectoryStore,
    TrendReport,
    TrendVerdict,
    analyze,
    detect_trend,
    discover_bench_files,
)
from .dashboard import (
    collect_payload,
    render_html,
    write_dashboard,
)

__all__ = [
    "Attainment",
    "BENCH_SCHEMA_VERSION",
    "BenchEntry",
    "BenchReport",
    "ChromeTraceExporter",
    "Counter",
    "EXPORTERS",
    "GateResult",
    "Gauge",
    "Histogram",
    "JSONLinesExporter",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "METRICS",
    "MetricsRegistry",
    "ProfileCollector",
    "ProgressReporter",
    "RankSkew",
    "RegressionReport",
    "RunRecord",
    "SeriesKey",
    "Span",
    "SpanRecorder",
    "StageSpan",
    "TaskSpan",
    "Telemetry",
    "TrajectoryPoint",
    "TrajectoryStore",
    "TrendReport",
    "TrendVerdict",
    "WorkerStats",
    "analyze",
    "bound_attainment",
    "capture_stats",
    "collapsed_stacks",
    "collect_payload",
    "compare_entries",
    "compare_reports",
    "detect_trend",
    "discover_bench_files",
    "discover_bench_modules",
    "environment_fingerprint",
    "export_telemetry_chrome",
    "export_telemetry_jsonl",
    "get_exporter",
    "git_revision",
    "hotspot_table",
    "inspect_report",
    "load_bench_report",
    "load_imbalance",
    "maybe_stage",
    "merge_ledgers",
    "merge_stats",
    "rank_skew",
    "read_jsonl",
    "record_attainment",
    "render_html",
    "render_rank_table",
    "render_span_tree",
    "run_bench_suite",
    "telemetry_jsonl_records",
    "telemetry_trace_events",
    "update_machine_gauges",
    "write_collapsed",
    "write_dashboard",
]
