"""Observability: span tracing, metrics, bound-attainment gauges, exporters.

This subpackage makes the simulator's cost claims *inspectable*.  The
reproduction's whole point is exact accounting — Theorem 3's tight
constants (1/2/3 across the 1D/2D/3D regimes) only show up if every word
moved by every collective is attributed to the right phase — so the
instrumentation layer is structured around that invariant:

* :mod:`repro.obs.span` — nested, auto-measured spans with per-rank
  send/recv word counts, message counts and flop deltas.  The machine's
  legacy flat :class:`~repro.machine.trace.Trace` API is a view over the
  event spans, so existing callers are unaffected.
* :mod:`repro.obs.metrics` — counters, gauges and histograms in a
  per-machine :class:`~repro.obs.metrics.MetricsRegistry`, fed
  automatically as event spans close.
* :mod:`repro.obs.attainment` — ``measured cost / lower bound`` gauges,
  published after every algorithm run: "Algorithm 1 attains the bound
  exactly" becomes a first-class observable rather than a test assertion.
* :mod:`repro.obs.exporters` — pluggable exporters: JSON-lines (with a
  zero-drift guarantee against the machine counters) and Chrome
  ``chrome://tracing`` timeline JSON.
* :mod:`repro.obs.inspect` — the ``repro inspect`` pretty-printer (phase
  tree, per-rank table, attainment summary).

See ``docs/OBSERVABILITY.md`` for a guided tour.
"""

from .span import Span, SpanRecorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_imbalance,
    update_machine_gauges,
)
from .attainment import Attainment, bound_attainment, record_attainment
from .exporters import (
    EXPORTERS,
    ChromeTraceExporter,
    JSONLinesExporter,
    get_exporter,
    read_jsonl,
)
from .inspect import inspect_report, render_rank_table, render_span_tree

__all__ = [
    "Attainment",
    "ChromeTraceExporter",
    "Counter",
    "EXPORTERS",
    "Gauge",
    "Histogram",
    "JSONLinesExporter",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "bound_attainment",
    "get_exporter",
    "inspect_report",
    "load_imbalance",
    "read_jsonl",
    "record_attainment",
    "render_rank_table",
    "render_span_tree",
    "update_machine_gauges",
]
