"""Span-based tracing: the nested replacement for the flat event trace.

A :class:`Span` is one timed region of a simulated execution — a collective,
a compute phase, or a user-defined block opened with
``machine.span("allgather-A", kind="collective")``.  Spans nest: Algorithm 1
produces a tree like ::

    alg1
    ├── allgather-A
    │   └── allgather "A blocks"        (event, 48 words)
    ├── allgather-B
    │   └── allgather "B blocks"        (event, 36 words)
    ├── compute
    │   └── compute "local GEMM ..."    (event, 0 words)
    └── reduce-scatter-C
        └── reduce-scatter "C blocks"   (event, 40 words)

Each span carries the *inclusive* cost delta it incurred (rounds, words,
flops along the critical path) plus per-rank attribution: words and
messages sent/received and flops performed by every processor while the
span was open.  When the recorder is attached to a
:class:`~repro.machine.machine.Machine` these are measured automatically
from counter snapshots, so attribution is exact by construction — the same
words the network counted are the words the spans report (the "zero drift"
invariant tested in ``tests/obs/test_exporters.py``).

Spans marked ``event=True`` are the unit-of-accounting leaves; the legacy
:class:`~repro.machine.trace.Trace` API (``by_kind``, ``total_cost``,
``groups_involving``) is a flat view over exactly those spans, so code
written against the old flat trace keeps working unchanged.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cost import Cost

__all__ = ["Span", "SpanRecorder"]


def _zero_cost():
    # Imported lazily: obs.span sits below the machine layer in the import
    # graph (machine.trace imports it), so a module-level import of
    # machine.cost would be circular for some import entry points.
    from ..machine.cost import Cost

    return Cost()


def _tuple_delta(before: tuple, after: tuple) -> Tuple[float, ...]:
    if len(before) != len(after):
        raise ValueError(
            f"per-rank counter length changed mid-span: {len(before)} != {len(after)}"
        )
    return tuple(b - a for a, b in zip(before, after))


@dataclasses.dataclass
class Span:
    """One node of the span tree.

    Attributes
    ----------
    index:
        Creation sequence number (unique within a recorder, depth-first
        creation order).
    name:
        Free-form label (e.g. ``"A blocks"`` or ``"allgather-A"``).
    kind:
        Category: ``"allgather"``, ``"reduce-scatter"``, ``"compute"``,
        ``"phase"``, ...  Event spans reuse the legacy trace kinds.
    groups:
        Processor groups involved (tuple of rank tuples); empty for purely
        local or structural spans.
    event:
        True for unit-of-accounting leaf spans — the spans the legacy
        :class:`~repro.machine.trace.Trace` view exposes and the spans
        whose per-rank counters must sum to the machine's cumulative
        counters.  Structural (``event=False``) spans carry *inclusive*
        costs and exist for grouping/timeline purposes only.
    start_time, end_time:
        Modelled machine time (``CostModel.time`` of the cumulative cost)
        at open and close; zero when the recorder has no machine attached.
    cost:
        Inclusive :class:`~repro.machine.cost.Cost` delta.
    sent_words, recv_words, sent_messages, recv_messages, flops:
        Per-rank deltas over the span's lifetime (empty tuples when not
        measured).
    faults_injected, retries, words_resent:
        Fault-layer deltas over the span's lifetime (always zero without a
        fault injector attached; see :mod:`repro.machine.faults`).
    recoveries, words_recovered:
        Rank-failure recovery deltas over the span's lifetime (nonzero
        only when a survivability layer completed a reconstruction while
        the span was open; see :mod:`repro.machine.recovery`).  Exported
        only when nonzero, so fault-free span records keep their
        historical bytes.
    """

    index: int
    name: str
    kind: str
    groups: Tuple[Tuple[int, ...], ...] = ()
    event: bool = False
    depth: int = 0
    parent: Optional["Span"] = dataclasses.field(default=None, repr=False)
    children: List["Span"] = dataclasses.field(default_factory=list, repr=False)
    start_time: float = 0.0
    end_time: float = 0.0
    cost: "Cost" = dataclasses.field(default_factory=_zero_cost)
    sent_words: Tuple[float, ...] = ()
    recv_words: Tuple[float, ...] = ()
    sent_messages: Tuple[int, ...] = ()
    recv_messages: Tuple[int, ...] = ()
    flops: Tuple[float, ...] = ()
    faults_injected: int = 0
    retries: int = 0
    words_resent: float = 0.0
    recoveries: int = 0
    words_recovered: float = 0.0

    @property
    def duration(self) -> float:
        """Modelled duration (end minus start time)."""
        return self.end_time - self.start_time

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def involves(self, rank: int) -> bool:
        """Does any of this span's processor groups include ``rank``?"""
        return any(rank in group for group in self.groups)

    def to_record(self) -> dict:
        """A JSON-serializable flat record (used by the exporters)."""
        record = {
            "type": "span",
            "id": self.index,
            "parent": None if self.parent is None else self.parent.index,
            "name": self.name,
            "kind": self.kind,
            "event": self.event,
            "depth": self.depth,
            "groups": [list(g) for g in self.groups],
            "start": self.start_time,
            "end": self.end_time,
            "rounds": self.cost.rounds,
            "words": self.cost.words,
            "flops": self.cost.flops,
            "sent_words": list(self.sent_words),
            "recv_words": list(self.recv_words),
            "sent_messages": list(self.sent_messages),
            "recv_messages": list(self.recv_messages),
            "rank_flops": list(self.flops),
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "words_resent": self.words_resent,
        }
        # Additive: recovery keys appear only on spans that actually saw a
        # reconstruction, so fault-free exports stay byte-identical.
        if self.recoveries or self.words_recovered:
            record["recoveries"] = self.recoveries
            record["words_recovered"] = self.words_recovered
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "event" if self.event else "span"
        return (
            f"Span({tag} #{self.index} {self.kind}:{self.name!r}, "
            f"{self.cost.words:g}w, {len(self.children)} children)"
        )


class SpanRecorder:
    """Records a tree of :class:`Span` objects for one machine execution.

    Parameters
    ----------
    machine:
        The :class:`~repro.machine.machine.Machine` to measure, or ``None``
        for a standalone recorder (explicit costs only, zero timestamps).

    The recorder owns the open-span stack; :meth:`span` nests, and both
    :meth:`measure` (auto-measured event) and :meth:`record_event`
    (explicit-cost event) attach leaves under the innermost open span.
    """

    def __init__(self, machine=None) -> None:
        self.machine = machine
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._counter = 0

    # ------------------------------------------------------------------ #
    # construction                                                       #
    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        return 0.0 if self.machine is None else self.machine.time

    def _open(self, name: str, kind: str, groups, event: bool) -> Span:
        span = Span(
            index=self._counter,
            name=name,
            kind=kind,
            groups=tuple(tuple(g) for g in groups),
            event=event,
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
        )
        self._counter += 1
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def _attach_measurement(self, span: Span, before, after) -> None:
        span.cost = after.cost - before.cost
        span.sent_words = _tuple_delta(before.sent_words, after.sent_words)
        span.recv_words = _tuple_delta(before.recv_words, after.recv_words)
        span.sent_messages = _tuple_delta(before.sent_messages, after.sent_messages)
        span.recv_messages = _tuple_delta(before.recv_messages, after.recv_messages)
        span.flops = _tuple_delta(before.flops, after.flops)
        span.faults_injected = after.faults_injected - before.faults_injected
        span.retries = after.retries - before.retries
        span.words_resent = after.words_resent - before.words_resent
        span.recoveries = after.recoveries - before.recoveries
        span.words_recovered = after.words_recovered - before.words_recovered

    @contextlib.contextmanager
    def span(self, name: str, kind: str = "phase", groups=(), event: bool = False):
        """Open a nested span; measures cost and per-rank deltas on close.

        When the machine carries a fault injector, every *successful* span
        close additionally enforces the conservation invariant
        ``sum(sent_words) == sum(recv_words)`` (fault-free machines skip
        the check entirely; an exception already unwinding is left alone so
        the original fault error is the one that propagates).
        """
        span = self._open(name, kind, groups, event)
        span.start_time = self._now()
        before = None if self.machine is None else self.machine.snapshot()
        self._stack.append(span)
        ok = False
        try:
            yield span
            ok = True
        finally:
            self._stack.pop()
            span.end_time = self._now()
            if before is not None:
                self._attach_measurement(span, before, self.machine.snapshot())
            self._finalize(span)
            if (
                ok
                and self.machine is not None
                and getattr(self.machine, "fault_injector", None) is not None
            ):
                self.machine.check_conservation()

    def measure(self, name: str, kind: str, groups=()):
        """An auto-measured *event* span (the unit of cost accounting).

        Collectives use this: ``with recorder.measure("A blocks",
        "allgather", groups): run_schedule(...)``.
        """
        return self.span(name, kind=kind, groups=groups, event=True)

    def record_event(
        self,
        kind: str,
        label: str,
        groups=(),
        cost: Optional[Cost] = None,
    ) -> Span:
        """Record an instantaneous event span with an explicit cost.

        This is the legacy ``Trace.record`` path.  With a machine attached
        the event is placed on the timeline ending *now* and spanning the
        modelled time of ``cost``; per-rank attribution is not available
        (the cost was measured by the caller).
        """
        span = self._open(label, kind, groups, event=True)
        span.cost = _zero_cost() if cost is None else cost
        span.end_time = self._now()
        if self.machine is not None:
            span.start_time = max(
                0.0, span.end_time - self.machine.cost_model.time(span.cost)
            )
        self._finalize(span)
        return span

    def _finalize(self, span: Span) -> None:
        """Post-close hook: feed the machine's metrics registry."""
        if self.machine is None or not span.event:
            return
        metrics = getattr(self.machine, "metrics", None)
        if metrics is None:
            return
        metrics.counter("events_total", kind=span.kind).inc()
        metrics.counter("words_total", kind=span.kind).inc(span.cost.words)
        metrics.counter("rounds_total", kind=span.kind).inc(span.cost.rounds)
        metrics.histogram("event_words", kind=span.kind).observe(span.cost.words)
        # Fault counters appear only when faults actually happened, so
        # fault-free runs export byte-identical metric sets.
        if span.faults_injected or span.retries or span.words_resent:
            metrics.counter("faults_injected_total", kind=span.kind).inc(
                span.faults_injected
            )
            metrics.counter("retries_total", kind=span.kind).inc(span.retries)
            metrics.counter("words_resent_total", kind=span.kind).inc(
                span.words_resent
            )
        # Same gating for recovery: only reconstructing runs export these.
        if span.recoveries or span.words_recovered:
            metrics.counter("recoveries_total", kind=span.kind).inc(
                span.recoveries
            )
            metrics.counter("words_recovered_total", kind=span.kind).inc(
                span.words_recovered
            )

    # ------------------------------------------------------------------ #
    # queries                                                            #
    # ------------------------------------------------------------------ #

    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first pre-order (creation order)."""
        for root in self.roots:
            yield from root.walk()

    def events(self) -> List[Span]:
        """Event spans only, in creation order — the legacy flat trace."""
        return [s for s in self.iter_spans() if s.event]

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Drop all recorded spans (open spans are not allowed)."""
        if self._stack:
            raise RuntimeError(
                f"cannot clear with {len(self._stack)} span(s) still open"
            )
        self.roots.clear()
        self._counter = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_spans())
