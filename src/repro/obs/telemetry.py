"""Driver-level telemetry: host-process spans for the code that *runs* runs.

The PR-1 span layer (:mod:`repro.obs.span`) instruments the **simulated
machine** — its clock is modelled time, its counters are modelled words.
The drivers that orchestrate those simulations (the sweep, the chaos
matrix, the large-P attainment sweep, the bench suite) spend real
wall-clock seconds in operand generation, simulation, verification,
ledger appends and result merging, and with ``--workers N`` most of that
time happens inside opaque pool processes.  This module gives the *host*
side the same treatment the machine already enjoys:

* :class:`StageSpan` — one nested wall-clock region of the driver
  (``plan`` / ``map`` / ``merge`` / ``ledger-append`` ...), opened with
  ``telemetry.stage(name)`` exactly like ``machine.span``.
* :class:`TaskSpan` — one :func:`repro.parallel.parallel_map` task as a
  worker saw it: the worker's pid, when the parent submitted it, when the
  worker actually started (the difference is **queue wait**), when it
  finished, and how many work items (configs) it processed.
* :class:`Telemetry` — the recorder that owns both, merges every worker's
  task spans into one unified timeline (a shared monotonic clock, origin
  at recorder creation), derives worker-utilization statistics
  (:meth:`Telemetry.worker_stats` — per-worker busy fraction,
  task-duration histogram, pool-straggler detection analogous to
  :class:`~repro.obs.metrics.RankSkew`) and renders a compact
  :meth:`Telemetry.summary` for ledger and BENCH records.
* :class:`ProgressReporter` — a throttled heartbeat for long sweeps:
  ``done/total``, throughput, and an ETA, at most once per interval.

All timestamps come from :func:`time.perf_counter`, which is system-wide
(``CLOCK_MONOTONIC`` on Linux), so parent-submitted and worker-measured
instants live on one comparable axis and queue waits are real, not
inferred.  The recorder stores every instant relative to its own creation
(:attr:`Telemetry.epoch`), so exported timelines start near zero.

Telemetry is strictly opt-in and inert by design: drivers accept
``telemetry=None`` (the default) and skip every recording call, so a
telemetry-off run executes the exact pre-telemetry code path — the
determinism tests in ``tests/obs/test_telemetry.py`` assert that model
costs, attainment and ledger bytes are unperturbed.  The exporters in
:mod:`repro.obs.exporters` render the merged timeline as Chrome-trace
JSON (driver stages and per-worker lanes side by side, loadable in
``chrome://tracing`` next to a simulated machine's spans) and as
JSON-lines records, both under the same zero-drift contract as the
machine exporters: the durations written are the durations measured,
exactly.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import os
import sys
import time
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from .metrics import MetricsRegistry, RankSkew, rank_skew

__all__ = [
    "StageSpan",
    "TaskSpan",
    "Telemetry",
    "WorkerStats",
    "ProgressReporter",
    "maybe_stage",
]

#: Task-duration histogram buckets (seconds): powers of two from ~1 ms up.
TASK_DURATION_BUCKETS: Tuple[float, ...] = tuple(
    2.0 ** e for e in range(-10, 11)
)


@dataclasses.dataclass
class StageSpan:
    """One nested wall-clock region of the host driver.

    Times are seconds relative to the owning :class:`Telemetry`'s epoch.
    ``index`` is the creation sequence number; ``parent`` is the index of
    the enclosing stage (or ``None`` at top level), mirroring the
    ``id``/``parent`` encoding of machine spans so the exporters can
    reuse one tree convention.
    """

    index: int
    name: str
    kind: str = "stage"
    depth: int = 0
    parent: Optional[int] = None
    start: float = 0.0
    end: float = 0.0
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_record(self) -> dict:
        """A JSON-serializable flat record (used by the exporters)."""
        return {
            "type": "stage_span",
            "id": self.index,
            "parent": self.parent,
            "name": self.name,
            "kind": self.kind,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "meta": dict(self.meta),
        }


@dataclasses.dataclass
class TaskSpan:
    """One ``parallel_map`` task as measured by the worker that ran it.

    ``submitted`` is stamped by the parent just before handing the task
    to the pool; ``started``/``ended`` are stamped inside the worker.
    All three share the system-wide monotonic clock and are stored
    relative to the telemetry epoch, so ``queue_wait`` is an honest
    measurement of time spent waiting for a worker slot (and of pickling
    overhead), not a model.

    ``items`` counts the work units the task processed — for a sweep
    task, the number of records its shape produced — so ``items_per_sec``
    is the configs/sec throughput the vectorized-sweep work will be
    judged against.
    """

    index: int
    label: str
    worker_pid: int
    submitted: float
    started: float
    ended: float
    items: int = 0

    @property
    def duration(self) -> float:
        """Seconds the worker spent executing the task."""
        return self.ended - self.started

    @property
    def queue_wait(self) -> float:
        """Seconds between parent submission and worker start."""
        return self.started - self.submitted

    @property
    def items_per_sec(self) -> float:
        """Throughput in work items (configs) per second; 0 when untimed."""
        return self.items / self.duration if self.duration > 0 else 0.0

    def to_record(self) -> dict:
        """A JSON-serializable flat record (used by the exporters)."""
        return {
            "type": "task_span",
            "index": self.index,
            "label": self.label,
            "worker_pid": self.worker_pid,
            "submitted": self.submitted,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "queue_wait": self.queue_wait,
            "items": self.items,
            "items_per_sec": self.items_per_sec,
        }


@dataclasses.dataclass(frozen=True)
class WorkerStats:
    """Utilization of one pool worker over the telemetry window.

    ``busy`` is the exact sum of the worker's task durations (zero-drift
    by construction: the same numbers the task spans carry).
    ``busy_fraction`` divides by the pool window — first task start to
    last task end across *all* workers — so a straggler-free pool shows
    every worker near 1.0 and a skewed pool shows idle tails directly.
    """

    pid: int
    tasks: int
    busy: float
    items: int
    busy_fraction: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Telemetry:
    """Recorder for one driver invocation's host-side telemetry.

    Parameters
    ----------
    driver:
        Name of the driver being instrumented (``"sweep"``, ``"chaos"``,
        ``"bench"``, ``"large-p"``); labels exports and summaries.

    The recorder is cheap to create and every method is callable from the
    parent process only — workers report plain timing tuples through
    :func:`repro.parallel.parallel_map`, which forwards them to
    :meth:`record_task`.
    """

    def __init__(self, driver: str = "driver") -> None:
        self.driver = driver
        #: perf_counter value all stored times are relative to.
        self.epoch = time.perf_counter()
        self.stages: List[StageSpan] = []
        self.tasks: List[TaskSpan] = []
        self.metrics = MetricsRegistry()
        self._stack: List[StageSpan] = []

    # ------------------------------------------------------------------ #
    # recording                                                          #
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Seconds since the telemetry epoch (shared monotonic clock)."""
        return time.perf_counter() - self.epoch

    @contextlib.contextmanager
    def stage(self, name: str, kind: str = "stage", **meta) -> Iterator[StageSpan]:
        """Open a nested driver-stage span; closes on exit, even on error."""
        span = StageSpan(
            index=len(self.stages),
            name=name,
            kind=kind,
            depth=len(self._stack),
            parent=self._stack[-1].index if self._stack else None,
            start=self.now(),
            meta=dict(meta),
        )
        self.stages.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.now()
            self.metrics.counter("driver_stages_total", stage=name).inc()

    def record_task(
        self,
        index: int,
        label: str,
        worker_pid: int,
        submitted: float,
        started: float,
        ended: float,
        items: int = 0,
    ) -> TaskSpan:
        """Ingest one worker-measured task timing (absolute clock values).

        ``submitted``/``started``/``ended`` are raw :func:`time.perf_counter`
        readings; they are rebased onto the telemetry epoch here so every
        span — parent stages and worker tasks alike — shares one timeline.
        """
        span = TaskSpan(
            index=index,
            label=label,
            worker_pid=worker_pid,
            submitted=submitted - self.epoch,
            started=started - self.epoch,
            ended=ended - self.epoch,
            items=items,
        )
        self.tasks.append(span)
        self.metrics.counter("driver_tasks_total", label=label).inc()
        self.metrics.histogram(
            "task_duration_seconds", buckets=TASK_DURATION_BUCKETS, label=label
        ).observe(span.duration)
        self.metrics.histogram(
            "task_queue_wait_seconds", buckets=TASK_DURATION_BUCKETS, label=label
        ).observe(span.queue_wait)
        return span

    def set_task_items(
        self, index: int, items: int, label: Optional[str] = None
    ) -> None:
        """Attach a work-item count to task ``index`` after the fact.

        Drivers whose task payload size is only known once results merge
        (e.g. a sweep task's record count) call this during their merge
        stage; throughput counters update along with the span.  ``label``
        disambiguates when one recorder served several ``parallel_map``
        calls (each call numbers its tasks from zero).
        """
        span = self.task_by_index(index, label=label)
        if span is None:
            raise KeyError(
                f"no task span with index {index}"
                + (f" and label {label!r}" if label is not None else "")
            )
        delta = items - span.items
        span.items = items
        if delta > 0:
            self.metrics.counter("driver_items_total", label=span.label).inc(
                delta
            )

    def task_by_index(
        self, index: int, label: Optional[str] = None
    ) -> Optional[TaskSpan]:
        """The task span with this ``parallel_map`` index, or ``None``.

        ``label`` narrows the match to one ``parallel_map`` call's spans
        when the recorder collected several (indices restart at zero per
        call).
        """
        for span in self.tasks:
            if span.index == index and (label is None or span.label == label):
                return span
        return None

    # ------------------------------------------------------------------ #
    # derived statistics                                                 #
    # ------------------------------------------------------------------ #

    def pool_window(self) -> Tuple[float, float]:
        """(first task start, last task end) across all workers; (0, 0) bare."""
        if not self.tasks:
            return (0.0, 0.0)
        return (
            min(t.started for t in self.tasks),
            max(t.ended for t in self.tasks),
        )

    def worker_stats(self) -> List[WorkerStats]:
        """Per-worker utilization over the pool window, sorted by pid."""
        start, end = self.pool_window()
        window = end - start
        by_pid: Dict[int, List[TaskSpan]] = {}
        for span in self.tasks:
            by_pid.setdefault(span.worker_pid, []).append(span)
        out = []
        for pid in sorted(by_pid):
            spans = by_pid[pid]
            busy = sum(s.duration for s in spans)
            out.append(WorkerStats(
                pid=pid,
                tasks=len(spans),
                busy=busy,
                items=sum(s.items for s in spans),
                busy_fraction=busy / window if window > 0 else 1.0,
            ))
        return out

    def straggler_skew(self) -> RankSkew:
        """Pool-straggler detection: skew of per-worker busy seconds.

        The analogue of the machine's per-rank ``sent_words`` skew
        (:class:`~repro.obs.metrics.RankSkew`): the "straggler" index is
        the position of the busiest worker in pid order, and
        ``ratio = max / mean`` quantifies how unevenly the task load
        landed (1.0 = a perfectly balanced pool).
        """
        return rank_skew([w.busy for w in self.worker_stats()])

    def stragglers(self, threshold: float = 1.5) -> List[WorkerStats]:
        """Workers whose busy time exceeds ``threshold`` x the mean."""
        stats = self.worker_stats()
        if not stats:
            return []
        mean = sum(w.busy for w in stats) / len(stats)
        if mean == 0:
            return []
        return [w for w in stats if w.busy / mean > threshold]

    def summary(self) -> dict:
        """Compact JSON-serializable digest for ledger/BENCH records.

        Everything here is derived exactly from the recorded spans — the
        zero-drift contract extends to the summary: ``busy`` values are
        sums of task durations, never re-measured.
        """
        stats = self.worker_stats()
        start, end = self.pool_window()
        window = end - start
        items = sum(t.items for t in self.tasks)
        skew = self.straggler_skew()
        return {
            "driver": self.driver,
            "stages": {s.name: s.duration for s in self.stages},
            "tasks": len(self.tasks),
            "workers": len(stats),
            "items": items,
            "pool_window": window,
            "busy_total": sum(w.busy for w in stats),
            "queue_wait_total": sum(t.queue_wait for t in self.tasks),
            "items_per_sec": items / window if window > 0 else 0.0,
            "worker_busy_fraction": {
                str(w.pid): w.busy_fraction for w in stats
            },
            "straggler_skew": skew.to_dict(),
        }

    def render(self) -> str:
        """Human-readable multi-line digest (the CLI ``--telemetry`` report)."""
        lines = [f"telemetry: driver={self.driver}"]
        for span in self.stages:
            indent = "  " * (span.depth + 1)
            lines.append(
                f"{indent}{span.name:<16} {span.duration * 1e3:9.2f} ms"
            )
        stats = self.worker_stats()
        if stats:
            start, end = self.pool_window()
            lines.append(
                f"  pool: {len(self.tasks)} task(s) over {len(stats)} "
                f"worker(s), window {(end - start) * 1e3:.2f} ms"
            )
            for w in stats:
                lines.append(
                    f"    worker {w.pid}: {w.tasks} task(s), "
                    f"busy {w.busy * 1e3:.2f} ms "
                    f"({w.busy_fraction * 100:.0f}%), {w.items} item(s)"
                )
            skew = self.straggler_skew()
            lines.append(
                f"  straggler skew: ratio {skew.ratio:.3f} "
                f"(busiest worker #{skew.straggler})"
            )
            summary = self.summary()
            lines.append(
                f"  throughput: {summary['items_per_sec']:.1f} items/s, "
                f"queue wait total {summary['queue_wait_total'] * 1e3:.2f} ms"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.stages) + len(self.tasks)


class ProgressReporter:
    """Throttled heartbeat for long driver loops: progress, rate, ETA.

    Prints at most once per ``interval`` seconds (plus a final line when
    the last item completes), so a million-task sweep costs a handful of
    writes.  ``interval=0`` reports on every update — useful in tests.

    The completion line is guaranteed exactly once: reaching ``total``
    bypasses the throttle, further updates past ``total`` throttle
    normally (ETA and percentage are clamped rather than going negative
    or past 100), and :meth:`finish` forces a last heartbeat for drivers
    whose item count was unknown up front (``total=0``) or that stop
    early.

    The reporter measures with the same monotonic clock as
    :class:`Telemetry` but is independent of it: drivers can heartbeat
    without recording spans and vice versa.
    """

    def __init__(
        self,
        total: int,
        label: str = "",
        interval: float = 5.0,
        stream: Optional[TextIO] = None,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._t0 = time.perf_counter()
        self._last_report = -math.inf
        self._final_reported = False

    def update(self, done: Optional[int] = None) -> None:
        """Advance progress (default: by one item) and maybe heartbeat."""
        self.done = self.done + 1 if done is None else done
        now = time.perf_counter()
        # The first arrival at total bypasses the throttle (the final
        # 100% line is guaranteed); past-total updates throttle normally.
        finished = self.total > 0 and self.done >= self.total
        force = finished and not self._final_reported
        if not force and now - self._last_report < self.interval:
            return
        self._emit(now, final=finished)

    def finish(self) -> None:
        """Force the final heartbeat unless completion already printed.

        For drivers with a known ``total`` this is a no-op after the last
        :meth:`update`; for ``total=0`` (item count unknown up front) and
        early-stopping loops it is the only way a final line appears.
        """
        if not self._final_reported:
            self._emit(time.perf_counter(), final=True)

    def _emit(self, now: float, final: bool = False) -> None:
        self._last_report = now
        self._final_reported = self._final_reported or final
        elapsed = now - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        if self.total > 0 and rate > 0 and self.done < self.total:
            eta = max(0.0, (self.total - self.done) / rate)
            eta_text = f", ETA {eta:.1f}s"
        else:
            eta_text = ""
        prefix = f"{self.label}: " if self.label else ""
        if self.total == 0:
            print(f"{prefix}{self.done} done, {rate:.1f}/s",
                  file=self.stream)
            return
        pct = min(100.0, 100.0 * self.done / self.total)
        print(
            f"{prefix}{self.done}/{self.total} ({pct:.0f}%), "
            f"{rate:.1f}/s{eta_text}",
            file=self.stream,
        )


def maybe_stage(telemetry: Optional[Telemetry], name: str, **meta):
    """``telemetry.stage(name)`` or an inert context when telemetry is off.

    The one-liner that keeps drivers on their uninstrumented code path
    under ``telemetry=None``: no recorder, no span, no timing calls.
    """
    if telemetry is None:
        return contextlib.nullcontext()
    return telemetry.stage(name, **meta)


def _worker_pid() -> int:
    """The reporting pid for task spans (module-level for test patching)."""
    return os.getpid()

