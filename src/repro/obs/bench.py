"""The ``repro bench`` driver: one reproducible performance trajectory file.

Executes the repository's benchmark harnesses (every ``benchmarks/bench_*.py``
module's standalone ``main()``) plus a standard :func:`repro.analysis.sweep`
grid under ``time.perf_counter``, and condenses the result into a single
schema-versioned ``BENCH_<label>.json`` written at the repository root:

* **module entries** — one per benchmark harness: the wall-clock time of
  regenerating its artifact, plus the model-level costs (words / rounds /
  flops), Theorem-3 bound, attainment ratio and per-rank ``sent_words``
  skew of that harness's *probe configuration* — a representative
  Algorithm 1 execution pinned per module so the model numbers are exact
  and comparable run-over-run;
* **sweep entries** — one per (algorithm, shape, P) point of the standard
  grid, with the same fields measured from the actual registry run;
* **symbolic entries** — one per :data:`SYMBOLIC_PROBES` point: a
  production-scale (shape, P) per Theorem 3 case, run under the symbolic
  backend (shape descriptors, no element allocation).  The model numbers
  are identical to what the data backend would report by construction
  (:func:`repro.analysis.verification.cross_check_backends` proves it),
  so the exact model gate applies to them unchanged.
* **oracle entries** — the same :data:`SWEEP_GRID` points re-evaluated
  through the vectorized closed-form oracle
  (``sweep(engine="oracle")``, :mod:`repro.analysis.oracle_vec`), named
  ``oracle:<algorithm>:<shape>:P<P>`` so each row ratios directly
  against its simulate-engine ``sweep:`` twin — that per-point
  wall-clock ratio *is* the array-kernel latency claim; an
  ``oracle:throughput`` row timing a steady-state (memo-warm) pass over
  ~300 records of a divisor-rich grid — its records-per-second against
  the ``sweep:`` rows' per-record wall-clock is the headline
  sweep-throughput ratio; plus one aggregate ``oracle:atlas:case<N>``
  row per Theorem 3 case sweeping the planner atlas shape over
  processor counts up to 10^7.  Aggregate model columns are sums over
  the records — deterministic, so the exact gate applies unchanged.
* **plan entries** — one capacity-planner acceptance query
  (:func:`repro.analysis.plan.plan` at :data:`PLAN_PROBE`): the chosen
  algorithm's model costs plus the query's wall-clock.

Model-level numbers are environment-independent (the simulator counts
words; it does not time them), so the regression gate
(:mod:`repro.obs.regress`) holds them to *exact* equality; wall-clock
numbers are compared with a tolerance.  Every execution also appends its
runs to the persistent experiment ledger (:mod:`repro.obs.ledger`), so the
BENCH file is the per-invocation summary and the ledger is the history.
"""

from __future__ import annotations

import contextlib
import dataclasses
import importlib
import io
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from ..core.shapes import ProblemShape
from ..exceptions import BaselineError
from ..parallel import parallel_map
from .ledger import (
    RunRecord,
    environment_fingerprint,
    git_revision,
)
from .metrics import RankSkew

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchEntry",
    "BenchReport",
    "ATLAS_PROBE_LIMIT",
    "DEFAULT_PROBE",
    "MODULE_PROBES",
    "PLAN_PROBE",
    "SWEEP_GRID",
    "SYMBOLIC_PROBES",
    "THROUGHPUT_COUNTS",
    "THROUGHPUT_SHAPES",
    "bench_dir",
    "repo_root",
    "discover_bench_modules",
    "load_bench_report",
    "run_bench_suite",
]

#: Bump when the BENCH file layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Probe configuration used for modules without a dedicated entry: the 3D
#: measure point where Algorithm 1 attains constant 3 on a perfect 4x4x4 grid.
DEFAULT_PROBE: Tuple[ProblemShape, int] = (ProblemShape(48, 48, 48), 64)

#: Per-module probe configurations — the (shape, P) point each harness is
#: "about", so its model-cost row in the BENCH file tracks the regime the
#: harness exercises.  Modules not listed use :data:`DEFAULT_PROBE`.
MODULE_PROBES: Dict[str, Tuple[ProblemShape, int]] = {
    "bench_table1": (ProblemShape(48, 48, 48), 64),
    "bench_fig1": (ProblemShape(96, 24, 6), 2),
    "bench_fig2": (ProblemShape(96, 24, 6), 16),
    "bench_lemma2_cases": (ProblemShape(96, 24, 6), 2),
    "bench_baselines": (ProblemShape(64, 16, 4), 16),
    "bench_grid_ablation": (ProblemShape(96, 24, 6), 16),
    "bench_memory_crossover": (ProblemShape(48, 48, 48), 64),
    "bench_tradeoff_25d": (ProblemShape(32, 32, 32), 16),
}

#: The standard sweep grid: the bench_baselines regime points — one per
#: Theorem 3 case plus a deeper 3D point with a perfect cubic grid.
SWEEP_GRID: Tuple[Tuple[ProblemShape, int], ...] = (
    (ProblemShape(64, 16, 4), 2),
    (ProblemShape(64, 16, 4), 16),
    (ProblemShape(32, 32, 32), 16),
    (ProblemShape(32, 32, 32), 64),
)

#: Symbolic-backend probes: one production-scale point per Theorem 3 case,
#: each with a grid that divides the dimensions exactly so Algorithm 1
#: attains the bound with the case constant (1 / 2 / 3).  These processor
#: counts are far beyond what the data backend can simulate in a bench run;
#: the symbolic backend finishes each in well under a second.
SYMBOLIC_PROBES: Tuple[Tuple[int, ProblemShape, int], ...] = (
    (1, ProblemShape(16384, 32, 32), 512),
    (2, ProblemShape(1024, 1024, 2), 1024),
    (3, ProblemShape(2000, 800, 500), 800),
)

#: Largest processor count the atlas throughput probes sweep to.
ATLAS_PROBE_LIMIT = 10**7

#: Throughput probe workload: divisor-rich shapes crossed with
#: power-of-two processor counts, so most registry algorithms admit most
#: points — ~300 oracle records per pass through ``sweep(engine="oracle")``.
THROUGHPUT_SHAPES: Tuple[ProblemShape, ...] = (
    ProblemShape(64, 16, 4),
    ProblemShape(32, 32, 32),
    ProblemShape(256, 64, 16),
    ProblemShape(128, 128, 128),
)
THROUGHPUT_COUNTS: Tuple[int, ...] = tuple(2**k for k in range(13))

#: The planner acceptance query: the case-2 atlas shape at P = 10^5.
PLAN_PROBE: Tuple[ProblemShape, int] = (ProblemShape(10**6, 10**4, 10), 10**5)


def repo_root() -> str:
    """The source-checkout root (parent of ``src/``), for BENCH outputs."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )


def bench_dir() -> str:
    """The ``benchmarks/`` directory of the source checkout."""
    return os.path.join(repo_root(), "benchmarks")


def discover_bench_modules(directory: Optional[str] = None) -> List[str]:
    """Sorted ``bench_*`` module names found in the benchmarks directory."""
    directory = bench_dir() if directory is None else directory
    if not os.path.isdir(directory):
        return []
    return sorted(
        name[:-3]
        for name in os.listdir(directory)
        if name.startswith("bench_") and name.endswith(".py")
    )


@dataclasses.dataclass(frozen=True)
class BenchEntry:
    """One row of a BENCH file: a module harness or one sweep point."""

    name: str
    kind: str  # "module" | "sweep" | "symbolic" | "oracle" | "plan"
    wall_clock: float
    algorithm: str
    config: str
    shape: Tuple[int, ...]
    P: int
    words: float
    rounds: int
    flops: float
    bound: float
    attainment: float
    backend: str = "data"
    skew: Optional[RankSkew] = None

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["shape"] = list(self.shape)
        out["skew"] = None if self.skew is None else self.skew.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "BenchEntry":
        try:
            return cls(
                name=data["name"],
                kind=data["kind"],
                wall_clock=float(data["wall_clock"]),
                algorithm=data["algorithm"],
                config=data.get("config", ""),
                shape=tuple(data["shape"]),
                P=int(data["P"]),
                words=float(data["words"]),
                rounds=int(data["rounds"]),
                flops=float(data["flops"]),
                bound=float(data["bound"]),
                attainment=float(data["attainment"]),
                backend=data.get("backend", "data"),
                skew=(
                    None if data.get("skew") is None
                    else RankSkew.from_dict(data["skew"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(f"malformed bench entry: {exc}") from exc


@dataclasses.dataclass
class BenchReport:
    """A full ``repro bench`` result: metadata plus one entry per row.

    ``telemetry`` is the driver-telemetry summary
    (:meth:`repro.obs.telemetry.Telemetry.summary`) of the invocation
    that produced the report, or ``None`` when telemetry was off.
    Additive field, serialized only when present: telemetry-off BENCH
    files stay byte-identical to pre-telemetry output, and the
    regression gate never reads it (wall-clock-derived, environment
    bound).
    """

    label: str
    entries: List[BenchEntry]
    timestamp: float = 0.0
    git_sha: Optional[str] = None
    env: Optional[dict] = None
    telemetry: Optional[dict] = None

    def entry(self, name: str) -> Optional[BenchEntry]:
        for e in self.entries:
            if e.name == name:
                return e
        return None

    def to_dict(self) -> dict:
        out = {
            "schema": "repro-bench",
            "schema_version": BENCH_SCHEMA_VERSION,
            "label": self.label,
            "timestamp": self.timestamp,
            "git_sha": self.git_sha,
            "env": self.env,
            "entries": [e.to_dict() for e in self.entries],
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out

    def write(self, directory: Optional[str] = None) -> str:
        """Write ``BENCH_<label>.json`` into ``directory`` (default: repo root)."""
        directory = repo_root() if directory is None else directory
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.label}.json")
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        version = data.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise BaselineError(
                f"unsupported bench schema_version {version!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION})"
            )
        try:
            entries = [BenchEntry.from_dict(e) for e in data["entries"]]
            return cls(
                label=data.get("label", ""),
                entries=entries,
                timestamp=float(data.get("timestamp", 0.0)),
                git_sha=data.get("git_sha"),
                env=data.get("env"),
                telemetry=data.get("telemetry"),
            )
        except (KeyError, TypeError) as exc:
            raise BaselineError(f"malformed bench report: {exc}") from exc


def load_bench_report(path: str) -> BenchReport:
    """Load a BENCH/baseline JSON file.

    Raises
    ------
    BaselineError
        If the file is missing, not JSON, or not a supported bench schema —
        with a message suitable for direct CLI display.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise BaselineError(
            f"baseline file not found: {path} "
            f"(create one with 'repro bench --write-baseline')"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BaselineError(
            f"baseline {path} is not a bench report object "
            f"(got {type(data).__name__})"
        )
    return BenchReport.from_dict(data)


#: Per-process probe-run cache keyed by (shape, P).  Module-level so pool
#: workers reuse probes across the tasks they execute, exactly like the
#: serial loop does in-process; the probe run is seeded and deterministic,
#: so a cache hit and a recompute yield identical entries.
_PROBE_CACHE: Dict[Tuple, dict] = {}


def _probe_entry(
    module: str, wall_clock: float, cache: Optional[Dict[Tuple, dict]] = None
) -> BenchEntry:
    """Build a module entry: timed harness + its probe's model costs."""
    import numpy as np

    from ..algorithms.registry import run_algorithm

    cache = _PROBE_CACHE if cache is None else cache
    shape, P = MODULE_PROBES.get(module, DEFAULT_PROBE)
    key = (tuple(shape.dims), P)
    probe = cache.get(key)
    if probe is None:
        rng = np.random.default_rng(0)
        A = rng.random((shape.n1, shape.n2))
        B = rng.random((shape.n2, shape.n3))
        run = run_algorithm("alg1", A, B, P)
        probe = {
            "config": run.config,
            "words": run.cost.words,
            "rounds": run.cost.rounds,
            "flops": run.cost.flops,
            "bound": run.attainment.bound,
            "attainment": run.attainment.ratio,
            "skew": None if run.machine is None else run.machine.rank_skew(),
        }
        cache[key] = probe
    return BenchEntry(
        name=f"module:{module}",
        kind="module",
        wall_clock=wall_clock,
        algorithm="alg1",
        config=probe["config"],
        shape=tuple(shape.dims),
        P=P,
        words=probe["words"],
        rounds=probe["rounds"],
        flops=probe["flops"],
        bound=probe["bound"],
        attainment=probe["attainment"],
        skew=probe["skew"],
    )


def _sweep_point_name(algorithm: str, shape: ProblemShape, P: int) -> str:
    return f"sweep:{algorithm}:{shape.n1}x{shape.n2}x{shape.n3}:P{P}"


def _module_task(task) -> Tuple[BenchEntry, list]:
    """Run one benchmark harness module; one process-pool task.

    Returns the BENCH entry plus the sweep records produced implicitly
    (none for module tasks — the tuple shape is shared with the sweep and
    symbolic tasks so the parent can merge uniformly).
    """
    module_name, directory = task
    if os.path.isdir(directory) and directory not in sys.path:
        sys.path.insert(0, directory)
    module = importlib.import_module(module_name)
    start = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        module.main()
    elapsed = time.perf_counter() - start
    return _probe_entry(module_name, elapsed), []


def _sweep_point_task(task) -> Tuple[None, list]:
    """Run one SWEEP_GRID point's algorithms; one process-pool task.

    Returns ``(None, [(entry, sweep_record), ...])``; the parent appends
    the ledger records itself so the file is written in deterministic
    order for any worker count.
    """
    shape, P, wanted = task
    from ..analysis.sweep import sweep

    out = []
    for record in sweep([shape], [P], algorithms=list(wanted), seed=0):
        entry = BenchEntry(
            name=_sweep_point_name(record.algorithm, shape, P),
            kind="sweep",
            wall_clock=record.wall_clock,
            algorithm=record.algorithm,
            config=record.config,
            shape=tuple(shape.dims),
            P=P,
            words=record.words,
            rounds=record.rounds,
            flops=record.flops,
            bound=record.bound,
            attainment=record.gap_ratio,
            backend=record.backend,
            skew=record.skew,
        )
        out.append((entry, record))
    return None, out


def _oracle_task(task) -> Tuple[None, list]:
    """Run one oracle-engine probe; one process-pool task.

    Four tagged flavors share the task slot: ``("point", shape, P,
    wanted)`` re-evaluates a SWEEP_GRID point through the vectorized
    oracle (one entry per algorithm, ledger-recorded like a sweep row);
    ``("throughput", name)`` times a steady-state pass over
    :data:`THROUGHPUT_SHAPES` x :data:`THROUGHPUT_COUNTS`;
    ``("atlas", case, shape, name)`` sweeps an atlas shape over the
    full processor grid and aggregates; ``("plan", name, shape, P)``
    times one planner query.  Aggregate/planner entries carry no sweep
    record (``None`` in the pair), so the parent skips their ledger
    append.
    """
    kind = task[0]
    from ..analysis.sweep import sweep

    if kind == "point":
        _, shape, P, wanted = task
        out = []
        for record in sweep([shape], [P], algorithms=list(wanted),
                            engine="oracle"):
            entry = BenchEntry(
                name=f"oracle:{record.algorithm}:"
                     f"{shape.n1}x{shape.n2}x{shape.n3}:P{P}",
                kind="oracle",
                wall_clock=record.wall_clock,
                algorithm=record.algorithm,
                config=record.config,
                shape=tuple(shape.dims),
                P=P,
                words=record.words,
                rounds=record.rounds,
                flops=record.flops,
                bound=record.bound,
                attainment=record.gap_ratio,
                backend=record.backend,
                skew=record.skew,
            )
            out.append((entry, record))
        return None, out
    if kind == "throughput":
        _, name = task
        shapes, counts = list(THROUGHPUT_SHAPES), list(THROUGHPUT_COUNTS)
        # Steady-state measurement: the first pass warms the grid-picker
        # and scatter-allgather memos (shared by every planner/sweep
        # workload in a process); the timed second pass is the sustained
        # records-per-second figure the array kernels are judged on.
        sweep(shapes, counts, engine="oracle")
        start = time.perf_counter()
        records = sweep(shapes, counts, engine="oracle")
        elapsed = time.perf_counter() - start
        words = sum(r.words for r in records)
        bound = sum(r.bound for r in records)
        entry = BenchEntry(
            name=name,
            kind="oracle",
            wall_clock=elapsed,
            algorithm="*",
            config=f"{len(records)} records",
            shape=tuple(shapes[-1].dims),
            P=counts[-1],
            words=words,
            rounds=sum(r.rounds for r in records),
            flops=sum(r.flops for r in records),
            bound=bound,
            attainment=(words / bound) if bound else 1.0,
            backend="oracle",
        )
        return None, [(entry, None)]
    if kind == "atlas":
        _, case, shape, name = task
        from ..analysis.plan import atlas_processor_counts

        counts = atlas_processor_counts(ATLAS_PROBE_LIMIT)
        start = time.perf_counter()
        records = sweep([shape], counts, engine="oracle")
        elapsed = time.perf_counter() - start
        words = sum(r.words for r in records)
        bound = sum(r.bound for r in records)
        entry = BenchEntry(
            name=name,
            kind="oracle",
            wall_clock=elapsed,
            algorithm="*",
            config=f"{len(records)} records",
            shape=tuple(shape.dims),
            P=counts[-1],
            words=words,
            rounds=sum(r.rounds for r in records),
            flops=sum(r.flops for r in records),
            bound=bound,
            attainment=(words / bound) if bound else 1.0,
            backend="oracle",
        )
        return None, [(entry, None)]
    _, name, shape, P = task
    from ..analysis.plan import PlanCache, plan

    start = time.perf_counter()
    result = plan(shape, P, cache=PlanCache())
    elapsed = time.perf_counter() - start
    best = result.best
    entry = BenchEntry(
        name=name,
        kind="plan",
        wall_clock=elapsed,
        algorithm=best.algorithm,
        config=best.config,
        shape=tuple(shape.dims),
        P=P,
        words=best.words,
        rounds=best.rounds,
        flops=best.flops,
        bound=best.bound,
        attainment=best.attainment,
        backend="oracle",
    )
    return None, [(entry, None)]


def _symbolic_task(task) -> Tuple[None, list]:
    """Run one symbolic probe; one process-pool task."""
    name, shape, P = task
    from ..analysis.sweep import sweep

    out = []
    for record in sweep(
        [shape], [P], algorithms=["alg1"], backend="symbolic",
        collective_algorithm="bruck",
    ):
        entry = BenchEntry(
            name=name,
            kind="symbolic",
            wall_clock=record.wall_clock,
            algorithm=record.algorithm,
            config=record.config,
            shape=tuple(shape.dims),
            P=P,
            words=record.words,
            rounds=record.rounds,
            flops=record.flops,
            bound=record.bound,
            attainment=record.gap_ratio,
            backend=record.backend,
            skew=record.skew,
        )
        out.append((entry, record))
    return None, out


def run_bench_suite(
    label: str,
    filter: Optional[str] = None,
    directory: Optional[str] = None,
    ledger=None,
    workers: int = 1,
    telemetry=None,
    profile=None,
    progress=None,
) -> BenchReport:
    """Execute the benchmark suite and the standard sweep grid.

    Parameters
    ----------
    label:
        Name for this invocation; becomes the BENCH file suffix and the
        ledger label.
    filter:
        Optional substring; only entries whose name contains it run
        (``--filter table1`` runs one module, ``--filter sweep:`` only the
        grid).
    directory:
        Benchmarks directory override (for tests); defaults to the
        checkout's ``benchmarks/``.
    ledger:
        Optional :class:`repro.obs.ledger.Ledger`; sweep and probe runs are
        appended to it — always from this process, in entry order, so the
        ledger file is deterministic for any ``workers`` value.
    workers:
        Process-pool width (``1`` = the serial in-process loop).  Tasks
        are whole harness modules, SWEEP_GRID points and symbolic probes;
        every model-level number in the BENCH file is bit-identical to
        the serial run (only wall-clock readings vary, as they do between
        any two invocations).
    telemetry, profile, progress:
        Optional driver-observability sinks (see
        :func:`repro.parallel.parallel_map`), all inert by default.  With
        ``telemetry`` set, the report's additive ``telemetry`` field
        carries the invocation's driver summary.
    """
    from .telemetry import maybe_stage

    directory = bench_dir() if directory is None else directory

    if os.path.isdir(directory) and directory not in sys.path:
        sys.path.insert(0, directory)

    from ..algorithms.registry import applicable_algorithms

    with maybe_stage(telemetry, "plan"):
        module_tasks = [
            (module_name, directory)
            for module_name in discover_bench_modules(directory)
            if not filter or filter in f"module:{module_name}"
        ]
        sweep_tasks = []
        for shape, P in SWEEP_GRID:
            wanted = tuple(
                algorithm
                for algorithm in applicable_algorithms(shape, P)
                if not filter or filter in _sweep_point_name(algorithm, shape, P)
            )
            if wanted:
                sweep_tasks.append((shape, P, wanted))
        symbolic_tasks = []
        for case, shape, P in SYMBOLIC_PROBES:
            name = f"symbolic:case{case}:alg1:{shape.n1}x{shape.n2}x{shape.n3}:P{P}"
            if not filter or filter in name:
                symbolic_tasks.append((name, shape, P))
        from ..analysis.plan import ATLAS_SHAPES

        oracle_tasks = []
        for shape, P in SWEEP_GRID:
            wanted = tuple(
                algorithm
                for algorithm in applicable_algorithms(shape, P)
                if not filter or filter in
                f"oracle:{algorithm}:{shape.n1}x{shape.n2}x{shape.n3}:P{P}"
            )
            if wanted:
                oracle_tasks.append(("point", shape, P, wanted))
        if not filter or filter in "oracle:throughput":
            oracle_tasks.append(("throughput", "oracle:throughput"))
        for case, shape in ATLAS_SHAPES.items():
            name = f"oracle:atlas:case{case}"
            if not filter or filter in name:
                oracle_tasks.append(("atlas", case, shape, name))
        plan_shape, plan_P = PLAN_PROBE
        plan_name = (
            f"plan:{plan_shape.n1}x{plan_shape.n2}x{plan_shape.n3}:P{plan_P}"
        )
        if not filter or filter in plan_name:
            oracle_tasks.append(("plan", plan_name, plan_shape, plan_P))

    # One pool, three task kinds, merged back in the serial loop's order:
    # modules, then sweep points, then symbolic probes.  Each batch gets
    # its own telemetry label because task indices restart per call.
    obs = dict(telemetry=telemetry, profile=profile, progress=progress)
    with maybe_stage(telemetry, "map-modules", tasks=len(module_tasks),
                     workers=workers):
        module_results = parallel_map(
            _module_task, module_tasks, workers=workers,
            label="bench-module", **obs,
        )
    with maybe_stage(telemetry, "map-sweep", tasks=len(sweep_tasks),
                     workers=workers):
        sweep_results = parallel_map(
            _sweep_point_task, sweep_tasks, workers=workers,
            label="bench-sweep", **obs,
        )
    with maybe_stage(telemetry, "map-symbolic", tasks=len(symbolic_tasks),
                     workers=workers):
        symbolic_results = parallel_map(
            _symbolic_task, symbolic_tasks, workers=workers,
            label="bench-symbolic", **obs,
        )
    with maybe_stage(telemetry, "map-oracle", tasks=len(oracle_tasks),
                     workers=workers):
        oracle_results = parallel_map(
            _oracle_task, oracle_tasks, workers=workers,
            label="bench-oracle", **obs,
        )
    if telemetry is not None:
        for index, (_entry, _records) in enumerate(module_results):
            telemetry.set_task_items(index, 1, label="bench-module")
        for label_name, results in (
            ("bench-sweep", sweep_results),
            ("bench-symbolic", symbolic_results),
            ("bench-oracle", oracle_results),
        ):
            for index, (_none, pairs) in enumerate(results):
                telemetry.set_task_items(index, len(pairs), label=label_name)

    entries: List[BenchEntry] = []
    with maybe_stage(telemetry, "merge"), maybe_stage(telemetry, "ledger-append"):
        for (module_name, _), (entry, _records) in zip(module_tasks, module_results):
            entries.append(entry)
            if ledger is not None:
                ledger.append(
                    RunRecord(
                        algorithm=entry.algorithm,
                        config=f"{entry.config} (probe for {module_name})",
                        shape=entry.shape,
                        P=entry.P,
                        words=entry.words,
                        rounds=entry.rounds,
                        flops=entry.flops,
                        bound=entry.bound,
                        attainment=entry.attainment,
                        skew=entry.skew,
                        wall_clock=entry.wall_clock,
                        label=label,
                        kind="bench",
                        timestamp=time.time(),
                        git_sha=git_revision(),
                        env=environment_fingerprint(),
                    )
                )
        for _, pairs in sweep_results + symbolic_results + oracle_results:
            for entry, record in pairs:
                entries.append(entry)
                # Aggregate oracle/planner probes condense many records
                # (or a planner answer) into one entry; only real sweep
                # rows go to the ledger.
                if ledger is not None and record is not None:
                    ledger.append(RunRecord.from_sweep(record, label=label))

    return BenchReport(
        label=label,
        entries=entries,
        timestamp=time.time(),
        git_sha=git_revision(),
        env=environment_fingerprint(),
        telemetry=None if telemetry is None else telemetry.summary(),
    )
