"""The experiment ledger: persistent, append-only run records.

PR 1 made a single execution observable (spans, metrics, attainment
gauges); this module makes *sequences of executions* observable.  A
:class:`Ledger` is a schema-versioned JSON-lines file to which every
recorded run appends one :class:`RunRecord` — algorithm, configuration,
model-level costs (words / rounds / flops), the Theorem 3 bound and
attainment ratio, the per-rank ``sent_words`` skew, wall-clock time, the
git revision, and an environment fingerprint.  Because records are
append-only and self-describing, the file doubles as the repository's
measured-performance trajectory: ``repro ledger list`` reads it back,
``repro ledger diff`` compares any two records, and the regression gate
(:mod:`repro.obs.regress`) decides whether drift between records is a bug.

The design follows how the COSMA/CTF codebases and the Demmel et al. '13
strong-scaling study track measured-versus-model numbers per configuration:
the *model* quantities in a record are exact (the paper's constants are
1/2/3, attainment 1.0 — drift there is a correctness bug), while wall-clock
is environment-dependent and only meaningful against records with a
matching fingerprint.

File format: one JSON object per line.  Line order is append order; the
first field of every record is ``schema_version`` so future schema changes
can coexist in one file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from typing import Iterator, List, Optional, Sequence

from ..exceptions import LedgerError
from .metrics import RankSkew

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RunRecord",
    "Ledger",
    "environment_fingerprint",
    "git_revision",
    "merge_ledgers",
]

#: Bump when the record layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1


def environment_fingerprint() -> dict:
    """A small, stable description of the executing environment.

    Wall-clock entries in the ledger are only comparable between records
    whose fingerprints match; model-level costs are environment-independent
    by construction (the simulator counts words, it does not time them).
    """
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy.__version__,
    }


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One persisted experiment: a single algorithm execution.

    Attributes
    ----------
    label:
        Free-form grouping tag (``"pr2"``, ``"nightly"``, a PR number...).
    kind:
        Record provenance: ``"sweep"`` (from :func:`repro.analysis.sweep`),
        ``"bench"`` (from the ``repro bench`` driver), ``"run"`` (ad hoc).
    algorithm, config, shape, P:
        What ran and on which (shape, processor-count) point.
    words, rounds, flops:
        Model-level measured costs — exact, environment-independent.
    bound, attainment:
        The Theorem 3 memory-independent bound and ``words / bound``.
    backend:
        Execution backend the run used (``"data"`` or ``"symbolic"``).
        Model costs are identical across backends by construction, but
        wall-clock is not, and only data-backend records carry numerical
        verification — so cross-backend comparisons must be explicit
        (``repro ledger diff --allow-mixed``).
    skew:
        Per-rank ``sent_words`` imbalance (:class:`~repro.obs.metrics.RankSkew`),
        or ``None`` when the run exposed no per-rank counters.
    wall_clock:
        Driver-measured seconds (``time.perf_counter``); environment-bound.
    timestamp:
        Unix time at record creation.
    git_sha, env:
        Provenance: the repository revision and environment fingerprint.
    faults:
        Fault-injection provenance, or ``None`` (the default) for a
        fault-free run.  Additive schema field: legacy records read back
        with ``faults=None``.  When present it carries at least the
        injector summary (``injected``, ``retries``, ``words_resent`` and
        the fault model) — a record with ``injected > 0`` measured a
        degraded execution, and ``repro ledger diff`` warns before
        comparing it against a fault-free one.
    task_index:
        Index of the ``parallel_map`` task that produced this record, or
        ``None`` (the default) for runs recorded without driver
        telemetry.  Additive schema field, serialized only when present,
        so telemetry-off ledger files stay byte-identical to
        pre-telemetry ones; when set it joins the record to its
        :class:`~repro.obs.telemetry.TaskSpan` in a merged timeline
        without positional guessing.
    telemetry:
        Driver-telemetry summary for the task that produced this record
        (worker pid, queue wait, task duration, items), or ``None``.
        Additive and serialized only when present, like ``task_index``.
        Wall-clock-derived and environment-bound like ``wall_clock`` —
        never part of model-cost comparisons.
    semiring:
        Name of the semiring the run's scalar multiply-add pair came from
        (``"plus_times"`` / ``"min_plus"``).  Additive schema field,
        serialized only when not the classical default, so pre-semiring
        ledger files read back unchanged and default-semiring lines stay
        byte-identical.  Model costs are semiring-independent, but the
        *products* are not comparable across semirings, so ``repro ledger
        diff`` refuses mixed-semiring comparisons without
        ``--allow-mixed``.
    recovery:
        Rank-failure recovery provenance, or ``None`` (the default) for a
        run that needed none.  Additive schema field, serialized only
        when present, so fault-free (and recovery-free) records stay
        byte-identical to the pre-recovery schema and legacy lines read
        back with ``recovery=None``.  When present it carries the
        mechanism (``"abft"`` or ``"checkpoint"``), the recovery count
        and ``words_recovered`` — the extra words the run paid to survive.
    plan:
        Capacity-planner provenance (``repro plan --ledger``), or ``None``
        (the default) for records not produced by a planner query.
        Additive schema field, serialized only when present, so
        non-planner records keep their historical bytes.  When present it
        carries the query fingerprint
        (:func:`repro.analysis.plan.query_fingerprint` — the cache key,
        so a ledger line joins to its cached answer exactly), the memory
        budget ``M`` (or ``None``), the admissible-candidate count, the
        Section 6.2 ``binding`` bound name when ``M`` was given, and
        whether the answer was a cache hit.  The model-cost columns of a
        planner record describe the *chosen* algorithm, so the standard
        exact-comparison tooling applies to them unchanged.
    """

    algorithm: str
    shape: Sequence[int]
    P: int
    words: float
    rounds: int
    flops: float
    bound: float
    attainment: float
    wall_clock: float
    config: str = ""
    label: str = ""
    kind: str = "run"
    backend: str = "data"
    skew: Optional[RankSkew] = None
    timestamp: float = 0.0
    git_sha: Optional[str] = None
    env: Optional[dict] = None
    faults: Optional[dict] = None
    task_index: Optional[int] = None
    telemetry: Optional[dict] = None
    semiring: str = "plus_times"
    recovery: Optional[dict] = None
    plan: Optional[dict] = None

    @property
    def fault_injected(self) -> bool:
        """Did this run execute with materialized faults?"""
        return bool(self.faults) and bool(self.faults.get("injected", 0))

    def to_dict(self) -> dict:
        out = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "timestamp": self.timestamp,
            "label": self.label,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "config": self.config,
            "shape": list(self.shape),
            "P": self.P,
            "words": self.words,
            "rounds": self.rounds,
            "flops": self.flops,
            "bound": self.bound,
            "attainment": self.attainment,
            "backend": self.backend,
            "skew": None if self.skew is None else self.skew.to_dict(),
            "wall_clock": self.wall_clock,
            "git_sha": self.git_sha,
            "env": self.env,
            "faults": self.faults,
        }
        # Telemetry fields are written only when measured: a telemetry-off
        # run's ledger line is byte-identical to pre-telemetry output.
        if self.task_index is not None:
            out["task_index"] = self.task_index
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        # Additive like the telemetry fields: written only for non-default
        # semirings, so classical runs' lines keep their historical bytes.
        if self.semiring != "plus_times":
            out["semiring"] = self.semiring
        # Additive: only runs that actually survived a rank failure carry
        # recovery provenance; everything else keeps its historical bytes.
        if self.recovery is not None:
            out["recovery"] = self.recovery
        # Additive: only planner-query records carry plan provenance.
        if self.plan is not None:
            out["plan"] = self.plan
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        version = data.get("schema_version")
        if version != LEDGER_SCHEMA_VERSION:
            raise LedgerError(
                f"unsupported ledger record schema_version {version!r} "
                f"(this build reads version {LEDGER_SCHEMA_VERSION})"
            )
        try:
            return cls(
                algorithm=data["algorithm"],
                config=data.get("config", ""),
                shape=tuple(data["shape"]),
                P=int(data["P"]),
                words=float(data["words"]),
                rounds=int(data["rounds"]),
                flops=float(data["flops"]),
                bound=float(data["bound"]),
                attainment=float(data["attainment"]),
                skew=(
                    None if data.get("skew") is None
                    else RankSkew.from_dict(data["skew"])
                ),
                wall_clock=float(data["wall_clock"]),
                label=data.get("label", ""),
                kind=data.get("kind", "run"),
                backend=data.get("backend", "data"),
                timestamp=float(data.get("timestamp", 0.0)),
                git_sha=data.get("git_sha"),
                env=data.get("env"),
                faults=data.get("faults"),
                task_index=data.get("task_index"),
                telemetry=data.get("telemetry"),
                semiring=data.get("semiring", "plus_times"),
                recovery=data.get("recovery"),
                plan=data.get("plan"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerError(f"malformed ledger record: {exc}") from exc

    @classmethod
    def from_sweep(
        cls,
        record,
        label: str = "",
        kind: str = "sweep",
        telemetry: Optional[dict] = None,
    ) -> "RunRecord":
        """Build a ledger record from an :class:`~repro.analysis.sweep.SweepRecord`.

        ``telemetry`` attaches the per-task driver-telemetry summary
        (additive field; omit for the byte-stable telemetry-off layout).
        """
        return cls(
            algorithm=record.algorithm,
            config=record.config,
            shape=tuple(record.shape.dims),
            P=record.P,
            words=record.words,
            rounds=record.rounds,
            flops=record.flops,
            bound=record.bound,
            attainment=record.gap_ratio,
            skew=record.skew,
            wall_clock=record.wall_clock,
            label=label,
            kind=kind,
            backend=getattr(record, "backend", "data"),
            timestamp=time.time(),
            git_sha=git_revision(),
            env=environment_fingerprint(),
            task_index=getattr(record, "task_index", None),
            telemetry=telemetry,
            semiring=getattr(record, "semiring", "plus_times"),
        )


class Ledger:
    """An append-only JSON-lines file of :class:`RunRecord` objects.

    The file is opened per operation (append-then-close), so concurrent
    writers on one POSIX filesystem interleave whole lines and a crash can
    lose at most the record being written — never corrupt earlier history.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "ledger.jsonl")
    >>> ledger = Ledger(path)
    >>> ledger.append(RunRecord(
    ...     algorithm="alg1", shape=(4, 4, 4), P=2, words=16.0, rounds=2,
    ...     flops=32.0, bound=16.0, attainment=1.0, wall_clock=0.01))
    >>> len(ledger.records())
    1
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def append(self, record: RunRecord) -> None:
        """Write one record as a new line at the end of the file."""
        line = json.dumps(record.to_dict())
        with open(self.path, "a") as fh:
            fh.write(line + "\n")

    def records(self) -> List[RunRecord]:
        """All records in append order; ``[]`` for a missing file.

        Raises
        ------
        LedgerError
            If the file exists but any line is not a valid versioned record.
        """
        if not os.path.exists(self.path):
            return []
        out: List[RunRecord] = []
        with open(self.path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{self.path}:{lineno}: not JSON ({exc})"
                    ) from exc
                if not isinstance(data, dict):
                    raise LedgerError(
                        f"{self.path}:{lineno}: expected an object, "
                        f"got {type(data).__name__}"
                    )
                out.append(RunRecord.from_dict(data))
        return out

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())

    def query(
        self,
        algorithm: Optional[str] = None,
        label: Optional[str] = None,
        kind: Optional[str] = None,
        shape: Optional[Sequence[int]] = None,
        P: Optional[int] = None,
    ) -> List[RunRecord]:
        """Records matching every given filter (None = match all)."""
        out = []
        for rec in self.records():
            if algorithm is not None and rec.algorithm != algorithm:
                continue
            if label is not None and rec.label != label:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if shape is not None and tuple(rec.shape) != tuple(shape):
                continue
            if P is not None and rec.P != P:
                continue
            out.append(rec)
        return out

    def trajectory(
        self, algorithm: str, shape: Sequence[int], P: int
    ) -> List[RunRecord]:
        """The time-ordered history of one configuration.

        This is the per-configuration measured-vs-model trajectory: every
        record should agree on ``words``/``bound``/``attainment`` (model
        quantities), while ``wall_clock`` tracks implementation speed over
        the repository's history.
        """
        records = self.query(algorithm=algorithm, shape=shape, P=P)
        return sorted(records, key=lambda r: r.timestamp)


def merge_ledgers(paths: Sequence[str], out_path: str) -> int:
    """Merge several ledger files into one, time-ordered and deduplicated.

    Records are deduplicated on their full serialized content (two
    byte-identical records are one experiment reported twice, e.g. after
    copying a ledger between machines and appending to both).  Returns the
    number of records written.
    """
    seen = set()
    merged: List[RunRecord] = []
    for path in paths:
        for rec in Ledger(path).records():
            key = json.dumps(rec.to_dict(), sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            merged.append(rec)
    merged.sort(key=lambda r: r.timestamp)
    target = Ledger(out_path)
    with open(out_path, "w"):
        pass
    for rec in merged:
        target.append(rec)
    return len(merged)
