"""Pretty-printing of recorded traces — the ``repro inspect`` backend.

Takes the records of a JSON-lines export (see
:class:`~repro.obs.exporters.JSONLinesExporter`) and renders, as plain
text:

* the **phase tree** — the span hierarchy with rounds/words/flops per
  span, events marked distinctly from structural spans;
* the **per-rank table** — words and messages sent/received plus flops
  for every processor, with totals and the load-imbalance gauges;
* the **attainment summary** — measured words against the Theorem 3 and
  memory-dependent bounds (when recorded);
* the **metrics digest** — counters and histogram summaries.

Pure stdlib and purely functional: ``inspect_report(records) -> str``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["inspect_report", "render_span_tree", "render_rank_table"]


def _fmt(value, width: int = 0) -> str:
    if isinstance(value, float) and value == int(value):
        text = f"{int(value):d}"
    elif isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def _first(records: List[dict], kind: str) -> Optional[dict]:
    for record in records:
        if record.get("type") == kind:
            return record
    return None


def render_span_tree(records: List[dict]) -> str:
    """The span hierarchy with per-span costs, one line per span."""
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)

    lines = ["span tree (rounds | words | flops):"]

    def visit(span: dict, prefix: str, is_last: bool) -> None:
        connector = "└── " if is_last else "├── "
        marker = "" if span.get("event") else " [span]"
        name = span.get("name") or span.get("kind")
        lines.append(
            f"{prefix}{connector}{span['kind']}: {name}{marker}  "
            f"({_fmt(span['rounds'])} | {_fmt(span['words'])} | "
            f"{_fmt(span['flops'])})"
        )
        kids = children.get(span["id"], [])
        child_prefix = prefix + ("    " if is_last else "│   ")
        for i, kid in enumerate(kids):
            visit(kid, child_prefix, i == len(kids) - 1)

    roots = children.get(None, [])
    for i, root in enumerate(roots):
        visit(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def render_rank_table(records: List[dict]) -> str:
    """Per-processor counter table with totals and the words-sent skew gauge.

    The straggler rank (largest ``sent_words``) is marked with ``*`` and the
    table is followed by the skew summary (max / mean / ratio), mirroring
    the ``words_sent_skew`` gauges in the metrics registry.
    """
    from .metrics import rank_skew

    ranks = [r for r in records if r.get("type") == "per_rank"]
    if not ranks:
        return "(no per-rank records)"
    skew = rank_skew(
        [float(r["sent_words"]) for r in sorted(ranks, key=lambda r: r["rank"])]
    )
    headers = ["rank", "sent words", "recv words", "sent msgs", "recv msgs", "flops"]
    rows = [
        [
            str(r["rank"]) + (" *" if r["rank"] == skew.straggler else ""),
            _fmt(float(r["sent_words"])),
            _fmt(float(r["recv_words"])),
            _fmt(float(r["sent_messages"])),
            _fmt(float(r["recv_messages"])),
            _fmt(float(r["flops"])),
        ]
        for r in sorted(ranks, key=lambda r: r["rank"])
    ]
    rows.append([
        "total",
        _fmt(float(sum(r["sent_words"] for r in ranks))),
        _fmt(float(sum(r["recv_words"] for r in ranks))),
        _fmt(float(sum(r["sent_messages"] for r in ranks))),
        _fmt(float(sum(r["recv_messages"] for r in ranks))),
        _fmt(float(sum(r["flops"] for r in ranks))),
    ])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.rjust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in rows[:-1]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    lines.append(sep)
    lines.append(" | ".join(c.rjust(w) for c, w in zip(rows[-1], widths)))
    lines.append(
        f"words_sent skew: max={_fmt(skew.max_value)} "
        f"mean={_fmt(skew.mean_value)} ratio={skew.ratio:.4f} "
        f"(straggler rank {skew.straggler}, marked *)"
    )
    return "per-rank counters:\n" + "\n".join(lines)


def _render_attainment(records: List[dict]) -> str:
    att = _first(records, "attainment")
    if att is None:
        return "(no attainment record)"
    lines = [
        "bound attainment:",
        f"  problem {tuple(att['shape'])} on P={att['P']} "
        f"({att['regime']} regime)",
        f"  measured words:            {_fmt(float(att['measured_words']))}",
        f"  Theorem 3 bound:           {_fmt(float(att['bound']))}",
        f"  ratio (measured/bound):    {att['ratio']:.9f}"
        + ("  <- attains the bound" if att.get("attains") else ""),
    ]
    if att.get("memory_ratio") is not None:
        lines.append(
            f"  memory-dependent bound:    {_fmt(float(att['memory_bound']))} "
            f"(M={_fmt(float(att['memory']))}); ratio {att['memory_ratio']:.4f}"
        )
    return "\n".join(lines)


def _render_metrics(records: List[dict]) -> str:
    metrics = [r for r in records if r.get("type") == "metric"]
    if not metrics:
        return "(no metrics recorded)"
    lines = ["metrics:"]
    for m in metrics:
        labels = m.get("labels") or {}
        label_text = (
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        if m.get("metric_type") == "histogram":
            lines.append(
                f"  {m['name']}{label_text}: count={m['count']} "
                f"sum={_fmt(float(m['sum']))} min={_fmt(float(m['min']))} "
                f"max={_fmt(float(m['max']))}"
            )
        else:
            lines.append(f"  {m['name']}{label_text} = {_fmt(float(m['value']))}")
    return "\n".join(lines)


def _render_summary(records: List[dict]) -> str:
    meta = _first(records, "meta")
    summary = _first(records, "summary")
    lines = []
    if meta is not None:
        cm = meta.get("cost_model", {})
        lines.append(
            f"machine: P={meta['n_procs']}, alpha={cm.get('alpha')}, "
            f"beta={cm.get('beta')}, gamma={cm.get('gamma')}, "
            f"memory_limit={meta.get('memory_limit')}"
        )
    if summary is not None:
        lines.append(
            f"totals: rounds={summary['rounds']}, "
            f"critical words={_fmt(float(summary['critical_words']))}, "
            f"total words={_fmt(float(summary['total_words']))}, "
            f"max flops={_fmt(float(summary['max_flops']))}, "
            f"modelled time={_fmt(float(summary['time']))}, "
            f"peak memory={_fmt(float(summary['peak_memory_words']))} words"
        )
    return "\n".join(lines) if lines else "(no summary records)"


def inspect_report(records: List[dict]) -> str:
    """The full ``repro inspect`` rendering of a JSON-lines export."""
    sections = [
        _render_summary(records),
        render_span_tree(records),
        render_rank_table(records),
        _render_attainment(records),
        _render_metrics(records),
    ]
    return "\n\n".join(sections)
