"""Trace/metrics exporters: JSON-lines and Chrome-trace timeline formats.

Two built-in exporters, both pluggable through :data:`EXPORTERS`:

``jsonl`` — :class:`JSONLinesExporter`
    One JSON object per line, self-describing via a ``type`` field:

    * ``meta``     — machine parameters (P, cost model, modelled time);
    * ``span``     — one line per span (tree encoded by ``id``/``parent``),
      with cost deltas and per-rank sent/recv words, message counts and
      flops (events carry the exact per-rank attribution);
    * ``metric``   — one line per registry instrument
      (counter/gauge/histogram snapshot);
    * ``per_rank`` — one line per processor with its cumulative counters;
    * ``summary``  — machine totals, written last.

    The format satisfies a *zero-drift invariant*: summing ``sent_words``
    / ``recv_words`` over the event spans reproduces the per-rank and
    global machine counters exactly (tested in
    ``tests/obs/test_exporters.py``).  :func:`read_jsonl` loads a file
    back into records; ``repro inspect`` pretty-prints it.

``chrome`` — :class:`ChromeTraceExporter`
    The Chrome trace-event JSON object format (load in ``chrome://tracing``
    or https://ui.perfetto.dev).  Spans become complete (``"ph": "X"``)
    events on the modelled timeline: structural spans on a "span tree"
    track per nesting depth, event spans additionally fanned out to one
    lane per participating rank — the per-processor fiber view of the
    paper's Figure 1, as a timeline.

Modelled time (``CostModel.time`` of the cumulative cost, in abstract
seconds) is exported as microseconds, the unit Chrome expects.

The same two formats also render **driver telemetry**
(:class:`repro.obs.telemetry.Telemetry` — real wall-clock spans of the
host process and its pool workers, not modelled time):
:func:`export_telemetry_chrome` writes one merged Chrome trace with the
parent's stage spans and every worker's task spans on per-pid lanes, and
:func:`export_telemetry_jsonl` writes the flat record stream.  Both obey
the zero-drift invariant — every exported duration equals the measured
span duration exactly (same floats, scaled once).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .attainment import Attainment
from .metrics import update_machine_gauges

__all__ = [
    "JSONLinesExporter",
    "ChromeTraceExporter",
    "EXPORTERS",
    "get_exporter",
    "read_jsonl",
    "telemetry_trace_events",
    "export_telemetry_chrome",
    "telemetry_jsonl_records",
    "export_telemetry_jsonl",
]


def _meta_record(machine) -> dict:
    cm = machine.cost_model
    return {
        "type": "meta",
        "format": "repro-obs-v1",
        "n_procs": machine.n_procs,
        "cost_model": {"alpha": cm.alpha, "beta": cm.beta, "gamma": cm.gamma},
        "memory_limit": machine.memory_limit,
        "time": machine.time,
    }


def _per_rank_records(machine) -> List[dict]:
    net = machine.network
    return [
        {
            "type": "per_rank",
            "rank": rank,
            "sent_words": net.sent_words[rank],
            "recv_words": net.recv_words[rank],
            "sent_messages": net.sent_messages[rank],
            "recv_messages": net.recv_messages[rank],
            "flops": machine.processors[rank].flops,
        }
        for rank in range(machine.n_procs)
    ]


def _summary_record(machine) -> dict:
    net = machine.network
    return {
        "type": "summary",
        "rounds": net.rounds,
        "critical_words": net.critical_words,
        "total_words": net.total_words,
        "sent_words": list(net.sent_words),
        "recv_words": list(net.recv_words),
        "sent_messages": list(net.sent_messages),
        "recv_messages": list(net.recv_messages),
        "max_flops": max((p.flops for p in machine.processors), default=0.0),
        "time": machine.time,
        "peak_memory_words": machine.peak_memory_words(),
    }


class JSONLinesExporter:
    """Write a machine's spans, metrics and counters as JSON lines."""

    name = "jsonl"

    def records(
        self, machine, attainment: Optional[Attainment] = None
    ) -> List[dict]:
        """All records in file order (meta, spans, metrics, ranks, summary)."""
        update_machine_gauges(machine)
        out: List[dict] = [_meta_record(machine)]
        out.extend(s.to_record() for s in machine.trace.recorder.iter_spans())
        if attainment is not None:
            out.append(attainment_record(attainment))
        out.extend(
            {**m, "type": "metric", "metric_type": m["type"]}
            for m in machine.metrics.collect()
        )
        out.extend(_per_rank_records(machine))
        out.append(_summary_record(machine))
        return out

    def export(
        self, machine, path: str, attainment: Optional[Attainment] = None
    ) -> int:
        """Write one JSON object per line to ``path``; returns line count."""
        records = self.records(machine, attainment)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return len(records)


def attainment_record(attainment: Attainment) -> dict:
    """Flatten an :class:`~repro.obs.attainment.Attainment` to a record."""
    return {
        "type": "attainment",
        "shape": list(attainment.shape.dims),
        "P": attainment.P,
        "regime": attainment.regime.name,
        "measured_words": attainment.measured_words,
        "bound": attainment.bound,
        "ratio": attainment.ratio,
        "attains": attainment.attains,
        "memory": attainment.memory,
        "memory_bound": attainment.memory_bound,
        "memory_ratio": attainment.memory_ratio,
    }


def read_jsonl(path: str) -> List[dict]:
    """Load a JSON-lines export back into a list of record dicts."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class ChromeTraceExporter:
    """Write the span tree in Chrome's trace-event JSON object format."""

    name = "chrome"

    #: Microseconds per modelled time unit.
    SCALE = 1e6

    def trace_events(self, machine) -> List[dict]:
        """The ``traceEvents`` array (metadata + complete events)."""
        events: List[dict] = []
        pid = 0
        rank_tids: Dict[int, int] = {
            rank: rank + 1 for rank in range(machine.n_procs)
        }
        tree_tid_base = machine.n_procs + 1

        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"repro machine (P={machine.n_procs})"},
        })
        for rank, tid in rank_tids.items():
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            })

        max_depth = 0
        for span in machine.trace.recorder.iter_spans():
            max_depth = max(max_depth, span.depth)
            args = {
                "kind": span.kind,
                "rounds": span.cost.rounds,
                "words": span.cost.words,
                "flops": span.cost.flops,
                "groups": [list(g) for g in span.groups],
            }
            common = {
                "ph": "X",
                "pid": pid,
                "cat": span.kind,
                "name": span.name or span.kind,
                "ts": span.start_time * self.SCALE,
                "dur": span.duration * self.SCALE,
            }
            # One lane per nesting depth for the span tree itself.
            events.append({**common, "tid": tree_tid_base + span.depth, "args": args})
            if span.event:
                # Fan event spans out to every participating rank's lane —
                # the per-processor fiber view of Figure 1 as a timeline.
                for rank in sorted({r for g in span.groups for r in g}):
                    rank_args = dict(args)
                    if len(span.sent_words) == machine.n_procs:
                        rank_args["sent_words"] = span.sent_words[rank]
                        rank_args["recv_words"] = span.recv_words[rank]
                    events.append({**common, "tid": rank_tids[rank], "args": rank_args})

        for depth in range(max_depth + 1):
            events.append({
                "ph": "M", "pid": pid, "tid": tree_tid_base + depth,
                "name": "thread_name", "args": {"name": f"span tree depth {depth}"},
            })
        return events

    def export(
        self, machine, path: str, attainment: Optional[Attainment] = None
    ) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        events = self.trace_events(machine)
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "format": "repro-obs-v1",
                "n_procs": machine.n_procs,
                "modelled_time": machine.time,
            },
        }
        if attainment is not None:
            payload["otherData"]["attainment"] = attainment_record(attainment)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)
        return len(events)


# --------------------------------------------------------------------- #
# driver telemetry (real wall-clock, host process + pool workers)        #
# --------------------------------------------------------------------- #

#: Chrome pid for the host-process stage lanes in telemetry traces.  Task
#: spans use their real worker pid, which the pool guarantees differs
#: from 0.
_DRIVER_PID = 0


def telemetry_trace_events(telemetry) -> List[dict]:
    """Chrome ``traceEvents`` for one :class:`~repro.obs.telemetry.Telemetry`.

    One merged timeline: the driver's stage spans occupy per-depth lanes
    under pid 0 ("driver" process), and every pool worker appears as its
    own Chrome process (pid = real worker pid) whose lane carries that
    worker's task spans.  Each task span's queue wait is exported as its
    own event on the same lane (category ``"queue"``), ending exactly
    where the task event starts, so pool pressure is visible as a bar.

    Zero-drift: ``dur`` of every event is the span's measured duration
    scaled by :attr:`ChromeTraceExporter.SCALE` — the exact floats the
    recorder holds, no re-measuring or rounding.
    """
    scale = ChromeTraceExporter.SCALE
    events: List[dict] = [{
        "ph": "M", "pid": _DRIVER_PID, "tid": 0, "name": "process_name",
        "args": {"name": f"repro driver ({telemetry.driver})"},
    }]
    max_depth = -1
    for span in telemetry.stages:
        max_depth = max(max_depth, span.depth)
        events.append({
            "ph": "X",
            "pid": _DRIVER_PID,
            "tid": span.depth + 1,
            "cat": span.kind,
            "name": span.name,
            "ts": span.start * scale,
            "dur": span.duration * scale,
            "args": {"id": span.index, "parent": span.parent, **span.meta},
        })
    for depth in range(max_depth + 1):
        events.append({
            "ph": "M", "pid": _DRIVER_PID, "tid": depth + 1,
            "name": "thread_name", "args": {"name": f"driver stage depth {depth}"},
        })

    for pid in sorted({t.worker_pid for t in telemetry.tasks}):
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"worker {pid}"},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": 1, "name": "thread_name",
            "args": {"name": "tasks"},
        })
    for span in telemetry.tasks:
        args = {
            "index": span.index,
            "queue_wait": span.queue_wait,
            "items": span.items,
            "items_per_sec": span.items_per_sec,
        }
        if span.queue_wait > 0:
            events.append({
                "ph": "X",
                "pid": span.worker_pid,
                "tid": 1,
                "cat": "queue",
                "name": f"{span.label}[{span.index}] wait",
                "ts": span.submitted * scale,
                "dur": span.queue_wait * scale,
                "args": {"index": span.index},
            })
        events.append({
            "ph": "X",
            "pid": span.worker_pid,
            "tid": 1,
            "cat": "task",
            "name": f"{span.label}[{span.index}]",
            "ts": span.started * scale,
            "dur": span.duration * scale,
            "args": args,
        })
    return events


def export_telemetry_chrome(telemetry, path: str) -> int:
    """Write a telemetry Chrome trace to ``path``; returns event count.

    The file loads in ``chrome://tracing`` / https://ui.perfetto.dev and
    shows the driver and each worker as side-by-side processes on one
    wall-clock axis.  ``otherData`` carries the full telemetry summary.
    """
    events = telemetry_trace_events(telemetry)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-telemetry-v1",
            "driver": telemetry.driver,
            "summary": telemetry.summary(),
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    return len(events)


def telemetry_jsonl_records(telemetry) -> List[dict]:
    """Flat JSON-lines records for one telemetry recorder.

    File order mirrors the machine exporter: ``meta``, stage spans, task
    spans, metric snapshots, per-worker utilization, then a ``summary``
    record — every number taken verbatim from the recorder (zero drift).
    """
    out: List[dict] = [{
        "type": "meta",
        "format": "repro-telemetry-v1",
        "driver": telemetry.driver,
    }]
    out.extend(s.to_record() for s in telemetry.stages)
    out.extend(t.to_record() for t in telemetry.tasks)
    out.extend(
        {**m, "type": "metric", "metric_type": m["type"]}
        for m in telemetry.metrics.collect()
    )
    out.extend(
        {"type": "worker", **w.to_dict()} for w in telemetry.worker_stats()
    )
    out.append({"type": "summary", **telemetry.summary()})
    return out


def export_telemetry_jsonl(telemetry, path: str) -> int:
    """Write telemetry as one JSON object per line; returns line count."""
    records = telemetry_jsonl_records(telemetry)
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return len(records)


#: Pluggable exporter registry: name -> exporter factory.
EXPORTERS = {
    JSONLinesExporter.name: JSONLinesExporter,
    ChromeTraceExporter.name: ChromeTraceExporter,
}


def get_exporter(name: str):
    """Instantiate a registered exporter by name."""
    try:
        return EXPORTERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown exporter {name!r}; registered: {sorted(EXPORTERS)}"
        ) from None
