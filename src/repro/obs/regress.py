"""Regression gates: compare a fresh bench report against a baseline.

Two gates, matched to what each number *means*:

* the **model gate** is exact.  Words, rounds, flops, the Theorem 3 bound,
  the attainment ratio and the ``sent_words`` skew ratio are model-level
  quantities of a deterministic simulator — the paper's constants are
  1/2/3 and Algorithm 1's attainment is 1.0, so *any* drift in these is a
  correctness regression, not noise.
* the **wall-clock gate** is thresholded.  Timings are environment-bound,
  so an entry only fails when it slows down by more than ``tolerance``
  (default ±20%) *and* by more than an absolute floor (default 0.25 s, so
  micro-benchmarks can't trip the gate on scheduler jitter).  The gate can
  be demoted to advisory (warnings only) for cross-machine comparisons,
  e.g. a CI baseline recorded on different hardware.

A third **coverage** check flags entries that appear in only one of the two
reports: an entry that silently disappears is exactly the kind of drift the
ledger exists to catch, so missing entries fail the gate unless explicitly
allowed (the CLI allows them when ``--filter`` ran a subset).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .bench import BenchEntry, BenchReport

__all__ = [
    "MODEL_FIELDS",
    "GateResult",
    "RegressionReport",
    "compare_entries",
    "compare_reports",
]

#: Entry fields held to exact equality by the model gate.
MODEL_FIELDS = ("words", "rounds", "flops", "bound", "attainment")

#: Default relative wall-clock tolerance (fraction of the baseline).
DEFAULT_WALLCLOCK_TOL = 0.20

#: Absolute wall-clock slack in seconds; differences below this never fail.
DEFAULT_WALLCLOCK_FLOOR = 0.25


@dataclasses.dataclass(frozen=True)
class GateResult:
    """One gate decision for one entry."""

    name: str
    gate: str  # "model" | "wall_clock" | "coverage"
    status: str  # "pass" | "fail" | "warn" | "info"
    detail: str = ""

    def render(self) -> str:
        return f"[{self.status.upper():4s}] {self.gate:10s} {self.name}" + (
            f": {self.detail}" if self.detail else ""
        )


@dataclasses.dataclass
class RegressionReport:
    """All gate decisions from one baseline comparison."""

    results: List[GateResult]
    baseline_label: str = ""
    current_label: str = ""

    @property
    def failures(self) -> List[GateResult]:
        return [r for r in self.results if r.status == "fail"]

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        counts = {"pass": 0, "fail": 0, "warn": 0, "info": 0}
        for r in self.results:
            counts[r.status] = counts.get(r.status, 0) + 1
        lines = [
            f"regression gate: {self.current_label or '(current)'} vs "
            f"baseline {self.baseline_label or '(unlabeled)'}"
        ]
        lines.extend(
            r.render() for r in self.results if r.status != "pass"
        )
        lines.append(
            f"{counts['pass']} passed, {counts['fail']} failed, "
            f"{counts['warn']} warnings, {counts['info']} informational"
        )
        lines.append("GATE " + ("PASSED" if self.passed else "FAILED"))
        return "\n".join(lines)


def compare_entries(
    current: BenchEntry,
    baseline: BenchEntry,
    wallclock_tol: float = DEFAULT_WALLCLOCK_TOL,
    wallclock_floor: float = DEFAULT_WALLCLOCK_FLOOR,
    enforce_wallclock: bool = True,
) -> List[GateResult]:
    """Gate one entry pair; returns one result per gate."""
    results: List[GateResult] = []

    drifts = []
    for field in MODEL_FIELDS:
        cur, base = getattr(current, field), getattr(baseline, field)
        if cur != base:
            drifts.append(f"{field} {base:g} -> {cur:g}")
    if current.skew is not None and baseline.skew is not None:
        if current.skew.ratio != baseline.skew.ratio:
            drifts.append(
                f"skew ratio {baseline.skew.ratio:g} -> {current.skew.ratio:g}"
            )
    if drifts:
        results.append(
            GateResult(
                name=current.name,
                gate="model",
                status="fail",
                detail="model-level drift: " + "; ".join(drifts),
            )
        )
    else:
        results.append(GateResult(name=current.name, gate="model", status="pass"))

    cur_t, base_t = current.wall_clock, baseline.wall_clock
    delta = cur_t - base_t
    limit = max(base_t * wallclock_tol, 0.0)
    if delta > limit and delta > wallclock_floor:
        results.append(
            GateResult(
                name=current.name,
                gate="wall_clock",
                status="fail" if enforce_wallclock else "warn",
                detail=(
                    f"{base_t:.3f}s -> {cur_t:.3f}s "
                    f"(+{delta / base_t:.0%}, tolerance {wallclock_tol:.0%})"
                    if base_t > 0
                    else f"{base_t:.3f}s -> {cur_t:.3f}s"
                ),
            )
        )
    elif -delta > limit and -delta > wallclock_floor:
        results.append(
            GateResult(
                name=current.name,
                gate="wall_clock",
                status="info",
                detail=f"faster: {base_t:.3f}s -> {cur_t:.3f}s",
            )
        )
    else:
        results.append(
            GateResult(name=current.name, gate="wall_clock", status="pass")
        )
    return results


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    wallclock_tol: float = DEFAULT_WALLCLOCK_TOL,
    wallclock_floor: float = DEFAULT_WALLCLOCK_FLOOR,
    enforce_wallclock: bool = True,
    allow_missing: bool = False,
) -> RegressionReport:
    """Run both gates over every shared entry, plus the coverage check.

    ``allow_missing`` downgrades "entry in baseline but not in the current
    report" from a failure to an informational note — the CLI sets it when
    the current run used ``--filter``, i.e. intentionally ran a subset.
    """
    results: List[GateResult] = []
    baseline_by_name = {e.name: e for e in baseline.entries}
    current_names = {e.name for e in current.entries}

    for entry in current.entries:
        base = baseline_by_name.get(entry.name)
        if base is None:
            results.append(
                GateResult(
                    name=entry.name,
                    gate="coverage",
                    status="info",
                    detail="new entry (not in baseline)",
                )
            )
            continue
        results.extend(
            compare_entries(
                entry,
                base,
                wallclock_tol=wallclock_tol,
                wallclock_floor=wallclock_floor,
                enforce_wallclock=enforce_wallclock,
            )
        )

    for name in sorted(baseline_by_name.keys() - current_names):
        results.append(
            GateResult(
                name=name,
                gate="coverage",
                status="info" if allow_missing else "fail",
                detail="entry present in baseline but missing from this run",
            )
        )

    return RegressionReport(
        results=results,
        baseline_label=baseline.label,
        current_label=current.label,
    )
