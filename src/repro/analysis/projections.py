"""Per-processor data footprints (the projections phi_A, phi_B, phi_C).

The lower-bound proof reasons about the projections of a processor's
assigned multiplication set ``F`` onto the three matrices.  This module
computes those projections for

* explicit point assignments (small problems, brute-force checks), and
* grid parallelizations, where the assigned set is a brick and the
  projections are its faces (Loomis-Whitney holds with equality).

The verification layer compares these with the per-array access bounds of
Lemma 1 and the Theorem 3 optimum — executable versions of the proof's
inequalities on *actual* work assignments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from ..core.loomis_whitney import matmul_projections
from ..core.shapes import ProblemShape
from ..algorithms.distributions import block_bounds
from ..algorithms.grid import ProcessorGrid

__all__ = [
    "grid_assignment_brick",
    "grid_projection_sizes",
    "assignment_projection_sizes",
    "total_projection_words",
    "is_computation_balanced",
]

Point = Tuple[int, int, int]


def grid_assignment_brick(
    shape: ProblemShape, grid: ProcessorGrid, coord: Tuple[int, int, int]
) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
    """The iteration-space brick assigned to the processor at ``coord``.

    Returns the three half-open index ranges ``(i1, i2, i3)``.
    """
    c1, c2, c3 = coord
    return (
        block_bounds(shape.n1, grid.p1, c1),
        block_bounds(shape.n2, grid.p2, c2),
        block_bounds(shape.n3, grid.p3, c3),
    )


def grid_projection_sizes(
    shape: ProblemShape, grid: ProcessorGrid, coord: Tuple[int, int, int]
) -> Dict[str, int]:
    """Projection sizes of a grid processor's brick (no enumeration needed).

    For a brick ``a x b x c`` the projections are its faces:
    ``|phi_A| = a*b``, ``|phi_B| = b*c``, ``|phi_C| = a*c``.
    """
    (i0, i1), (j0, j1), (k0, k1) = grid_assignment_brick(shape, grid, coord)
    a, b, c = i1 - i0, j1 - j0, k1 - k0
    return {"A": a * b, "B": b * c, "C": a * c}


def assignment_projection_sizes(points: Iterable[Point]) -> Dict[str, int]:
    """Projection sizes of an arbitrary multiplication set (enumerated)."""
    return matmul_projections(points)


def total_projection_words(proj: Mapping[str, int]) -> int:
    """``|phi_A| + |phi_B| + |phi_C|`` — the objective of Lemma 2."""
    return proj["A"] + proj["B"] + proj["C"]


def is_computation_balanced(
    shape: ProblemShape,
    assignment: Mapping[int, List[Point]],
    P: int,
    slack: float = 0.0,
) -> bool:
    """Does every processor perform at least ``(1 - slack)/P`` of the work?

    ``assignment`` maps ranks to their multiplication points.  Theorem 3
    assumes load balance of computation *or* data; grid parallelizations
    with divisible dimensions are perfectly balanced.
    """
    target = shape.volume / P * (1.0 - slack)
    counts = {r: len(pts) for r, pts in assignment.items()}
    if len(counts) < P:
        return False
    return all(c >= target for c in counts.values())
