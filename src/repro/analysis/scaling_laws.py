"""Empirical scaling-law extraction: fitting the bounds' P-exponents.

Theorem 3's three cases predict distinct power laws for the per-processor
data volume as a function of ``P``:

* case 1: the leading term ``nk`` is flat — exponent ``0``;
* case 2: ``2 sqrt(mnk^2 / P)`` — exponent ``-1/2``;
* case 3: ``3 (mnk / P)^(2/3)`` — exponent ``-2/3``;
* the memory-dependent bound ``2mnk/(P sqrt(M))`` — exponent ``-1``.

:func:`fit_exponent` recovers an exponent from ``(P, value)`` samples by
least-squares in log-log space; :func:`regime_exponents` runs Algorithm 1
(closed form) across a regime's interior and fits the measured series —
an independent check that the *executable* costs follow the theory's
power laws, not just its point values.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence, Tuple

import numpy as np

from ..algorithms.grid_selection import select_grid
from ..core.cases import Regime, classify
from ..core.lower_bounds import leading_term
from ..core.shapes import ProblemShape

__all__ = ["FittedLaw", "fit_exponent", "regime_exponents", "THEORY_EXPONENTS"]

#: The power-law exponents Theorem 3 predicts per regime.
THEORY_EXPONENTS = {
    Regime.ONE_D: 0.0,
    Regime.TWO_D: -0.5,
    Regime.THREE_D: -2.0 / 3.0,
}


@dataclasses.dataclass(frozen=True)
class FittedLaw:
    """A least-squares power-law fit ``value ~ C * P^exponent``."""

    exponent: float
    coefficient: float
    residual: float
    n_points: int


def fit_exponent(samples: Sequence[Tuple[float, float]]) -> FittedLaw:
    """Fit ``value = C * P^e`` to ``(P, value)`` samples (log-log LSQ).

    Requires at least two samples with positive values.
    """
    pts = [(p, v) for p, v in samples if p > 0 and v > 0]
    if len(pts) < 2:
        raise ValueError(f"need at least two positive samples, got {len(pts)}")
    logs = np.array([(math.log(p), math.log(v)) for p, v in pts])
    x, y = logs[:, 0], logs[:, 1]
    slope, intercept = np.polyfit(x, y, 1)
    residual = float(np.sqrt(np.mean((y - (slope * x + intercept)) ** 2)))
    return FittedLaw(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        residual=residual,
        n_points=len(pts),
    )


def regime_exponents(shape: ProblemShape, samples_per_regime: int = 6) -> dict:
    """Fit the leading term's P-exponent inside each regime of ``shape``.

    Returns ``{Regime: FittedLaw}`` for every regime wide enough to sample
    (needs an interior spanning at least a factor of two in ``P``).
    """
    r1, r2 = shape.aspect_ratio_thresholds()
    intervals = {
        Regime.ONE_D: (1.0, r1),
        Regime.TWO_D: (r1, r2),
        Regime.THREE_D: (r2, r2 * 64.0),
    }
    fits = {}
    for regime, (lo, hi) in intervals.items():
        if hi < 2 * max(lo, 1.0):
            continue
        counts = sorted({
            max(1, int(round(p)))
            for p in np.geomspace(max(lo, 1.0), hi, samples_per_regime)
        })
        counts = [P for P in counts if classify(shape, P) is regime]
        if len(counts) < 2:
            continue
        series = [(P, leading_term(shape, P)) for P in counts]
        fits[regime] = fit_exponent(series)
    return fits


def alg1_cost_exponents(shape: ProblemShape, samples_per_regime: int = 6) -> dict:
    """Like :func:`regime_exponents` but fitting Algorithm 1's *selected-grid*
    leading data-access series — ``cost + owned - case remainder``, the
    executable analog of the Table 1 leading term (in case 2 the raw
    accessed data is dominated by each processor's ``mn/P`` share of the
    largest matrix, whose exponent is -1; the power law under test lives
    in the remaining ``2 sqrt(mnk^2/P)`` portion).  Sampling is pushed
    deep into each regime and restricted to powers of two so integrality
    jitter does not bias the fit.
    """
    from .constants import case_remainder
    r1, r2 = shape.aspect_ratio_thresholds()
    intervals = {
        Regime.TWO_D: (r1 * 2.0, r2),
        Regime.THREE_D: (r2 * 4.0, r2 * 512.0),
    }
    owned = shape.total_data
    fits = {}
    for regime, (lo, hi) in intervals.items():
        if hi < 2 * max(lo, 1.0):
            continue
        # Sample powers of two: arbitrary (e.g. prime) P values force poor
        # integer grids and add jitter unrelated to the scaling law.
        counts = [2 ** e for e in range(0, 64)
                  if lo <= 2 ** e <= hi and classify(shape, 2 ** e) is regime]
        counts = counts[:samples_per_regime * 2]
        series = []
        for P in counts:
            accessed = select_grid(shape, P).cost + owned / P
            value = accessed - case_remainder(shape, P)
            if value > 0:
                series.append((P, value))
        if len(series) >= 2:
            fits[regime] = fit_exponent(series)
    return fits
