"""The integrality gap of Section 5.2's grid selection.

Theorem 3's tightness proof assumes the optimal grid dimensions are
integers ("there are an infinite number of dimensions for which the
assumption holds").  For arbitrary ``P`` the best *integer* grid can sit
slightly above the bound; this module quantifies that gap:

* :func:`integrality_gap` — best-integer-grid cost / lower bound at one
  ``(shape, P)``;
* :func:`gap_profile` — the gap across a range of ``P`` with summary
  statistics, including the set of ``P`` where the gap is exactly 1 (the
  attainable points).

For the paper's Figure 2 shape the profile shows gap 1 at every ``P``
whose factor structure matches the aspect ratios (including 3, 36, 512)
and single-digit-percent gaps elsewhere in the 2D/3D regimes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..algorithms.grid_selection import select_grid
from ..core.lower_bounds import communication_lower_bound
from ..core.shapes import ProblemShape

__all__ = ["GapPoint", "GapProfile", "integrality_gap", "gap_profile"]


@dataclasses.dataclass(frozen=True)
class GapPoint:
    """Best integer grid versus the bound at one processor count."""

    P: int
    grid: tuple
    cost: float
    bound: float
    gap: float


@dataclasses.dataclass(frozen=True)
class GapProfile:
    """Gap statistics over a sweep of processor counts."""

    points: List[GapPoint]

    @property
    def attainable(self) -> List[int]:
        """Processor counts where the bound is attained exactly."""
        return [p.P for p in self.points if p.gap <= 1.0 + 1e-9]

    @property
    def worst(self) -> GapPoint:
        return max(self.points, key=lambda p: p.gap)

    @property
    def mean_gap(self) -> float:
        return sum(p.gap for p in self.points) / len(self.points)


def integrality_gap(shape: ProblemShape, P: int) -> GapPoint:
    """Best-integer-grid cost relative to the Theorem 3 bound.

    A gap of 1.0 means some integer grid attains the bound exactly; the
    gap is always >= 1 (no grid can beat the bound).
    """
    choice = select_grid(shape, P)
    bound = communication_lower_bound(shape, P)
    gap = choice.cost / bound if bound > 0 else 1.0
    return GapPoint(P=P, grid=choice.grid.dims, cost=choice.cost,
                    bound=bound, gap=gap)


def gap_profile(shape: ProblemShape, processor_counts: Sequence[int]) -> GapProfile:
    """Evaluate the integrality gap across processor counts."""
    return GapProfile(points=[integrality_gap(shape, P) for P in processor_counts])
