"""Analytic cost oracle: closed-form per-algorithm cost predictions.

Every registered algorithm's simulated cost is a deterministic function of
``(shape, P)`` alone — the simulator counts words and rounds, it never
times elements — so each has a closed form.  This module computes those
forms and returns the same :class:`~repro.machine.cost.Cost` structure the
simulator produces, making the oracle

* a **fast path**: ``sweep(engine="oracle")`` and ``repro run --oracle``
  evaluate points in microseconds instead of simulating data movement
  (the ROADMAP's scaling lever — parameter spaces at ``P = 10^6+``), and
* an **independent correctness witness**: the formulas below are derived
  from the paper (expression (3), Section 5.1) and the classic literature
  (Cannon 1969, Fox & Otto 1987, van de Geijn & Watts 1997, Solomonik &
  Demmel 2011, Demmel et al. 2013), *not* from the simulator's code, so
  :func:`repro.analysis.verification.cross_check_oracle` asserting exact
  equality checks both sides at once.

The contract is **bit-exact equality or refusal**: configurations whose
simulated critical path charges ragged pieces (uneven blocks or shards)
are rejected with :class:`~repro.exceptions.OracleUnsupportedError`
instead of approximated.  In the supported domain every quantity is an
integer computed with integer arithmetic, so float representation cannot
introduce drift.

Per-algorithm cost shapes (divisible configurations, ``a/b/d`` block words):

=========  ================================================================
alg1       expression (3) words; rounds from the collective dispatch
           (``log2 p`` for power-of-two fibers, ``p - 1`` ring, Bruck
           ``ceil log2 p``); flops ``n1 n2 n3 / P`` + reduce-scatter adds.
row_1d     ``(1 - 1/P) n2 n3`` words (All-Gather of ``B``).
outer_1d   ``(1 - 1/P) n1 n3`` words (Reduce-Scatter of ``C`` partials).
cannon     ``q (a + b)`` words in ``2q`` rounds (2 skews + ``2(q-1)`` shifts).
fox        per stage: scatter+allgather broadcast of the pivot ``A`` block
           along rows (replayed exactly, max over the ``q`` root rotations)
           plus a one-round roll of ``B``.
fox_otto   identical to fox: the min-plus distance product runs the same
           schedule, and all counters are semiring-independent.
summa      per panel stage: scatter+allgather broadcasts of the ``A``
           column panel (rows) and ``B`` row panel (columns).
c25d       Cannon skews + ``ceil(log2 c)`` depth broadcasts + ``q/c - 1``
           shifts + ``ceil(log2 c)`` binomial depth reductions.
carma      exact geometric replay of the recursive splits (regions only,
           no elements) with merged-round accounting.
alg1_abft  alg1 (auto collectives) plus the charged encode: one
           recursive-doubling All-Reduce per fiber longer than 1
           (``log2 p`` rounds of one shard each, same flops) and one
           buddy-replication round when some fiber has length 1.
summa_abft summa on the extended ``(pr+1) x pc`` grid (the checksum row
           rides every panel stage) plus one encode round replicating the
           stationary ``B`` blocks.
=========  ================================================================

The ABFT forms are *fault-free* costs: recovery traffic is charged to the
run's injector (``words_recovered``), never predicted here, so the oracle
stays an independent witness for the encode overhead the survivability
report compares against the Theorem 3 bound.

The Fox/SUMMA broadcast and the CARMA recursion are *replayed over integer
geometry* — identical round structure and piece sizes as the executable
schedules, but no arrays, no machine, no data movement; evaluation cost is
``O(P)``-ish integer work independent of matrix dimensions.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..algorithms.abft import abft_summa_grid, alg1_abft_grid
from ..algorithms.distributions import shards_divide_evenly
from ..algorithms.grid_selection import select_grid
from ..algorithms.registry import REGISTRY, c25d_grid, summa_grid
from ..collectives.schedules import ceil_log2, is_power_of_two
from ..core.shapes import ProblemShape
from ..exceptions import GridError, OracleUnsupportedError
from ..machine.cost import Cost
from ..obs.attainment import bound_attainment

__all__ = [
    "ORACLE_ALGORITHMS",
    "OraclePrediction",
    "collective_rounds",
    "oracle_supported",
    "predict_cost",
]


@dataclasses.dataclass(frozen=True)
class OraclePrediction:
    """A closed-form prediction mirroring a registry run's observables.

    ``cost`` matches ``run_algorithm(...).cost`` exactly (rounds, words,
    flops); ``config`` matches the registry's config string; ``bound`` and
    ``attainment`` mirror the run's bound-attainment gauge.
    """

    algorithm: str
    shape: ProblemShape
    P: int
    cost: Cost
    config: str
    bound: float
    attainment: float


def collective_rounds(p: int, algorithm: str = "auto") -> int:
    """Communication rounds of one bandwidth-optimal collective over ``p`` ranks.

    Matches the executable schedules: ``ring`` takes ``p - 1`` rounds,
    ``recursive_doubling``/``recursive_halving`` take ``log2 p`` (powers of
    two only), ``bruck`` takes ``ceil(log2 p)``, and ``auto`` dispatches to
    doubling/halving when ``p`` is a power of two, else ring.
    """
    if p <= 1:
        return 0
    if algorithm == "auto":
        return p.bit_length() - 1 if is_power_of_two(p) else p - 1
    if algorithm == "ring":
        return p - 1
    if algorithm in ("recursive_doubling", "recursive_halving"):
        if not is_power_of_two(p):
            raise OracleUnsupportedError(
                f"{algorithm} requires a power-of-two group, got p={p}"
            )
        return p.bit_length() - 1
    if algorithm == "bruck":
        return ceil_log2(p)
    raise OracleUnsupportedError(f"unknown collective algorithm {algorithm!r}")


# --------------------------------------------------------------------- #
# Algorithm 1 and the 1D baselines                                      #
# --------------------------------------------------------------------- #


def _predict_alg1(
    shape: ProblemShape, P: int, collective_algorithm: Optional[str]
) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    try:
        choice = select_grid(shape, P)
    except GridError as exc:
        raise OracleUnsupportedError(f"alg1: no grid for P={P}: {exc}") from exc
    grid = choice.grid
    p1, p2, p3 = grid.dims
    if p1 > n1 or p2 > n2 or p3 > n3:
        raise OracleUnsupportedError(
            f"alg1: selected grid {grid} exceeds dimensions {shape.dims}"
        )
    if not shards_divide_evenly(shape, grid):
        raise OracleUnsupportedError(
            f"alg1: grid {grid} does not shard {shape} evenly; the simulated "
            f"critical path charges the largest ragged shard"
        )
    ag = "auto" if collective_algorithm is None else collective_algorithm
    # The executable maps gather algorithms to their reduce-phase duals;
    # Bruck has no Reduce-Scatter dual and falls back to "auto".
    rs = {"recursive_doubling": "recursive_halving", "bruck": "auto"}.get(ag, ag)

    a_block = (n1 // p1) * (n2 // p2)
    b_block = (n2 // p2) * (n3 // p3)
    c_block = (n1 // p1) * (n3 // p3)
    words = 0
    rounds = 0
    if p3 > 1:  # All-Gather A along p3-fibers
        words += (p3 - 1) * (a_block // p3)
        rounds += collective_rounds(p3, ag)
    if p1 > 1:  # All-Gather B along p1-fibers
        words += (p1 - 1) * (b_block // p1)
        rounds += collective_rounds(p1, ag)
    flops = (n1 // p1) * (n2 // p2) * (n3 // p3)
    if p2 > 1:  # Reduce-Scatter C along p2-fibers (+ the reduction adds)
        words += (p2 - 1) * (c_block // p2)
        rounds += collective_rounds(p2, rs)
        flops += (p2 - 1) * (c_block // p2)

    config = f"grid {grid}"
    if ag != "auto":
        config += f", collectives {ag}"
    return _finish("alg1", shape, P, rounds, words, flops, config)


def _predict_row_1d(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    if P > n1:
        raise OracleUnsupportedError(f"row_1d needs P <= n1, got P={P}, n1={n1}")
    if (n2 * n3) % P:
        raise OracleUnsupportedError(
            f"row_1d: P={P} does not divide |B| = {n2 * n3}; shards are ragged"
        )
    words = (P - 1) * ((n2 * n3) // P)
    rounds = collective_rounds(P, "auto")
    flops = -(-n1 // P) * n2 * n3  # largest row block does the most work
    return _finish("row_1d", shape, P, rounds, words, flops, f"P={P}")


def _predict_outer_1d(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    if P > n2:
        raise OracleUnsupportedError(f"outer_1d needs P <= n2, got P={P}, n2={n2}")
    if (n1 * n3) % P:
        raise OracleUnsupportedError(
            f"outer_1d: P={P} does not divide |C| = {n1 * n3}; shards are ragged"
        )
    shard = (n1 * n3) // P
    words = (P - 1) * shard
    rounds = collective_rounds(P, "auto")
    flops = n1 * (-(-n2 // P)) * n3 + (P - 1) * shard if P > 1 else n1 * n2 * n3
    return _finish("outer_1d", shape, P, rounds, words, flops, f"P={P}")


# --------------------------------------------------------------------- #
# 2D and 2.5D baselines                                                 #
# --------------------------------------------------------------------- #


def _square_grid_side(name: str, shape: ProblemShape, P: int) -> int:
    q = math.isqrt(P)
    if q * q != P:
        raise OracleUnsupportedError(f"{name} needs a square P, got {P}")
    if q > min(shape.dims):
        raise OracleUnsupportedError(
            f"{name}: q={q} exceeds the smallest dimension of {shape}"
        )
    if any(n % q for n in shape.dims):
        raise OracleUnsupportedError(
            f"{name}: q={q} does not divide {shape.dims}; blocks are ragged"
        )
    return q


def _predict_cannon(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    q = _square_grid_side("cannon", shape, P)
    config = f"grid {q}x{q}"
    if q == 1:
        return _finish("cannon", shape, P, 0, 0, n1 * n2 * n3, config)
    a_block = (n1 // q) * (n2 // q)
    b_block = (n2 // q) * (n3 // q)
    # 1 skew + (q - 1) shift rounds per matrix, each moving one full block.
    rounds = 2 * q
    words = q * (a_block + b_block)
    flops = q * (n1 // q) * (n2 // q) * (n3 // q)
    return _finish("cannon", shape, P, rounds, words, flops, config)


def _scatter_allgather_broadcast(
    p: int, w: int, root_positions: Sequence[int]
) -> Tuple[int, int]:
    """Exact (rounds, critical words) of the van de Geijn broadcast.

    Replays the binomial scatter's round structure over ``p`` pieces of
    ``numpy.array_split`` sizes, taking the per-round maximum message
    across the merged groups' root rotations (``root_positions``), then
    adds the ring All-Gather (``p - 1`` rounds charging the largest piece).

    Memoized on ``(p, w, roots)``: SUMMA's stage loop asks for the same
    handful of root rotations thousands of times, and sweeps repeat
    identical block sizes across shapes.
    """
    return _scatter_allgather_cached(p, w, tuple(root_positions))


@functools.lru_cache(maxsize=65536)
def _scatter_allgather_cached(
    p: int, w: int, root_positions: Tuple[int, ...]
) -> Tuple[int, int]:
    base, extra = divmod(w, p)
    psize = [base + (1 if j < extra else 0) for j in range(p)]
    if psize[-1] == 0:
        raise OracleUnsupportedError(
            f"scatter_allgather broadcast of {w} words over {p} ranks has "
            f"empty pieces; the executable schedule cannot send them"
        )
    rounds = 0
    words = 0
    # Binomial scatter: holders forward the upper half of their index range.
    holding: Dict[int, List[int]] = {0: list(range(p))}
    dist = 1 << max(ceil_log2(p) - 1, 0) if p > 1 else 0
    while dist >= 1:
        moves = []
        for i in sorted(holding):
            upper = [j for j in holding[i] if j >= i + dist]
            if upper:
                moves.append((i, upper))
        if moves:
            rounds += 1
            crit = 0
            for rho in root_positions:
                for _, upper in moves:
                    sent = sum(psize[(j + rho) % p] for j in upper)
                    if sent > crit:
                        crit = sent
            words += crit
            for i, upper in moves:
                holding[i] = [j for j in holding[i] if j < i + dist]
                holding[i + dist] = upper
        dist //= 2
    # Ring All-Gather: every piece is in flight each round.
    rounds += p - 1
    words += (p - 1) * max(psize)
    return rounds, words


def _predict_fox(shape: ProblemShape, P: int, name: str = "fox") -> OraclePrediction:
    """Fox's schedule; ``name`` may be ``fox_otto`` — the min-plus distance
    product runs the identical schedule, so the closed form is shared."""
    n1, n2, n3 = shape.dims
    q = _square_grid_side(name, shape, P)
    config = f"grid {q}x{q}"
    if q == 1:
        return _finish(name, shape, P, 0, 0, n1 * n2 * n3, config)
    a_block = (n1 // q) * (n2 // q)
    b_block = (n2 // q) * (n3 // q)
    # Stage t broadcasts the pivot A block along every grid row; row i's
    # root sits at column (i + t) % q, so all q rotations are always
    # present among the merged groups.
    bcast_rounds, bcast_words = _scatter_allgather_broadcast(
        q, a_block, range(q)
    )
    rounds = q * bcast_rounds + (q - 1)  # + one roll of B per early stage
    words = q * bcast_words + (q - 1) * b_block
    flops = q * (n1 // q) * (n2 // q) * (n3 // q)
    return _finish(name, shape, P, rounds, words, flops, config)


def _predict_summa(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    grid = summa_grid(shape, P)
    if grid is None:
        raise OracleUnsupportedError(f"summa: no divisible grid for {shape}, P={P}")
    pr, pc = grid
    panel = math.gcd(n2 // pr, n2 // pc)
    stages = n2 // panel
    rounds = 0
    words = 0
    # Over the stage loop (t = 0 .. stages-1, k0 = t * panel) the row root
    # jt = k0 // (n2 // pc) visits each value 0 .. pc-1 exactly
    # stages // pc times (panel divides n2 // pc, which divides n2), and
    # likewise it visits 0 .. pr-1 exactly stages // pr times.  All
    # summands are Python ints, so regrouping the sum by root value is
    # exact — identical words and rounds as the per-stage loop, in
    # O(pr + pc) broadcast evaluations instead of O(stages).
    if pc > 1:
        for jt in range(pc):
            r, w = _scatter_allgather_broadcast(pc, (n1 // pr) * panel, (jt,))
            rounds += (stages // pc) * r
            words += (stages // pc) * w
    if pr > 1:
        for it in range(pr):
            r, w = _scatter_allgather_broadcast(pr, panel * (n3 // pc), (it,))
            rounds += (stages // pr) * r
            words += (stages // pr) * w
    flops = (n1 // pr) * n2 * (n3 // pc)
    return _finish("summa", shape, P, rounds, words, flops, f"grid {pr}x{pc}")


def _predict_c25d(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    best = c25d_grid(shape, P)
    if best is None:
        raise OracleUnsupportedError(f"c25d: no q^2 c grid for {shape}, P={P}")
    q, c = best
    if any(n % q for n in shape.dims):
        raise OracleUnsupportedError(
            f"c25d: q={q} does not divide {shape.dims}; blocks are ragged"
        )
    config = f"grid {q}x{q}x{c}"
    a_block = (n1 // q) * (n2 // q)
    b_block = (n2 // q) * (n3 // q)
    d_block = (n1 // q) * (n3 // q)
    stride = q // c
    rounds = 0
    words = 0
    if q > 1:  # layer-0 Cannon pre-skews, one round per matrix
        rounds += 2
        words += a_block + b_block
    if c > 1:  # binomial depth broadcasts of the skewed A and B blocks
        depth_rounds = ceil_log2(c)
        rounds += 2 * depth_rounds
        words += depth_rounds * (a_block + b_block)
    if stride > 1:  # per-layer Cannon shift stages
        rounds += 2 * (stride - 1)
        words += (stride - 1) * (a_block + b_block)
    flops = stride * (n1 // q) * (n2 // q) * (n3 // q)
    if c > 1:  # binomial depth reduction of C; roots sum one block per round
        depth_rounds = ceil_log2(c)
        rounds += depth_rounds
        words += depth_rounds * d_block
        flops += depth_rounds * d_block
    return _finish("c25d", shape, P, rounds, words, flops, config)


# --------------------------------------------------------------------- #
# CARMA: exact geometric replay                                         #
# --------------------------------------------------------------------- #

_Region = Tuple[int, int, int, int]  # (r0, r1, c0, c1)
_Msg = Tuple[int, int, object, int]  # (src, dest, payload, words)
_Replay = Generator[List[_Msg], Dict[int, object], object]


def _clip_region(piece: _Region, region: _Region) -> Optional[_Region]:
    pr0, pr1, pc0, pc1 = piece
    rr0, rr1, rc0, rc1 = region
    r0, r1 = max(pr0, rr0), min(pr1, rr1)
    c0, c1 = max(pc0, rc0), min(pc1, rc1)
    if r0 >= r1 or c0 >= c1:
        return None
    return (r0, r1, c0, c1)


def _clip_regions(pieces: Sequence[_Region], region: _Region) -> List[_Region]:
    out = []
    for p in pieces:
        clipped = _clip_region(p, region)
        if clipped is not None:
            out.append(clipped)
    return out


def _pack_words(pieces: Sequence[_Region]) -> int:
    """Words of a packed piece list: 4 metadata words + area per piece."""
    return sum(4 + (r1 - r0) * (c1 - c0) for (r0, r1, c0, c1) in pieces)


def _split_region_for_combine(piece: _Region) -> Tuple[_Region, Optional[_Region]]:
    r0, r1, c0, c1 = piece
    if r1 - r0 > 1:
        mid = (r0 + r1) // 2
        return (r0, mid, c0, c1), (mid, r1, c0, c1)
    if c1 - c0 > 1:
        mid = (c0 + c1) // 2
        return (r0, r1, c0, mid), (r0, r1, mid, c1)
    return piece, None


def _merge_replays(schedules: Sequence[_Replay]) -> _Replay:
    """Mirror of :func:`repro.collectives.schedules.merge_schedules`."""
    scheds = list(schedules)
    results: List[object] = [None] * len(scheds)
    active: Dict[int, _Replay] = dict(enumerate(scheds))
    inbox: Dict[int, object] = {i: None for i in active}
    while active:
        round_msgs: List[_Msg] = []
        dest_owner: Dict[int, int] = {}
        for i in list(active):
            try:
                msgs = active[i].send(inbox[i])
            except StopIteration as stop:
                results[i] = stop.value
                del active[i]
                continue
            for msg in msgs:
                dest_owner[msg[1]] = i
            round_msgs.extend(msgs)
        if not active:
            break
        deliveries = yield round_msgs
        inbox = {i: {} for i in active}
        for dest, payload in (deliveries or {}).items():
            if dest in dest_owner:
                inbox[dest_owner[dest]][dest] = payload  # type: ignore[index]
    return results


def _carma_replay(shape: ProblemShape, P: int) -> Tuple[int, int, int, int]:
    """Replay CARMA's recursion over regions: (rounds, words, flops, splits).

    Identical control flow, message geometry and flop charges as
    :func:`repro.algorithms.carma.run_carma`, with rectangle coordinates in
    place of arrays; the merged-round driver mirrors ``run_schedule`` +
    ``merge_schedules`` so the critical-path accounting is the same.
    """
    n1, n2, n3 = shape.dims
    if not is_power_of_two(P):
        raise OracleUnsupportedError(f"carma requires a power-of-two P, got {P}")
    if n1 < P or n2 < P:
        raise OracleUnsupportedError(
            f"carma needs n1 >= P and n2 >= P for the slab distribution, "
            f"got {shape}, P={P}"
        )

    holdings_a: Dict[int, List[_Region]] = {}
    holdings_b: Dict[int, List[_Region]] = {}
    holdings_c: Dict[int, List[_Region]] = {}
    flops = [0] * P
    for r in range(P):
        base, extra = divmod(n1, P)
        lo = r * base + min(r, extra)
        holdings_a[r] = [(lo, lo + base + (1 if r < extra else 0), 0, n2)]
        base, extra = divmod(n2, P)
        lo = r * base + min(r, extra)
        holdings_b[r] = [(lo, lo + base + (1 if r < extra else 0), 0, n3)]
        holdings_c[r] = []
    splits: List[str] = []

    def recurse(
        group: Tuple[int, ...],
        i_rng: Tuple[int, int],
        k_rng: Tuple[int, int],
        j_rng: Tuple[int, int],
    ) -> _Replay:
        a_region: _Region = (i_rng[0], i_rng[1], k_rng[0], k_rng[1])
        b_region: _Region = (k_rng[0], k_rng[1], j_rng[0], j_rng[1])
        c_region: _Region = (i_rng[0], i_rng[1], j_rng[0], j_rng[1])

        if len(group) == 1:
            rank = group[0]
            d1 = i_rng[1] - i_rng[0]
            d2 = k_rng[1] - k_rng[0]
            d3 = j_rng[1] - j_rng[0]
            flops[rank] += d1 * d2 * d3
            holdings_c[rank].append(c_region)
            return
            yield  # pragma: no cover - marks this function as a generator

        d1 = i_rng[1] - i_rng[0]
        d2 = k_rng[1] - k_rng[0]
        d3 = j_rng[1] - j_rng[0]
        largest = max(d1, d2, d3)
        half = len(group) // 2
        G0, G1 = group[:half], group[half:]
        if largest % 2:
            raise OracleUnsupportedError(
                f"carma would halve an odd dimension of size {largest} at "
                f"subproblem {d1}x{d2}x{d3}"
            )

        if d1 == largest:  # split i; B is shared
            axis = "n1"
            mid = (i_rng[0] + i_rng[1]) // 2
            sub0 = ((i_rng[0], mid), k_rng, j_rng)
            sub1 = ((mid, i_rng[1]), k_rng, j_rng)
            a_reg0: _Region = (i_rng[0], mid, k_rng[0], k_rng[1])
            a_reg1: _Region = (mid, i_rng[1], k_rng[0], k_rng[1])
            msgs: List[_Msg] = []
            for g0, g1 in zip(G0, G1):
                pa01 = _clip_regions(holdings_a[g0], a_reg1)
                pb01 = _clip_regions(holdings_b[g0], b_region)
                pa10 = _clip_regions(holdings_a[g1], a_reg0)
                pb10 = _clip_regions(holdings_b[g1], b_region)
                msgs.append((g0, g1, (pa01, pb01), _pack_words(pa01) + _pack_words(pb01)))
                msgs.append((g1, g0, (pa10, pb10), _pack_words(pa10) + _pack_words(pb10)))
            deliveries = yield msgs
            for g0, g1 in zip(G0, G1):
                for rank, keep_a in ((g0, a_reg0), (g1, a_reg1)):
                    in_a, in_b = deliveries[rank]
                    holdings_a[rank] = _clip_regions(holdings_a[rank] + in_a, keep_a)
                    holdings_b[rank] = _clip_regions(holdings_b[rank] + in_b, b_region)
        elif d3 == largest:  # split j; A is shared
            axis = "n3"
            mid = (j_rng[0] + j_rng[1]) // 2
            sub0 = (i_rng, k_rng, (j_rng[0], mid))
            sub1 = (i_rng, k_rng, (mid, j_rng[1]))
            b_reg0 = (k_rng[0], k_rng[1], j_rng[0], mid)
            b_reg1 = (k_rng[0], k_rng[1], mid, j_rng[1])
            msgs = []
            for g0, g1 in zip(G0, G1):
                pa01 = _clip_regions(holdings_a[g0], a_region)
                pb01 = _clip_regions(holdings_b[g0], b_reg1)
                pa10 = _clip_regions(holdings_a[g1], a_region)
                pb10 = _clip_regions(holdings_b[g1], b_reg0)
                msgs.append((g0, g1, (pa01, pb01), _pack_words(pa01) + _pack_words(pb01)))
                msgs.append((g1, g0, (pa10, pb10), _pack_words(pa10) + _pack_words(pb10)))
            deliveries = yield msgs
            for rank, keep_b in [(g, b_reg0) for g in G0] + [(g, b_reg1) for g in G1]:
                in_a, in_b = deliveries[rank]
                holdings_b[rank] = _clip_regions(holdings_b[rank] + in_b, keep_b)
                holdings_a[rank] = _clip_regions(holdings_a[rank] + in_a, a_region)
        else:  # split the contraction; C contributions combine afterwards
            axis = "n2"
            mid = (k_rng[0] + k_rng[1]) // 2
            sub0 = (i_rng, (k_rng[0], mid), j_rng)
            sub1 = (i_rng, (mid, k_rng[1]), j_rng)
            a_reg0 = (i_rng[0], i_rng[1], k_rng[0], mid)
            a_reg1 = (i_rng[0], i_rng[1], mid, k_rng[1])
            b_reg0 = (k_rng[0], mid, j_rng[0], j_rng[1])
            b_reg1 = (mid, k_rng[1], j_rng[0], j_rng[1])
            msgs = []
            for g0, g1 in zip(G0, G1):
                pa01 = _clip_regions(holdings_a[g0], a_reg1)
                pb01 = _clip_regions(holdings_b[g0], b_reg1)
                pa10 = _clip_regions(holdings_a[g1], a_reg0)
                pb10 = _clip_regions(holdings_b[g1], b_reg0)
                msgs.append((g0, g1, (pa01, pb01), _pack_words(pa01) + _pack_words(pb01)))
                msgs.append((g1, g0, (pa10, pb10), _pack_words(pa10) + _pack_words(pb10)))
            deliveries = yield msgs
            for rank, keep_a, keep_b in (
                [(g, a_reg0, b_reg0) for g in G0] + [(g, a_reg1, b_reg1) for g in G1]
            ):
                in_a, in_b = deliveries[rank]
                holdings_a[rank] = _clip_regions(holdings_a[rank] + in_a, keep_a)
                holdings_b[rank] = _clip_regions(holdings_b[rank] + in_b, keep_b)

        splits.append(axis)
        yield from _merge_replays([recurse(G0, *sub0), recurse(G1, *sub1)])

        if axis == "n2":
            firsts: Dict[int, List[_Region]] = {}
            seconds: Dict[int, List[_Region]] = {}
            for rank in group:
                f: List[_Region] = []
                s: List[_Region] = []
                for piece in holdings_c[rank]:
                    if _clip_region(piece, c_region) is None:
                        continue
                    p0, p1 = _split_region_for_combine(piece)
                    f.append(p0)
                    if p1 is not None:
                        s.append(p1)
                firsts[rank], seconds[rank] = f, s
            msgs = []
            for g0, g1 in zip(G0, G1):
                msgs.append((g0, g1, seconds[g0], _pack_words(seconds[g0])))
                msgs.append((g1, g0, firsts[g1], _pack_words(firsts[g1])))
            deliveries = yield msgs
            for g0, g1 in zip(G0, G1):
                for rank, keep in ((g0, firsts[g0]), (g1, seconds[g1])):
                    incoming = deliveries[rank]
                    outer = [
                        p for p in holdings_c[rank]
                        if _clip_region(p, c_region) is None
                    ]
                    holdings_c[rank] = outer + list(keep)
                    flops[rank] += sum(
                        (r1 - r0) * (c1 - c0) for (r0, r1, c0, c1) in incoming
                    )

    # Drive the replay exactly like run_schedule + machine.exchange: a
    # non-empty yielded round charges one round and its largest message.
    rounds = 0
    words = 0
    sched = recurse(tuple(range(P)), (0, n1), (0, n2), (0, n3))
    inbox: Optional[Dict[int, object]] = None
    while True:
        try:
            msgs = sched.send(inbox)
        except StopIteration:
            break
        if msgs:
            for m in msgs:
                if m[3] == 0:
                    raise OracleUnsupportedError(
                        "carma replay produced an empty message; the "
                        "executable run would reject this configuration"
                    )
            rounds += 1
            words += max(m[3] for m in msgs)
            inbox = {m[1]: m[2] for m in msgs}
        else:
            inbox = {}
    return rounds, words, max(flops), len(splits)


def _predict_carma(shape: ProblemShape, P: int) -> OraclePrediction:
    rounds, words, flops, n_splits = _carma_replay(shape, P)
    return _finish(
        "carma", shape, P, rounds, words, flops, f"{n_splits} splits"
    )


# --------------------------------------------------------------------- #
# ABFT checksum-encoded variants                                        #
# --------------------------------------------------------------------- #


def _predict_alg1_abft(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    grid = alg1_abft_grid(shape, P)
    if grid is None:
        raise OracleUnsupportedError(
            f"alg1_abft: no ABFT-encodable grid for {shape}, P={P}"
        )
    p1, p2, p3 = grid.dims
    a_block = (n1 // p1) * (n2 // p2)
    b_block = (n2 // p2) * (n3 // p3)
    c_block = (n1 // p1) * (n3 // p3)
    rounds = 0
    words = 0
    flops = 0
    # Encode: one recursive-doubling All-Reduce per fiber longer than 1
    # (every round moves and combines one full shard per rank), then one
    # buddy-replication permutation round when some fiber has length 1.
    if p3 > 1:
        steps = collective_rounds(p3, "recursive_doubling")
        rounds += steps
        words += steps * (a_block // p3)
        flops += steps * (a_block // p3)
    if p1 > 1:
        steps = collective_rounds(p1, "recursive_doubling")
        rounds += steps
        words += steps * (b_block // p1)
        flops += steps * (b_block // p1)
    if p3 == 1 or p1 == 1:
        rounds += 1
        words += (a_block if p3 == 1 else 0) + (b_block if p1 == 1 else 0)
    # The four alg1 phases with auto collectives (fibers longer than 1 are
    # powers of two by construction, so auto dispatches logarithmically).
    if p3 > 1:
        words += (p3 - 1) * (a_block // p3)
        rounds += collective_rounds(p3, "auto")
    if p1 > 1:
        words += (p1 - 1) * (b_block // p1)
        rounds += collective_rounds(p1, "auto")
    flops += (n1 // p1) * (n2 // p2) * (n3 // p3)
    if p2 > 1:
        words += (p2 - 1) * (c_block // p2)
        rounds += collective_rounds(p2, "auto")
        flops += (p2 - 1) * (c_block // p2)
    return _finish(
        "alg1_abft", shape, P, rounds, words, flops, f"grid {grid}"
    )


def _predict_summa_abft(shape: ProblemShape, P: int) -> OraclePrediction:
    n1, n2, n3 = shape.dims
    grid = abft_summa_grid(shape, P)
    if grid is None:
        raise OracleUnsupportedError(
            f"summa_abft: no (pr+1) x pc grid for {shape}, P={P}"
        )
    pr, pc = grid
    qr = pr + 1
    # Encode: one permutation round replicating each stationary B block
    # down its grid column.
    rounds = 1
    words = (n2 // qr) * (n3 // pc)
    # SUMMA stages on the extended grid: the checksum row broadcasts and
    # accumulates exactly like a real row.
    panel = math.gcd(n2 // qr, n2 // pc)
    stages = n2 // panel
    # Same stage-loop regrouping as _predict_summa (exact for integer
    # sums): each row root jt occurs stages // pc times, each extended
    # column root it occurs stages // qr times.
    if pc > 1:
        for jt in range(pc):
            r, w = _scatter_allgather_broadcast(pc, (n1 // pr) * panel, (jt,))
            rounds += (stages // pc) * r
            words += (stages // pc) * w
    # qr = pr + 1 >= 2: the column broadcast always runs.
    for it in range(qr):
        r, w = _scatter_allgather_broadcast(qr, panel * (n3 // pc), (it,))
        rounds += (stages // qr) * r
        words += (stages // qr) * w
    flops = (n1 // pr) * n2 * (n3 // pc)
    return _finish(
        "summa_abft", shape, P, rounds, words, flops,
        f"grid {pr}x{pc} + checksum row",
    )


# --------------------------------------------------------------------- #
# dispatch                                                              #
# --------------------------------------------------------------------- #


def _finish(
    name: str,
    shape: ProblemShape,
    P: int,
    rounds: int,
    words: int,
    flops: int,
    config: str,
) -> OraclePrediction:
    cost = Cost(rounds=rounds, words=float(words), flops=float(flops))
    gauge = bound_attainment(shape, P, cost.words)
    return OraclePrediction(
        algorithm=name,
        shape=shape,
        P=P,
        cost=cost,
        config=config,
        bound=gauge.bound,
        attainment=gauge.ratio,
    )


#: Algorithms the oracle predicts (all registry entries).
ORACLE_ALGORITHMS: Tuple[str, ...] = tuple(REGISTRY)


def predict_cost(
    name: str,
    shape: ProblemShape,
    P: int,
    collective_algorithm: Optional[str] = None,
) -> OraclePrediction:
    """Closed-form prediction of ``run_algorithm(name, A, B, P)``'s cost.

    Exact by contract: wherever this returns, the prediction equals the
    simulated :class:`~repro.machine.cost.Cost` bit for bit on both
    backends (:func:`repro.analysis.verification.cross_check_oracle`
    enforces it).  ``collective_algorithm`` is honoured for ``alg1`` only,
    mirroring :func:`repro.algorithms.registry.run_algorithm`.

    Raises
    ------
    OracleUnsupportedError
        Unknown algorithm, infeasible ``(shape, P)``, or a configuration
        whose simulated cost depends on ragged pieces.
    """
    if P < 1:
        raise OracleUnsupportedError(f"P must be positive, got {P}")
    if name == "alg1":
        return _predict_alg1(shape, P, collective_algorithm)
    if name == "row_1d":
        return _predict_row_1d(shape, P)
    if name == "outer_1d":
        return _predict_outer_1d(shape, P)
    if name == "cannon":
        return _predict_cannon(shape, P)
    if name in ("fox", "fox_otto"):
        return _predict_fox(shape, P, name=name)
    if name == "summa":
        return _predict_summa(shape, P)
    if name == "c25d":
        return _predict_c25d(shape, P)
    if name == "carma":
        return _predict_carma(shape, P)
    if name == "alg1_abft":
        return _predict_alg1_abft(shape, P)
    if name == "summa_abft":
        return _predict_summa_abft(shape, P)
    raise OracleUnsupportedError(
        f"unknown algorithm {name!r}; oracle covers {sorted(ORACLE_ALGORITHMS)}"
    )


def oracle_supported(
    name: str,
    shape: ProblemShape,
    P: int,
    collective_algorithm: Optional[str] = None,
) -> bool:
    """True when :func:`predict_cost` accepts this configuration."""
    try:
        predict_cost(name, shape, P, collective_algorithm=collective_algorithm)
    except OracleUnsupportedError:
        return False
    return True
