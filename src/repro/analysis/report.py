"""One-shot reproduction report: every headline check in a single call.

:func:`reproduction_report` executes the library's core reproduction
claims — Figure 2 grids + tightness, the empirical Table 1 constants,
Corollary 4, and the Section 6.2 threshold identities — and returns a
structured summary plus a rendered text report.  The CLI exposes it as
``python -m repro report``; CI-style consumers can assert on
``report.all_passed``.

The heavy benchmark harnesses (`benchmarks/`) remain the full artifact
generators; this module is the quick end-to-end "is the reproduction
intact?" check (a few seconds).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..algorithms.alg1 import run_alg1
from ..algorithms.grid_selection import select_grid
from ..algorithms.registry import run_algorithm
from ..core.crossover import memory_threshold_3d
from ..core.lower_bounds import communication_lower_bound, square_lower_bound
from ..core.memory_dependent import strong_scaling_limit
from ..core.shapes import ProblemShape
from ..workloads.generators import random_pair
from ..workloads.suites import (
    FIGURE2_EXPECTED_GRIDS,
    FIGURE2_PROCESSOR_COUNTS,
    FIGURE2_SCALED,
    FIGURE2_SHAPE,
)
from .constants import measure_constant
from .tables import format_table

__all__ = ["CheckResult", "ReproductionReport", "reproduction_report"]


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Outcome of one reproduction check."""

    name: str
    passed: bool
    detail: str


@dataclasses.dataclass
class ReproductionReport:
    """All checks plus a rendered text report."""

    checks: List[CheckResult]
    text: str

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)


def _close(a: float, b: float, tol: float = 1e-9) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def reproduction_report() -> ReproductionReport:
    """Run the headline reproduction checks; see module docstring."""
    checks: List[CheckResult] = []

    # 1. Figure 2 grid selection on the full-size problem.
    for P in FIGURE2_PROCESSOR_COUNTS:
        got = select_grid(FIGURE2_SHAPE, P).grid.dims
        want = FIGURE2_EXPECTED_GRIDS[P]
        checks.append(CheckResult(
            name=f"figure2 grid P={P}",
            passed=got == want,
            detail=f"selected {got}, paper shows {want}",
        ))

    # 2. Scaled Figure 2 execution: tight in every regime, correct numerics.
    for P in FIGURE2_PROCESSOR_COUNTS:
        A, B = random_pair(FIGURE2_SCALED, seed=P)
        res = run_alg1(A, B, select_grid(FIGURE2_SCALED, P).grid)
        bound = communication_lower_bound(FIGURE2_SCALED, P)
        ok = bool(np.allclose(res.C, A @ B)) and _close(res.cost.words, bound)
        checks.append(CheckResult(
            name=f"figure2 tightness P={P}",
            passed=ok,
            detail=f"measured {res.cost.words:g} vs bound {bound:g}",
        ))

    # 3. Empirical Table 1 constants.
    for shape, P, expect in (
        (ProblemShape(96, 24, 6), 2, 1.0),
        (ProblemShape(96, 24, 6), 16, 2.0),
        (ProblemShape(48, 48, 48), 64, 3.0),
    ):
        mc = measure_constant(shape, P)
        checks.append(CheckResult(
            name=f"table1 constant case {int(expect)}",
            passed=_close(mc.constant, expect),
            detail=f"measured {mc.constant:.12g} (expect {expect:g})",
        ))

    # 3b. Bound-attainment gauges (repro.obs.attainment): Algorithm 1 on
    # the optimal grid reports measured/bound == 1.0 in every Theorem 3
    # regime, and a suboptimal baseline (SUMMA's 2D grid in the 3D regime)
    # sits strictly above 1.0.
    for shape, P, regime in (
        (ProblemShape(96, 24, 6), 2, "1D"),
        (ProblemShape(96, 24, 6), 16, "2D"),
        (ProblemShape(48, 48, 48), 64, "3D"),
    ):
        A, B = random_pair(shape, seed=P)
        att = run_alg1(A, B, select_grid(shape, P).grid).attainment
        checks.append(CheckResult(
            name=f"attainment gauge {regime} regime",
            passed=att.attains,
            detail=f"ratio {att.ratio:.9f} (expect 1.0)",
        ))
    A, B = random_pair(ProblemShape(48, 48, 48), seed=3)
    summa = run_algorithm("summa", A, B, 16)
    checks.append(CheckResult(
        name="attainment gauge suboptimal baseline",
        passed=summa.attainment is not None and summa.attainment.ratio > 1.0 + 1e-9,
        detail=f"summa ratio {summa.attainment.ratio:.4f} (expect > 1)",
    ))

    # 4. Corollary 4 equals Theorem 3 on squares.
    corollary, theorem = square_lower_bound(100, 8)
    checks.append(CheckResult(
        name="corollary 4",
        passed=_close(corollary, theorem),
        detail=f"{corollary:g} vs {theorem:g}",
    ))

    # 5. Section 6.2 threshold identity: P(M*(P)) == P.
    sq = ProblemShape(512, 512, 512)
    P = 4096
    round_trip = strong_scaling_limit(sq, memory_threshold_3d(sq, P))
    checks.append(CheckResult(
        name="section 6.2 threshold identity",
        passed=_close(round_trip, P, tol=1e-9),
        detail=f"P* (M*({P})) = {round_trip:g}",
    ))

    rows = [[c.name, "PASS" if c.passed else "FAIL", c.detail] for c in checks]
    text = format_table(
        ["check", "status", "detail"],
        rows,
        title="Reproduction report — Al Daas et al., SPAA 2022",
    )
    return ReproductionReport(checks=checks, text=text)
