"""Empirical extraction of the Table 1 constants from executed runs.

Theorem 3 says the minimum data accessed is

    ``D = c * (unit leading term) + extra``

with ``c = 1, 2, 3`` and case-specific remainder terms
``extra = (mn + mk)/P`` (case 1), ``mn/P`` (case 2), ``0`` (case 3).
Because Algorithm 1 attains the bound exactly, running it, measuring the
words it accesses (communicated + initially owned), subtracting the
remainder and dividing by the unit leading term recovers the constant —
the empirical bottom row of Table 1.  A suboptimal grid or algorithm
yields a strictly larger value, so the measurement is falsifiable, not a
tautology: it certifies that the *executed* algorithm's data access
matches the case formula's leading coefficient.

:func:`measure_constant` does this for one ``(shape, P)``;
:func:`constant_series` sweeps ``P`` across all three regimes, which is how
``benchmarks/bench_table1.py`` regenerates the table with measured numbers
next to the analytic ones.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..algorithms.alg1 import run_alg1
from ..algorithms.grid_selection import select_grid
from ..core.cases import Regime, classify
from ..core.prior_bounds import leading_terms
from ..core.shapes import ProblemShape

__all__ = ["MeasuredConstant", "case_remainder", "measure_constant", "constant_series"]


@dataclasses.dataclass(frozen=True)
class MeasuredConstant:
    """One empirical constant measurement.

    ``constant`` = (measured accessed words - case remainder) divided by
    the regime's unit leading term; equals 1, 2 or 3 exactly for a tight
    run (even shards on the Section 5.2 grid) and exceeds it otherwise.
    """

    shape: ProblemShape
    P: int
    regime: Regime
    grid: tuple
    measured_words: float
    accessed_words: float
    leading_term: float
    remainder: float
    constant: float


def case_remainder(shape: ProblemShape, P: int) -> float:
    """The non-leading positive part of ``D`` in the current regime.

    ``(mn + mk)/P`` in case 1, ``mn/P`` in case 2, ``0`` in case 3.
    """
    m, n, k = shape.sorted_dims
    regime = classify(shape, P)
    if regime is Regime.ONE_D:
        return (m * n + m * k) / P
    if regime is Regime.TWO_D:
        return m * n / P
    return 0.0


def measure_constant(
    shape: ProblemShape,
    P: int,
    rng: Optional[np.random.Generator] = None,
) -> MeasuredConstant:
    """Run Algorithm 1 (optimal grid) and extract the empirical constant."""
    if rng is None:
        rng = np.random.default_rng(0)
    choice = select_grid(shape, P)
    A = rng.random((shape.n1, shape.n2))
    B = rng.random((shape.n2, shape.n3))
    res = run_alg1(A, B, choice.grid)
    regime = classify(shape, P)
    unit = leading_terms(shape, P)[regime.value - 1]
    accessed = res.cost.words + shape.total_data / P
    remainder = case_remainder(shape, P)
    return MeasuredConstant(
        shape=shape,
        P=P,
        regime=regime,
        grid=choice.grid.dims,
        measured_words=res.cost.words,
        accessed_words=accessed,
        leading_term=unit,
        remainder=remainder,
        constant=(accessed - remainder) / unit,
    )


def constant_series(
    shape: ProblemShape,
    processor_counts: Sequence[int],
    rng: Optional[np.random.Generator] = None,
) -> List[MeasuredConstant]:
    """Empirical constants across a sweep of processor counts."""
    if rng is None:
        rng = np.random.default_rng(0)
    return [measure_constant(shape, P, rng) for P in processor_counts]
