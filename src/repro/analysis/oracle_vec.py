"""Array-oriented oracle kernels: whole sweep grids per broadcasted call.

The scalar oracle (:mod:`repro.analysis.oracle`) predicts one
``(algorithm, shape, P)`` configuration per call and *refuses* ragged
configurations with a typed :class:`~repro.exceptions.OracleUnsupportedError`.
That contract is perfect for spot checks and terrible for throughput:
planner queries and sweep grids want millions of points, and a Python
call per point — with a fresh grid search, broadcast replay and bound
evaluation each time — is the bottleneck the ROADMAP's "millions of
users" surface cannot afford.

:func:`predict_batch` evaluates one algorithm over a whole batch of
``(n1, n2, n3, P)`` rows at once and returns a :class:`BatchPrediction`:

* a **validity mask** replaces the per-call exception — ``valid[i]`` is
  ``True`` exactly when ``predict_cost`` would return for row ``i`` and
  ``False`` exactly when it would raise ``OracleUnsupportedError``;
* integer cost counters (``rounds``, ``words``, ``flops``) computed from
  the same closed forms — regrouped freely because Python/ int64 integer
  sums are associative, so the totals are *identical*, not approximate;
* the float analysis (Theorem 3 bound, attainment ratio, bound-check
  gap) evaluated as numpy ``float64`` expressions that replicate the
  scalar op order exactly (see DESIGN.md, "Vectorization soundness").

Equality with the scalar oracle is enforced at **zero tolerance** by the
differential harness (``tests/analysis/test_oracle_vec.py``): costs,
configs, bounds, attainments and the refusal mask must match bit for bit
over a randomized grid spanning all three Theorem 3 cases and every
registry algorithm.

Kernel structure per algorithm
------------------------------
``row_1d`` / ``outer_1d`` / ``cannon``
    Pure broadcasted numpy: closed forms with no grid search at all.
``fox`` / ``fox_otto`` / ``summa`` / ``summa_abft``
    The scatter-allgather broadcast is evaluated through an exact
    interval model of the binomial scatter (:func:`_sab_structure`):
    holdings stay contiguous index ranges, so each round's critical
    message is ``base * len + overlap(shifted range, extra window)`` — an
    O(1) expression per moved interval, vectorized over every root
    rotation at once instead of replayed per stage.
``alg1`` / ``alg1_abft`` / ``c25d``
    The grid picker runs once per *unique* ``(shape, P)`` (cached), then
    expression (3) and the encode/broadcast arithmetic broadcast over
    the whole batch.
``carma``
    The recursion is data-dependent geometry, not a closed form; its
    exact replay runs once per unique ``(shape, P)`` and is memoized.
    Refusals (non-power-of-two ``P``, slabs thinner than ``P``) are
    detected without replaying.

Rows whose magnitudes could make ``float64``/``int64`` arithmetic
diverge from Python's exact integers (see :func:`_shape_in_safe_range`)
fall back to the scalar oracle per row — exactness is never traded for
speed.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.abft import abft_summa_grid, alg1_abft_grid
from ..algorithms.grid_selection import select_grid
from ..algorithms.registry import c25d_grid, summa_grid
from ..core.shapes import ProblemShape
from ..exceptions import GridError, OracleUnsupportedError, ShapeError
from ..machine.cost import Cost
from .oracle import ORACLE_ALGORITHMS, OraclePrediction, _carma_replay, predict_cost

__all__ = ["BatchPrediction", "predict_batch"]

#: Integers below this are exactly representable in float64, so numpy
#: float arithmetic on them reproduces Python's correctly rounded
#: int-division and sqrt bit for bit.
_EXACT_FLOAT = 2 ** 53
#: Headroom bound for int64 products (2**62 < 2**63 - 1).
_INT64_SAFE = 2 ** 62

_KNOWN_COLLECTIVES = (
    None, "auto", "ring", "recursive_doubling", "recursive_halving", "bruck"
)


# --------------------------------------------------------------------- #
# result container                                                      #
# --------------------------------------------------------------------- #


@dataclasses.dataclass
class BatchPrediction:
    """Vectorized oracle output for one algorithm over N configuration rows.

    ``valid`` is the refusal mask: ``False`` entries are exactly the rows
    where the scalar oracle raises ``OracleUnsupportedError``; their
    cost/bound entries are zero/NaN filler and ``configs`` entry ``None``.
    """

    algorithm: str
    dims: np.ndarray          #: (N, 3) int64 — raw (n1, n2, n3) per row
    P: np.ndarray             #: (N,) int64
    valid: np.ndarray         #: (N,) bool — True where the oracle predicts
    rounds: np.ndarray        #: (N,) int64
    words: np.ndarray         #: (N,) float64 — == float(int words) exactly
    flops: np.ndarray         #: (N,) float64
    bound: np.ndarray         #: (N,) float64 — Theorem 3 communicated bound
    attainment: np.ndarray    #: (N,) float64 — words / bound (corner-cased)
    gap_ratio: np.ndarray     #: (N,) float64 — sweep's bound-check ratio
    satisfied: np.ndarray     #: (N,) bool — words respect the bound
    configs: List[Optional[str]]  #: per-row config string (None if invalid)

    def __len__(self) -> int:
        return len(self.valid)

    def prediction(self, i: int) -> OraclePrediction:
        """Reconstruct the scalar :class:`OraclePrediction` for row ``i``.

        Equal (bit for bit, every field) to ``predict_cost`` on the same
        row; raises :class:`OracleUnsupportedError` where the scalar
        oracle would.
        """
        if not self.valid[i]:
            raise OracleUnsupportedError(
                f"{self.algorithm}: row {i} "
                f"({tuple(int(d) for d in self.dims[i])}, P={int(self.P[i])}) "
                f"is outside the oracle's supported domain"
            )
        return OraclePrediction(
            algorithm=self.algorithm,
            shape=ProblemShape(*(int(d) for d in self.dims[i])),
            P=int(self.P[i]),
            cost=Cost(
                rounds=int(self.rounds[i]),
                words=float(self.words[i]),
                flops=float(self.flops[i]),
            ),
            config=self.configs[i],
            bound=float(self.bound[i]),
            attainment=float(self.attainment[i]),
        )


# --------------------------------------------------------------------- #
# exact-range guard                                                     #
# --------------------------------------------------------------------- #


@functools.lru_cache(maxsize=65536)
def _shape_in_safe_range(n1: int, n2: int, n3: int, P: int) -> bool:
    """Can this row run through the int64/float64 kernels exactly?

    Checked with Python's unbounded integers.  The conditions guarantee
    (a) every float the scalar path materializes (``n*k``, ``m*n*k*k``,
    ``total_data`` …) is below 2**53, so its float64 image is exact and
    numpy's correctly rounded divide/sqrt reproduce Python bit for bit,
    and (b) every int64 intermediate (classify comparisons, word/flop
    counters bounded by ``volume * O(log P)``) stays far from overflow.
    """
    vol = n1 * n2 * n3
    k = min(n1, n2, n3)
    n_mid = sorted((n1, n2, n3))[1]
    return (
        vol * k < _EXACT_FLOAT
        and n1 * n2 + n2 * n3 + n1 * n3 < _EXACT_FLOAT
        and P * k * k < _INT64_SAFE
        and P * n_mid < _INT64_SAFE
        and P < 2 ** 31
    )


# --------------------------------------------------------------------- #
# vectorized integer helpers                                            #
# --------------------------------------------------------------------- #


def _bit_length(a: np.ndarray) -> np.ndarray:
    """Elementwise ``int.bit_length`` for 0 <= a < 2**53 (frexp is exact)."""
    _, exponent = np.frexp(a.astype(np.float64))
    return exponent.astype(np.int64)


def _is_pow2(p: np.ndarray) -> np.ndarray:
    return (p > 0) & ((p & (p - 1)) == 0)


def _collective_rounds_vec(
    p: np.ndarray, algorithm: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.analysis.oracle.collective_rounds`.

    Returns ``(rounds, ok)``; ``ok`` is False where the scalar function
    raises (recursive doubling/halving on non-power-of-two groups, or an
    unknown collective name on a group longer than 1).
    """
    gt1 = p > 1
    ok = np.ones(p.shape, dtype=bool)
    rounds = np.zeros(p.shape, dtype=np.int64)
    if algorithm == "auto":
        rounds = np.where(
            gt1, np.where(_is_pow2(p), _bit_length(p) - 1, p - 1), 0
        )
    elif algorithm == "ring":
        rounds = np.where(gt1, p - 1, 0)
    elif algorithm in ("recursive_doubling", "recursive_halving"):
        ok = ~gt1 | _is_pow2(p)
        rounds = np.where(gt1 & ok, _bit_length(p) - 1, 0)
    elif algorithm == "bruck":
        rounds = np.where(gt1, _bit_length(np.maximum(p, 1) - 1), 0)
    else:
        ok = ~gt1  # scalar raises only when the collective actually runs
    return rounds, ok


def _isqrt_vec(P: np.ndarray) -> np.ndarray:
    """Exact elementwise integer sqrt for P < 2**53."""
    q = np.floor(np.sqrt(P.astype(np.float64))).astype(np.int64)
    q = np.where((q + 1) * (q + 1) <= P, q + 1, q)  # sqrt rounded low
    q = np.where(q * q > P, q - 1, q)               # sqrt rounded high
    return np.maximum(q, 0)


# --------------------------------------------------------------------- #
# scatter-allgather broadcast: exact interval model                     #
# --------------------------------------------------------------------- #


@functools.lru_cache(maxsize=4096)
def _sab_structure(p: int) -> Tuple[int, Tuple[Tuple[Tuple[int, int], ...], ...]]:
    """Round structure of the binomial scatter over ``p`` contiguous pieces.

    The scalar replay's ``holding`` map always holds *contiguous* index
    ranges: it starts as ``{0: range(p)}`` and each round splits
    ``[i, i+len)`` into a kept prefix ``[i, i+dist)`` and a moved suffix
    ``[i+dist, i+len)``.  This function replays only that interval
    geometry — returning, per non-empty round, the moved suffixes as
    ``(start, length)`` pairs — so critical-word maxima become O(1)
    overlap formulas instead of per-piece sums.
    """
    from ..collectives.schedules import ceil_log2

    blocks = [(0, p)]
    dist = 1 << max(ceil_log2(p) - 1, 0) if p > 1 else 0
    rounds = []
    while dist >= 1:
        moves = []
        next_blocks = []
        for start, end in blocks:
            if end > start + dist:
                moves.append((start + dist, end - start - dist))
                next_blocks.append((start, start + dist))
                next_blocks.append((start + dist, end))
            else:
                next_blocks.append((start, end))
        if moves:
            rounds.append(tuple(moves))
        blocks = next_blocks
        dist //= 2
    return len(rounds), tuple(rounds)


def _overlap(s: np.ndarray, length: int, extra: int, p: int) -> np.ndarray:
    """``#{j in [s, s+length) : j mod p < extra}`` for 0 <= s < p, length <= p."""
    hi = s + length
    f_hi = np.where(hi <= p, np.minimum(hi, extra), extra + np.minimum(hi - p, extra))
    f_lo = np.minimum(s, extra)
    return f_hi - f_lo


@functools.lru_cache(maxsize=16384)
def _sab_all_roots(p: int, w: int) -> Tuple[int, int]:
    """``(rounds, sum over roots rho in range(p) of critical words)``.

    Equals ``sum(_scatter_allgather_broadcast(p, w, (rho,))[1] for rho in
    range(p))`` with the shared per-root round count — the exact
    ingredients of SUMMA's regrouped stage loop.  Piece ``j`` under root
    ``rho`` has ``base + (1 if (j + rho) % p < extra else 0)`` words, so
    a moved suffix of ``length`` starting at ``start`` sends
    ``base * length + overlap`` words; the per-round critical message
    maximizes that over the moved suffixes, vectorized over all roots.
    """
    base, extra = divmod(w, p)
    if base == 0:
        raise OracleUnsupportedError(
            f"scatter_allgather broadcast of {w} words over {p} ranks has "
            f"empty pieces; the executable schedule cannot send them"
        )
    scatter_rounds, structure = _sab_structure(p)
    rho = np.arange(p, dtype=np.int64)
    total = np.zeros(p, dtype=np.int64)
    for intervals in structure:
        crit = np.zeros(p, dtype=np.int64)
        for start, length in intervals:
            shifted = (start + rho) % p
            sent = base * length + _overlap(shifted, length, extra, p)
            np.maximum(crit, sent, out=crit)
        total += crit
    per_root = total + (p - 1) * (base + (1 if extra else 0))
    return scatter_rounds + (p - 1), int(per_root.sum())


@functools.lru_cache(maxsize=16384)
def _sab_merged_roots(p: int, w: int) -> Tuple[int, int]:
    """``_scatter_allgather_broadcast(p, w, range(p))`` in closed form.

    With every rotation present, a moved suffix of ``length`` can always
    be aligned to cover ``min(length, extra)`` of the +1-sized pieces
    (and no rotation covers more), so the per-round critical message is
    ``max over suffixes of base * length + min(length, extra)``.
    """
    base, extra = divmod(w, p)
    if base == 0:
        raise OracleUnsupportedError(
            f"scatter_allgather broadcast of {w} words over {p} ranks has "
            f"empty pieces; the executable schedule cannot send them"
        )
    scatter_rounds, structure = _sab_structure(p)
    words = 0
    for intervals in structure:
        words += max(
            base * length + min(length, extra) for _, length in intervals
        )
    words += (p - 1) * (base + (1 if extra else 0))
    return scatter_rounds + (p - 1), words


# --------------------------------------------------------------------- #
# cached per-unique grid pickers                                        #
# --------------------------------------------------------------------- #


@functools.lru_cache(maxsize=65536)
def _select_grid_cached(dims: Tuple[int, int, int], P: int):
    try:
        return select_grid(ProblemShape(*dims), P).grid.dims
    except GridError:
        return None


@functools.lru_cache(maxsize=65536)
def _summa_grid_cached(dims: Tuple[int, int, int], P: int):
    return summa_grid(ProblemShape(*dims), P)


@functools.lru_cache(maxsize=65536)
def _c25d_grid_cached(dims: Tuple[int, int, int], P: int):
    return c25d_grid(ProblemShape(*dims), P)


@functools.lru_cache(maxsize=65536)
def _alg1_abft_grid_cached(dims: Tuple[int, int, int], P: int):
    grid = alg1_abft_grid(ProblemShape(*dims), P)
    return None if grid is None else grid.dims


@functools.lru_cache(maxsize=65536)
def _abft_summa_grid_cached(dims: Tuple[int, int, int], P: int):
    return abft_summa_grid(ProblemShape(*dims), P)


@functools.lru_cache(maxsize=65536)
def _carma_cached(dims: Tuple[int, int, int], P: int):
    """CARMA's exact geometric replay, or ``None`` where it refuses."""
    try:
        rounds, words, flops, n_splits = _carma_replay(ProblemShape(*dims), P)
    except OracleUnsupportedError:
        return None
    return rounds, words, flops, f"{n_splits} splits"


def _unique_rows(dims: np.ndarray, P: np.ndarray, mask: np.ndarray):
    """Iterate ``(row_indices, (n1, n2, n3), P)`` per unique masked row."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return
    rows = np.column_stack([dims[idx], P[idx]])
    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
    for u in range(len(uniq)):
        n1, n2, n3, p = (int(v) for v in uniq[u])
        yield idx[inverse == u], (n1, n2, n3), p


# --------------------------------------------------------------------- #
# per-algorithm kernels                                                 #
# --------------------------------------------------------------------- #
#
# Each kernel fills (ok, rounds, words, flops, configs) in place for the
# rows selected by `active`; P is guaranteed >= 1 on those rows.


def _kernel_row_1d(state, coll):
    n1, n2, n3, P = state.cols()
    ok = (P <= n1) & ((n2 * n3) % P == 0)
    state.ok &= ok
    state.rounds[:], _ = _collective_rounds_vec(P, "auto")
    state.words[:] = (P - 1) * ((n2 * n3) // P)
    state.flops[:] = -(-n1 // P) * n2 * n3
    state.config_per_row(lambda i, row: f"P={row[3]}")


def _kernel_outer_1d(state, coll):
    n1, n2, n3, P = state.cols()
    ok = (P <= n2) & ((n1 * n3) % P == 0)
    state.ok &= ok
    shard = (n1 * n3) // P
    state.rounds[:], _ = _collective_rounds_vec(P, "auto")
    state.words[:] = (P - 1) * shard
    state.flops[:] = np.where(
        P > 1, n1 * (-(-n2 // P)) * n3 + (P - 1) * shard, n1 * n2 * n3
    )
    state.config_per_row(lambda i, row: f"P={row[3]}")


def _square_grid_ok(n1, n2, n3, P):
    q = _isqrt_vec(P)
    square = q * q == P
    qs = np.maximum(q, 1)
    ok = square & (q <= np.minimum(np.minimum(n1, n2), n3))
    ok &= (n1 % qs == 0) & (n2 % qs == 0) & (n3 % qs == 0)
    return q, ok


def _kernel_cannon(state, coll):
    n1, n2, n3, P = state.cols()
    q, ok = _square_grid_ok(n1, n2, n3, P)
    state.ok &= ok
    qs = np.maximum(q, 1)
    a_block = (n1 // qs) * (n2 // qs)
    b_block = (n2 // qs) * (n3 // qs)
    multi = q > 1
    state.rounds[:] = np.where(multi, 2 * q, 0)
    state.words[:] = np.where(multi, q * (a_block + b_block), 0)
    state.flops[:] = np.where(
        multi, q * (n1 // qs) * (n2 // qs) * (n3 // qs), n1 * n2 * n3
    )
    state.config_per_row(lambda i, row: f"grid {q[i]}x{q[i]}")


def _kernel_fox(state, coll):
    n1, n2, n3, P = state.cols()
    q, ok = _square_grid_ok(n1, n2, n3, P)
    state.ok &= ok
    qs = np.maximum(q, 1)
    a_block = (n1 // qs) * (n2 // qs)
    b_block = (n2 // qs) * (n3 // qs)
    multi = ok & (q > 1)
    state.ok &= ~multi | (a_block >= qs)  # empty broadcast pieces refuse
    state.flops[:] = np.where(q > 1, q * a_block * (n3 // qs), n1 * n2 * n3)
    state.rounds[:] = 0
    state.words[:] = 0
    for idx in np.flatnonzero(state.ok & multi):
        br, bw = _sab_merged_roots(int(q[idx]), int(a_block[idx]))
        state.rounds[idx] = q[idx] * br + (q[idx] - 1)
        state.words[idx] = q[idx] * bw + (q[idx] - 1) * b_block[idx]
    state.config_per_row(lambda i, row: f"grid {q[i]}x{q[i]}")


def _summa_direction(p: int, w: int, stages: int) -> Optional[Tuple[int, int]]:
    """(rounds, words) one SUMMA broadcast direction contributes, or None.

    The stage loop visits each of the ``p`` root positions exactly
    ``stages // p`` times; integer sums regroup exactly.
    """
    if w < p:
        return None  # empty pieces: the scalar replay refuses
    rounds_single, words_all_roots = _sab_all_roots(p, w)
    return stages * rounds_single, (stages // p) * words_all_roots


def _kernel_summa(state, coll):
    n1c, n2c, n3c, Pc = state.cols()
    state.flops[:] = 0
    for rows, (n1, n2, n3), P in state.unique_rows():
        grid = _summa_grid_cached((n1, n2, n3), P)
        if grid is None:
            state.ok[rows] = False
            continue
        pr, pc = grid
        panel = math.gcd(n2 // pr, n2 // pc)
        stages = n2 // panel
        rounds = words = 0
        refused = False
        for p, w in (
            (pc, (n1 // pr) * panel),
            (pr, panel * (n3 // pc)),
        ):
            if p <= 1:
                continue
            part = _summa_direction(p, w, stages)
            if part is None:
                refused = True
                break
            rounds += part[0]
            words += part[1]
        if refused:
            state.ok[rows] = False
            continue
        state.rounds[rows] = rounds
        state.words[rows] = words
        state.flops[rows] = (n1 // pr) * n2 * (n3 // pc)
        state.set_config(rows, f"grid {pr}x{pc}")


def _kernel_summa_abft(state, coll):
    for rows, (n1, n2, n3), P in state.unique_rows():
        grid = _abft_summa_grid_cached((n1, n2, n3), P)
        if grid is None:
            state.ok[rows] = False
            continue
        pr, pc = grid
        qr = pr + 1
        panel = math.gcd(n2 // qr, n2 // pc)
        stages = n2 // panel
        rounds = 1  # encode: replicate stationary B down each column
        words = (n2 // qr) * (n3 // pc)
        refused = False
        directions = []
        if pc > 1:
            directions.append((pc, (n1 // pr) * panel))
        directions.append((qr, panel * (n3 // pc)))  # qr >= 2: always runs
        for p, w in directions:
            part = _summa_direction(p, w, stages)
            if part is None:
                refused = True
                break
            rounds += part[0]
            words += part[1]
        if refused:
            state.ok[rows] = False
            continue
        state.rounds[rows] = rounds
        state.words[rows] = words
        state.flops[rows] = (n1 // pr) * n2 * (n3 // pc)
        state.set_config(rows, f"grid {pr}x{pc} + checksum row")


def _kernel_alg1(state, coll):
    n1, n2, n3, P = state.cols()
    p1 = np.ones_like(P)
    p2 = np.ones_like(P)
    p3 = np.ones_like(P)
    for rows, dims, Pu in state.unique_rows():
        grid = _select_grid_cached(dims, Pu)
        if grid is None:
            state.ok[rows] = False
        else:
            p1[rows], p2[rows], p3[rows] = grid
    state.ok &= (p1 <= n1) & (p2 <= n2) & (p3 <= n3)
    # shards_divide_evenly: the grid divides the dims and every block
    # divides by the fiber it is sharded across.
    state.ok &= (n1 % p1 == 0) & (n2 % p2 == 0) & (n3 % p3 == 0)
    a_block = (n1 // p1) * (n2 // p2)
    b_block = (n2 // p2) * (n3 // p3)
    c_block = (n1 // p1) * (n3 // p3)
    state.ok &= (a_block % p3 == 0) & (b_block % p1 == 0) & (c_block % p2 == 0)

    ag = "auto" if coll is None else coll
    rs = {"recursive_doubling": "recursive_halving", "bruck": "auto"}.get(ag, ag)
    if ag not in _KNOWN_COLLECTIVES[1:]:
        # Unknown collectives only raise when a collective actually runs.
        state.ok &= (p1 == 1) & (p2 == 1) & (p3 == 1)
        r3 = r1 = r2 = np.zeros_like(P)
    else:
        r3, ok3 = _collective_rounds_vec(p3, ag)
        r1, ok1 = _collective_rounds_vec(p1, ag)
        r2, ok2 = _collective_rounds_vec(p2, rs)
        state.ok &= ok3 & ok1 & ok2
    gather_a = p3 > 1
    gather_b = p1 > 1
    reduce_c = p2 > 1
    state.words[:] = (
        np.where(gather_a, (p3 - 1) * (a_block // p3), 0)
        + np.where(gather_b, (p1 - 1) * (b_block // p1), 0)
        + np.where(reduce_c, (p2 - 1) * (c_block // p2), 0)
    )
    state.rounds[:] = (
        np.where(gather_a, r3, 0)
        + np.where(gather_b, r1, 0)
        + np.where(reduce_c, r2, 0)
    )
    state.flops[:] = (n1 // p1) * (n2 // p2) * (n3 // p3) + np.where(
        reduce_c, (p2 - 1) * (c_block // p2), 0
    )
    suffix = "" if ag == "auto" else f", collectives {ag}"
    state.config_per_row(
        lambda i, row: f"grid {p1[i]}x{p2[i]}x{p3[i]}{suffix}"
    )


def _kernel_alg1_abft(state, coll):
    n1, n2, n3, P = state.cols()
    p1 = np.ones_like(P)
    p2 = np.ones_like(P)
    p3 = np.ones_like(P)
    for rows, dims, Pu in state.unique_rows():
        grid = _alg1_abft_grid_cached(dims, Pu)
        if grid is None:
            state.ok[rows] = False
        else:
            p1[rows], p2[rows], p3[rows] = grid
    # Invalid rows keep the all-ones grid, so block arithmetic below is
    # well defined everywhere and masked out at the end.
    a_block = (n1 // p1) * (n2 // p2)
    b_block = (n2 // p2) * (n3 // p3)
    c_block = (n1 // p1) * (n3 // p3)
    enc3 = p3 > 1
    enc1 = p1 > 1
    # Encode: recursive-doubling All-Reduce per fiber longer than 1 (the
    # grid picker guarantees power-of-two fibers, so ok3/ok1 are vacuous
    # but kept for parity with the scalar refusal path), then one buddy
    # replication round when some fiber has length 1.
    s3, ok3 = _collective_rounds_vec(p3, "recursive_doubling")
    s1, ok1 = _collective_rounds_vec(p1, "recursive_doubling")
    state.ok &= ok3 & ok1
    buddy = (p3 == 1) | (p1 == 1)
    a_shard = a_block // p3
    b_shard = b_block // p1
    rounds = (
        np.where(enc3, s3, 0) + np.where(enc1, s1, 0) + np.where(buddy, 1, 0)
    )
    words = (
        np.where(enc3, s3 * a_shard, 0)
        + np.where(enc1, s1 * b_shard, 0)
        + np.where(p3 == 1, a_block, 0)
        + np.where(p1 == 1, b_block, 0)
    )
    flops = np.where(enc3, s3 * a_shard, 0) + np.where(enc1, s1 * b_shard, 0)
    # The four alg1 phases with auto collectives.
    r3, _ = _collective_rounds_vec(p3, "auto")
    r1, _ = _collective_rounds_vec(p1, "auto")
    r2, _ = _collective_rounds_vec(p2, "auto")
    reduce_c = p2 > 1
    c_shard = c_block // p2
    words = words + (
        np.where(enc3, (p3 - 1) * a_shard, 0)
        + np.where(enc1, (p1 - 1) * b_shard, 0)
        + np.where(reduce_c, (p2 - 1) * c_shard, 0)
    )
    rounds = rounds + (
        np.where(enc3, r3, 0)
        + np.where(enc1, r1, 0)
        + np.where(reduce_c, r2, 0)
    )
    flops = flops + (
        (n1 // p1) * (n2 // p2) * (n3 // p3)
        + np.where(reduce_c, (p2 - 1) * c_shard, 0)
    )
    state.rounds[:] = rounds
    state.words[:] = words
    state.flops[:] = flops
    state.config_per_row(lambda i, row: f"grid {p1[i]}x{p2[i]}x{p3[i]}")


def _kernel_c25d(state, coll):
    n1, n2, n3, P = state.cols()
    q = np.ones_like(P)
    c = np.ones_like(P)
    for rows, dims, Pu in state.unique_rows():
        best = _c25d_grid_cached(dims, Pu)
        if best is None:
            state.ok[rows] = False
        else:
            q[rows], c[rows] = best
    state.ok &= (n1 % q == 0) & (n2 % q == 0) & (n3 % q == 0)
    a_block = (n1 // q) * (n2 // q)
    b_block = (n2 // q) * (n3 // q)
    d_block = (n1 // q) * (n3 // q)
    stride = q // c
    depth = _bit_length(np.maximum(c, 1) - 1)  # ceil_log2(c)
    rounds = np.zeros_like(P)
    words = np.zeros_like(P)
    skew = q > 1
    rounds = rounds + np.where(skew, 2, 0)
    words = words + np.where(skew, a_block + b_block, 0)
    deep = c > 1
    rounds = rounds + np.where(deep, 2 * depth, 0)
    words = words + np.where(deep, depth * (a_block + b_block), 0)
    shifting = stride > 1
    rounds = rounds + np.where(shifting, 2 * (stride - 1), 0)
    words = words + np.where(shifting, (stride - 1) * (a_block + b_block), 0)
    flops = stride * (n1 // q) * (n2 // q) * (n3 // q)
    rounds = rounds + np.where(deep, depth, 0)
    words = words + np.where(deep, depth * d_block, 0)
    flops = flops + np.where(deep, depth * d_block, 0)
    state.rounds[:] = rounds
    state.words[:] = words
    state.flops[:] = flops
    state.config_per_row(lambda i, row: f"grid {q[i]}x{q[i]}x{c[i]}")


def _kernel_carma(state, coll):
    for rows, dims, P in state.unique_rows():
        result = _carma_cached(dims, P)
        if result is None:
            state.ok[rows] = False
            continue
        rounds, words, flops, config = result
        state.rounds[rows] = rounds
        state.words[rows] = words
        state.flops[rows] = flops
        state.set_config(rows, config)


_KERNELS = {
    "alg1": _kernel_alg1,
    "row_1d": _kernel_row_1d,
    "outer_1d": _kernel_outer_1d,
    "cannon": _kernel_cannon,
    "fox": _kernel_fox,
    "fox_otto": _kernel_fox,
    "summa": _kernel_summa,
    "c25d": _kernel_c25d,
    "carma": _kernel_carma,
    "alg1_abft": _kernel_alg1_abft,
    "summa_abft": _kernel_summa_abft,
}


# --------------------------------------------------------------------- #
# kernel state + float finish                                           #
# --------------------------------------------------------------------- #


class _KernelState:
    """Mutable working arrays one kernel fills for the fast-path rows."""

    def __init__(self, dims: np.ndarray, P: np.ndarray):
        n = len(P)
        self.dims = dims
        self.P = P
        self.ok = np.ones(n, dtype=bool)
        self.rounds = np.zeros(n, dtype=np.int64)
        self.words = np.zeros(n, dtype=np.int64)
        self.flops = np.zeros(n, dtype=np.int64)
        self.configs: List[Optional[str]] = [None] * n

    def cols(self):
        return (
            self.dims[:, 0], self.dims[:, 1], self.dims[:, 2], self.P
        )

    def unique_rows(self):
        return _unique_rows(self.dims, self.P, self.ok)

    def set_config(self, rows, config: str) -> None:
        for i in rows:
            self.configs[i] = config

    def config_per_row(self, fn) -> None:
        for i in np.flatnonzero(self.ok):
            row = (
                int(self.dims[i, 0]), int(self.dims[i, 1]),
                int(self.dims[i, 2]), int(self.P[i]),
            )
            self.configs[i] = fn(i, row)


def _float_finish(
    dims: np.ndarray, P: np.ndarray, words: np.ndarray, mask: np.ndarray
):
    """Theorem 3 bound, attainment, gap and satisfied flags, vectorized.

    Replicates the scalar op order exactly: sorted float dims, the
    case-wise Lemma 2 value summed left to right, ``D - total_data / P``,
    and the guarded ratios.  Valid only on rows passing the safe-range
    guard (all inputs exactly representable; classify comparisons free of
    int64 overflow).
    """
    n = len(P)
    bound = np.full(n, np.nan)
    attainment = np.full(n, np.nan)
    gap = np.full(n, np.nan)
    satisfied = np.zeros(n, dtype=bool)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return bound, attainment, gap, satisfied
    d = np.sort(dims[idx], axis=1)
    k, nn, m = d[:, 0], d[:, 1], d[:, 2]
    p = P[idx]
    case1 = p * nn <= m
    case2 = ~case1 & (p * k * k <= m * nn)
    mf = m.astype(np.float64)
    nf = nn.astype(np.float64)
    kf = k.astype(np.float64)
    pf = p.astype(np.float64)
    # Case 1: sum((float(n*k), m*k/P, m*n/P)) — left-to-right addition.
    v1 = (nf * kf + (mf * kf) / pf) + (mf * nf) / pf
    # Case 2: s = sqrt(m*n*k*k / P); sum((s, s, m*n/P)).
    with np.errstate(invalid="ignore"):
        s = np.sqrt(((mf * nf) * kf * kf) / pf)
    v2 = (s + s) + (mf * nf) / pf
    # Case 3: c = (m*n*k/P) ** (2/3); sum((c, c, c)).  numpy's vectorized
    # power is not correctly rounded (1-ulp drift vs libm on some inputs),
    # so the pow itself runs through CPython's float.__pow__ on the unique
    # ratio values — bit-identical to the scalar oracle by construction.
    ratio = ((mf * nf) * kf) / pf
    uniq, inverse = np.unique(ratio, return_inverse=True)
    c3 = np.asarray([float(u) ** (2.0 / 3.0) for u in uniq])[inverse]
    v3 = (c3 + c3) + c3
    accessed = np.where(case1, v1, np.where(case2, v2, v3))
    n1, n2, n3 = dims[idx, 0], dims[idx, 1], dims[idx, 2]
    total_data = (n1 * n2 + n2 * n3 + n1 * n3).astype(np.float64)
    b = accessed - total_data / pf
    w = words[idx]
    with np.errstate(divide="ignore", invalid="ignore"):
        att = np.where(b == 0.0, np.where(w == 0.0, 1.0, np.inf), w / b)
        g = np.where(b > 0.0, w / b, np.nan)
    tol = 1e-9 * np.maximum(1.0, np.abs(b))
    sat = w >= b - tol
    bound[idx] = b
    attainment[idx] = att
    gap[idx] = g
    satisfied[idx] = sat
    return bound, attainment, gap, satisfied


# --------------------------------------------------------------------- #
# public entry                                                          #
# --------------------------------------------------------------------- #


def _normalize_batch(shapes, P) -> Tuple[np.ndarray, np.ndarray]:
    if isinstance(shapes, ProblemShape):
        dims = np.asarray([shapes.dims], dtype=np.int64)
    else:
        seq = list(shapes) if not isinstance(shapes, np.ndarray) else shapes
        if isinstance(seq, list) and seq and isinstance(seq[0], ProblemShape):
            seq = [s.dims for s in seq]
        dims = np.asarray(seq, dtype=np.int64)
        if dims.ndim == 1:
            dims = dims.reshape(1, 3)
    if dims.ndim != 2 or dims.shape[1] != 3:
        raise ShapeError(f"expected (N, 3) dimensions, got shape {dims.shape}")
    Parr = np.atleast_1d(np.asarray(P, dtype=np.int64))
    if len(dims) == 1 and len(Parr) > 1:
        dims = np.repeat(dims, len(Parr), axis=0)
    if len(Parr) == 1 and len(dims) > 1:
        Parr = np.repeat(Parr, len(dims))
    if len(dims) != len(Parr):
        raise ShapeError(
            f"batch length mismatch: {len(dims)} shapes vs {len(Parr)} "
            f"processor counts"
        )
    if np.any(dims < 1):
        raise ShapeError("matrix dimensions must be positive")
    return dims, Parr


def predict_batch(
    name: str,
    shapes,
    P,
    collective_algorithm: Optional[str] = None,
) -> BatchPrediction:
    """Vectorized :func:`repro.analysis.oracle.predict_cost` over a batch.

    Parameters
    ----------
    name:
        Registry algorithm name.  Unknown names raise
        :class:`OracleUnsupportedError` (matching the scalar dispatch).
    shapes, P:
        Either equal-length sequences of shapes (``ProblemShape`` or
        ``(n1, n2, n3)`` triples) and processor counts, or one of the two
        broadcast against the other (one shape x many P, many shapes x
        one P).
    collective_algorithm:
        Honoured for ``alg1`` only, mirroring the scalar oracle.

    Returns
    -------
    BatchPrediction
        Per-row validity mask, integer cost counters, configs, and the
        vectorized float analysis (bound / attainment / gap).  For every
        row, ``prediction(i)`` equals the scalar oracle's output bit for
        bit, and ``valid[i] is False`` exactly when the scalar oracle
        raises ``OracleUnsupportedError``.
    """
    if name not in _KERNELS:
        raise OracleUnsupportedError(
            f"unknown algorithm {name!r}; oracle covers "
            f"{sorted(ORACLE_ALGORITHMS)}"
        )
    dims, Parr = _normalize_batch(shapes, P)
    n = len(Parr)

    positive = Parr >= 1
    safe = np.fromiter(
        (
            _shape_in_safe_range(int(d[0]), int(d[1]), int(d[2]), int(p))
            for d, p in zip(dims, np.maximum(Parr, 1))
        ),
        dtype=bool,
        count=n,
    )
    fast = positive & safe

    state = _KernelState(dims, np.where(positive, Parr, 1))
    state.ok &= fast
    if fast.any():
        _KERNELS[name](state, collective_algorithm)
    state.ok &= fast

    valid = state.ok.copy()
    rounds = np.where(valid, state.rounds, 0)
    words = np.where(valid, state.words, 0).astype(np.float64)
    flops = np.where(valid, state.flops, 0).astype(np.float64)
    configs = [c if ok else None for c, ok in zip(state.configs, valid)]

    bound, attainment, gap, satisfied = _float_finish(
        dims, np.maximum(Parr, 1), words, valid
    )

    # Rows outside the exact int64/float64 range fall back to the scalar
    # oracle one by one — exactness over speed, and these are rare.
    from .verification import check_cost_against_bound

    for i in np.flatnonzero(positive & ~safe):
        shape = ProblemShape(*(int(v) for v in dims[i]))
        try:
            pred = predict_cost(
                name, shape, int(Parr[i]),
                collective_algorithm=collective_algorithm,
            )
        except OracleUnsupportedError:
            continue
        check = check_cost_against_bound(shape, int(Parr[i]), pred.cost)
        valid[i] = True
        rounds[i] = pred.cost.rounds
        words[i] = pred.cost.words
        flops[i] = pred.cost.flops
        configs[i] = pred.config
        bound[i] = pred.bound
        attainment[i] = pred.attainment
        gap[i] = check.gap_ratio
        satisfied[i] = check.satisfied

    return BatchPrediction(
        algorithm=name,
        dims=dims,
        P=Parr,
        valid=valid,
        rounds=rounds,
        words=words,
        flops=flops,
        bound=bound,
        attainment=attainment,
        gap_ratio=gap,
        satisfied=satisfied,
        configs=configs,
    )
