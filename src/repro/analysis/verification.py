"""Verification: executed algorithms versus the paper's inequalities.

The functions here turn Theorem 3 into executable assertions about *actual
runs* of the simulated algorithms:

* every algorithm's measured critical-path words must be at least the
  memory-independent lower bound (no algorithm may beat Theorem 3);
* Algorithm 1 with the Section 5.2 grid must *equal* the bound (tightness);
* every processor's gathered data must satisfy Lemma 1's per-array access
  bounds and the Loomis-Whitney inequality.

A successful test suite therefore certifies both directions of the paper's
main result on the simulated machine.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..algorithms.grid import ProcessorGrid
from ..core.array_access import access_lower_bounds
from ..core.lower_bounds import LowerBound, memory_independent_bound
from ..core.shapes import ProblemShape
from ..exceptions import BackendMismatchError, OracleMismatchError
from ..machine.cost import Cost
from .projections import grid_projection_sizes, total_projection_words

__all__ = [
    "BackendCrossCheck",
    "BoundCheck",
    "OracleCrossCheck",
    "check_cost_against_bound",
    "check_grid_projections",
    "cross_check_backends",
    "cross_check_oracle",
    "relative_gap",
]


@dataclasses.dataclass(frozen=True)
class BoundCheck:
    """Outcome of comparing a measured cost against Theorem 3."""

    shape: ProblemShape
    P: int
    measured_words: float
    bound: LowerBound
    satisfied: bool
    tight: bool
    gap_ratio: float


def relative_gap(measured: float, bound: float) -> float:
    """``measured / bound`` with care for the tiny-bound corner cases."""
    if bound <= 0:
        return float("inf") if measured > 0 else 1.0
    return measured / bound


def check_cost_against_bound(
    shape: ProblemShape,
    P: int,
    cost: Cost,
    tight_tol: float = 1e-9,
) -> BoundCheck:
    """Compare a run's measured words with the Theorem 3 bound.

    ``satisfied`` — the run respected the bound (must always hold);
    ``tight`` — the run attained it to relative tolerance ``tight_tol``
    (holds for Algorithm 1 on a Section 5.2-optimal grid).
    """
    bound = memory_independent_bound(shape, P)
    measured = cost.words
    target = bound.communicated
    satisfied = measured >= target - tight_tol * max(1.0, abs(target))
    tight = abs(measured - target) <= tight_tol * max(1.0, abs(target))
    return BoundCheck(
        shape=shape,
        P=P,
        measured_words=measured,
        bound=bound,
        satisfied=satisfied,
        tight=tight,
        gap_ratio=relative_gap(measured, target) if target > 0 else float("nan"),
    )


@dataclasses.dataclass(frozen=True)
class BackendCrossCheck:
    """Exact agreement report between a data run and a symbolic run.

    Every field was compared for *exact* equality — not approximate — by
    :func:`cross_check_backends` before this record was constructed, so
    holding one of these is proof the symbolic backend accounted the run
    identically to the data backend.
    """

    algorithm: str
    shape: ProblemShape
    P: int
    cost: Cost
    sent_words: Tuple[float, ...]
    recv_words: Tuple[float, ...]
    flops: Tuple[float, ...]
    attainment_ratio: float
    peak_memory: int
    verified_numerics: bool


def cross_check_backends(
    algorithm: str,
    shape: ProblemShape,
    P: int,
    seed: int = 0,
    collective_algorithm: Optional[str] = None,
    semiring=None,
) -> BackendCrossCheck:
    """Run ``algorithm`` under both backends and assert exact agreement.

    The data run uses real seeded operands (and its product is verified
    against the requested semiring's dense reference — ``numpy`` matmul
    for ``plus_times``, the broadcast distance product for ``min_plus``);
    the symbolic run uses shape descriptors only.  The two executions
    share every schedule, so their Cost, per-rank ``sent_words`` /
    ``recv_words`` / ``flops`` vectors, bound-attainment ratio and peak
    memory must be *exactly* equal — word-for-word, not approximately.

    Raises
    ------
    BackendMismatchError
        On any divergence; the message names the first differing counter.
    """
    from ..algorithms.registry import run_algorithm
    from ..machine.semiring import resolve_semiring
    from ..obs.attainment import bound_attainment

    rng = np.random.default_rng(seed)
    A = rng.random((shape.n1, shape.n2))
    B = rng.random((shape.n2, shape.n3))

    data = run_algorithm(
        algorithm, A, B, P, collective_algorithm=collective_algorithm,
        semiring=semiring,
    )
    # Resolve the semiring the run actually used (entries may default to a
    # non-plus_times semiring, e.g. fox_otto) and verify against its dense
    # single-node reference product.
    sr = resolve_semiring(data.semiring)
    if not sr.allclose(data.C, sr.matmul_data(A, B)):
        raise BackendMismatchError(
            f"{algorithm} data-backend product is numerically wrong on "
            f"{shape}, P={P} ({sr.name}); cannot anchor a cross-check to it"
        )
    symbolic = run_algorithm(
        algorithm, A, B, P, backend="symbolic",
        collective_algorithm=collective_algorithm, semiring=semiring,
    )

    def counters(run):
        m = run.machine
        return {
            "cost": run.cost,
            "sent_words": tuple(m.network.sent_words),
            "recv_words": tuple(m.network.recv_words),
            "flops": tuple(p.flops for p in m.processors),
            "attainment_ratio": run.attainment.ratio,
            "peak_memory": m.peak_memory_words(),
            "semiring": run.semiring,
        }

    d, s = counters(data), counters(symbolic)
    for key in d:
        if d[key] != s[key]:
            raise BackendMismatchError(
                f"{algorithm} on {shape}, P={P}: {key} diverged between "
                f"backends — data={d[key]!r}, symbolic={s[key]!r}"
            )
    if symbolic.C.shape != data.C.shape:
        raise BackendMismatchError(
            f"{algorithm} on {shape}, P={P}: output shape diverged — "
            f"data={data.C.shape}, symbolic={symbolic.C.shape}"
        )

    return BackendCrossCheck(
        algorithm=algorithm,
        shape=shape,
        P=P,
        cost=d["cost"],
        sent_words=d["sent_words"],
        recv_words=d["recv_words"],
        flops=d["flops"],
        attainment_ratio=d["attainment_ratio"],
        peak_memory=d["peak_memory"],
        verified_numerics=True,
    )


@dataclasses.dataclass(frozen=True)
class OracleCrossCheck:
    """Exact agreement report between the analytic oracle and a simulation.

    Constructed only after :func:`cross_check_oracle` compared every field
    for *exact* equality — words, rounds (messages), flops, config string
    and bound attainment — so holding one of these is proof the closed-form
    prediction reproduces the simulated run bit for bit.
    """

    algorithm: str
    shape: ProblemShape
    P: int
    backend: str
    cost: Cost
    config: str
    attainment_ratio: float


def cross_check_oracle(
    algorithm: str,
    shape: ProblemShape,
    P: int,
    seed: int = 0,
    backend: str = "data",
    collective_algorithm: Optional[str] = None,
    semiring=None,
) -> OracleCrossCheck:
    """Simulate ``algorithm`` and assert the oracle predicted it exactly.

    The oracle (:mod:`repro.analysis.oracle`) derives its formulas from
    the paper and the classic algorithm literature, the simulator counts
    what its schedules actually move — so exact agreement checks both
    sides at once.  The tolerance is zero: words, rounds, flops, the
    config string and the bound-attainment ratio must all match bit for
    bit, on either backend.  The closed forms never mention the semiring —
    all counters are shape-derived — so the same prediction must hold for
    any ``semiring`` the simulation runs under; passing one here asserts
    that stronger statement.

    Raises
    ------
    OracleUnsupportedError
        When the oracle refuses the configuration (ragged blocks or
        shards).  Callers that only want coverage should pre-filter with
        :func:`repro.analysis.oracle.oracle_supported`.
    OracleMismatchError
        On any divergence; the message names the first differing counter.
    """
    from ..algorithms.registry import run_algorithm
    from .oracle import predict_cost

    prediction = predict_cost(
        algorithm, shape, P, collective_algorithm=collective_algorithm
    )

    rng = np.random.default_rng(seed)
    A = rng.random((shape.n1, shape.n2))
    B = rng.random((shape.n2, shape.n3))
    run = run_algorithm(
        algorithm, A, B, P, backend=backend,
        collective_algorithm=collective_algorithm, semiring=semiring,
    )

    observed = {
        "words": run.cost.words,
        "rounds": run.cost.rounds,
        "flops": run.cost.flops,
        "config": run.config,
        "attainment": run.attainment.ratio,
        "bound": run.attainment.bound,
    }
    predicted = {
        "words": prediction.cost.words,
        "rounds": prediction.cost.rounds,
        "flops": prediction.cost.flops,
        "config": prediction.config,
        "attainment": prediction.attainment,
        "bound": prediction.bound,
    }
    for key in observed:
        if observed[key] != predicted[key]:
            raise OracleMismatchError(
                f"{algorithm} on {shape}, P={P} ({backend} backend): {key} "
                f"diverged — simulated={observed[key]!r}, "
                f"oracle={predicted[key]!r}"
            )

    return OracleCrossCheck(
        algorithm=algorithm,
        shape=shape,
        P=P,
        backend=backend,
        cost=run.cost,
        config=run.config,
        attainment_ratio=run.attainment.ratio,
    )


def check_grid_projections(
    shape: ProblemShape,
    grid: ProcessorGrid,
    coord: Optional[tuple] = None,
) -> Dict[str, object]:
    """Verify Lemma 1 and Lemma 2 on a grid processor's assigned brick.

    Checks for the processor at ``coord`` (default: the one owning the
    largest brick, i.e. coordinate (0, 0, 0)):

    * each projection is at least the Lemma 1 per-array bound (scaled by
      the brick's actual share of the computation — exact for divisible
      dimensions);
    * the summed projections are at least the Lemma 2 optimum ``D``.

    Returns a report dict with the computed values.
    """
    if coord is None:
        coord = (0, 0, 0)
    proj = grid_projection_sizes(shape, grid, coord)
    per_array = access_lower_bounds(shape, grid.size)
    total = total_projection_words(proj)
    optimum = memory_independent_bound(shape, grid.size).accessed

    divisible = grid.divides(shape.n1, shape.n2, shape.n3)
    per_array_ok = True
    if divisible:
        per_array_ok = all(proj[a] >= per_array[a] - 1e-9 for a in ("A", "B", "C"))
    sum_ok = (not divisible) or total >= optimum - 1e-9 * max(1.0, optimum)

    return {
        "coord": coord,
        "projections": proj,
        "per_array_bounds": per_array,
        "per_array_ok": per_array_ok,
        "sum": total,
        "lemma2_optimum": optimum,
        "sum_ok": sum_ok,
        "divisible": divisible,
    }
