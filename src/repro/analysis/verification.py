"""Verification: executed algorithms versus the paper's inequalities.

The functions here turn Theorem 3 into executable assertions about *actual
runs* of the simulated algorithms:

* every algorithm's measured critical-path words must be at least the
  memory-independent lower bound (no algorithm may beat Theorem 3);
* Algorithm 1 with the Section 5.2 grid must *equal* the bound (tightness);
* every processor's gathered data must satisfy Lemma 1's per-array access
  bounds and the Loomis-Whitney inequality.

A successful test suite therefore certifies both directions of the paper's
main result on the simulated machine.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..algorithms.grid import ProcessorGrid
from ..core.array_access import access_lower_bounds
from ..core.lower_bounds import LowerBound, memory_independent_bound
from ..core.shapes import ProblemShape
from ..machine.cost import Cost
from .projections import grid_projection_sizes, total_projection_words

__all__ = [
    "BoundCheck",
    "check_cost_against_bound",
    "check_grid_projections",
    "relative_gap",
]


@dataclasses.dataclass(frozen=True)
class BoundCheck:
    """Outcome of comparing a measured cost against Theorem 3."""

    shape: ProblemShape
    P: int
    measured_words: float
    bound: LowerBound
    satisfied: bool
    tight: bool
    gap_ratio: float


def relative_gap(measured: float, bound: float) -> float:
    """``measured / bound`` with care for the tiny-bound corner cases."""
    if bound <= 0:
        return float("inf") if measured > 0 else 1.0
    return measured / bound


def check_cost_against_bound(
    shape: ProblemShape,
    P: int,
    cost: Cost,
    tight_tol: float = 1e-9,
) -> BoundCheck:
    """Compare a run's measured words with the Theorem 3 bound.

    ``satisfied`` — the run respected the bound (must always hold);
    ``tight`` — the run attained it to relative tolerance ``tight_tol``
    (holds for Algorithm 1 on a Section 5.2-optimal grid).
    """
    bound = memory_independent_bound(shape, P)
    measured = cost.words
    target = bound.communicated
    satisfied = measured >= target - tight_tol * max(1.0, abs(target))
    tight = abs(measured - target) <= tight_tol * max(1.0, abs(target))
    return BoundCheck(
        shape=shape,
        P=P,
        measured_words=measured,
        bound=bound,
        satisfied=satisfied,
        tight=tight,
        gap_ratio=relative_gap(measured, target) if target > 0 else float("nan"),
    )


def check_grid_projections(
    shape: ProblemShape,
    grid: ProcessorGrid,
    coord: Optional[tuple] = None,
) -> Dict[str, object]:
    """Verify Lemma 1 and Lemma 2 on a grid processor's assigned brick.

    Checks for the processor at ``coord`` (default: the one owning the
    largest brick, i.e. coordinate (0, 0, 0)):

    * each projection is at least the Lemma 1 per-array bound (scaled by
      the brick's actual share of the computation — exact for divisible
      dimensions);
    * the summed projections are at least the Lemma 2 optimum ``D``.

    Returns a report dict with the computed values.
    """
    if coord is None:
        coord = (0, 0, 0)
    proj = grid_projection_sizes(shape, grid, coord)
    per_array = access_lower_bounds(shape, grid.size)
    total = total_projection_words(proj)
    optimum = memory_independent_bound(shape, grid.size).accessed

    divisible = grid.divides(shape.n1, shape.n2, shape.n3)
    per_array_ok = True
    if divisible:
        per_array_ok = all(proj[a] >= per_array[a] - 1e-9 for a in ("A", "B", "C"))
    sum_ok = (not divisible) or total >= optimum - 1e-9 * max(1.0, optimum)

    return {
        "coord": coord,
        "projections": proj,
        "per_array_bounds": per_array,
        "per_array_ok": per_array_ok,
        "sum": total,
        "lemma2_optimum": optimum,
        "sum_ok": sum_ok,
        "divisible": divisible,
    }
