"""Generic parameter-sweep driver over registered algorithms.

Runs every applicable algorithm from :mod:`repro.algorithms.registry` over
a grid of ``(shape, P)`` combinations, verifying numerics against numpy and
the Theorem 3 bound on the way, and returns tidy result records for the
benchmark harnesses to print.

Every record carries the wall-clock time of its run and the per-rank
``sent_words`` skew derived from the machine's span attribution, and a
sweep can stream its records into a persistent experiment ledger
(:class:`repro.obs.ledger.Ledger`) so cross-run trajectories come for free:

    >>> from repro.obs.ledger import Ledger                    # doctest: +SKIP
    >>> sweep(shapes, counts, ledger=Ledger("repro_ledger.jsonl"),
    ...       label="nightly")                                 # doctest: +SKIP

Sweeps parallelize across shapes with ``workers=N`` (each shape's grid of
``(P, algorithm)`` runs is one process-pool task) and the records come back
in the same order as the serial loop — model costs are bit-identical for
any worker count because every task derives its operand seed from
``(seed, shape_index)``, never from a shared sequential stream.  With
``engine="oracle"`` the sweep skips simulation entirely and evaluates the
closed-form cost oracle (:mod:`repro.analysis.oracle`), which is exact
wherever it is defined and fast enough for ``P = 10^6`` parameter spaces.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import REGISTRY, applicable_algorithms, run_algorithm
from ..core.lower_bounds import communication_lower_bound
from ..core.shapes import ProblemShape
from ..exceptions import BoundViolationError, NumericalMismatchError
from ..machine.backend import resolve_backend
from ..machine.semiring import resolve_semiring
from ..obs.metrics import RankSkew
from ..parallel import parallel_map, task_seed
from .verification import check_cost_against_bound

__all__ = ["SweepRecord", "sweep"]


@dataclasses.dataclass(frozen=True)
class SweepRecord:
    """One (algorithm, shape, P) measurement.

    ``wall_clock`` is the measured driver time of the run in seconds
    (:func:`time.perf_counter`); ``skew`` summarizes the per-rank
    ``sent_words`` imbalance of the execution (``None`` only when the
    algorithm exposes no machine).  ``backend`` names the execution
    backend the run used (``"oracle"`` for closed-form records, which
    never touch a machine); ``correct`` is ``None`` under the symbolic
    backend and the oracle engine (no elements exist to verify — the cost
    counters are identical to the data backend's by construction, which
    :func:`repro.analysis.verification.cross_check_backends` and
    :func:`repro.analysis.verification.cross_check_oracle` assert).
    """

    algorithm: str
    config: str
    shape: ProblemShape
    P: int
    words: float
    rounds: int
    bound: float
    gap_ratio: float
    correct: Optional[bool]
    wall_clock: float = 0.0
    flops: float = 0.0
    skew: Optional[RankSkew] = None
    backend: str = "data"
    #: Index of the ``parallel_map`` task (= shape index) that produced
    #: this record; populated only under driver telemetry so merged
    #: :class:`~repro.obs.telemetry.TaskSpan` timelines join records
    #: without positional guessing.  ``None`` (the default) keeps
    #: telemetry-off records — and the ledger lines derived from them —
    #: byte-identical to pre-telemetry behaviour.
    task_index: Optional[int] = None
    #: Semiring the run's scalar multiply-add pair came from.  Additive:
    #: the default names the classical ``(+, x)`` pair, so records written
    #: before the semiring seam existed read back unchanged.
    semiring: str = "plus_times"


def _sweep_shape(
    task: Tuple[ProblemShape, int, Tuple[int, ...], Tuple[str, ...], int,
                str, Optional[str], str, bool, Optional[str]],
) -> Tuple[List[SweepRecord], Optional[dict]]:
    """Run one shape's full ``(P, algorithm)`` grid; one process-pool task.

    Module-level (picklable) with a plain-data argument tuple so it can
    cross the process boundary; the operand RNG is seeded from
    ``(seed, shape_index)`` so results are identical no matter which
    worker runs the task or in what order.

    Returns ``(records, stage_seconds)``: ``stage_seconds`` breaks the
    task's wall-clock into the driver stages that happen *inside* the
    worker (``operands`` / ``evaluate`` / ``verify``) and is ``None``
    unless the final ``want_telemetry`` flag is set, so untimed sweeps
    run the exact pre-telemetry loop.
    """
    (shape, shape_index, processor_counts, names, seed,
     backend, collective_algorithm, engine, want_telemetry, semiring) = task

    def record_semiring(name: str) -> str:
        # The resolved name that lands on the record; entries may default
        # to a non-plus_times semiring (fox_otto) when none is requested.
        if semiring is not None:
            return resolve_semiring(semiring).name
        return "min_plus" if name == "fox_otto" else "plus_times"

    timings = {"operands": 0.0, "evaluate": 0.0, "verify": 0.0}
    record_index = shape_index if want_telemetry else None
    records: List[SweepRecord] = []
    if engine == "oracle":
        from .oracle_vec import predict_batch

        # One vectorized call per algorithm covers the shape's whole P
        # column; rows come back in the same (P, name) order as the
        # historical scalar loop, refusals arrive as mask entries instead
        # of exceptions, and every emitted field is bit-identical to the
        # per-point predict_cost path (the golden fixtures pin this).
        order: List[Tuple[int, str]] = []
        for P in processor_counts:
            runnable = set(applicable_algorithms(shape, P))
            for name in names:
                if name in runnable:
                    order.append((P, name))
        columns: dict = {}
        for P, name in order:
            columns.setdefault(name, []).append(P)
        rows: dict = {}
        for name, counts_for_name in columns.items():
            start = time.perf_counter()
            batch = predict_batch(
                name, shape, counts_for_name,
                collective_algorithm=collective_algorithm,
            )
            elapsed = time.perf_counter() - start
            timings["evaluate"] += elapsed
            per_row = elapsed / len(counts_for_name)
            for i, P in enumerate(counts_for_name):
                rows[(name, P)] = (batch, i, per_row)
        for P, name in order:
            batch, i, per_row = rows[(name, P)]
            if not batch.valid[i]:
                continue  # the scalar oracle would refuse this row
            verify_start = time.perf_counter()
            if not bool(batch.satisfied[i]):
                pred = batch.prediction(i)
                check = check_cost_against_bound(shape, P, pred.cost)
                raise BoundViolationError(
                    f"oracle predicted {name} below the lower bound on "
                    f"{shape}, P={P}: {pred.cost.words} < "
                    f"{check.bound.communicated}"
                )
            timings["verify"] += time.perf_counter() - verify_start
            records.append(SweepRecord(
                algorithm=name,
                config=batch.configs[i],
                shape=shape,
                P=P,
                words=float(batch.words[i]),
                rounds=int(batch.rounds[i]),
                bound=float(batch.bound[i]),
                gap_ratio=float(batch.gap_ratio[i]),
                correct=None,
                wall_clock=per_row,
                flops=float(batch.flops[i]),
                skew=None,
                backend="oracle",
                task_index=record_index,
                semiring=record_semiring(name),
            ))
        return records, (timings if want_telemetry else None)

    backend_obj = resolve_backend(backend)
    operand_start = time.perf_counter()
    rng = np.random.default_rng(task_seed(seed, shape_index))
    expected_cache: dict = {}

    def expected_for(sr_name: str):
        # One dense reference product per semiring actually run; sweeping
        # a mixed pool (fox_otto beside plus_times entries) verifies each
        # run against its own semiring's reference.
        if sr_name not in expected_cache:
            expected_cache[sr_name] = resolve_semiring(sr_name).matmul_data(A, B)
        return expected_cache[sr_name]

    if backend_obj.verifies:
        A = rng.random((shape.n1, shape.n2))
        B = rng.random((shape.n2, shape.n3))
    else:
        A, B = backend_obj.operands((shape.n1, shape.n2, shape.n3))
    timings["operands"] = time.perf_counter() - operand_start
    for P in processor_counts:
        runnable = set(applicable_algorithms(shape, P))
        for name in names:
            if name not in runnable:
                continue
            start = time.perf_counter()
            run = run_algorithm(
                name, A, B, P, collective_algorithm=collective_algorithm,
                semiring=semiring,
            )
            elapsed = time.perf_counter() - start
            timings["evaluate"] += elapsed
            verify_start = time.perf_counter()
            correct = (
                bool(np.allclose(run.C, expected_for(run.semiring)))
                if backend_obj.verifies else None
            )
            check = check_cost_against_bound(shape, P, run.cost)
            if correct is False:
                raise NumericalMismatchError(
                    f"{name} produced a wrong product on {shape}, P={P}"
                )
            if not check.satisfied:
                raise BoundViolationError(
                    f"{name} beat the lower bound on {shape}, P={P}: "
                    f"{run.cost.words} < {check.bound.communicated}"
                )
            timings["verify"] += time.perf_counter() - verify_start
            records.append(SweepRecord(
                algorithm=name,
                config=run.config,
                shape=shape,
                P=P,
                words=run.cost.words,
                rounds=run.cost.rounds,
                bound=communication_lower_bound(shape, P),
                gap_ratio=check.gap_ratio,
                correct=correct,
                wall_clock=elapsed,
                flops=run.cost.flops,
                skew=None if run.machine is None else run.machine.rank_skew(),
                backend=backend_obj.name,
                task_index=record_index,
                semiring=run.semiring,
            ))
    return records, (timings if want_telemetry else None)


def sweep(
    shapes: Iterable[ProblemShape],
    processor_counts: Sequence[int],
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
    ledger=None,
    label: str = "",
    backend: str = "data",
    collective_algorithm: Optional[str] = None,
    workers: int = 1,
    engine: str = "simulate",
    telemetry=None,
    profile=None,
    progress=None,
    semiring: Optional[str] = None,
) -> List[SweepRecord]:
    """Run algorithms across shapes and processor counts.

    Parameters
    ----------
    shapes, processor_counts, algorithms, seed:
        The sweep grid: every applicable registered algorithm (or the
        named subset) runs on every ``(shape, P)`` combination, with
        operands drawn from an RNG seeded per shape with
        ``(seed, shape_index)``.
    ledger:
        Optional :class:`repro.obs.ledger.Ledger`; every record is
        appended to it as a persistent run record tagged with ``label``.
        Appends happen in the parent process after all tasks complete, in
        deterministic record order, so the ledger file is identical for
        any ``workers`` value.
    backend:
        Execution backend name (``"data"`` or ``"symbolic"``).  Under
        ``"symbolic"`` no operand elements are ever allocated, so the
        sweep scales to production-sized ``P`` (``10^5`` and beyond);
        numerical verification is skipped (``correct=None``) while the
        bound check still runs on the identically-accounted counters.
    collective_algorithm:
        Optional override threaded to algorithms that expose the choice
        (Algorithm 1); e.g. ``"bruck"`` keeps all-gather fibers feasible
        at non-power-of-two sizes.
    workers:
        Process-pool width; ``1`` (default) runs the serial in-process
        loop.  Tasks are whole shapes, results merge in input order, and
        model costs are bit-identical to the serial run by construction.
    engine:
        ``"simulate"`` (default) executes the algorithms on the machine
        model; ``"oracle"`` evaluates the closed-form cost oracle instead
        — exact where defined (configurations the oracle refuses are
        silently skipped, mirroring ``applicable_algorithms`` filtering),
        with ``backend="oracle"``, ``correct=None`` and no skew on every
        record.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry`: the driver then
        records host-side stage spans (``plan`` / ``map`` / ``merge`` /
        ``ledger-append``), one :class:`~repro.obs.telemetry.TaskSpan`
        per shape task (worker pid, queue wait, duration, records
        produced), worker-side stage second counters (``operands`` /
        ``evaluate`` / ``verify``), and every record/ledger line carries
        its ``task_index`` plus a per-task telemetry summary.  ``None``
        (the default) runs the exact uninstrumented path — model costs,
        records and ledger bytes are unperturbed either way.
    profile:
        Optional :class:`repro.obs.profile.ProfileCollector`: every task
        runs under cProfile (in its worker) and the stats merge into the
        collector for a cross-process hotspot table.
    progress:
        Optional :class:`repro.obs.telemetry.ProgressReporter`,
        heartbeat-updated as shape tasks complete.
    semiring:
        Optional semiring name threaded to every run (``"plus_times"`` /
        ``"min_plus"``).  ``None`` keeps each entry's own default.  Data
        runs are verified against the *requested* semiring's dense
        reference product; costs and bound checks are identical for every
        semiring by construction.

    Raises
    ------
    NumericalMismatchError
        If any run produces a numerically wrong product.
    BoundViolationError
        If any run communicates less than the Theorem 3 lower bound.

    Either failure means a simulator bug, and silently recording it would
    poison every downstream comparison — including any attached ledger, so
    records are verified *before* they are appended.  The checks are real
    control flow (typed exceptions from :mod:`repro.exceptions`), not
    ``assert`` statements, so they survive ``python -O``.
    """
    from ..obs.telemetry import maybe_stage

    if engine not in ("simulate", "oracle"):
        raise ValueError(f"unknown sweep engine {engine!r}")
    if engine == "simulate":
        resolve_backend(backend)  # validate the name before forking tasks
    if semiring is not None:
        semiring = resolve_semiring(semiring).name  # validate before forking
    with maybe_stage(telemetry, "plan"):
        names = tuple(algorithms) if algorithms is not None else tuple(REGISTRY)
        counts = tuple(processor_counts)
        tasks = [
            (shape, index, counts, names, seed, backend,
             collective_algorithm, engine, telemetry is not None, semiring)
            for index, shape in enumerate(shapes)
        ]
    with maybe_stage(telemetry, "map", tasks=len(tasks), workers=workers):
        results = parallel_map(
            _sweep_shape, tasks, workers=workers,
            telemetry=telemetry, profile=profile, progress=progress,
            label="sweep-shape",
        )
    with maybe_stage(telemetry, "merge"):
        records: List[SweepRecord] = [
            rec for batch, _timings in results for rec in batch
        ]
        if telemetry is not None:
            for index, (batch, timings) in enumerate(results):
                telemetry.set_task_items(index, len(batch), label="sweep-shape")
                for stage, seconds in (timings or {}).items():
                    telemetry.metrics.counter(
                        "worker_stage_seconds_total", stage=stage
                    ).inc(seconds)
    with maybe_stage(telemetry, "ledger-append"):
        if ledger is not None:
            from ..obs.ledger import RunRecord

            for record in records:
                ledger.append(RunRecord.from_sweep(
                    record, label=label,
                    telemetry=_task_telemetry(telemetry, record),
                ))
    return records


def _task_telemetry(telemetry, record: SweepRecord) -> Optional[dict]:
    """The per-task telemetry summary a ledger record carries (or ``None``)."""
    if telemetry is None or record.task_index is None:
        return None
    span = telemetry.task_by_index(record.task_index, label="sweep-shape")
    if span is None:
        return None
    return {
        "task_index": span.index,
        "worker_pid": span.worker_pid,
        "queue_wait": span.queue_wait,
        "task_duration": span.duration,
        "items": span.items,
    }
