"""Generic parameter-sweep driver over registered algorithms.

Runs every applicable algorithm from :mod:`repro.algorithms.registry` over
a grid of ``(shape, P)`` combinations, verifying numerics against numpy and
the Theorem 3 bound on the way, and returns tidy result records for the
benchmark harnesses to print.

Every record carries the wall-clock time of its run and the per-rank
``sent_words`` skew derived from the machine's span attribution, and a
sweep can stream its records into a persistent experiment ledger
(:class:`repro.obs.ledger.Ledger`) so cross-run trajectories come for free:

    >>> from repro.obs.ledger import Ledger                    # doctest: +SKIP
    >>> sweep(shapes, counts, ledger=Ledger("repro_ledger.jsonl"),
    ...       label="nightly")                                 # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..algorithms.registry import REGISTRY, applicable_algorithms, run_algorithm
from ..core.lower_bounds import communication_lower_bound
from ..core.shapes import ProblemShape
from ..exceptions import BoundViolationError, NumericalMismatchError
from ..machine.backend import resolve_backend
from ..obs.metrics import RankSkew
from .verification import check_cost_against_bound

__all__ = ["SweepRecord", "sweep"]


@dataclasses.dataclass(frozen=True)
class SweepRecord:
    """One (algorithm, shape, P) measurement.

    ``wall_clock`` is the measured driver time of the run in seconds
    (:func:`time.perf_counter`); ``skew`` summarizes the per-rank
    ``sent_words`` imbalance of the execution (``None`` only when the
    algorithm exposes no machine).  ``backend`` names the execution
    backend the run used; ``correct`` is ``None`` under the symbolic
    backend (no elements exist to verify — the cost counters are
    identical to the data backend's by construction, which
    :func:`repro.analysis.verification.cross_check_backends` asserts).
    """

    algorithm: str
    config: str
    shape: ProblemShape
    P: int
    words: float
    rounds: int
    bound: float
    gap_ratio: float
    correct: Optional[bool]
    wall_clock: float = 0.0
    flops: float = 0.0
    skew: Optional[RankSkew] = None
    backend: str = "data"


def sweep(
    shapes: Iterable[ProblemShape],
    processor_counts: Sequence[int],
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
    ledger=None,
    label: str = "",
    backend: str = "data",
    collective_algorithm: Optional[str] = None,
) -> List[SweepRecord]:
    """Run algorithms across shapes and processor counts.

    Parameters
    ----------
    shapes, processor_counts, algorithms, seed:
        The sweep grid: every applicable registered algorithm (or the
        named subset) runs on every ``(shape, P)`` combination, with
        operands drawn from a seeded RNG.
    ledger:
        Optional :class:`repro.obs.ledger.Ledger`; every record is
        appended to it as a persistent run record tagged with ``label``.
    backend:
        Execution backend name (``"data"`` or ``"symbolic"``).  Under
        ``"symbolic"`` no operand elements are ever allocated, so the
        sweep scales to production-sized ``P`` (``10^5`` and beyond);
        numerical verification is skipped (``correct=None``) while the
        bound check still runs on the identically-accounted counters.
    collective_algorithm:
        Optional override threaded to algorithms that expose the choice
        (Algorithm 1); e.g. ``"bruck"`` keeps all-gather fibers feasible
        at non-power-of-two sizes.

    Raises
    ------
    NumericalMismatchError
        If any run produces a numerically wrong product.
    BoundViolationError
        If any run communicates less than the Theorem 3 lower bound.

    Either failure means a simulator bug, and silently recording it would
    poison every downstream comparison — including any attached ledger, so
    records are verified *before* they are appended.  The checks are real
    control flow (typed exceptions from :mod:`repro.exceptions`), not
    ``assert`` statements, so they survive ``python -O``.
    """
    backend_obj = resolve_backend(backend)
    rng = np.random.default_rng(seed)
    names = list(algorithms) if algorithms is not None else list(REGISTRY)
    records: List[SweepRecord] = []
    for shape in shapes:
        if backend_obj.verifies:
            A = rng.random((shape.n1, shape.n2))
            B = rng.random((shape.n2, shape.n3))
            expected = A @ B
        else:
            A, B = backend_obj.operands((shape.n1, shape.n2, shape.n3))
            expected = None
        for P in processor_counts:
            runnable = set(applicable_algorithms(shape, P))
            for name in names:
                if name not in runnable:
                    continue
                start = time.perf_counter()
                run = run_algorithm(
                    name, A, B, P, collective_algorithm=collective_algorithm,
                )
                elapsed = time.perf_counter() - start
                correct = (
                    bool(np.allclose(run.C, expected))
                    if backend_obj.verifies else None
                )
                check = check_cost_against_bound(shape, P, run.cost)
                if correct is False:
                    raise NumericalMismatchError(
                        f"{name} produced a wrong product on {shape}, P={P}"
                    )
                if not check.satisfied:
                    raise BoundViolationError(
                        f"{name} beat the lower bound on {shape}, P={P}: "
                        f"{run.cost.words} < {check.bound.communicated}"
                    )
                record = SweepRecord(
                    algorithm=name,
                    config=run.config,
                    shape=shape,
                    P=P,
                    words=run.cost.words,
                    rounds=run.cost.rounds,
                    bound=communication_lower_bound(shape, P),
                    gap_ratio=check.gap_ratio,
                    correct=correct,
                    wall_clock=elapsed,
                    flops=run.cost.flops,
                    skew=None if run.machine is None else run.machine.rank_skew(),
                    backend=backend_obj.name,
                )
                records.append(record)
                if ledger is not None:
                    from ..obs.ledger import RunRecord

                    ledger.append(RunRecord.from_sweep(record, label=label))
    return records
