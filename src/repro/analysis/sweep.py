"""Generic parameter-sweep driver over registered algorithms.

Runs every applicable algorithm from :mod:`repro.algorithms.registry` over
a grid of ``(shape, P)`` combinations, verifying numerics against numpy and
the Theorem 3 bound on the way, and returns tidy result records for the
benchmark harnesses to print.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..algorithms.registry import REGISTRY, applicable_algorithms, run_algorithm
from ..core.lower_bounds import communication_lower_bound
from ..core.shapes import ProblemShape
from .verification import check_cost_against_bound

__all__ = ["SweepRecord", "sweep"]


@dataclasses.dataclass(frozen=True)
class SweepRecord:
    """One (algorithm, shape, P) measurement."""

    algorithm: str
    config: str
    shape: ProblemShape
    P: int
    words: float
    rounds: int
    bound: float
    gap_ratio: float
    correct: bool


def sweep(
    shapes: Iterable[ProblemShape],
    processor_counts: Sequence[int],
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[SweepRecord]:
    """Run algorithms across shapes and processor counts.

    Raises ``AssertionError`` if any run produces a numerically wrong
    product or communicates less than the lower bound — either would mean
    a simulator bug, and silently recording it would poison every
    downstream comparison.
    """
    rng = np.random.default_rng(seed)
    names = list(algorithms) if algorithms is not None else list(REGISTRY)
    records: List[SweepRecord] = []
    for shape in shapes:
        A = rng.random((shape.n1, shape.n2))
        B = rng.random((shape.n2, shape.n3))
        expected = A @ B
        for P in processor_counts:
            runnable = set(applicable_algorithms(shape, P))
            for name in names:
                if name not in runnable:
                    continue
                run = run_algorithm(name, A, B, P)
                correct = bool(np.allclose(run.C, expected))
                check = check_cost_against_bound(shape, P, run.cost)
                assert correct, f"{name} produced a wrong product on {shape}, P={P}"
                assert check.satisfied, (
                    f"{name} beat the lower bound on {shape}, P={P}: "
                    f"{run.cost.words} < {check.bound.communicated}"
                )
                records.append(
                    SweepRecord(
                        algorithm=name,
                        config=run.config,
                        shape=shape,
                        P=P,
                        words=run.cost.words,
                        rounds=run.cost.rounds,
                        bound=communication_lower_bound(shape, P),
                        gap_ratio=check.gap_ratio,
                        correct=correct,
                    )
                )
    return records
