"""Communication-pattern analysis of executed runs (networkx-based).

The machine records per-round message logs; this module reconstructs the
*communication graph* of a run — nodes are processors, edge weights are
words exchanged — and computes pattern statistics:

* per-processor send/receive volumes and their balance (Theorem 3 is a
  critical-path bound, so imbalance is a red flag for an algorithm
  claiming optimality);
* the neighbor degree distribution (Algorithm 1 on a ``p1 x p2 x p3`` grid
  talks only within its three fibers: degree ``<= (p1-1)+(p2-1)+(p3-1)``,
  far below the all-to-all worst case — useful for mapping onto real,
  non-fully-connected networks);
* connected components / bisection-style volume summaries.

These diagnostics are not in the paper (whose model has no contention),
but they answer the first question a practitioner asks before running
Algorithm 1 on a torus or dragonfly: *what does the traffic matrix look
like?*
"""

from __future__ import annotations

import dataclasses
import networkx as nx
import numpy as np

from ..machine.machine import Machine

__all__ = ["TrafficSummary", "communication_graph", "traffic_summary"]


def communication_graph(machine: Machine) -> "nx.DiGraph":
    """Directed graph of who sent how many words to whom.

    Built from the network's per-processor counters and round log; edge
    attribute ``words`` accumulates over the whole run.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(machine.n_procs))
    for (src, dest), words in machine.network.edge_words.items():
        graph.add_edge(src, dest, words=words)
    return graph


@dataclasses.dataclass(frozen=True)
class TrafficSummary:
    """Aggregate statistics of a run's communication pattern."""

    n_procs: int
    total_words: float
    max_send_words: float
    min_send_words: float
    max_degree: int
    mean_degree: float
    is_connected: bool
    send_imbalance: float


def traffic_summary(machine: Machine) -> TrafficSummary:
    """Compute pattern statistics from an executed machine."""
    graph = communication_graph(machine)
    undirected = graph.to_undirected()
    sends = np.asarray(machine.network.sent_words)
    degrees = [d for _, d in undirected.degree()]
    positive = sends[sends > 0]
    imbalance = float(positive.max() / positive.min()) if positive.size else 1.0
    # Connectivity over processors that communicated at all.
    active = [n for n in undirected.nodes if undirected.degree(n) > 0]
    connected = (
        nx.is_connected(undirected.subgraph(active)) if active else True
    )
    return TrafficSummary(
        n_procs=machine.n_procs,
        total_words=float(machine.network.total_words),
        max_send_words=float(sends.max()) if sends.size else 0.0,
        min_send_words=float(sends.min()) if sends.size else 0.0,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
        is_connected=connected,
        send_imbalance=imbalance,
    )
