"""Oracle-backed capacity planner: pick the cheapest algorithm per point.

Given a batch of ``(m, n, k, P)`` queries — optionally with a local
memory budget ``M`` — the planner scores **every** registry algorithm
through the vectorized oracle (:func:`repro.analysis.oracle_vec.predict_batch`),
keeps the admissible ones (the validity mask), and returns the argmin-words
choice together with its Theorem 3 bound attainment and, when ``M`` is
given, the Section 6.2 memory-dependent crossover
(:func:`repro.core.crossover.compare_bounds`).

Canonical orientation
---------------------
The matrix-multiplication iteration space is symmetric in ``(m, n, k)``,
and Theorem 3's bound depends only on the dimension *multiset* — but the
registry's closed forms are orientation-specific (``row_1d`` shards the
*first* dimension, ``outer_1d`` the middle one, ...).  The planner
therefore canonicalizes every query to the descending orientation
``m >= n >= k`` before scoring, which makes its output invariant under
any permutation of the query dimensions: ``plan((k, n, m), P)`` is the
same answer, bit for bit, as ``plan((m, n, k), P)``.

Caching
-------
Results are memoized in a :class:`PlanCache` keyed on a SHA-256
fingerprint of the *canonical* query configuration (schema version,
sorted dims, ``P``, ``M``).  A cache hit returns the stored
:class:`PlanResult` object itself, so hot answers are bit-identical to
cold ones by construction; the fingerprint is also the natural join key
for ledger records and CI artifacts.

Atlases
-------
:func:`case_atlas` sweeps one pinned shape per Theorem 3 case over a
decade-spanning processor grid (default up to ``P = 10**7``) and reports
the per-``P`` winner — the planner's answer sheet for each regime.  All
three atlases evaluate through the array kernels in well under a minute.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.cases import Regime, classify
from ..core.crossover import BoundComparison, compare_bounds
from ..core.shapes import ProblemShape
from ..exceptions import ShapeError
from .oracle import ORACLE_ALGORITHMS
from .oracle_vec import predict_batch

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "ATLAS_SHAPES",
    "PlanCandidate",
    "PlanResult",
    "PlanCache",
    "canonical_shape",
    "query_fingerprint",
    "plan",
    "plan_batch",
    "atlas_processor_counts",
    "case_atlas",
]

#: Bump when the fingerprint/result layout changes incompatibly.  Part of
#: the fingerprint preimage, so stale cache hits cannot cross versions.
PLAN_SCHEMA_VERSION = 1

#: One pinned shape per Theorem 3 case, sized so the whole default
#: processor grid stays (almost entirely) inside the named regime while
#: every row fits the vectorized kernels' exact int64/float64 range.
ATLAS_SHAPES: Dict[int, ProblemShape] = {
    1: ProblemShape(10**8, 10, 10),
    2: ProblemShape(10**6, 10**4, 10),
    3: ProblemShape(10**4, 10**3, 10**3),
}


def canonical_shape(shape: ProblemShape) -> ProblemShape:
    """The descending-orientation representative of ``shape``'s multiset."""
    return ProblemShape(*sorted(shape.dims, reverse=True))


@dataclasses.dataclass(frozen=True)
class PlanCandidate:
    """One admissible algorithm's oracle scorecard for a planner query."""

    algorithm: str
    config: str
    words: float
    rounds: int
    flops: float
    bound: float
    attainment: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class PlanResult:
    """The planner's answer for one canonical ``(shape, P[, M])`` query.

    ``candidates`` lists every admissible algorithm in ascending words
    order (registry order on ties); ``best`` is ``candidates[0]`` or
    ``None`` when no registry algorithm admits the point.  ``crossover``
    carries the Section 6.2 bound comparison when the query specified a
    memory budget, else ``None``.
    """

    shape: ProblemShape
    P: int
    M: Optional[float]
    regime: Regime
    fingerprint: str
    candidates: Tuple[PlanCandidate, ...]
    crossover: Optional[BoundComparison] = None

    @property
    def best(self) -> Optional[PlanCandidate]:
        return self.candidates[0] if self.candidates else None

    def to_dict(self) -> dict:
        best = self.best
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "shape": list(self.shape.dims),
            "P": self.P,
            "M": self.M,
            "regime": str(self.regime),
            "fingerprint": self.fingerprint,
            "best": None if best is None else best.to_dict(),
            "candidates": [c.to_dict() for c in self.candidates],
            "crossover": None if self.crossover is None else {
                "memory_independent": self.crossover.memory_independent,
                "memory_dependent": self.crossover.memory_dependent,
                "binding": self.crossover.binding,
            },
        }


def query_fingerprint(
    shape: ProblemShape, P: int, M: Optional[float] = None
) -> str:
    """SHA-256 fingerprint of the canonical query configuration.

    Permutations of the dimensions fingerprint identically (the preimage
    uses the canonical orientation), so the cache and any artifact keyed
    on this value are permutation-invariant too.
    """
    canonical = canonical_shape(shape)
    preimage = json.dumps(
        {
            "schema_version": PLAN_SCHEMA_VERSION,
            "dims": list(canonical.dims),
            "P": int(P),
            "M": None if M is None else float(M),
        },
        sort_keys=True,
    )
    return hashlib.sha256(preimage.encode("ascii")).hexdigest()


class PlanCache:
    """Fingerprint-keyed memo of :class:`PlanResult` objects.

    Stores (and returns) the result object itself, so a hit is
    bit-identical to the cold computation that populated it.
    """

    def __init__(self) -> None:
        self._store: Dict[str, PlanResult] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._store

    def get(self, fingerprint: str) -> Optional[PlanResult]:
        found = self._store.get(fingerprint)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, result: PlanResult) -> None:
        self._store[result.fingerprint] = result


#: Module-level default cache, shared by :func:`plan` calls that do not
#: bring their own (the CLI and bench probes reuse it within a process).
_DEFAULT_CACHE = PlanCache()

ShapeLike = Union[ProblemShape, Sequence[int]]


def _as_shape(value: ShapeLike) -> ProblemShape:
    if isinstance(value, ProblemShape):
        return value
    return ProblemShape(*(int(d) for d in value))


def plan_batch(
    shapes: Iterable[ShapeLike],
    processor_counts: Iterable[int],
    memory: Optional[Iterable[Optional[float]]] = None,
    cache: Optional[PlanCache] = None,
) -> List[PlanResult]:
    """Answer a batch of planner queries through the vectorized oracle.

    ``shapes`` and ``processor_counts`` pair up row-wise; ``memory``
    optionally supplies a per-row budget (``None`` entries skip the
    crossover).  Rows already in ``cache`` are returned from it verbatim;
    the remaining rows are scored with **one** ``predict_batch`` call per
    registry algorithm, whatever the batch size.

    Raises
    ------
    ShapeError
        On ragged input lengths, or when a row's memory budget cannot
        even hold the distributed problem (from ``compare_bounds``).
    """
    cache = _DEFAULT_CACHE if cache is None else cache
    shape_list = [_as_shape(s) for s in shapes]
    procs = [int(P) for P in processor_counts]
    if len(shape_list) != len(procs):
        raise ShapeError(
            f"plan batch length mismatch: {len(shape_list)} shapes "
            f"vs {len(procs)} processor counts"
        )
    mems: List[Optional[float]]
    if memory is None:
        mems = [None] * len(procs)
    else:
        mems = [None if m is None else float(m) for m in memory]
        if len(mems) != len(procs):
            raise ShapeError(
                f"plan batch length mismatch: {len(mems)} memory budgets "
                f"vs {len(procs)} processor counts"
            )

    results: List[Optional[PlanResult]] = [None] * len(procs)
    cold_rows: List[int] = []
    for i, (shape, P, M) in enumerate(zip(shape_list, procs, mems)):
        found = cache.get(query_fingerprint(shape, P, M))
        if found is not None:
            results[i] = found
        else:
            cold_rows.append(i)

    if cold_rows:
        canon = [canonical_shape(shape_list[i]) for i in cold_rows]
        cold_P = [procs[i] for i in cold_rows]
        # One vectorized call per algorithm covers every cold row.
        batches = {
            name: predict_batch(name, [s.dims for s in canon], cold_P)
            for name in ORACLE_ALGORITHMS
        }
        for j, i in enumerate(cold_rows):
            shape, P, M = canon[j], procs[i], mems[i]
            candidates = []
            for name in ORACLE_ALGORITHMS:
                batch = batches[name]
                if not batch.valid[j]:
                    continue
                candidates.append(
                    PlanCandidate(
                        algorithm=name,
                        config=batch.configs[j],
                        words=float(batch.words[j]),
                        rounds=int(batch.rounds[j]),
                        flops=float(batch.flops[j]),
                        bound=float(batch.bound[j]),
                        attainment=float(batch.attainment[j]),
                    )
                )
            # Stable sort: ascending words, registry order on ties (the
            # candidates are appended in registry order already).
            candidates.sort(key=lambda c: c.words)
            result = PlanResult(
                shape=shape,
                P=P,
                M=M,
                regime=classify(shape, P),
                fingerprint=query_fingerprint(shape, P, M),
                candidates=tuple(candidates),
                crossover=None if M is None else compare_bounds(shape, P, M),
            )
            cache.put(result)
            results[i] = result
    return [r for r in results if r is not None]


def plan(
    shape: ShapeLike,
    P: int,
    M: Optional[float] = None,
    cache: Optional[PlanCache] = None,
) -> PlanResult:
    """Answer a single planner query (see :func:`plan_batch`)."""
    return plan_batch([shape], [P], memory=[M], cache=cache)[0]


def atlas_processor_counts(limit: int = 10**7) -> List[int]:
    """The atlas processor grid: ``{1, 2, 4, 5, 8} * 10**e`` up to ``limit``."""
    counts = []
    decade = 1
    while decade <= limit:
        for mantissa in (1, 2, 4, 5, 8):
            P = mantissa * decade
            if P <= limit:
                counts.append(P)
        decade *= 10
    return counts


def case_atlas(
    limit: int = 10**7, cache: Optional[PlanCache] = None
) -> dict:
    """Planner answer sheets: one pinned shape per Theorem 3 case.

    Returns a JSON-serializable dict mapping ``"case1" | "case2" | "case3"``
    to the shape and its per-``P`` planner rows (winner, words, bound,
    attainment, admissible-algorithm count) over
    :func:`atlas_processor_counts`.
    """
    counts = atlas_processor_counts(limit)
    atlas: dict = {
        "schema_version": PLAN_SCHEMA_VERSION,
        "limit": limit,
        "processor_counts": counts,
    }
    for case, shape in ATLAS_SHAPES.items():
        rows = plan_batch([shape] * len(counts), counts, cache=cache)
        atlas[f"case{case}"] = {
            "shape": list(shape.dims),
            "rows": [
                {
                    "P": r.P,
                    "regime": str(r.regime),
                    "admissible": len(r.candidates),
                    "best": None if r.best is None else {
                        "algorithm": r.best.algorithm,
                        "config": r.best.config,
                        "words": r.best.words,
                        "bound": r.best.bound,
                        "attainment": r.best.attainment,
                    },
                }
                for r in rows
            ],
        }
    return atlas
