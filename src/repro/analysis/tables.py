"""Plain-text table and series rendering for the benchmark harnesses.

Benchmarks print the same rows/series the paper reports; these helpers
keep the formatting consistent (fixed-width ASCII, no external deps).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_number", "format_series"]


def format_number(value, precision: int = 4) -> str:
    """Compact numeric formatting: ints stay exact, floats get
    ``precision`` significant digits, ``None`` renders as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows: List[List[str]] = [
        [format_number(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(label: str, xs: Sequence, ys: Sequence, precision: int = 4) -> str:
    """Render an ``x -> y`` series on one labelled line per point."""
    lines = [label]
    for x, y in zip(xs, ys):
        lines.append(f"  {format_number(x, precision)} -> {format_number(y, precision)}")
    return "\n".join(lines)
