"""Checkpoint/restart survivability and the survivability report.

Two mechanisms let a run outlive a fail-stop rank death:

* **ABFT** — the checksum-encoded algorithms (:mod:`repro.algorithms.abft`)
  heal in place: survivors rebuild the dead rank's blocks from the checksum
  row/shards, every word charged, and the schedule continues.
* **Checkpoint/restart** — :func:`run_survivable` wraps *any* registered
  algorithm: the canonical input distribution is buddy-checkpointed up
  front (:class:`~repro.machine.checkpoint.CheckpointManager`), and when
  the run dies with :class:`~repro.exceptions.RankFailedError` the wasted
  attempt is charged, the dead rank's snapshot is restored to a spare (or
  a surviving adopter under ``"shrink"``), and the algorithm restarts.

Both mechanisms account identically: every checkpoint, detection-timeout,
waste and repair word accrues in ``injector.words_recovered``, so the
extended conservation invariant holds exactly::

    measured words == fault-free words + words_resent + words_recovered

:func:`run_survive` turns this into the survivability report the CLI
exposes as ``repro survive``: every registry algorithm crossed with the
three Theorem 3 regime points, a seeded rank death injected into each,
and the recovery overhead stated as a ratio against the paper's
memory-independent lower bound — the honest price of surviving a failure,
in the same currency as the bounds the repo reproduces.

Flop caveat: the composite cost of a checkpoint/restart run counts the
flops of the *completed* attempt only.  The dead attempt's flops are
machine-local and die with it; its critical-path words and rounds (the
quantities the paper's model prices) are carried in full.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.abft import ABFT_ALGORITHMS
from ..algorithms.registry import REGISTRY, AlgorithmRun, run_algorithm
from ..core.lower_bounds import communication_lower_bound
from ..core.shapes import ProblemShape
from ..exceptions import RankFailedError
from ..machine.backend import resolve_backend
from ..machine.checkpoint import CheckpointManager
from ..machine.cost import Cost
from ..machine.faults import (
    FaultModel,
    RecoveryConfig,
    active_injector,
    inject,
)
from ..machine.machine import Machine
from ..machine.recovery import RecoveryPlan
from ..obs.attainment import bound_attainment
from ..parallel import parallel_map
from .tables import format_table

__all__ = [
    "SurviveReport",
    "SurviveRow",
    "run_survivable",
    "run_survive",
]

#: Store keys the checkpoint layer protects: each rank's share of the
#: canonical row-split input distribution.
CHECKPOINT_KEYS: Tuple[str, ...] = ("A_part", "B_part")


def _stage_inputs(machine: Machine, A, B) -> None:
    """Conductor-side canonical distribution of the inputs (free).

    Rank ``r`` holds the ``r``-th row slab of ``A`` and of ``B`` — the
    "assumed initial distribution" convention: staging charges nothing,
    only subsequent communication does.
    """
    a_parts = np.array_split(A, machine.n_procs, axis=0)
    b_parts = np.array_split(B, machine.n_procs, axis=0)
    for rank in range(machine.n_procs):
        store = machine.proc(rank).store
        store.put("A_part", a_parts[rank])
        store.put("B_part", b_parts[rank])


def run_survivable(
    name: str,
    A,
    B,
    P: int,
    backend=None,
    semiring=None,
) -> AlgorithmRun:
    """Run a registered algorithm under checkpoint/restart protection.

    Requires an ambient injector (:func:`repro.machine.faults.inject`)
    whose model carries a :class:`~repro.machine.faults.RecoveryConfig`.
    The inputs are buddy-checkpointed on a *fenced* side machine (the
    snapshot channel cannot itself fault — the single-failure model), the
    algorithm runs normally, and a rank death triggers detect / restore /
    restart, up to ``max_recoveries`` times.

    Returns the completed attempt's :class:`AlgorithmRun` with the
    composite critical-path cost: checkpoint + wasted attempts +
    detection + restore + the completed attempt.
    """
    injector = active_injector()
    if injector is None or injector.model.recovery is None:
        raise ValueError(
            "run_survivable needs an ambient fault injector whose model "
            "has a RecoveryConfig (use `with inject(model):` and set "
            "FaultModel.recovery)"
        )
    config = injector.model.recovery
    shape = ProblemShape(A.shape[0], A.shape[1], B.shape[1])

    # Fenced checkpoint machine: snapshots and restores are charged in
    # full but never re-faulted, and draw no decision-stream randoms.
    ckpt_machine = Machine(P, backend=backend)
    ckpt_machine.network.fault_injector = None
    _stage_inputs(ckpt_machine, A, B)
    manager = CheckpointManager(ckpt_machine)
    injector.words_recovered += manager.checkpoint(CHECKPOINT_KEYS)

    waste_words = 0.0
    waste_rounds = 0
    recovered = 0
    run_P = P
    while True:
        resent_before = injector.words_resent
        try:
            run = run_algorithm(
                name, A, B, run_P, backend=backend, semiring=semiring
            )
            break
        except RankFailedError as exc:
            if exc.rank is None or recovered >= config.max_recoveries:
                raise
            # The attempt's machine died with `exc.waste_words` on its
            # critical path; the slice already attributed to retry
            # resends stays in words_resent, the rest is recovery waste.
            attempt_resent = exc.waste_resent - resent_before
            waste_words += exc.waste_words
            waste_rounds += exc.waste_rounds
            # Survivors detect the death via the modelled timeout, then
            # the buddy restores the snapshot to the replacement slot.
            ckpt_machine.network._latency_rounds(config.detection_rounds)
            injector.handle_failure(exc.rank)
            plan = RecoveryPlan(
                strategy=config.strategy,
                failed_rank=exc.rank,
                failed_round=exc.round,
                replacement_rank=(
                    exc.rank if config.strategy == "spare" else None
                ),
                detection_rounds=config.detection_rounds,
            )
            if plan.strategy == "spare":
                restore_words = manager.restore(exc.rank, dest=exc.rank)
            else:
                restore_words = manager.restore(
                    exc.rank, dest=manager.buddy(exc.rank)
                )
                run_P = run_P - 1
                if run_P < 1 or not REGISTRY[name].applicable(shape, run_P):
                    raise
            injector.words_recovered += (
                exc.waste_words - attempt_resent + restore_words
            )
            injector.recoveries += 1
            recovered += 1

    side = ckpt_machine.cost
    composite = Cost(
        rounds=side.rounds + waste_rounds + run.cost.rounds,
        words=side.words + waste_words + run.cost.words,
        flops=run.cost.flops,
    )
    return dataclasses.replace(
        run,
        cost=composite,
        attainment=bound_attainment(shape, P, composite.words),
    )


# --------------------------------------------------------------------- #
# survivability report                                                  #
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class SurviveRow:
    """One cell of the survivability matrix.

    ``overhead`` is the recovery price in the paper's currency: the words
    attributed to surviving the failure (checkpoint + waste + repair)
    divided by the Theorem 3 memory-independent lower bound for the same
    ``(shape, P)``.  ``attainment`` is total measured words over the same
    bound — the fault-free attainment plus the overhead.
    """

    algorithm: str
    regime: str
    shape: Tuple[int, ...]
    P: int
    mechanism: str
    outcome: str
    clean_words: float
    words_resent: float
    recovery_words: float
    total_words: float
    bound: float
    overhead: float
    attainment: float
    verified: bool
    error: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class SurviveReport:
    """All rows of one :func:`run_survive` invocation."""

    rows: List[SurviveRow]
    backend: str
    seed: int
    failure: Tuple[int, int]

    @property
    def ok(self) -> bool:
        """Did every cell survive with exact accounting and numerics?"""
        return all(row.outcome == "reconstructed" and row.verified
                   for row in self.rows)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "seed": self.seed,
            "failure": list(self.failure),
            "ok": self.ok,
            "rows": [row.to_dict() for row in self.rows],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    def render(self) -> str:
        headers = ["algorithm", "case", "shape", "P", "mechanism",
                   "outcome", "clean", "recovery", "total", "bound",
                   "overhead", "note"]
        rows = []
        for r in self.rows:
            rows.append([
                r.algorithm, r.regime,
                "x".join(str(d) for d in r.shape), str(r.P),
                r.mechanism, r.outcome,
                f"{r.clean_words:g}", f"{r.recovery_words:g}",
                f"{r.total_words:g}", f"{r.bound:g}",
                f"{r.overhead:.3f}",
                (r.error[:40] + "...") if len(r.error) > 43 else r.error,
            ])
        n_ok = sum(1 for r in self.rows
                   if r.outcome == "reconstructed" and r.verified)
        verdict = (
            "every cell survived a rank death with exact accounting"
            if self.ok else
            f"{len(self.rows) - n_ok}/{len(self.rows)} cell(s) did not "
            f"reconstruct cleanly"
        )
        return (
            format_table(headers, rows)
            + f"\nrank {self.failure[0]} killed after round "
              f"{self.failure[1]}; overhead = recovery words / Theorem 3 "
              f"bound; {verdict}\n"
        )


def _survive_task(
    task: Tuple[str, str, int, Tuple[int, ...], int, int,
                Tuple[int, int], str, str, int],
) -> SurviveRow:
    """One (algorithm, regime point) cell of the survivability matrix.

    Module-level and plain-data so it can cross a process boundary; the
    operand RNG re-derives from ``(operand_seed, regime_index)``, so the
    cell builds the same operands on any worker, and the fault model is
    seeded per cell — rows are bit-identical for any ``workers`` value.
    """
    (name, regime_name, regime_index, dims, P, seed, failure, strategy,
     backend, operand_seed) = task
    backend_obj = resolve_backend(backend)
    shape = ProblemShape(*dims)
    rng = np.random.default_rng(operand_seed + regime_index)
    if backend_obj.verifies:
        A = rng.random((shape.n1, shape.n2))
        B = rng.random((shape.n2, shape.n3))
    else:
        A, B = backend_obj.operands((shape.n1, shape.n2, shape.n3))
    clean = run_algorithm(name, A, B, P)
    mechanism = "abft" if name in ABFT_ALGORITHMS else "checkpoint"
    model = FaultModel(
        seed=seed,
        rank_failures=(tuple(failure),),
        recovery=RecoveryConfig(strategy=strategy),
    )
    bound = communication_lower_bound(shape, P)
    outcome, error, verified = "reconstructed", "", True
    run = None
    try:
        with inject(model) as injector:
            if mechanism == "abft":
                run = run_algorithm(name, A, B, P)
            else:
                run = run_survivable(name, A, B, P)
    except RankFailedError as exc:
        outcome, error, verified = "rank-failed", str(exc), False
    except Exception as exc:  # pragma: no cover - defensive
        outcome, verified = "violation", False
        error = f"{type(exc).__name__}: {exc}"
    recovery_words = injector.words_recovered
    if run is not None:
        if not injector.recoveries:
            outcome = "clean"
        total_words = run.cost.words
        # Under "shrink" the completed attempt ran on P-1 survivors, so
        # the fault-free reference for the conservation check is the
        # clean run at the *completed* processor count.
        reference = (clean if run.P == P
                     else run_algorithm(name, A, B, run.P))
        expected = (reference.cost.words + injector.words_resent
                    + recovery_words)
        if abs(total_words - expected) > 1e-9 * max(1.0, expected):
            outcome, verified = "violation", False
            error = (
                f"unaccounted words: measured {total_words:g}, "
                f"expected {expected:g}"
            )
        elif backend_obj.verifies and not np.allclose(
            np.asarray(run.C), np.asarray(clean.C)
        ):
            outcome, verified = "violation", False
            error = "reconstructed product differs from clean run"
    else:
        total_words = float("nan")
    return SurviveRow(
        algorithm=name,
        regime=regime_name,
        shape=tuple(shape.dims),
        P=P,
        mechanism=mechanism,
        outcome=outcome,
        clean_words=clean.cost.words,
        words_resent=injector.words_resent,
        recovery_words=recovery_words,
        total_words=total_words,
        bound=bound,
        overhead=recovery_words / bound if bound else float("nan"),
        attainment=total_words / bound if bound else float("nan"),
        verified=verified,
        error=error,
    )


def run_survive(
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
    failure: Tuple[int, int] = (1, 1),
    strategy: str = "spare",
    backend: str = "data",
    points: Optional[Dict] = None,
    operand_seed: int = 0,
    workers: int = 1,
) -> SurviveReport:
    """Survivability matrix: every algorithm x regime point under rank death.

    Each cell kills rank ``failure[0]`` after round ``failure[1]`` and
    lets the algorithm's mechanism — ABFT reconstruction for the
    checksum-encoded variants, checkpoint/restart for everything else —
    carry the run to completion.  The row records the recovery words and
    their ratio to the Theorem 3 bound, the overhead of survival in the
    paper's own currency.

    ``workers`` sets the process-pool width (``1`` = serial); rows are
    bit-identical for any value because every cell is self-seeded.
    """
    from .chaos import REGIME_POINTS

    backend_obj = resolve_backend(backend)
    names = list(algorithms) if algorithms is not None else list(REGISTRY)
    grid = points if points is not None else REGIME_POINTS
    tasks = []
    for regime_index, (regime, (shape, P)) in enumerate(grid.items()):
        for name in names:
            if not REGISTRY[name].applicable(shape, P):
                continue
            tasks.append((
                name, regime.name, regime_index, tuple(shape.dims), P,
                seed, tuple(failure), strategy, backend, operand_seed,
            ))
    rows = parallel_map(
        _survive_task, tasks, workers=workers, label="survive-cell",
    )
    return SurviveReport(
        rows=rows, backend=backend_obj.name, seed=seed,
        failure=tuple(failure),
    )
