"""Production-scale sweeps: Theorem 3's constants at P up to ``10^5``.

The data backend tops out at a few thousand simulated processors — the
operand elements alone for a problem worth running at ``P = 10^5`` would
not fit in memory, let alone move through the simulated network in
reasonable time.  The symbolic backend removes exactly that wall: blocks
are shape descriptors, every counter is charged from shape arithmetic,
and :func:`repro.analysis.verification.cross_check_backends` proves the
accounting identical to the data backend's.  This module uses it to
demonstrate the paper's headline claim at *production-sized* processor
counts: Algorithm 1 on the Section 5.2 grid attains the Theorem 3 bound
— constant included — in all three cases.

The standard points (:data:`LARGE_P_POINTS`) pick one shape per case,
each chosen so the optimal grid divides the dimensions exactly and the
measured words land *on* the bound, not merely near it:

=====  =======================  ========  ==============  ========
case   shape (n1 x n2 x n3)     P         grid            constant
=====  =======================  ========  ==============  ========
1      65536 x 32 x 32          1024      1024 x 1 x 1    1
2      8192 x 8192 x 2          16384     128 x 128 x 1   2
3      25000 x 6400 x 5000      100000    125 x 32 x 25   3
=====  =======================  ========  ==============  ========

All-gathers run the Bruck algorithm (`collective_algorithm="bruck"`),
which keeps fiber groups feasible at any size — "auto" would fall back
to the ring at non-power-of-two fiber lengths, which is just as exact
but quadratically slower to simulate at these scales.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence

from ..core.cases import Regime, classify
from ..core.lower_bounds import leading_term_constant
from ..core.shapes import ProblemShape
from ..exceptions import BoundViolationError
from ..parallel import parallel_map
from .sweep import SweepRecord, sweep

__all__ = ["LargePPoint", "LargePResult", "LARGE_P_POINTS", "run_large_p_sweep"]


@dataclasses.dataclass(frozen=True)
class LargePPoint:
    """One (case, shape, P) target of the large-P attainment sweep."""

    case: int
    shape: ProblemShape
    P: int


@dataclasses.dataclass(frozen=True)
class LargePResult:
    """Outcome of one large-P point: the sweep record plus the verdict."""

    point: LargePPoint
    record: SweepRecord
    constant: float
    ratio: float
    tight: bool
    wall_clock: float


LARGE_P_POINTS: Sequence[LargePPoint] = (
    LargePPoint(case=1, shape=ProblemShape(65536, 32, 32), P=1024),
    LargePPoint(case=2, shape=ProblemShape(8192, 8192, 2), P=16384),
    LargePPoint(case=3, shape=ProblemShape(25000, 6400, 5000), P=100000),
)

_REGIME_CASE = {Regime.ONE_D: 1, Regime.TWO_D: 2, Regime.THREE_D: 3}


def _large_p_task(task) -> LargePResult:
    """Run one large-P point; one process-pool task (module-level, picklable).

    The ledger is never passed in: the parent appends the returned
    record itself so the file is written once, in point order, for any
    worker count.
    """
    point, tight_tol = task
    regime = classify(point.shape, point.P)
    if _REGIME_CASE[regime] != point.case:
        raise BoundViolationError(
            f"large-P point {point.shape}, P={point.P} declared case "
            f"{point.case} but classifies as {regime}"
        )
    start = time.perf_counter()
    records = sweep(
        [point.shape],
        [point.P],
        algorithms=["alg1"],
        backend="symbolic",
        collective_algorithm="bruck",
    )
    elapsed = time.perf_counter() - start
    record = records[0]
    _oracle_cross_check(point, record)
    ratio = record.words / record.bound
    tight = abs(ratio - 1.0) <= tight_tol * max(1.0, ratio)
    if not tight:
        raise BoundViolationError(
            f"large-P case {point.case} ({point.shape}, P={point.P}): "
            f"measured {record.words:g} words vs bound {record.bound:g} "
            f"(ratio {ratio:.6f}) — Algorithm 1 should attain the bound "
            f"exactly on this grid"
        )
    return LargePResult(
        point=point,
        record=record,
        constant=leading_term_constant(regime),
        ratio=ratio,
        tight=tight,
        wall_clock=elapsed,
    )


def _oracle_cross_check(point: LargePPoint, record: SweepRecord) -> None:
    """Assert the vectorized closed-form oracle reproduces the simulated
    model costs of a large-P point exactly.

    An independent second witness for the headline table: the symbolic
    machine *counts* the words; the array kernels *compute* them from the
    closed forms.  Any divergence — words, rounds, flops, bound, or the
    chosen grid — is a model bug, reported as a bound violation.  Runs in
    microseconds and never alters the record, so table output and golden
    fixtures are unchanged.
    """
    from .oracle_vec import predict_batch

    batch = predict_batch(
        "alg1", point.shape, point.P, collective_algorithm="bruck"
    )
    mismatches = []
    if not batch.valid[0]:
        mismatches.append("oracle refuses the point")
    else:
        for field, measured, predicted in (
            ("words", record.words, float(batch.words[0])),
            ("rounds", record.rounds, int(batch.rounds[0])),
            ("flops", record.flops, float(batch.flops[0])),
            ("bound", record.bound, float(batch.bound[0])),
            ("config", record.config, batch.configs[0]),
        ):
            if measured != predicted:
                mismatches.append(
                    f"{field}: simulated {measured!r} vs oracle {predicted!r}"
                )
    if mismatches:
        raise BoundViolationError(
            f"large-P case {point.case} ({point.shape}, P={point.P}): "
            f"symbolic run and closed-form oracle disagree — "
            + "; ".join(mismatches)
        )


def run_large_p_sweep(
    points: Optional[Sequence[LargePPoint]] = None,
    tight_tol: float = 1e-9,
    ledger=None,
    label: str = "large-p",
    workers: int = 1,
    telemetry=None,
    profile=None,
    progress=None,
) -> List[LargePResult]:
    """Run Algorithm 1 symbolically on each large-P point and check tightness.

    Every point must land in its declared Theorem 3 case and attain the
    bound to relative tolerance ``tight_tol`` — with the case's tight
    constant (1, 2 or 3), since the bound itself carries the constant.
    With ``workers > 1`` the points run in a process pool (one point per
    task); results and ledger records keep point order either way.
    ``telemetry``/``profile``/``progress`` are the optional driver
    observability sinks of :func:`repro.parallel.parallel_map` — inert by
    default, and unable to perturb measured costs.

    Raises
    ------
    BoundViolationError
        If a point is misclassified or the measured words miss the bound.
    """
    from ..obs.telemetry import maybe_stage

    with maybe_stage(telemetry, "plan"):
        tasks = [
            (point, tight_tol)
            for point in (points if points is not None else LARGE_P_POINTS)
        ]
    with maybe_stage(telemetry, "map", tasks=len(tasks), workers=workers):
        results = parallel_map(
            _large_p_task, tasks, workers=workers,
            telemetry=telemetry, profile=profile, progress=progress,
            label="large-p-point",
        )
    if telemetry is not None:
        for index, _result in enumerate(results):
            telemetry.set_task_items(index, 1, label="large-p-point")
    with maybe_stage(telemetry, "ledger-append"):
        if ledger is not None:
            from ..obs.ledger import RunRecord

            for result in results:
                ledger.append(RunRecord.from_sweep(result.record, label=label))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """Print the large-P attainment table (used by the CI smoke job).

    Accepts ``--workers N`` to fan the points out over a process pool.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro.analysis.large_p")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)
    results = run_large_p_sweep(workers=args.workers)
    print("case  shape                 P       grid              "
          "constant  words/bound   wall")
    for r in results:
        shape = "x".join(str(d) for d in r.point.shape.dims)
        print(f"{r.point.case:<5} {shape:<21} {r.point.P:<7} "
              f"{r.record.config:<17} {r.constant:<9g} {r.ratio:<13.9f} "
              f"{r.wall_clock:6.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
