"""Analysis utilities: verification, empirical constants, scaling sweeps."""

from .chaos import REGIME_POINTS, SCHEDULES, ChaosOutcome, ChaosReport, run_chaos
from .constants import MeasuredConstant, case_remainder, constant_series, measure_constant
from .integrality import GapPoint, GapProfile, gap_profile, integrality_gap
from .large_p import LARGE_P_POINTS, LargePPoint, LargePResult, run_large_p_sweep
from .oracle import (
    ORACLE_ALGORITHMS,
    OraclePrediction,
    collective_rounds,
    oracle_supported,
    predict_cost,
)
from .report import CheckResult, ReproductionReport, reproduction_report
from .scaling_laws import (
    FittedLaw,
    THEORY_EXPONENTS,
    alg1_cost_exponents,
    fit_exponent,
    regime_exponents,
)
from .projections import (
    assignment_projection_sizes,
    grid_assignment_brick,
    grid_projection_sizes,
    is_computation_balanced,
    total_projection_words,
)
from .strong_scaling import ScalingPoint, communication_efficiency, scaling_sweep
from .sweep import SweepRecord, sweep
from .tables import format_number, format_series, format_table
from .traffic import TrafficSummary, communication_graph, traffic_summary
from .verification import (
    BackendCrossCheck,
    BoundCheck,
    OracleCrossCheck,
    check_cost_against_bound,
    check_grid_projections,
    cross_check_backends,
    cross_check_oracle,
    relative_gap,
)

__all__ = [
    "BackendCrossCheck",
    "BoundCheck",
    "ORACLE_ALGORITHMS",
    "OracleCrossCheck",
    "OraclePrediction",
    "ChaosOutcome",
    "ChaosReport",
    "CheckResult",
    "FittedLaw",
    "GapPoint",
    "GapProfile",
    "LARGE_P_POINTS",
    "LargePPoint",
    "LargePResult",
    "REGIME_POINTS",
    "SCHEDULES",
    "ReproductionReport",
    "MeasuredConstant",
    "ScalingPoint",
    "THEORY_EXPONENTS",
    "SweepRecord",
    "TrafficSummary",
    "assignment_projection_sizes",
    "case_remainder",
    "check_cost_against_bound",
    "alg1_cost_exponents",
    "check_grid_projections",
    "communication_efficiency",
    "constant_series",
    "fit_exponent",
    "format_number",
    "format_series",
    "format_table",
    "gap_profile",
    "integrality_gap",
    "grid_assignment_brick",
    "grid_projection_sizes",
    "is_computation_balanced",
    "collective_rounds",
    "cross_check_backends",
    "cross_check_oracle",
    "measure_constant",
    "oracle_supported",
    "predict_cost",
    "relative_gap",
    "reproduction_report",
    "run_chaos",
    "run_large_p_sweep",
    "regime_exponents",
    "scaling_sweep",
    "sweep",
    "communication_graph",
    "total_projection_words",
    "traffic_summary",
]
