"""Chaos harness: every registry algorithm under seeded fault schedules.

The fault layer (:mod:`repro.machine.faults`) promises a *quadchotomy*
for any execution under injected faults — exactly one of:

1. **recovered** — the run completes; its numerics are untouched and its
   critical-path words equal the fault-free words **plus** the injector's
   ``words_resent`` (attainment degrades by exactly the resent words);
2. **reconstructed** — a rank died mid-run and a survivability layer
   (ABFT checksum reconstruction or checkpoint/restart, see
   :mod:`repro.algorithms.abft` and :mod:`repro.analysis.survive`)
   carried the run to completion; the recovery traffic is accounted in
   ``words_recovered`` and the extended conservation invariant holds;
3. **detected** — the run aborts with a typed
   :class:`~repro.exceptions.FaultDetectedError` (no retry policy, or the
   retry budget is exhausted);
4. **rank-failed** — a fail-stop rank death surfaces as
   :class:`~repro.exceptions.RankFailedError` (no
   :class:`~repro.machine.faults.RecoveryConfig` opted in).

What must *never* happen is silent corruption: a run that completes with
wrong numerics, unaccounted words, or a broken conservation invariant.
This module turns that promise into an executable experiment:
:func:`run_chaos` crosses every registered algorithm with one
``(shape, P)`` point per Theorem 3 case (:data:`REGIME_POINTS`) and a set
of named, seed-parameterized fault schedules (:data:`SCHEDULES`, plus
:data:`RECOVERY_SCHEDULES` under ``--recover``), checks each outcome
against the quadchotomy, and reports any violation.  The CLI front-end is
``repro chaos``; ``tests/chaos/`` asserts the quadchotomy on every run of
the matrix.

A completed run is re-verified from first principles, not trusted:

* numerics (data backend only): the faulty run's product must equal the
  fault-free product bit-for-bit — delivered payloads are pristine by
  construction, so even ``allclose`` slack is not conceded.  The one
  exception is a *reconstructed* product, which is rebuilt by checksum
  subtraction — algebraically identical but reassociated, so it is held
  to ``np.allclose`` instead;
* cost accounting: ``words == clean_words + words_resent +
  words_recovered`` exactly;
* conservation: ``sum(sent_words) == sum(recv_words)`` over the machine.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import REGISTRY, applicable_algorithms, run_algorithm
from ..core.cases import Regime
from ..core.lower_bounds import communication_lower_bound
from ..core.shapes import ProblemShape
from ..exceptions import FaultDetectedError, FaultError, RankFailedError
from ..machine.backend import resolve_backend
from ..machine.faults import FaultModel, RecoveryConfig, RetryPolicy, inject
from ..parallel import parallel_map, task_seed
from .tables import format_table

__all__ = [
    "ALL_SCHEDULES",
    "RECOVERY_SCHEDULES",
    "REGIME_POINTS",
    "SCHEDULES",
    "ChaosOutcome",
    "ChaosReport",
    "run_chaos",
    "schedule_model",
]

#: One (shape, P) point per Theorem 3 case, chosen so that *every*
#: registered algorithm is applicable on at least one point (verified by
#: ``tests/chaos/test_trichotomy.py::test_points_cover_every_algorithm``).
REGIME_POINTS: Dict[Regime, Tuple[ProblemShape, int]] = {
    Regime.ONE_D: (ProblemShape(64, 4, 4), 4),
    Regime.TWO_D: (ProblemShape(32, 32, 4), 16),
    Regime.THREE_D: (ProblemShape(16, 16, 16), 4),
}

#: Named fault schedules.  Each value is a factory ``seed -> FaultModel``;
#: the name states the fault mix and the expected quadchotomy arm.
SCHEDULES: Dict[str, "ScheduleFactory"] = {}

#: Rank-death schedules with a :class:`RecoveryConfig` opted in — kept
#: out of :data:`SCHEDULES` so the default matrix (and its fail-stop
#: pins) is byte-identical to the pre-recovery harness; ``repro chaos
#: --recover`` appends them.
RECOVERY_SCHEDULES: Dict[str, "ScheduleFactory"] = {}


class ScheduleFactory:
    """A named ``seed -> FaultModel`` factory (picklable, reprable)."""

    def __init__(self, name: str, **params) -> None:
        self.name = name
        self.params = params

    def __call__(self, seed: int) -> FaultModel:
        params = dict(self.params)
        retry = params.pop("retry", None)
        if retry:
            params["retry"] = RetryPolicy(max_attempts=5)
        recovery = params.pop("recovery", None)
        if recovery:
            params["recovery"] = RecoveryConfig(strategy=recovery)
        return FaultModel(seed=seed, **params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScheduleFactory({self.name!r}, {self.params})"


def _register(name: str, **params) -> None:
    SCHEDULES[name] = ScheduleFactory(name, **params)


# Recovery schedules: a retry policy is present, so any drop/corrupt either
# recovers accountably or exhausts the budget into a typed error.
_register("drop-retry", drop=0.10, retry=True)
_register("corrupt-retry", corrupt=0.10, retry=True)
_register("mixed-retry", drop=0.04, corrupt=0.04, duplicate=0.04,
          stall=0.04, retry=True)
# Charge-only schedules: duplicates and stalls never need recovery.
_register("duplicate", duplicate=0.15)
_register("stall", stall=0.15, stall_rounds=2)
# Detection schedules: no retry policy, so the first materialized loss or
# corruption must surface as FaultDetectedError.
_register("drop-detect", drop=0.15)
_register("corrupt-detect", corrupt=0.15, corrupt_mode="nan")
# Fail-stop: rank 1 dies after the first round; unrecoverable.
_register("rank-failure", rank_failures=((1, 1),))
# Survivable rank deaths: same fail-stop event, but a RecoveryConfig is
# opted in, so a survivability layer must reconstruct and complete.  Two
# failure rounds: round 1 hits the ABFT encode itself (restage path),
# round 3 exercises checksum reconstruction of mid-schedule state.
RECOVERY_SCHEDULES["rank-failure-recover"] = ScheduleFactory(
    "rank-failure-recover", rank_failures=((1, 1),), recovery="spare")
RECOVERY_SCHEDULES["rank-failure-recover-late"] = ScheduleFactory(
    "rank-failure-recover-late", rank_failures=((1, 3),), recovery="spare")

#: Every named schedule, recovery ones included.
ALL_SCHEDULES: Dict[str, "ScheduleFactory"] = {
    **SCHEDULES, **RECOVERY_SCHEDULES,
}


def schedule_model(name: str, seed: int) -> FaultModel:
    """The :class:`FaultModel` of named schedule ``name`` at ``seed``."""
    try:
        factory = ALL_SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos schedule {name!r}; "
            f"known: {', '.join(ALL_SCHEDULES)}"
        ) from None
    return factory(seed)


@dataclasses.dataclass(frozen=True)
class ChaosOutcome:
    """One cell of the chaos matrix: (algorithm, regime point, schedule, seed).

    ``outcome`` is one of ``"recovered"`` (completed with materialized
    faults, all invariants verified), ``"reconstructed"`` (a rank died
    and a survivability layer — ``mechanism`` ``"abft"`` or
    ``"checkpoint"`` — completed the run with ``recovery_words`` of
    charged repair traffic), ``"clean"`` (completed, the seeded schedule
    happened to materialize nothing), ``"detected"``
    (:class:`~repro.exceptions.FaultDetectedError`), ``"rank-failed"``
    (:class:`~repro.exceptions.RankFailedError`) or ``"violation"`` — the
    quadchotomy was broken (wrong numerics, unaccounted words, broken
    conservation, or an untyped crash).  ``error`` carries the diagnostic
    for the non-completed outcomes.
    """

    algorithm: str
    regime: str
    shape: Tuple[int, ...]
    P: int
    schedule: str
    seed: int
    backend: str
    outcome: str
    injected: int = 0
    retries: int = 0
    words_resent: float = 0.0
    clean_words: float = 0.0
    words: Optional[float] = None
    error: str = ""
    recovery_words: float = 0.0
    mechanism: str = ""

    @property
    def completed(self) -> bool:
        return self.outcome in ("recovered", "reconstructed", "clean")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ChaosReport:
    """All outcomes of one :func:`run_chaos` invocation."""

    rows: List[ChaosOutcome]
    backend: str
    seeds: Tuple[int, ...]

    @property
    def violations(self) -> List[ChaosOutcome]:
        return [row for row in self.rows if row.outcome == "violation"]

    @property
    def ok(self) -> bool:
        """Did every cell land on a quadchotomy arm (no violations)?"""
        return not self.violations

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for row in self.rows:
            out[row.outcome] = out.get(row.outcome, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "seeds": list(self.seeds),
            "ok": self.ok,
            "counts": self.counts(),
            "rows": [row.to_dict() for row in self.rows],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    def render(self) -> str:
        headers = ["algorithm", "case", "shape", "P", "schedule", "seed",
                   "outcome", "faults", "retries", "resent", "recovered",
                   "note"]
        rows = []
        for r in self.rows:
            rows.append([
                r.algorithm, r.regime,
                "x".join(str(d) for d in r.shape), str(r.P),
                r.schedule, str(r.seed), r.outcome,
                str(r.injected), str(r.retries), f"{r.words_resent:g}",
                f"{r.recovery_words:g}",
                (r.error[:48] + "...") if len(r.error) > 51 else r.error,
            ])
        counts = self.counts()
        summary = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
        verdict = (
            "every outcome on a quadchotomy arm" if self.ok
            else f"{len(self.violations)} VIOLATION(S) — fault layer bug"
        )
        return (
            format_table(headers, rows)
            + f"\n{len(self.rows)} runs ({summary}); {verdict}\n"
        )


def _verify_completed(run, clean, injector, verifies: bool) -> Optional[str]:
    """Check a completed faulty run against the accountability contract.

    Returns a violation message, or ``None`` when every invariant holds.
    A reconstructed product is rebuilt by checksum subtraction —
    algebraically identical but reassociated — so it is held to
    ``np.allclose``; every other completion must match bit-for-bit.
    """
    recovered = getattr(injector, "words_recovered", 0.0)
    expected = clean.cost.words + injector.words_resent + recovered
    if abs(run.cost.words - expected) > 1e-9 * max(1.0, expected):
        return (
            f"unaccounted words: measured {run.cost.words:g}, expected "
            f"clean {clean.cost.words:g} + resent {injector.words_resent:g}"
            f" + recovered {recovered:g}"
        )
    if verifies:
        reconstructed = bool(getattr(injector, "recoveries", 0))
        same = (
            np.allclose(np.asarray(run.C), np.asarray(clean.C))
            if reconstructed
            else np.array_equal(np.asarray(run.C), np.asarray(clean.C))
        )
        if not same:
            return (
                "silent corruption: completed run's product differs "
                "from clean run"
            )
    if run.machine is not None:
        try:
            run.machine.check_conservation()
        except FaultDetectedError as exc:
            return f"conservation broken after completion: {exc}"
    return None


def _chaos_task(
    task: Tuple[str, Regime, int, ProblemShape, int, Tuple[str, ...],
                Tuple[int, ...], str, int, bool, str],
) -> Tuple[List[ChaosOutcome], list]:
    """One (regime point, algorithm) column of the chaos matrix.

    Module-level and plain-data so it can cross a process boundary; the
    operand RNG is seeded from ``(operand_seed, regime_index)`` so every
    task of a regime builds identical operands regardless of worker
    scheduling.  Returns the outcome rows plus the ledger records for the
    completed runs (appended by the parent, in order).
    """
    (name, regime, regime_index, shape, P, schedule_names, seeds,
     backend, operand_seed, want_ledger, label) = task
    backend_obj = resolve_backend(backend)
    rng = np.random.default_rng(task_seed(operand_seed, regime_index))
    if backend_obj.verifies:
        A = rng.random((shape.n1, shape.n2))
        B = rng.random((shape.n2, shape.n3))
    else:
        A, B = backend_obj.operands((shape.n1, shape.n2, shape.n3))
    clean = run_algorithm(name, A, B, P)
    rows: List[ChaosOutcome] = []
    ledger_records: list = []
    for sched in schedule_names:
        for seed in seeds:
            model = ALL_SCHEDULES[sched](seed)
            start = time.perf_counter()
            outcome, words, error, run = _one_cell(
                name, A, B, P, model, clean, backend_obj.verifies
            )
            elapsed = time.perf_counter() - start
            injector_summary = outcome.pop("faults")
            row = ChaosOutcome(
                algorithm=name,
                regime=regime.name,
                shape=tuple(shape.dims),
                P=P,
                schedule=sched,
                seed=seed,
                backend=backend_obj.name,
                outcome=outcome["outcome"],
                injected=injector_summary["injected"],
                retries=injector_summary["retries"],
                words_resent=injector_summary["words_resent"],
                clean_words=clean.cost.words,
                words=words,
                error=error,
                recovery_words=injector_summary.get("words_recovered", 0.0),
                mechanism=outcome.get("mechanism", ""),
            )
            rows.append(row)
            if want_ledger and row.completed:
                ledger_records.append(_chaos_record(
                    label, row, run, shape, P, injector_summary, elapsed,
                ))
    return rows, ledger_records


def run_chaos(
    algorithms: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2, 3),
    schedules: Optional[Sequence[str]] = None,
    backend: str = "data",
    points: Optional[Dict[Regime, Tuple[ProblemShape, int]]] = None,
    operand_seed: int = 0,
    ledger=None,
    label: str = "chaos",
    workers: int = 1,
    telemetry=None,
    profile=None,
    progress=None,
    recover: bool = False,
) -> ChaosReport:
    """Cross algorithms x regime points x fault schedules x seeds.

    Parameters
    ----------
    algorithms:
        Registry names to exercise (default: every registered algorithm).
        Each algorithm runs on every :data:`REGIME_POINTS` point whose
        applicability predicate accepts it.
    seeds, schedules:
        The fault dimension: every named schedule (default: all of
        :data:`SCHEDULES`) instantiated at every seed.
    backend:
        ``"data"`` (numerics verified bit-for-bit against the fault-free
        run) or ``"symbolic"`` (cost accounting only; same decisions by
        construction — the decision RNG stream is backend-independent).
    points:
        Override the regime points (mainly for tests).
    ledger:
        Optional :class:`repro.obs.ledger.Ledger`: every *completed* run
        appends a ``kind="chaos"`` record whose ``faults`` field carries
        the schedule name, seed, injector summary and outcome.  Appends
        happen in the parent process after all cells complete, in
        deterministic order, for any ``workers`` value.
    label:
        Ledger record label.
    workers:
        Process-pool width (``1`` = serial in-process loop).  One task is
        a full (regime point, algorithm) column of the matrix; outcomes
        are identical to the serial run because fault decisions draw from
        per-cell seeded models and operands from per-regime seeds.
    telemetry, profile, progress:
        Optional driver-observability sinks (see
        :func:`repro.parallel.parallel_map`); all inert by default and
        none of them can perturb outcomes — they only watch wall clocks.
    recover:
        Append the :data:`RECOVERY_SCHEDULES` (survivable rank deaths) to
        the schedule set, turning the trichotomy matrix into the full
        quadchotomy matrix.

    Returns a :class:`ChaosReport`; ``report.ok`` is the quadchotomy
    verdict for the whole matrix.
    """
    from ..obs.telemetry import maybe_stage

    backend_obj = resolve_backend(backend)
    names = list(algorithms) if algorithms is not None else list(REGISTRY)
    schedule_names = tuple(schedules) if schedules is not None else tuple(SCHEDULES)
    if recover:
        schedule_names += tuple(
            s for s in RECOVERY_SCHEDULES if s not in schedule_names
        )
    for sched in schedule_names:
        if sched not in ALL_SCHEDULES:
            raise KeyError(
                f"unknown chaos schedule {sched!r}; "
                f"known: {', '.join(ALL_SCHEDULES)}"
            )
    grid = points if points is not None else REGIME_POINTS

    with maybe_stage(telemetry, "plan"):
        tasks = []
        for regime_index, (regime, (shape, P)) in enumerate(grid.items()):
            runnable = set(applicable_algorithms(shape, P))
            for name in names:
                if name not in runnable:
                    continue
                tasks.append((
                    name, regime, regime_index, shape, P, schedule_names,
                    tuple(seeds), backend, operand_seed, ledger is not None,
                    label,
                ))
    with maybe_stage(telemetry, "map", tasks=len(tasks), workers=workers):
        results = parallel_map(
            _chaos_task, tasks, workers=workers,
            telemetry=telemetry, profile=profile, progress=progress,
            label="chaos-cell",
        )

    rows: List[ChaosOutcome] = []
    with maybe_stage(telemetry, "merge"):
        for index, (task_rows, _records) in enumerate(results):
            rows.extend(task_rows)
            if telemetry is not None:
                telemetry.set_task_items(
                    index, len(task_rows), label="chaos-cell"
                )
    with maybe_stage(telemetry, "ledger-append"):
        if ledger is not None:
            for _task_rows, task_records in results:
                for record in task_records:
                    ledger.append(record)
    return ChaosReport(rows=rows, backend=backend_obj.name, seeds=tuple(seeds))


def _one_cell(name, A, B, P, model, clean, verifies):
    """Run one chaos cell; returns (outcome-dict, words, error, run).

    With a :class:`RecoveryConfig` on the model, the cell routes through
    the algorithm's survivability mechanism: ABFT variants self-heal
    inside their own schedule, everything else goes through the
    checkpoint/restart wrapper (:func:`repro.analysis.survive.run_survivable`).
    """
    from ..algorithms.abft import ABFT_ALGORITHMS

    injector = None
    try:
        with inject(model) as injector:
            if model.recovery is not None and name not in ABFT_ALGORITHMS:
                from .survive import run_survivable

                run = run_survivable(name, A, B, P)
            else:
                run = run_algorithm(name, A, B, P)
    except RankFailedError as exc:
        return (
            {"outcome": "rank-failed", "faults": injector.summary()},
            None, str(exc), None,
        )
    except FaultDetectedError as exc:
        return (
            {"outcome": "detected", "faults": injector.summary()},
            None, str(exc), None,
        )
    except FaultError as exc:  # pragma: no cover - future fault subtypes
        return (
            {"outcome": "detected", "faults": injector.summary()},
            None, str(exc), None,
        )
    except Exception as exc:  # untyped crash = trichotomy violation
        summary = injector.summary() if injector is not None else {
            "injected": 0, "retries": 0, "words_resent": 0.0,
        }
        return (
            {"outcome": "violation", "faults": summary},
            None, f"{type(exc).__name__}: {exc}", None,
        )
    problem = _verify_completed(run, clean, injector, verifies)
    if problem is not None:
        return (
            {"outcome": "violation", "faults": injector.summary()},
            run.cost.words, problem, run,
        )
    if injector.recoveries:
        outcome = "reconstructed"
        mechanism = "abft" if name in ABFT_ALGORITHMS else "checkpoint"
    elif injector.faults_injected:
        outcome, mechanism = "recovered", ""
    else:
        outcome, mechanism = "clean", ""
    return (
        {"outcome": outcome, "mechanism": mechanism,
         "faults": injector.summary()},
        run.cost.words, "", run,
    )


def _chaos_record(label, row, run, shape, P, injector_summary, elapsed):
    """Build the ledger record for one completed chaos cell (plain data)."""
    from ..obs.ledger import RunRecord, environment_fingerprint, git_revision

    bound = communication_lower_bound(shape, P)
    faults = dict(injector_summary)
    faults["schedule"] = row.schedule
    faults["seed"] = row.seed
    faults["outcome"] = row.outcome
    # Additive: records without a reconstruction serialize byte-identically
    # to the pre-recovery schema.
    recovery = None
    if row.outcome == "reconstructed":
        recovery = {
            "mechanism": row.mechanism,
            "recoveries": injector_summary.get("recoveries", 0),
            "words_recovered": row.recovery_words,
        }
    return RunRecord(
        algorithm=row.algorithm,
        config=run.config,
        shape=tuple(shape.dims),
        P=P,
        words=run.cost.words,
        rounds=run.cost.rounds,
        flops=run.cost.flops,
        bound=bound,
        attainment=run.cost.words / bound if bound else float("nan"),
        wall_clock=elapsed,
        label=label,
        kind="chaos",
        backend=row.backend,
        timestamp=time.time(),
        git_sha=git_revision(),
        env=environment_fingerprint(),
        faults=faults,
        recovery=recovery,
    )
