"""Strong-scaling analysis of communication cost versus processor count.

Ballard et al. (2012b) observed — and Section 6.2 quantifies — that
memory-independent bounds limit strong scaling: communication *per
processor* stops shrinking proportionally once the memory-independent
bound overtakes the memory-dependent one.  This module sweeps ``P`` for a
fixed problem and reports, at each point, the Theorem 3 bound, the
memory-dependent bound (optionally, for a given ``M``), Algorithm 1's
closed-form cost on the best integer grid, and the regime — the data
behind ``benchmarks/bench_memory_crossover.py`` and the strong-scaling
example.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..algorithms.grid_selection import select_grid
from ..core.cases import Regime, classify
from ..core.lower_bounds import communication_lower_bound, leading_term
from ..core.memory_dependent import memory_dependent_bound, min_memory_to_hold_problem
from ..core.shapes import ProblemShape

__all__ = ["ScalingPoint", "scaling_sweep", "communication_efficiency"]


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling sweep."""

    P: int
    regime: Regime
    bound_communicated: float
    bound_leading: float
    alg1_cost: float
    alg1_grid: tuple
    memory_dependent: Optional[float]


def scaling_sweep(
    shape: ProblemShape,
    processor_counts: Sequence[int],
    M: Optional[float] = None,
) -> List[ScalingPoint]:
    """Evaluate bounds and Algorithm 1's best-grid cost over ``P`` values.

    ``M`` (optional) additionally evaluates the memory-dependent bound
    ``2 mnk/(P sqrt(M))`` at each point (only where ``M`` can hold the
    problem).
    """
    points = []
    for P in processor_counts:
        choice = select_grid(shape, P)
        md = None
        if M is not None and M >= min_memory_to_hold_problem(shape, P):
            md = memory_dependent_bound(shape, P, M)
        points.append(
            ScalingPoint(
                P=P,
                regime=classify(shape, P),
                bound_communicated=communication_lower_bound(shape, P),
                bound_leading=leading_term(shape, P),
                alg1_cost=choice.cost,
                alg1_grid=choice.grid.dims,
                memory_dependent=md,
            )
        )
    return points


def communication_efficiency(points: Sequence[ScalingPoint]) -> List[float]:
    """Strong-scaling efficiency of the bound relative to the first point.

    Perfect communication scaling would keep ``P * bound`` constant; the
    returned series is ``(P0 * bound0) / (P * bound)`` — it stays near 1 in
    the perfectly-scaling memory-dependent regime and decays like
    ``P^(-1/3)`` once the 3D memory-independent bound binds.
    """
    if not points:
        return []
    base = points[0].P * points[0].bound_leading
    return [base / (pt.P * pt.bound_leading) for pt in points]
