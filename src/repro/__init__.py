"""repro — reproduction of *Tight Memory-Independent Parallel Matrix
Multiplication Communication Lower Bounds* (Al Daas, Ballard, Grigori,
Kumar, Rouse; SPAA 2022).

The library has four layers:

* :mod:`repro.machine` — a simulated distributed-memory machine in the
  alpha-beta-gamma model (Section 3.1), with exact critical-path cost
  accounting;
* :mod:`repro.collectives` — bandwidth-optimal collective algorithms
  (ring, recursive doubling/halving, binomial trees) built from validated
  point-to-point rounds;
* :mod:`repro.core` — the paper's results: the Loomis-Whitney inequality,
  the per-array access bounds, Lemma 2's optimization problem with its KKT
  certificate, Theorem 3 / Corollary 4, the Table 1 comparison constants,
  and the Section 6.2 limited-memory analysis;
* :mod:`repro.algorithms` — Algorithm 1 (which attains the bound exactly)
  plus SUMMA, Cannon, 2.5D, CARMA-style recursive and 1D baselines;
* :mod:`repro.obs` — observability: span tracing, per-rank metrics,
  bound-attainment gauges, and timeline exporters
  (see ``docs/OBSERVABILITY.md``).

Quickstart
----------
>>> import numpy as np
>>> from repro import ProblemShape, select_grid, run_alg1, memory_independent_bound
>>> shape = ProblemShape(96, 24, 6)         # the Figure 2 problem at 1/100 scale
>>> choice = select_grid(shape, 12)
>>> rng = np.random.default_rng(0)
>>> A, B = rng.random((96, 24)), rng.random((24, 6))
>>> result = run_alg1(A, B, choice.grid)
>>> bool(np.allclose(result.C, A @ B))
True
"""

from .algorithms import (
    ProcessorGrid,
    alg1_cost,
    alg1_cost_terms,
    continuous_optimal_grid,
    run_25d,
    run_alg1,
    run_algorithm,
    run_cannon,
    run_carma,
    run_outer_1d,
    run_row_1d,
    run_summa,
    select_grid,
)
from .collectives import Communicator
from .core import (
    ProblemShape,
    Regime,
    accessed_data_bound,
    classify,
    communication_lower_bound,
    leading_term,
    memory_dependent_bound,
    memory_independent_bound,
    solve_lemma2,
    square_lower_bound,
)
from .machine import Cost, CostModel, Machine
from .obs import Attainment, bound_attainment

__version__ = "1.0.0"

__all__ = [
    "Attainment",
    "Communicator",
    "Cost",
    "CostModel",
    "Machine",
    "ProblemShape",
    "ProcessorGrid",
    "Regime",
    "accessed_data_bound",
    "alg1_cost",
    "alg1_cost_terms",
    "bound_attainment",
    "classify",
    "communication_lower_bound",
    "continuous_optimal_grid",
    "leading_term",
    "memory_dependent_bound",
    "memory_independent_bound",
    "run_25d",
    "run_alg1",
    "run_algorithm",
    "run_cannon",
    "run_carma",
    "run_outer_1d",
    "run_row_1d",
    "run_summa",
    "select_grid",
    "solve_lemma2",
    "square_lower_bound",
    "__version__",
]
