"""Communication schedules and the round-merging driver.

A *schedule* is a Python generator that implements one collective operation
for one processor group.  It repeatedly

* ``yield``\\ s a list of :class:`~repro.machine.message.Message` — the
  messages of its next communication round — and
* receives (via ``generator.send``) a mapping ``dest rank -> payload`` of the
  messages delivered to its group's members in that round,

and finally ``return``\\ s the collective's result (a mapping from global
rank to that rank's output).

Writing collectives this way has one crucial payoff: schedules for
**disjoint** groups can be *zipped together* by :func:`run_schedules`, so
that round ``t`` of every group executes in the same physical network round.
That is exactly how Algorithm 1 behaves — all ``p1*p2`` All-Gathers along
the third grid dimension happen simultaneously — and it is what makes the
simulator's critical-path word count match the paper's expression (3)
exactly.  Running the fibers' collectives one after another would inflate
the measured critical path by the number of fibers.

The driver validates nothing about group disjointness itself; the network's
one-send/one-receive-per-round rule catches any overlap and raises
:class:`~repro.exceptions.NetworkContentionError`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Sequence

from ..exceptions import CommunicatorError
from ..machine.machine import Machine
from ..machine.message import Message

__all__ = [
    "Schedule",
    "run_schedules",
    "run_schedule",
    "merge_schedules",
    "group_index",
    "is_power_of_two",
    "ceil_log2",
]

#: Type alias for collective schedules.
Schedule = Generator[List[Message], Dict[int, Any], Any]


def group_index(group: Sequence[int], rank: int) -> int:
    """Position of a global ``rank`` within ``group``.

    Raises :class:`~repro.exceptions.CommunicatorError` when the rank is not
    a member — collectives address peers by group position, so this guards
    against mixing up global ranks and group indices.
    """
    try:
        return group.index(rank)  # type: ignore[union-attr]
    except ValueError:
        raise CommunicatorError(f"rank {rank} is not a member of group {tuple(group)}") from None


def is_power_of_two(p: int) -> bool:
    """True when ``p`` is a positive power of two."""
    return p >= 1 and (p & (p - 1)) == 0


def ceil_log2(p: int) -> int:
    """Smallest ``q`` with ``2**q >= p`` (``p >= 1``)."""
    if p < 1:
        raise ValueError(f"p must be positive, got {p}")
    return (p - 1).bit_length()


def run_schedules(machine: Machine, schedules: Sequence[Schedule]) -> List[Any]:
    """Execute several schedules over *disjoint* groups simultaneously.

    Round ``t`` of every still-active schedule is merged into a single
    network round.  Schedules may have different lengths; exhausted ones
    simply stop contributing messages.

    Parameters
    ----------
    machine:
        The machine whose network executes the merged rounds.
    schedules:
        Collective schedules (see module docstring).  Their groups must be
        pairwise disjoint, otherwise the network raises
        :class:`~repro.exceptions.NetworkContentionError`.

    Returns
    -------
    list
        The schedules' results, in input order.
    """
    scheds = list(schedules)
    results: List[Any] = [None] * len(scheds)
    active: Dict[int, Schedule] = dict(enumerate(scheds))
    inbox: Dict[int, Any] = {i: None for i in active}

    while active:
        round_msgs: List[Message] = []
        dest_owner: Dict[int, int] = {}
        for i in list(active):
            try:
                msgs = active[i].send(inbox[i])
            except StopIteration as stop:
                results[i] = stop.value
                del active[i]
                continue
            for msg in msgs:
                if msg.dest in dest_owner:
                    raise CommunicatorError(
                        f"two parallel schedules both deliver to rank {msg.dest}; "
                        f"their groups overlap"
                    )
                dest_owner[msg.dest] = i
            round_msgs.extend(msgs)

        if not active:
            break

        deliveries = machine.exchange(round_msgs)
        inbox = {i: {} for i in active}
        for dest, payload in deliveries.items():
            inbox[dest_owner[dest]][dest] = payload

    return results


def run_schedule(machine: Machine, schedule: Schedule) -> Any:
    """Execute a single schedule to completion and return its result."""
    return run_schedules(machine, [schedule])[0]


def merge_schedules(schedules: Sequence[Schedule]) -> Schedule:
    """Compose several disjoint-group schedules into one schedule.

    Like :func:`run_schedules` but *itself a schedule*: the merged rounds
    are yielded upward instead of executed, so recursive algorithms (e.g.
    the CARMA-style baseline) can run their sub-recursions' communication
    concurrently — round ``t`` of every branch lands in the same physical
    network round, keeping critical-path accounting honest.

    Returns (as the generator's value) the list of the schedules' results
    in input order.
    """
    scheds = list(schedules)
    results: List[Any] = [None] * len(scheds)
    active: Dict[int, Schedule] = dict(enumerate(scheds))
    inbox: Dict[int, Any] = {i: None for i in active}

    while active:
        round_msgs: List[Message] = []
        dest_owner: Dict[int, int] = {}
        for i in list(active):
            try:
                msgs = active[i].send(inbox[i])
            except StopIteration as stop:
                results[i] = stop.value
                del active[i]
                continue
            for msg in msgs:
                if msg.dest in dest_owner:
                    raise CommunicatorError(
                        f"two merged schedules both deliver to rank {msg.dest}; "
                        f"their groups overlap"
                    )
                dest_owner[msg.dest] = i
            round_msgs.extend(msgs)

        if not active:
            break

        deliveries = yield round_msgs
        inbox = {i: {} for i in active}
        for dest, payload in (deliveries or {}).items():
            if dest in dest_owner:
                inbox[dest_owner[dest]][dest] = payload

    return results
