"""Collective communication library on the simulated machine.

Implements the standard MPI collectives out of validated point-to-point
rounds, using the bandwidth-optimal algorithms the paper's cost analysis
assumes (ring for arbitrary group sizes; recursive doubling / halving /
bidirectional exchange for powers of two).  All data movement is real —
numpy arrays travel through the network — so the collectives are testable
both for *numerical* output and for *exact* word counts against the
closed-form costs in :mod:`repro.collectives.cost_formulas`.
"""

from .allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
    allgather_schedule,
)
from .allreduce import allreduce_recursive_doubling, allreduce_rsag, allreduce_schedule
from .alltoall import alltoall_bruck, alltoall_pairwise, alltoall_schedule
from .barrier import barrier_dissemination
from .broadcast import broadcast_binomial, broadcast_scatter_allgather, broadcast_schedule
from .communicator import (
    Communicator,
    parallel_allgather,
    parallel_allreduce,
    parallel_alltoall,
    parallel_broadcast,
    parallel_reduce_scatter,
)
from .cost_formulas import (
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    broadcast_cost,
    gather_cost,
    reduce_cost,
    reduce_scatter_cost,
    scatter_cost,
)
from .gather import gather_binomial, gather_schedule
from .ops import REDUCE_OPS, op_name, register_reduce_op, resolve_op
from .reduce import reduce_binomial, reduce_schedule
from .reduce_scatter import (
    reduce_scatter_recursive_halving,
    reduce_scatter_ring,
    reduce_scatter_schedule,
)
from .scatter import scatter_binomial, scatter_schedule
from .schedules import ceil_log2, group_index, is_power_of_two, run_schedule, run_schedules

__all__ = [
    "Communicator",
    "allgather_bruck",
    "allgather_cost",
    "allgather_recursive_doubling",
    "allgather_ring",
    "allgather_schedule",
    "allreduce_cost",
    "allreduce_recursive_doubling",
    "allreduce_rsag",
    "allreduce_schedule",
    "alltoall_bruck",
    "alltoall_cost",
    "alltoall_pairwise",
    "alltoall_schedule",
    "barrier_cost",
    "barrier_dissemination",
    "broadcast_binomial",
    "broadcast_cost",
    "broadcast_scatter_allgather",
    "broadcast_schedule",
    "ceil_log2",
    "gather_binomial",
    "gather_cost",
    "gather_schedule",
    "group_index",
    "is_power_of_two",
    "REDUCE_OPS",
    "op_name",
    "parallel_allgather",
    "parallel_allreduce",
    "parallel_alltoall",
    "parallel_broadcast",
    "parallel_reduce_scatter",
    "reduce_binomial",
    "reduce_cost",
    "reduce_schedule",
    "register_reduce_op",
    "resolve_op",
    "reduce_scatter_cost",
    "reduce_scatter_recursive_halving",
    "reduce_scatter_ring",
    "reduce_scatter_schedule",
    "run_schedule",
    "run_schedules",
    "scatter_binomial",
    "scatter_cost",
    "scatter_schedule",
]
