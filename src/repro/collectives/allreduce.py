"""All-Reduce schedules.

``reduce_scatter_allgather``
    The bandwidth-optimal composition (Rabenseifner): Reduce-Scatter on
    ``p`` flat pieces followed by an All-Gather.  Per-processor bandwidth
    ``2 (1 - 1/p) w`` for a ``w``-word value; works for any ``p`` via the
    ring variants.

``recursive_doubling``
    ``log2 p`` rounds each exchanging the full ``w`` words (bandwidth
    ``w log2 p``); lower latency, power-of-two groups only.

All-Reduce appears in the CARMA-style recursive baseline (combining partial
``C`` contributions after a contraction-dimension split).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.machine import Machine
from ..machine.message import Message
from .allgather import allgather_ring
from .ops import resolve_op
from .reduce_scatter import reduce_scatter_ring
from .schedules import Schedule, is_power_of_two

__all__ = ["allreduce_rsag", "allreduce_recursive_doubling", "allreduce_schedule"]


def _check_values(group: Sequence[int], values: Mapping[int, np.ndarray]) -> np.ndarray:
    missing = [r for r in group if r not in values]
    if missing:
        raise CommunicatorError(f"allreduce: no value for ranks {missing}")
    shape = as_block(values[group[0]]).shape
    for r in group[1:]:
        if as_block(values[r]).shape != shape:
            raise CommunicatorError(
                f"allreduce: shape mismatch between rank {group[0]} {shape} "
                f"and rank {r} {as_block(values[r]).shape}"
            )
    return shape


def allreduce_rsag(
    group: Sequence[int],
    values: Mapping[int, np.ndarray],
    machine: Machine = None,
    tag: str = "allreduce",
    op="sum",
) -> Schedule:
    """Reduce-Scatter + All-Gather All-Reduce (any group size).

    ``op`` selects the reduction (``sum``/``max``/``min``/``prod`` or a
    callable).  Returns ``{rank: reduced value}``.
    """
    group = tuple(group)
    p = len(group)
    shape = _check_values(group, values)
    if p == 1:
        return {group[0]: as_block(values[group[0]], dtype=float).copy()}

    splits = {
        r: np.array_split(as_block(values[r], dtype=float).reshape(-1), p) for r in group
    }
    reduced = yield from reduce_scatter_ring(
        group, splits, machine=machine, tag=tag + "/rs", op=op
    )
    gathered = yield from allgather_ring(
        group, {r: reduced[r] for r in group}, tag=tag + "/ag"
    )
    return {
        r: np.concatenate([as_block(c).reshape(-1) for c in gathered[r]]).reshape(shape)
        for r in group
    }


def allreduce_recursive_doubling(
    group: Sequence[int],
    values: Mapping[int, np.ndarray],
    machine: Machine = None,
    tag: str = "allreduce",
    op="sum",
) -> Schedule:
    """Recursive-doubling All-Reduce (power-of-two groups).

    Each round, partners ``i`` and ``i XOR 2**s`` exchange their full
    partial sums and add.
    """
    group = tuple(group)
    p = len(group)
    if not is_power_of_two(p):
        raise CommunicatorError(
            f"recursive-doubling allreduce requires a power-of-two group, got p={p}"
        )
    _check_values(group, values)
    combine = resolve_op(op)
    partial = [as_block(values[group[i]], dtype=float).copy() for i in range(p)]

    dist = 1
    while dist < p:
        msgs = [
            Message(src=group[i], dest=group[i ^ dist], payload=partial[i], tag=tag, empty_ok=True)
            for i in range(p)
        ]
        deliveries = yield msgs
        for i in range(p):
            incoming = deliveries[group[i]]
            partial[i] = combine(partial[i], incoming)
            if machine is not None:
                machine.compute(group[i], float(incoming.size))
        dist *= 2

    return {group[i]: partial[i] for i in range(p)}


def allreduce_schedule(
    group: Sequence[int],
    values: Mapping[int, np.ndarray],
    machine: Machine = None,
    algorithm: str = "auto",
    tag: str = "allreduce",
    op="sum",
) -> Schedule:
    """Dispatch to a concrete All-Reduce algorithm.

    ``auto`` picks the bandwidth-optimal Reduce-Scatter + All-Gather
    composition (matching the paper's assumption of bandwidth-optimal
    collectives).
    """
    if algorithm == "auto":
        algorithm = "reduce_scatter_allgather"
    if algorithm == "reduce_scatter_allgather":
        return allreduce_rsag(group, values, machine=machine, tag=tag, op=op)
    if algorithm == "recursive_doubling":
        return allreduce_recursive_doubling(group, values, machine=machine, tag=tag, op=op)
    raise CommunicatorError(f"unknown allreduce algorithm {algorithm!r}")
