"""All-Gather schedules.

An All-Gather over a group of ``p`` processors, where member ``j`` starts
with a chunk of ``w_j`` words, ends with every member holding all ``p``
chunks.  With equal chunks of ``w = W/p`` words (``W`` the gathered total),
the bandwidth-optimal cost is ``(1 - 1/p) * W`` words — the figure used in
the paper's cost analysis of Algorithm 1 (Section 5.1, citing Thakur et al.
2005 and Chan et al. 2007).

Two bandwidth-optimal algorithms are provided:

``ring``
    ``p - 1`` rounds; works for any ``p`` (and any ragged chunk sizes).
``recursive_doubling``
    ``log2 p`` rounds (the *bidirectional exchange* algorithm); requires
    ``p`` to be a power of two.

Both move exactly ``(1 - 1/p) W`` words per processor for equal chunks, so
the choice only affects the latency term — which is precisely the ablation
``benchmarks/bench_collectives.py`` reports.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.message import Message
from .schedules import Schedule, is_power_of_two

__all__ = [
    "allgather_ring",
    "allgather_recursive_doubling",
    "allgather_bruck",
    "allgather_schedule",
]


def _check_chunks(group: Sequence[int], chunks: Mapping[int, np.ndarray]) -> None:
    missing = [r for r in group if r not in chunks]
    if missing:
        raise CommunicatorError(f"allgather: no input chunk for ranks {missing}")


def allgather_ring(
    group: Sequence[int],
    chunks: Mapping[int, np.ndarray],
    tag: str = "allgather",
) -> Schedule:
    """Ring All-Gather for any group size.

    Round ``t`` (``t = 0 .. p-2``): member ``i`` forwards the chunk that
    originated at member ``(i - t) mod p`` to member ``(i + 1) mod p``.
    After ``p - 1`` rounds everyone holds every chunk.

    Returns (as the generator's value) ``{rank: [chunk_0, ..., chunk_{p-1}]}``
    with chunks ordered by group position.
    """
    group = tuple(group)
    p = len(group)
    _check_chunks(group, chunks)
    held: List[Dict[int, np.ndarray]] = [{i: as_block(chunks[group[i]])} for i in range(p)]

    for t in range(p - 1):
        msgs = []
        for i in range(p):
            origin = (i - t) % p
            msgs.append(
                Message(
                    src=group[i],
                    dest=group[(i + 1) % p],
                    payload=held[i][origin],
                    tag=tag,
                    empty_ok=True,
                )
            )
        deliveries = yield msgs
        for i in range(p):
            origin = (i - t - 1) % p
            held[i][origin] = deliveries[group[i]]

    return {group[i]: [held[i][j] for j in range(p)] for i in range(p)}


def allgather_recursive_doubling(
    group: Sequence[int],
    chunks: Mapping[int, np.ndarray],
    tag: str = "allgather",
) -> Schedule:
    """Recursive-doubling (bidirectional exchange) All-Gather.

    Round ``s`` (``s = 0 .. log2(p) - 1``): member ``i`` exchanges all the
    chunks it currently holds with member ``i XOR 2**s``.  Message sizes
    double each round; the total is still ``(1 - 1/p) W`` per processor but
    only ``log2 p`` rounds are needed.  Requires ``p`` to be a power of two.
    """
    group = tuple(group)
    p = len(group)
    if not is_power_of_two(p):
        raise CommunicatorError(
            f"recursive-doubling allgather requires a power-of-two group, got p={p}"
        )
    _check_chunks(group, chunks)
    held: List[Dict[int, np.ndarray]] = [{i: as_block(chunks[group[i]])} for i in range(p)]

    dist = 1
    while dist < p:
        msgs = []
        for i in range(p):
            partner = i ^ dist
            payload = tuple(held[i][j] for j in sorted(held[i]))
            msgs.append(Message(src=group[i], dest=group[partner], payload=payload, tag=tag, empty_ok=True))
        deliveries = yield msgs
        # Snapshot pre-round index sets: held[] mutates as deliveries are
        # applied, and partner pairs are processed in both directions.
        pre_indices = [sorted(held[i].keys()) for i in range(p)]
        for i in range(p):
            partner = i ^ dist
            incoming = deliveries[group[i]]
            for j, arr in zip(pre_indices[partner], incoming):
                held[i][j] = arr
        dist *= 2

    return {group[i]: [held[i][j] for j in range(p)] for i in range(p)}


def allgather_bruck(
    group: Sequence[int],
    chunks: Mapping[int, np.ndarray],
    tag: str = "allgather",
) -> Schedule:
    """Bruck All-Gather: ``ceil(log2 p)`` rounds for *any* group size.

    Round with distance ``d = 1, 2, 4, ...``: member ``i`` sends its first
    ``min(d, p - d)`` accumulated chunks to member ``(i - d) mod p`` and
    receives as many from ``(i + d) mod p``.  After the last round member
    ``i`` holds the chunks of members ``i, i+1, ..., i+p-1 (mod p)``; a
    free local rotation restores group order.  Per-processor bandwidth is
    the optimal ``(1 - 1/p) W`` like the ring, but with logarithmic
    latency even when ``p`` is not a power of two (where recursive
    doubling does not apply).
    """
    group = tuple(group)
    p = len(group)
    _check_chunks(group, chunks)
    held: List[List[np.ndarray]] = [[as_block(chunks[group[i]])] for i in range(p)]

    d = 1
    while d < p:
        count = min(d, p - d)
        msgs = []
        for i in range(p):
            payload = tuple(held[i][:count])
            msgs.append(
                Message(src=group[i], dest=group[(i - d) % p], payload=payload, tag=tag, empty_ok=True)
            )
        deliveries = yield msgs
        for i in range(p):
            held[i].extend(deliveries[group[i]])
        d *= 2

    # Member i's list is [chunk_i, chunk_{i+1}, ..., chunk_{i+p-1}] (mod p):
    # rotate locally into group order (no communication).
    return {
        group[i]: [held[i][(j - i) % p] for j in range(p)] for i in range(p)
    }


def allgather_schedule(
    group: Sequence[int],
    chunks: Mapping[int, np.ndarray],
    algorithm: str = "auto",
    tag: str = "allgather",
) -> Schedule:
    """Dispatch to a concrete All-Gather algorithm.

    ``algorithm`` is ``"ring"``, ``"recursive_doubling"``, ``"bruck"`` or
    ``"auto"`` (recursive doubling when the group size is a power of two —
    fewer rounds at identical bandwidth — otherwise ring).
    """
    p = len(tuple(group))
    if algorithm == "auto":
        algorithm = "recursive_doubling" if is_power_of_two(p) else "ring"
    if algorithm == "ring":
        return allgather_ring(group, chunks, tag=tag)
    if algorithm == "recursive_doubling":
        return allgather_recursive_doubling(group, chunks, tag=tag)
    if algorithm == "bruck":
        return allgather_bruck(group, chunks, tag=tag)
    raise CommunicatorError(f"unknown allgather algorithm {algorithm!r}")
