"""All-to-All (personalized exchange).

Member ``i`` starts with ``p`` blocks, block ``j`` destined to member ``j``;
everyone ends holding the ``p`` blocks addressed to them.  The pairwise
(rotation) algorithm runs ``p - 1`` rounds: in round ``t``, member ``i``
sends its block for member ``(i + t) mod p`` and receives from
``(i - t) mod p``.  Per-processor bandwidth ``(1 - 1/p) W``.

The original 3D algorithm of Agarwal et al. (1995) finishes with an
All-to-All; the paper's Algorithm 1 replaces it by a Reduce-Scatter, which
moves the same number of words but in fewer rounds (``log2 p`` vs ``p - 1``
for power-of-two groups) — the ablation ``benchmarks/bench_rs_vs_a2a.py``
reproduces that comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.message import Message
from .schedules import Schedule

__all__ = ["alltoall_pairwise", "alltoall_bruck", "alltoall_schedule"]


def alltoall_pairwise(
    group: Sequence[int],
    blocks: Mapping[int, Sequence[np.ndarray]],
    tag: str = "alltoall",
) -> Schedule:
    """Pairwise-rotation All-to-All for any group size.

    Returns ``{rank: [block from member 0, ..., block from member p-1]}``.
    """
    group = tuple(group)
    p = len(group)
    for r in group:
        if r not in blocks:
            raise CommunicatorError(f"alltoall: no input blocks for rank {r}")
        if len(blocks[r]) != p:
            raise CommunicatorError(
                f"alltoall: rank {r} supplied {len(blocks[r])} blocks, expected p={p}"
            )

    received = [[None] * p for _ in range(p)]
    for i in range(p):
        received[i][i] = as_block(blocks[group[i]][i]).copy()

    for t in range(1, p):
        msgs = []
        for i in range(p):
            dest = (i + t) % p
            msgs.append(
                Message(
                    src=group[i],
                    dest=group[dest],
                    payload=as_block(blocks[group[i]][dest]),
                    tag=tag,
                    empty_ok=True,
                )
            )
        deliveries = yield msgs
        for i in range(p):
            src = (i - t) % p
            received[i][src] = deliveries[group[i]]

    return {group[i]: list(received[i]) for i in range(p)}


def alltoall_bruck(
    group: Sequence[int],
    blocks: Mapping[int, Sequence[np.ndarray]],
    tag: str = "alltoall",
) -> Schedule:
    """Bruck All-to-All: ``ceil(log2 p)`` rounds at ``~(w/2) log2 p`` words.

    The short-message algorithm: in the round with distance ``d``, member
    ``i`` forwards to ``(i - d) mod p`` every block whose remaining route
    has the ``d`` bit set.  Latency drops from ``p - 1`` to
    ``ceil(log2 p)`` rounds but each block travels ``popcount(route)``
    hops, so the per-processor bandwidth grows from ``(1 - 1/p) W`` to
    about ``(W/2) log2 p`` — the classic latency/bandwidth trade, useful
    when blocks are tiny.
    """
    group = tuple(group)
    p = len(group)
    for r in group:
        if r not in blocks:
            raise CommunicatorError(f"alltoall: no input blocks for rank {r}")
        if len(blocks[r]) != p:
            raise CommunicatorError(
                f"alltoall: rank {r} supplied {len(blocks[r])} blocks, expected p={p}"
            )

    # held[i] maps remaining relative distance -> (origin index, block).
    # Hops go from src to (src - d) mod p, so the block from origin i
    # destined to j travels total distance (i - j) mod p.
    held = [
        {
            (i - j) % p: [(i, as_block(blocks[group[i]][j]).copy())]
            for j in range(p)
        }
        for i in range(p)
    ]
    # Merge distance-0 out immediately (own block stays put).
    received = [[None] * p for _ in range(p)]
    for i in range(p):
        for origin, arr in held[i].pop(0):
            received[i][origin] = arr

    d = 1
    while d < p:
        msgs = []
        send_keys: list = []
        for i in range(p):
            keys = sorted(k for k in held[i] if k & d)
            send_keys.append(keys)
            payload = tuple(arr for k in keys for (_, arr) in held[i][k])
            msgs.append(
                Message(src=group[i], dest=group[(i - d) % p], payload=payload, tag=tag, empty_ok=True)
            )
        deliveries = yield msgs
        for i in range(p):
            sender = (i + d) % p
            incoming = iter(deliveries[group[i]])
            for k in send_keys[sender]:
                for origin, _ in held[sender][k]:
                    arr = next(incoming)
                    remaining = k - d
                    if remaining == 0:
                        received[i][origin] = arr
                    else:
                        held[i].setdefault(remaining, []).append((origin, arr))
        for i in range(p):
            for k in send_keys[i]:
                del held[i][k]
        d *= 2

    return {group[i]: list(received[i]) for i in range(p)}


def alltoall_schedule(
    group: Sequence[int],
    blocks: Mapping[int, Sequence[np.ndarray]],
    algorithm: str = "pairwise",
    tag: str = "alltoall",
) -> Schedule:
    """Dispatch to a concrete All-to-All algorithm.

    ``pairwise`` (default, bandwidth-optimal) or ``bruck`` (logarithmic
    latency at higher bandwidth).
    """
    if algorithm == "pairwise":
        return alltoall_pairwise(group, blocks, tag=tag)
    if algorithm == "bruck":
        return alltoall_bruck(group, blocks, tag=tag)
    raise CommunicatorError(f"unknown alltoall algorithm {algorithm!r}")
