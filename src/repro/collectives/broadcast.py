"""Broadcast schedules.

``binomial``
    The classic binomial tree: ``ceil(log2 p)`` rounds, each transmitting
    the full ``w`` words along the critical path (cost
    ``ceil(log2 p) * (alpha + beta*w)``).  Best for short messages.

``scatter_allgather``
    The van de Geijn long-message algorithm: binomial scatter of ``p``
    pieces followed by a ring All-Gather.  Bandwidth approaches ``2w`` for
    large ``p`` instead of ``w log p``.

Broadcasts appear in the SUMMA and 2.5D baselines (row/column broadcasts of
panels and input replication), not in Algorithm 1 itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.message import Message
from .allgather import allgather_ring
from .schedules import Schedule, group_index

__all__ = ["broadcast_binomial", "broadcast_scatter_allgather", "broadcast_schedule"]


def broadcast_binomial(
    group: Sequence[int],
    root: int,
    value: np.ndarray,
    tag: str = "broadcast",
) -> Schedule:
    """Binomial-tree broadcast of ``value`` from global rank ``root``.

    Returns ``{rank: value copy}`` for every group member.
    """
    group = tuple(group)
    p = len(group)
    root_index = group_index(group, root)
    value = as_block(value)

    # Work in a rotated index space where the root is index 0.
    held = {0: value}
    dist = 1
    while dist < p:
        msgs = []
        senders = [i for i in held if i + dist < p]
        for i in senders:
            src = group[(i + root_index) % p]
            dest = group[(i + dist + root_index) % p]
            msgs.append(Message(src=src, dest=dest, payload=held[i], tag=tag, empty_ok=True))
        deliveries = yield msgs
        for i in senders:
            dest = group[(i + dist + root_index) % p]
            held[i + dist] = deliveries[dest]
        dist *= 2

    return {group[(i + root_index) % p]: held[i] for i in range(p)}


def broadcast_scatter_allgather(
    group: Sequence[int],
    root: int,
    value: np.ndarray,
    tag: str = "broadcast",
) -> Schedule:
    """Long-message broadcast: binomial scatter + ring All-Gather.

    The value is flattened, split into ``p`` nearly equal pieces, scattered
    binomially and re-gathered with a ring.  Each member ends with the full
    value (reshaped to the original shape).
    """
    from .scatter import scatter_binomial  # local import to avoid a cycle

    group = tuple(group)
    p = len(group)
    value = as_block(value)
    flat = value.reshape(-1)
    pieces = np.array_split(flat, p)

    scattered = yield from scatter_binomial(
        group, root, {group[j]: pieces[j] for j in range(p)}, tag=tag + "/scatter"
    )
    gathered = yield from allgather_ring(
        group, {r: scattered[r] for r in group}, tag=tag + "/allgather"
    )
    return {
        r: np.concatenate([as_block(c).reshape(-1) for c in gathered[r]]).reshape(value.shape)
        for r in group
    }


def broadcast_schedule(
    group: Sequence[int],
    root: int,
    value: np.ndarray,
    algorithm: str = "binomial",
    tag: str = "broadcast",
) -> Schedule:
    """Dispatch to a concrete broadcast algorithm."""
    if algorithm == "binomial":
        return broadcast_binomial(group, root, value, tag=tag)
    if algorithm == "scatter_allgather":
        return broadcast_scatter_allgather(group, root, value, tag=tag)
    raise CommunicatorError(f"unknown broadcast algorithm {algorithm!r}")
