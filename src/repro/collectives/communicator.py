"""Communicators: MPI-style groups bound to a simulated machine.

A :class:`Communicator` owns an ordered tuple of global ranks and exposes
the collective operations as methods.  Because the simulator is written in
conductor style, collective inputs are mappings ``global rank -> local
data`` and outputs are mappings ``global rank -> local result`` — the same
information an SPMD program would hold, just gathered in one place.

For algorithms that run the *same* collective across many disjoint groups
simultaneously (e.g. Algorithm 1's All-Gathers along every grid fiber), use
the ``parallel_*`` module functions, which merge the per-group schedules
into shared network rounds so the measured critical path is correct.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.machine import Machine
from .allgather import allgather_schedule
from .allreduce import allreduce_schedule
from .alltoall import alltoall_schedule
from .barrier import barrier_dissemination
from .broadcast import broadcast_schedule
from .gather import gather_schedule
from .ops import op_name
from .reduce import reduce_schedule
from .reduce_scatter import reduce_scatter_schedule
from .scatter import scatter_schedule
from .schedules import Schedule, run_schedule, run_schedules


def _reduce_label(label: str, op) -> str:
    """Tag a reducing collective's trace label with its *registered* op name.

    Spans and ledger-bound traces then show ``[op=min]`` instead of a raw
    ``<ufunc 'minimum'>`` repr.  The default ``sum`` stays untagged so
    existing traces are byte-identical.
    """
    name = op_name(op)
    if name == "sum":
        return label
    return f"{label} [op={name}]" if label else f"[op={name}]"

__all__ = [
    "Communicator",
    "parallel_allgather",
    "parallel_reduce_scatter",
    "parallel_broadcast",
    "parallel_allreduce",
    "parallel_alltoall",
]


class Communicator:
    """A group of processors on a :class:`~repro.machine.machine.Machine`.

    Parameters
    ----------
    machine:
        The machine the group lives on.
    ranks:
        Ordered global ranks forming the group.  Order defines each
        member's *group index* (used by block-addressed collectives).
    """

    def __init__(self, machine: Machine, ranks: Sequence[int]) -> None:
        ranks = tuple(ranks)
        if len(ranks) == 0:
            raise CommunicatorError("a communicator needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise CommunicatorError(f"duplicate ranks in group {ranks}")
        for r in ranks:
            if not 0 <= r < machine.n_procs:
                raise CommunicatorError(
                    f"rank {r} outside the machine's 0..{machine.n_procs - 1}"
                )
        self.machine = machine
        self.ranks = ranks

    # ------------------------------------------------------------------ #
    # group structure                                                    #
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        return len(self.ranks)

    def index(self, rank: int) -> int:
        """Group index of a global rank."""
        try:
            return self.ranks.index(rank)
        except ValueError:
            raise CommunicatorError(f"rank {rank} is not in group {self.ranks}") from None

    def sub(self, ranks: Sequence[int]) -> "Communicator":
        """A sub-communicator over a subset of this group's ranks."""
        for r in ranks:
            if r not in self.ranks:
                raise CommunicatorError(f"rank {r} is not in group {self.ranks}")
        return Communicator(self.machine, ranks)

    def split(self, key: Callable[[int], Any]) -> List["Communicator"]:
        """Partition the group by ``key(rank)``; one communicator per key.

        Communicators are returned sorted by key, ranks in original order.
        """
        buckets: Dict[Any, List[int]] = {}
        for r in self.ranks:
            buckets.setdefault(key(r), []).append(r)
        return [Communicator(self.machine, buckets[k]) for k in sorted(buckets)]

    # ------------------------------------------------------------------ #
    # collectives                                                        #
    # ------------------------------------------------------------------ #

    def _run(self, schedule: Schedule, kind: str, label: str) -> Any:
        # A measured event span: cost and exact per-rank word/message deltas
        # are captured from machine counter snapshots on entry/exit.
        with self.machine.trace.measure(label, kind, groups=(self.ranks,)):
            result = run_schedule(self.machine, schedule)
        return result

    def allgather(
        self,
        chunks: Mapping[int, np.ndarray],
        algorithm: str = "auto",
        label: str = "",
    ) -> Dict[int, List[np.ndarray]]:
        """All-Gather: every member ends with all members' chunks (group order)."""
        return self._run(
            allgather_schedule(self.ranks, chunks, algorithm=algorithm),
            "allgather",
            label,
        )

    def reduce_scatter(
        self,
        blocks: Mapping[int, Sequence[np.ndarray]],
        algorithm: str = "auto",
        label: str = "",
        op="sum",
    ) -> Dict[int, np.ndarray]:
        """Reduce-Scatter: member ``j`` ends with the reduction of block ``j``."""
        return self._run(
            reduce_scatter_schedule(
                self.ranks, blocks, machine=self.machine, algorithm=algorithm, op=op
            ),
            "reduce-scatter",
            _reduce_label(label, op),
        )

    def broadcast(
        self,
        root: int,
        value: np.ndarray,
        algorithm: str = "binomial",
        label: str = "",
    ) -> Dict[int, np.ndarray]:
        """Broadcast ``value`` from global rank ``root`` to the group."""
        return self._run(
            broadcast_schedule(self.ranks, root, value, algorithm=algorithm),
            "broadcast",
            label,
        )

    def reduce(
        self,
        root: int,
        values: Mapping[int, np.ndarray],
        label: str = "",
        op="sum",
    ) -> Dict[int, Optional[np.ndarray]]:
        """Reduce ``values`` across the group; result lands at ``root``."""
        return self._run(
            reduce_schedule(self.ranks, root, values, machine=self.machine, op=op),
            "reduce",
            _reduce_label(label, op),
        )

    def allreduce(
        self,
        values: Mapping[int, np.ndarray],
        algorithm: str = "auto",
        label: str = "",
        op="sum",
    ) -> Dict[int, np.ndarray]:
        """Reduce ``values`` across the group; everyone gets the result."""
        return self._run(
            allreduce_schedule(self.ranks, values, machine=self.machine,
                               algorithm=algorithm, op=op),
            "allreduce",
            _reduce_label(label, op),
        )

    def scatter(
        self,
        root: int,
        blocks: Mapping[int, np.ndarray],
        label: str = "",
    ) -> Dict[int, np.ndarray]:
        """Scatter per-member blocks from ``root``."""
        return self._run(scatter_schedule(self.ranks, root, blocks), "scatter", label)

    def gather(
        self,
        root: int,
        chunks: Mapping[int, np.ndarray],
        label: str = "",
    ) -> Dict[int, Optional[List[np.ndarray]]]:
        """Gather every member's chunk to ``root`` (group order)."""
        return self._run(gather_schedule(self.ranks, root, chunks), "gather", label)

    def alltoall(
        self,
        blocks: Mapping[int, Sequence[np.ndarray]],
        label: str = "",
    ) -> Dict[int, List[np.ndarray]]:
        """Personalized all-to-all exchange."""
        return self._run(alltoall_schedule(self.ranks, blocks), "alltoall", label)

    def barrier(self, label: str = "") -> Dict[int, bool]:
        """Dissemination barrier (latency only)."""
        return self._run(barrier_dissemination(self.ranks), "barrier", label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(size={self.size}, ranks={self.ranks})"


# ---------------------------------------------------------------------- #
# parallel (multi-group) collectives                                     #
# ---------------------------------------------------------------------- #


def _run_parallel(
    machine: Machine,
    schedules: List[Schedule],
    groups: Sequence[Sequence[int]],
    kind: str,
    label: str,
) -> List[Any]:
    with machine.trace.measure(
        label, kind, groups=tuple(tuple(g) for g in groups)
    ):
        results = run_schedules(machine, schedules)
    return results


def parallel_allgather(
    machine: Machine,
    groups: Sequence[Sequence[int]],
    chunks: Mapping[int, np.ndarray],
    algorithm: str = "auto",
    label: str = "",
) -> Dict[int, List[np.ndarray]]:
    """All-Gather over several disjoint groups in merged rounds.

    ``chunks`` maps every participating global rank to its chunk; the
    result maps every rank to the list of its group's chunks.  This is how
    Algorithm 1 runs the All-Gather of, say, ``A`` across all ``p1*p2``
    fibers ``(p1', p2', :)`` *simultaneously*, as a real SPMD program would.
    """
    schedules = [
        allgather_schedule(g, {r: chunks[r] for r in g}, algorithm=algorithm) for g in groups
    ]
    results = _run_parallel(machine, schedules, groups, "allgather", label)
    merged: Dict[int, List[np.ndarray]] = {}
    for res in results:
        merged.update(res)
    return merged


def parallel_reduce_scatter(
    machine: Machine,
    groups: Sequence[Sequence[int]],
    blocks: Mapping[int, Sequence[np.ndarray]],
    algorithm: str = "auto",
    label: str = "",
    op="sum",
) -> Dict[int, np.ndarray]:
    """Reduce-Scatter over several disjoint groups in merged rounds."""
    schedules = [
        reduce_scatter_schedule(
            g, {r: blocks[r] for r in g}, machine=machine, algorithm=algorithm, op=op
        )
        for g in groups
    ]
    results = _run_parallel(
        machine, schedules, groups, "reduce-scatter", _reduce_label(label, op)
    )
    merged: Dict[int, np.ndarray] = {}
    for res in results:
        merged.update(res)
    return merged


def parallel_broadcast(
    machine: Machine,
    groups: Sequence[Sequence[int]],
    roots: Sequence[int],
    values: Mapping[int, np.ndarray],
    algorithm: str = "binomial",
    label: str = "",
) -> Dict[int, np.ndarray]:
    """Broadcast over several disjoint groups (``roots[i]`` for ``groups[i]``)."""
    schedules = [
        broadcast_schedule(g, root, values[root], algorithm=algorithm)
        for g, root in zip(groups, roots)
    ]
    results = _run_parallel(machine, schedules, groups, "broadcast", label)
    merged: Dict[int, np.ndarray] = {}
    for res in results:
        merged.update(res)
    return merged


def parallel_allreduce(
    machine: Machine,
    groups: Sequence[Sequence[int]],
    values: Mapping[int, np.ndarray],
    algorithm: str = "auto",
    label: str = "",
    op="sum",
) -> Dict[int, np.ndarray]:
    """All-Reduce over several disjoint groups in merged rounds."""
    schedules = [
        allreduce_schedule(g, {r: values[r] for r in g}, machine=machine,
                           algorithm=algorithm, op=op)
        for g in groups
    ]
    results = _run_parallel(
        machine, schedules, groups, "allreduce", _reduce_label(label, op)
    )
    merged: Dict[int, np.ndarray] = {}
    for res in results:
        merged.update(res)
    return merged


def parallel_alltoall(
    machine: Machine,
    groups: Sequence[Sequence[int]],
    blocks: Mapping[int, Sequence[np.ndarray]],
    label: str = "",
) -> Dict[int, List[np.ndarray]]:
    """All-to-All over several disjoint groups in merged rounds."""
    schedules = [alltoall_schedule(g, {r: blocks[r] for r in g}) for g in groups]
    results = _run_parallel(machine, schedules, groups, "alltoall", label)
    merged: Dict[int, List[np.ndarray]] = {}
    for res in results:
        merged.update(res)
    return merged
