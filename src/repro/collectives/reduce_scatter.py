"""Reduce-Scatter schedules.

A Reduce-Scatter over ``p`` processors, where each member starts with ``p``
blocks (block ``j`` destined for group member ``j``), computes the
element-wise sum of each block across members and leaves member ``j``
holding only the reduced block ``j``.  With each member starting from ``W``
words (``p`` blocks of ``w = W/p``), the bandwidth-optimal cost is
``(1 - 1/p) * W`` words per processor — the figure used in the paper's cost
analysis (Section 5.1).  The receiving processor also performs
``(1 - 1/p) W`` additions, which the paper notes is dominated by the local
GEMM; we charge those to the flop counters.

Algorithms:

``ring``
    ``p - 1`` rounds, any group size.
``recursive_halving``
    ``log2 p`` rounds, power-of-two groups.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.machine import Machine
from ..machine.message import Message
from .ops import resolve_op
from .schedules import Schedule, is_power_of_two

__all__ = [
    "reduce_scatter_ring",
    "reduce_scatter_recursive_halving",
    "reduce_scatter_schedule",
]


def _check_blocks(group: Sequence[int], blocks: Mapping[int, Sequence[np.ndarray]]) -> None:
    p = len(group)
    for rank in group:
        if rank not in blocks:
            raise CommunicatorError(f"reduce_scatter: no input blocks for rank {rank}")
        if len(blocks[rank]) != p:
            raise CommunicatorError(
                f"reduce_scatter: rank {rank} supplied {len(blocks[rank])} blocks, "
                f"expected one per group member (p={p})"
            )
    shapes = [tuple(as_block(b).shape) for b in blocks[group[0]]]
    for rank in group[1:]:
        other = [tuple(as_block(b).shape) for b in blocks[rank]]
        if other != shapes:
            raise CommunicatorError(
                f"reduce_scatter: block shapes differ between ranks "
                f"{group[0]} ({shapes}) and {rank} ({other})"
            )


def reduce_scatter_ring(
    group: Sequence[int],
    blocks: Mapping[int, Sequence[np.ndarray]],
    machine: Machine = None,
    tag: str = "reduce-scatter",
    op="sum",
) -> Schedule:
    """Ring Reduce-Scatter for any group size.

    Block ``b``'s partial sum travels the ring starting at member
    ``(b + 1) mod p``; each host adds its own contribution, and after
    ``p - 1`` hops the fully reduced block arrives at member ``b``.

    ``machine`` (optional) is used only to charge the reduction flops to
    the receiving processors.

    Returns ``{rank: reduced block for that rank}``.
    """
    group = tuple(group)
    p = len(group)
    _check_blocks(group, blocks)
    combine = resolve_op(op)
    own: List[List[np.ndarray]] = [
        [as_block(b, dtype=float) for b in blocks[group[i]]] for i in range(p)
    ]
    if p == 1:
        return {group[0]: own[0][0].copy()}

    # carry[i]: the traveling partial currently hosted by member i.
    carry: List[np.ndarray] = [own[i][(i - 1) % p].copy() for i in range(p)]

    for t in range(p - 1):
        msgs = [
            Message(src=group[i], dest=group[(i + 1) % p], payload=carry[i], tag=tag, empty_ok=True)
            for i in range(p)
        ]
        deliveries = yield msgs
        for i in range(p):
            block_index = (i - t - 2) % p
            incoming = deliveries[group[i]]
            carry[i] = combine(incoming, own[i][block_index])
            if machine is not None:
                machine.compute(group[i], float(incoming.size))

    # After t = p-2 the partial hosted by member i is block (i - p) % p == i.
    return {group[i]: carry[i] for i in range(p)}


def reduce_scatter_recursive_halving(
    group: Sequence[int],
    blocks: Mapping[int, Sequence[np.ndarray]],
    machine: Machine = None,
    tag: str = "reduce-scatter",
    op="sum",
) -> Schedule:
    """Recursive-halving Reduce-Scatter (power-of-two groups).

    At distance ``d = p/2, p/4, ..., 1`` each member exchanges, with partner
    ``i XOR d``, the partial blocks belonging to the partner's half of the
    index range, then adds the received partials into its own half.  Message
    sizes halve each round; the total is ``(1 - 1/p) W`` words per processor
    in ``log2 p`` rounds.
    """
    group = tuple(group)
    p = len(group)
    if not is_power_of_two(p):
        raise CommunicatorError(
            f"recursive-halving reduce-scatter requires a power-of-two group, got p={p}"
        )
    _check_blocks(group, blocks)
    combine = resolve_op(op)
    partial: List[Dict[int, np.ndarray]] = [
        {j: as_block(blocks[group[i]][j], dtype=float).copy() for j in range(p)}
        for i in range(p)
    ]
    if p == 1:
        return {group[0]: partial[0][0]}

    dist = p // 2
    while dist >= 1:
        msgs = []
        send_sets: List[List[int]] = []
        for i in range(p):
            # Indices still alive at member i whose dist-bit differs from i's
            # belong to the partner's half.
            to_send = sorted(j for j in partial[i] if (j & dist) != (i & dist))
            send_sets.append(to_send)
            payload = tuple(partial[i][j] for j in to_send)
            msgs.append(Message(src=group[i], dest=group[i ^ dist], payload=payload, tag=tag, empty_ok=True))
        deliveries = yield msgs
        for i in range(p):
            partner = i ^ dist
            incoming = deliveries[group[i]]
            for j, arr in zip(send_sets[partner], incoming):
                partial[i][j] = combine(partial[i][j], arr)
                if machine is not None:
                    machine.compute(group[i], float(arr.size))
            for j in send_sets[i]:
                del partial[i][j]
        dist //= 2

    return {group[i]: partial[i][i] for i in range(p)}


def reduce_scatter_schedule(
    group: Sequence[int],
    blocks: Mapping[int, Sequence[np.ndarray]],
    machine: Machine = None,
    algorithm: str = "auto",
    tag: str = "reduce-scatter",
    op="sum",
) -> Schedule:
    """Dispatch to a concrete Reduce-Scatter algorithm (see module doc)."""
    p = len(tuple(group))
    if algorithm == "auto":
        algorithm = "recursive_halving" if is_power_of_two(p) else "ring"
    if algorithm == "ring":
        return reduce_scatter_ring(group, blocks, machine=machine, tag=tag, op=op)
    if algorithm == "recursive_halving":
        return reduce_scatter_recursive_halving(group, blocks, machine=machine, tag=tag, op=op)
    raise CommunicatorError(f"unknown reduce_scatter algorithm {algorithm!r}")
