"""Closed-form costs of the collective algorithms.

These are the textbook expressions (Thakur et al. 2005; Chan et al. 2007)
that the paper's Section 5.1 cost analysis relies on — in particular that a
bandwidth-optimal All-Gather or Reduce-Scatter over ``p`` processors costs

    ``beta * (1 - 1/p) * w``

words, where ``w`` is the data held per processor *after* the All-Gather or
*before* the Reduce-Scatter.  The test suite asserts that every simulated
collective's measured cost equals these formulas **exactly** (word counts
are integers in the equal-chunk case), which is what justifies using the
formulas inside :mod:`repro.algorithms.cost_models`.

All functions return a :class:`~repro.machine.cost.Cost` (rounds + words;
flops only where the collective itself reduces).
"""

from __future__ import annotations

from ..machine.cost import Cost
from .schedules import ceil_log2, is_power_of_two

__all__ = [
    "allgather_cost",
    "reduce_scatter_cost",
    "broadcast_cost",
    "reduce_cost",
    "allreduce_cost",
    "alltoall_cost",
    "gather_cost",
    "scatter_cost",
    "barrier_cost",
]


def _bandwidth_optimal_words(p: int, total_words: float) -> float:
    """The ``(1 - 1/p) * W`` term common to AG / RS / A2A.

    Computed as ``W * (p - 1) / p`` so integer word counts stay exact in
    floating point (e.g. ``9 * 2 / 3 == 6.0`` exactly).
    """
    return total_words * (p - 1) / p


def allgather_cost(p: int, total_words: float, algorithm: str = "auto") -> Cost:
    """Cost of All-Gather over ``p`` procs ending with ``total_words`` each.

    ``ring``: ``p - 1`` rounds; ``recursive_doubling``: ``log2 p`` rounds.
    Bandwidth is ``(1 - 1/p) * total_words`` either way.
    """
    if p < 1:
        raise ValueError(f"p must be positive, got {p}")
    if p == 1:
        return Cost()
    if algorithm == "auto":
        algorithm = "recursive_doubling" if is_power_of_two(p) else "ring"
    words = _bandwidth_optimal_words(p, total_words)
    if algorithm == "ring":
        return Cost(rounds=p - 1, words=words)
    if algorithm == "recursive_doubling":
        if not is_power_of_two(p):
            raise ValueError(f"recursive doubling needs a power of two, got p={p}")
        return Cost(rounds=ceil_log2(p), words=words)
    if algorithm == "bruck":
        return Cost(rounds=ceil_log2(p), words=words)
    raise ValueError(f"unknown allgather algorithm {algorithm!r}")


def reduce_scatter_cost(p: int, total_words: float, algorithm: str = "auto") -> Cost:
    """Cost of Reduce-Scatter over ``p`` procs starting with ``total_words`` each.

    Bandwidth ``(1 - 1/p) * total_words``; the receiver also performs the
    same number of additions (charged as flops).
    """
    if p < 1:
        raise ValueError(f"p must be positive, got {p}")
    if p == 1:
        return Cost()
    if algorithm == "auto":
        algorithm = "recursive_halving" if is_power_of_two(p) else "ring"
    words = _bandwidth_optimal_words(p, total_words)
    if algorithm == "ring":
        return Cost(rounds=p - 1, words=words, flops=words)
    if algorithm == "recursive_halving":
        if not is_power_of_two(p):
            raise ValueError(f"recursive halving needs a power of two, got p={p}")
        return Cost(rounds=ceil_log2(p), words=words, flops=words)
    raise ValueError(f"unknown reduce_scatter algorithm {algorithm!r}")


def broadcast_cost(p: int, words: float, algorithm: str = "binomial") -> Cost:
    """Cost of broadcasting ``words`` to ``p`` processors."""
    if p == 1:
        return Cost()
    if algorithm == "binomial":
        q = ceil_log2(p)
        return Cost(rounds=q, words=q * words)
    if algorithm == "scatter_allgather":
        scatter = scatter_cost(p, words)
        gather = allgather_cost(p, words, algorithm="ring")
        return scatter + gather
    raise ValueError(f"unknown broadcast algorithm {algorithm!r}")


def reduce_cost(p: int, words: float, algorithm: str = "binomial") -> Cost:
    """Cost of a binomial-tree reduction of a ``words``-sized value."""
    if p == 1:
        return Cost()
    if algorithm == "binomial":
        q = ceil_log2(p)
        return Cost(rounds=q, words=q * words, flops=q * words)
    raise ValueError(f"unknown reduce algorithm {algorithm!r}")


def allreduce_cost(p: int, words: float, algorithm: str = "auto") -> Cost:
    """Cost of an All-Reduce of a ``words``-sized value."""
    if p == 1:
        return Cost()
    if algorithm == "auto":
        algorithm = "reduce_scatter_allgather"
    if algorithm == "reduce_scatter_allgather":
        rs = reduce_scatter_cost(p, words, algorithm="ring")
        ag = allgather_cost(p, words, algorithm="ring")
        return rs + ag
    if algorithm == "recursive_doubling":
        if not is_power_of_two(p):
            raise ValueError(f"recursive doubling needs a power of two, got p={p}")
        q = ceil_log2(p)
        return Cost(rounds=q, words=q * words, flops=q * words)
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def alltoall_cost(p: int, total_words: float, algorithm: str = "pairwise") -> Cost:
    """Cost of an All-to-All where each proc starts with ``total_words``.

    ``pairwise``: ``p - 1`` rounds, bandwidth ``(1 - 1/p) W``.
    ``bruck``: ``ceil(log2 p)`` rounds; each block travels once per set bit
    of its route, so the per-processor words are
    ``(W/p) * sum_{j=1}^{p-1} popcount(j)``, approximately ``(W/2) log2 p``.
    """
    if p == 1:
        return Cost()
    if algorithm == "pairwise":
        return Cost(rounds=p - 1, words=_bandwidth_optimal_words(p, total_words))
    if algorithm == "bruck":
        hops = sum(bin(j).count("1") for j in range(1, p))
        return Cost(rounds=ceil_log2(p), words=total_words * hops / p)
    raise ValueError(f"unknown alltoall algorithm {algorithm!r}")


def gather_cost(p: int, total_words: float) -> Cost:
    """Cost of a binomial gather of ``total_words`` (equal chunks) to the root."""
    if p == 1:
        return Cost()
    return Cost(rounds=ceil_log2(p), words=_bandwidth_optimal_words(p, total_words))


def scatter_cost(p: int, total_words: float) -> Cost:
    """Cost of a binomial scatter of ``total_words`` (equal blocks) from the root."""
    if p == 1:
        return Cost()
    return Cost(rounds=ceil_log2(p), words=_bandwidth_optimal_words(p, total_words))


def barrier_cost(p: int) -> Cost:
    """Cost of a dissemination barrier: pure latency."""
    if p == 1:
        return Cost()
    return Cost(rounds=ceil_log2(p), words=0.0)
