"""Binomial-tree Reduce.

Element-wise sum of equal-shaped arrays, delivered to the root after
``ceil(log2 p)`` rounds of ``w`` words each.  Reduction flops are charged to
the receiving processors when a machine is supplied.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.machine import Machine
from ..machine.message import Message
from .ops import resolve_op
from .schedules import Schedule, group_index

__all__ = ["reduce_binomial", "reduce_schedule"]


def reduce_binomial(
    group: Sequence[int],
    root: int,
    values: Mapping[int, np.ndarray],
    machine: Machine = None,
    tag: str = "reduce",
    op="sum",
) -> Schedule:
    """Reduce ``values`` across the group with ``op`` (default elementwise
    sum), leaving the result at ``root``.

    ``op`` is a name from :data:`repro.collectives.ops.REDUCE_OPS`
    (``sum``/``max``/``min``/``prod``) or any associative commutative
    callable.  Returns ``{root: reduction}`` (other ranks map to ``None``).
    """
    combine = resolve_op(op)
    group = tuple(group)
    p = len(group)
    root_index = group_index(group, root)
    missing = [r for r in group if r not in values]
    if missing:
        raise CommunicatorError(f"reduce: no value for ranks {missing}")
    shape = as_block(values[group[0]]).shape
    for r in group[1:]:
        if as_block(values[r]).shape != shape:
            raise CommunicatorError(
                f"reduce: shape mismatch between rank {group[0]} {shape} and "
                f"rank {r} {as_block(values[r]).shape}"
            )

    def rot(i: int) -> int:
        return group[(i + root_index) % p]

    partial: Dict[int, np.ndarray] = {
        i: as_block(values[rot(i)], dtype=float).copy() for i in range(p)
    }

    dist = 1
    while dist < p:
        senders = [i for i in sorted(partial) if i % (2 * dist) == dist]
        msgs = [
            Message(src=rot(i), dest=rot(i - dist), payload=partial[i], tag=tag, empty_ok=True)
            for i in senders
        ]
        if msgs:
            deliveries = yield msgs
            for i in senders:
                dest_idx = i - dist
                incoming = deliveries[rot(dest_idx)]
                partial[dest_idx] = combine(partial[dest_idx], incoming)
                if machine is not None:
                    machine.compute(rot(dest_idx), float(incoming.size))
                del partial[i]
        dist *= 2

    result: Dict[int, object] = {r: None for r in group}
    result[root] = partial[0]
    return result


def reduce_schedule(
    group: Sequence[int],
    root: int,
    values: Mapping[int, np.ndarray],
    machine: Machine = None,
    algorithm: str = "binomial",
    tag: str = "reduce",
    op="sum",
) -> Schedule:
    """Dispatch to a concrete reduce algorithm (only binomial provided)."""
    if algorithm == "binomial":
        return reduce_binomial(group, root, values, machine=machine, tag=tag, op=op)
    raise CommunicatorError(f"unknown reduce algorithm {algorithm!r}")
