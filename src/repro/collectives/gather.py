"""Binomial-tree Gather (the mirror image of scatter).

After ``ceil(log2 p)`` rounds the root holds every member's chunk.  In the
equal-chunk case the root receives ``(1 - 1/p) W`` words with ``W`` the
gathered total.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.message import Message
from .schedules import Schedule, group_index

__all__ = ["gather_binomial", "gather_schedule"]


def gather_binomial(
    group: Sequence[int],
    root: int,
    chunks: Mapping[int, np.ndarray],
    tag: str = "gather",
) -> Schedule:
    """Gather each member's chunk to ``root``.

    Returns ``{root: [chunk_0, ..., chunk_{p-1}]}`` ordered by group
    position (other ranks map to ``None``).
    """
    group = tuple(group)
    p = len(group)
    root_index = group_index(group, root)
    missing = [r for r in group if r not in chunks]
    if missing:
        raise CommunicatorError(f"gather: no chunk for ranks {missing}")

    def rot(i: int) -> int:
        return group[(i + root_index) % p]

    # Rotated index i holds a list of (original group position, chunk).
    holding: Dict[int, List[Tuple[int, np.ndarray]]] = {
        i: [((i + root_index) % p, as_block(chunks[rot(i)]))] for i in range(p)
    }

    dist = 1
    while dist < p:
        msgs = []
        senders = [i for i in sorted(holding) if i % (2 * dist) == dist]
        for i in senders:
            msgs.append(
                Message(
                    src=rot(i),
                    dest=rot(i - dist),
                    payload=tuple(b for (_, b) in holding[i]),
                    tag=tag,
                    empty_ok=True,
                )
            )
        if msgs:
            deliveries = yield msgs
            for i in senders:
                incoming = deliveries[rot(i - dist)]
                pairs = [(j, arr) for (j, _), arr in zip(holding[i], incoming)]
                holding[i - dist].extend(pairs)
                del holding[i]
        dist *= 2

    collected = dict(holding[0])
    ordered = [collected[j] for j in sorted(collected)]
    result: Dict[int, object] = {r: None for r in group}
    result[root] = ordered
    return result


def gather_schedule(
    group: Sequence[int],
    root: int,
    chunks: Mapping[int, np.ndarray],
    algorithm: str = "binomial",
    tag: str = "gather",
) -> Schedule:
    """Dispatch to a concrete gather algorithm (only binomial provided)."""
    if algorithm == "binomial":
        return gather_binomial(group, root, chunks, tag=tag)
    raise CommunicatorError(f"unknown gather algorithm {algorithm!r}")
