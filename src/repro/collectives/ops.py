"""Reduction operators for the reducing collectives.

MPI-style predefined operations.  All are associative and commutative on
elementwise numpy arrays, so every reduction schedule (tree, ring,
halving) computes the same result regardless of combine order.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["REDUCE_OPS", "resolve_op"]

#: name -> elementwise binary operator.
REDUCE_OPS: Dict[str, Callable] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


def resolve_op(op) -> Callable:
    """Accept an operator name or a callable; return the callable.

    Callables must be associative and commutative elementwise binary
    functions (like the numpy ufuncs in :data:`REDUCE_OPS`).
    """
    if callable(op):
        return op
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {op!r}; choose from {sorted(REDUCE_OPS)} "
            f"or pass a callable"
        ) from None
