"""Reduction operators for the reducing collectives.

MPI-style predefined operations.  All are associative and commutative on
elementwise numpy arrays, so every reduction schedule (tree, ring,
halving) computes the same result regardless of combine order.

Operators are *registered by name*: :func:`resolve_op` maps a name to its
callable and :func:`op_name` maps a registered callable back to its name,
so traces and ledger records can say ``"min"`` instead of printing a raw
``<ufunc 'minimum'>`` repr.  Anonymous callables are refused with a typed
:class:`~repro.exceptions.ReduceOpError` — a reduction schedule combines
partials in a schedule-dependent order, so accepting an arbitrary lambda
whose associativity/commutativity nobody vouched for would let two
schedules of the *same* collective silently disagree.  Callables with
known algebra are admitted explicitly via :func:`register_reduce_op`.

The semiring seam (:mod:`repro.machine.semiring`) relies on this registry:
each semiring names its additive reduction (``"sum"`` for ``plus_times``,
``"min"`` for ``min_plus``) and the reducing collectives accumulate with
that operator, which is what makes ``reduce``/``allreduce``/
``reduce_scatter`` correct under min-plus.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ReduceOpError

__all__ = ["REDUCE_OPS", "op_name", "register_reduce_op", "resolve_op"]

#: name -> elementwise binary operator.
REDUCE_OPS: Dict[str, Callable] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}

#: id(callable) -> name, for the reverse lookup.  Keyed by identity, not
#: hash: ufuncs are hashable, but arbitrary registered callables need not be.
_OP_NAMES: Dict[int, str] = {id(fn): name for name, fn in REDUCE_OPS.items()}


def register_reduce_op(name: str, fn: Callable) -> Callable:
    """Register ``fn`` as the reduction operator ``name``.

    The caller vouches that ``fn`` is an associative, commutative
    elementwise binary function (like the numpy ufuncs in
    :data:`REDUCE_OPS`); the collectives cannot check this and every
    reduction schedule assumes it.  Re-registering a name with a different
    callable raises :class:`~repro.exceptions.ReduceOpError` so a typo
    cannot silently shadow a built-in.
    """
    if not callable(fn):
        raise ReduceOpError(f"reduce op {name!r} must be callable, got {fn!r}")
    existing = REDUCE_OPS.get(name)
    if existing is not None and existing is not fn:
        raise ReduceOpError(
            f"reduce op name {name!r} is already registered to {existing!r}"
        )
    REDUCE_OPS[name] = fn
    _OP_NAMES[id(fn)] = name
    return fn


def op_name(op) -> str:
    """The registered name of ``op`` (a name or a registered callable).

    Examples
    --------
    >>> import numpy as np
    >>> op_name("min")
    'min'
    >>> op_name(np.minimum)
    'min'
    """
    if isinstance(op, str):
        if op not in REDUCE_OPS:
            raise ReduceOpError(
                f"unknown reduction op {op!r}; choose from {sorted(REDUCE_OPS)}"
            )
        return op
    name = _OP_NAMES.get(id(op))
    if name is None:
        raise ReduceOpError(
            f"unregistered reduction callable {op!r}; register it with "
            f"register_reduce_op() so schedules can vouch for its algebra "
            f"and traces can record its name"
        )
    return name


def resolve_op(op) -> Callable:
    """Map an operator name (or an already-registered callable) to the callable.

    Only *registered* operators are accepted: names in :data:`REDUCE_OPS`
    or callables previously admitted via :func:`register_reduce_op`.
    Anonymous callables raise :class:`~repro.exceptions.ReduceOpError` —
    the reduction schedules combine partials in a schedule-dependent order,
    so an operator must be associative and commutative, and the registry is
    where that promise is made.
    """
    if isinstance(op, str):
        try:
            return REDUCE_OPS[op]
        except KeyError:
            raise ReduceOpError(
                f"unknown reduction op {op!r}; choose from {sorted(REDUCE_OPS)} "
                f"or register a callable with register_reduce_op()"
            ) from None
    if callable(op):
        if id(op) not in _OP_NAMES:
            raise ReduceOpError(
                f"refusing anonymous reduction callable {op!r}: reduction "
                f"schedules require an associative commutative operator, and "
                f"only registered ones (REDUCE_OPS / register_reduce_op) are "
                f"vouched for"
            )
        return op
    raise ReduceOpError(f"reduction op must be a name or callable, got {op!r}")
