"""Dissemination barrier.

``ceil(log2 p)`` rounds of zero-word messages: in round ``s``, member ``i``
signals member ``(i + 2**s) mod p``.  After the last round every member has
(transitively) heard from everyone.  Costs only latency
(``ceil(log2 p) * alpha``), no bandwidth.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..machine.message import Message
from .schedules import Schedule

__all__ = ["barrier_dissemination"]


def barrier_dissemination(group: Sequence[int], tag: str = "barrier") -> Schedule:
    """Dissemination barrier over ``group``.  Returns ``{rank: True}``."""
    group = tuple(group)
    p = len(group)
    empty = np.empty(0)

    dist = 1
    while dist < p:
        msgs = [
            Message(src=group[i], dest=group[(i + dist) % p], payload=empty,
                    tag=tag, empty_ok=True)
            for i in range(p)
        ]
        yield msgs
        dist *= 2

    return {r: True for r in group}
