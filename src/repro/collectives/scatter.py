"""Binomial-tree Scatter.

The root starts with one block per group member; after ``ceil(log2 p)``
rounds each member holds exactly its own block.  At each step a holder of a
contiguous index range forwards the upper half of its range to the member at
the range's midpoint.  The root sends ``(p-1)/p`` of the total data in the
equal-block case, matching the classic cost ``(1 - 1/p) W`` with
``W = sum of block sizes``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import CommunicatorError
from ..machine.backend import as_block
from ..machine.message import Message
from .schedules import Schedule, ceil_log2, group_index

__all__ = ["scatter_binomial", "scatter_schedule"]


def scatter_binomial(
    group: Sequence[int],
    root: int,
    blocks: Mapping[int, np.ndarray],
    tag: str = "scatter",
) -> Schedule:
    """Scatter ``blocks[rank]`` from ``root`` to each group member.

    Returns ``{rank: its block}``.
    """
    group = tuple(group)
    p = len(group)
    root_index = group_index(group, root)
    missing = [r for r in group if r not in blocks]
    if missing:
        raise CommunicatorError(f"scatter: root has no block for ranks {missing}")

    def rot(i: int) -> int:
        """Rotated index -> global rank (root becomes index 0)."""
        return group[(i + root_index) % p]

    # holder state: rotated index -> list of (rotated dest index, block)
    holding: Dict[int, List[Tuple[int, np.ndarray]]] = {
        0: [(i, as_block(blocks[rot(i)])) for i in range(p)]
    }

    # Walk distances p_ceil/2, p_ceil/4, ..., 1 where p_ceil = 2**ceil(log2 p).
    dist = 1 << max(ceil_log2(p) - 1, 0) if p > 1 else 0
    while dist >= 1:
        msgs = []
        senders = []
        for i in sorted(holding):
            upper = [(j, b) for (j, b) in holding[i] if j >= i + dist]
            if not upper:
                continue
            senders.append((i, upper))
            msgs.append(
                Message(
                    src=rot(i),
                    dest=rot(i + dist),
                    payload=tuple(b for (_, b) in upper),
                    tag=tag,
                    empty_ok=True,
                )
            )
        if msgs:
            deliveries = yield msgs
            for i, upper in senders:
                holding[i] = [(j, b) for (j, b) in holding[i] if j < i + dist]
                incoming = deliveries[rot(i + dist)]
                holding[i + dist] = [
                    (j, arr) for (j, _), arr in zip(upper, incoming)
                ]
        dist //= 2

    result = {}
    for i, items in holding.items():
        assert len(items) == 1 and items[0][0] == i, "scatter bookkeeping error"
        result[rot(i)] = items[0][1]
    return result


def scatter_schedule(
    group: Sequence[int],
    root: int,
    blocks: Mapping[int, np.ndarray],
    algorithm: str = "binomial",
    tag: str = "scatter",
) -> Schedule:
    """Dispatch to a concrete scatter algorithm (only binomial provided)."""
    if algorithm == "binomial":
        return scatter_binomial(group, root, blocks, tag=tag)
    raise CommunicatorError(f"unknown scatter algorithm {algorithm!r}")
