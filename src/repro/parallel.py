"""Multiprocess map with deterministic, worker-count-independent results.

The sweep, chaos, large-P and bench drivers are embarrassingly parallel
across their outermost task lists, but naive pooling would break two
contracts the repo depends on:

* **Determinism** — results (and the ledger records derived from them)
  must be bit-identical regardless of ``workers``.  We guarantee this by
  (a) deriving per-task seeds from ``(seed, task_index)`` instead of
  drawing from one sequential stream, so a task's randomness does not
  depend on which worker ran it or what ran before it, and (b) merging
  results back in submission order (``Executor.map`` preserves order).
* **Picklability** — tasks cross a process boundary, so worker functions
  must be module-level callables and arguments plain data.  Callers in
  :mod:`repro.analysis` define module-level ``_*_task`` functions for
  this reason.

``parallel_map(fn, items, workers=1)`` is the only entry point.  With
``workers <= 1`` (the default and the CLI default) it runs a plain serial
loop in-process — no pool, no pickling, identical behaviour to the
pre-parallel code — so serial remains the well-trodden path and the pool
is pure opt-in via ``--workers N``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["default_workers", "parallel_map", "task_seed"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def task_seed(seed: int, index: int) -> tuple:
    """Seed for task ``index`` of a run seeded with ``seed``.

    A ``(seed, index)`` tuple fed to :func:`numpy.random.default_rng`,
    which hashes the whole sequence: streams are independent across tasks
    and depend only on the task's position, never on scheduling order or
    worker count.
    """
    return (seed, index)


def default_workers(requested: Optional[int]) -> int:
    """Resolve a ``--workers`` value: ``None``/``0`` → serial, ``-1`` → all cores."""
    if requested is None or requested == 0:
        return 1
    if requested < 0:
        return os.cpu_count() or 1
    return requested


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int = 1,
) -> List[_R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in input order, so callers can zip them against
    ``items`` and downstream accounting (ledger append order, report row
    order) is identical to the serial loop.  Exceptions raised by ``fn``
    propagate to the caller in either mode.

    ``fn`` must be picklable (a module-level function) when ``workers > 1``.
    """
    tasks: Sequence[_T] = list(items)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    pool_size = min(workers, len(tasks))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        return list(pool.map(fn, tasks))
