"""Multiprocess map with deterministic, worker-count-independent results.

The sweep, chaos, large-P and bench drivers are embarrassingly parallel
across their outermost task lists, but naive pooling would break two
contracts the repo depends on:

* **Determinism** — results (and the ledger records derived from them)
  must be bit-identical regardless of ``workers``.  We guarantee this by
  (a) deriving per-task seeds from ``(seed, task_index)`` instead of
  drawing from one sequential stream, so a task's randomness does not
  depend on which worker ran it or what ran before it, and (b) merging
  results back in submission order (``Executor.map`` preserves order).
* **Picklability** — tasks cross a process boundary, so worker functions
  must be module-level callables and arguments plain data.  Callers in
  :mod:`repro.analysis` define module-level ``_*_task`` functions for
  this reason.

``parallel_map(fn, items, workers=1)`` is the only entry point.  With
``workers <= 1`` (the default and the CLI default) it runs a plain serial
loop in-process — no pool, no pickling, identical behaviour to the
pre-parallel code — so serial remains the well-trodden path and the pool
is pure opt-in via ``--workers N``.

Three opt-in observability hooks ride on the same entry point, all inert
(``None``/``False``) by default so the uninstrumented path stays
byte-identical to the description above:

* ``telemetry=`` — a :class:`repro.obs.telemetry.Telemetry` recorder;
  every task then reports a timing tuple (worker pid, parent submit
  time, worker start/end on the shared monotonic clock) which the parent
  merges into the recorder as a
  :class:`~repro.obs.telemetry.TaskSpan`.
* ``profile=`` — a :class:`repro.obs.profile.ProfileCollector`; every
  task runs under its own :mod:`cProfile` and ships the raw stats
  mapping back for cross-worker aggregation.
* ``progress=`` — a :class:`repro.obs.telemetry.ProgressReporter`,
  heartbeat-updated as each result arrives.

Pooled tasks are additionally chunked (``chunksize`` heuristic: about
four chunks per worker) to amortize pickling on large task lists, and a
worker exception is re-raised in the parent **from** a
:class:`~repro.exceptions.TaskError` naming the failing task's index and
item ``repr`` — instead of the bare pickled traceback pools give you.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from .exceptions import TaskError

__all__ = [
    "default_chunksize",
    "default_workers",
    "parallel_map",
    "task_seed",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def task_seed(seed: int, index: int) -> tuple:
    """Seed for task ``index`` of a run seeded with ``seed``.

    A ``(seed, index)`` tuple fed to :func:`numpy.random.default_rng`,
    which hashes the whole sequence: streams are independent across tasks
    and depend only on the task's position, never on scheduling order or
    worker count.
    """
    return (seed, index)


def default_workers(requested: Optional[int]) -> int:
    """Resolve a ``--workers`` value: ``None``/``0`` → serial, ``-1`` → all cores."""
    if requested is None or requested == 0:
        return 1
    if requested < 0:
        return os.cpu_count() or 1
    return requested


def default_chunksize(n_tasks: int, pool_size: int) -> int:
    """Heuristic pool chunk size: about four chunks per worker.

    Large task lists (a 10^5-configuration sweep fanned over 8 workers)
    would otherwise pay one pickle round-trip per task; four chunks per
    worker keeps the pickling overhead amortized while leaving enough
    chunks for the pool to rebalance around stragglers.  Small lists
    degrade to ``chunksize=1``, which is the previous behaviour.
    """
    if n_tasks <= 0 or pool_size <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (pool_size * 4)))


@dataclasses.dataclass
class _TaskOutcome:
    """What one wrapped task sends back across the process boundary."""

    index: int
    value: object = None
    timing: Optional[tuple] = None  # (pid, submitted, started, ended)
    profile: Optional[dict] = None
    error: Optional[Exception] = None
    item_repr: str = ""
    worker_traceback: str = ""


def _safe_repr(item, limit: int = 200) -> str:
    try:
        text = repr(item)
    except Exception:  # pragma: no cover - pathological __repr__
        text = f"<unreprable {type(item).__name__}>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _Runner:
    """Picklable per-task wrapper: timing, profiling, exception capture.

    Instances hold only the task function (module-level, picklable) and
    two booleans, so they cross the process boundary like the bare
    function did.  Exceptions are captured — not raised — so the parent
    can re-raise them with task context instead of the pool's opaque
    pickled traceback.
    """

    def __init__(self, fn: Callable, telemetry: bool, profile: bool) -> None:
        self.fn = fn
        self.telemetry = telemetry
        self.profile = profile

    def __call__(self, payload) -> _TaskOutcome:
        index, submitted, item = payload
        started = time.perf_counter()
        stats = None
        try:
            if self.profile:
                from .obs.profile import capture_stats

                value, stats = capture_stats(lambda: self.fn(item))
            else:
                value = self.fn(item)
        except Exception as exc:
            ended = time.perf_counter()
            return _TaskOutcome(
                index=index,
                timing=(
                    (os.getpid(), submitted, started, ended)
                    if self.telemetry else None
                ),
                error=exc,
                item_repr=_safe_repr(item),
                worker_traceback=traceback.format_exc(),
            )
        ended = time.perf_counter()
        return _TaskOutcome(
            index=index,
            value=value,
            timing=(
                (os.getpid(), submitted, started, ended)
                if self.telemetry else None
            ),
            profile=stats,
        )


def _ingest(outcome: _TaskOutcome, telemetry, profile, progress, label: str):
    """Feed one outcome's instrumentation into the parent-side sinks."""
    if outcome.timing is not None and telemetry is not None:
        pid, submitted, started, ended = outcome.timing
        telemetry.record_task(
            outcome.index, label, pid, submitted, started, ended
        )
    if outcome.profile is not None and profile is not None:
        profile.add(outcome.profile)
    if progress is not None:
        progress.update()


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int = 1,
    *,
    telemetry=None,
    profile=None,
    progress=None,
    chunksize: Optional[int] = None,
    label: Optional[str] = None,
) -> List[_R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in input order, so callers can zip them against
    ``items`` and downstream accounting (ledger append order, report row
    order) is identical to the serial loop.  Exceptions raised by ``fn``
    propagate to the caller in either mode; in pool mode the original
    exception is re-raised **from** a :class:`~repro.exceptions.TaskError`
    carrying the failing task's index, item ``repr`` and worker-side
    traceback.

    ``fn`` must be picklable (a module-level function) when ``workers > 1``.

    Parameters
    ----------
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry`; each task then
        reports a :class:`~repro.obs.telemetry.TaskSpan` (worker pid,
        queue wait, duration) merged into the recorder's timeline.
    profile:
        Optional :class:`repro.obs.profile.ProfileCollector`; each task
        runs under cProfile and its stats merge into the collector.
    progress:
        Optional :class:`repro.obs.telemetry.ProgressReporter`, updated
        once per completed task.
    chunksize:
        Pool chunk size; defaults to :func:`default_chunksize`.  Ignored
        in serial mode.
    label:
        Task label for telemetry spans; defaults to ``fn.__name__``.

    All five are inert by default: with none of them set, the serial path
    is the bare pre-instrumentation loop and the pooled path adds only
    exception wrapping — neither perturbs results, which stay
    bit-identical for any combination (asserted in
    ``tests/obs/test_telemetry.py``).
    """
    tasks: Sequence[_T] = list(items)
    span_label = label if label is not None else getattr(fn, "__name__", "task")
    instrumented = telemetry is not None or profile is not None

    if workers <= 1 or len(tasks) <= 1:
        if not instrumented and progress is None:
            return [fn(task) for task in tasks]
        runner = _Runner(fn, telemetry is not None, profile is not None)
        results: List[_R] = []
        for index, item in enumerate(tasks):
            outcome = runner((index, time.perf_counter(), item))
            _ingest(outcome, telemetry, profile, progress, span_label)
            if outcome.error is not None:
                # Same process: the original traceback is still attached,
                # so re-raise bare exactly like the uninstrumented loop.
                raise outcome.error
            results.append(outcome.value)
        return results

    pool_size = min(workers, len(tasks))
    runner = _Runner(fn, telemetry is not None, profile is not None)
    size = chunksize if chunksize is not None else default_chunksize(
        len(tasks), pool_size
    )
    payloads = [
        (index, time.perf_counter(), item) for index, item in enumerate(tasks)
    ]
    results = []
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        for outcome in pool.map(runner, payloads, chunksize=size):
            _ingest(outcome, telemetry, profile, progress, span_label)
            if outcome.error is not None:
                context = TaskError(
                    f"parallel_map task {outcome.index} of {len(tasks)} "
                    f"({span_label}) failed on item {outcome.item_repr}; "
                    f"worker traceback:\n{outcome.worker_traceback}"
                )
                raise outcome.error from context
            results.append(outcome.value)
    return results
