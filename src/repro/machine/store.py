"""Per-processor local memory with word-level accounting.

Each simulated processor owns a :class:`LocalStore`: a mapping from names to
blocks (numpy arrays, or shape-only symbolic descriptors under the symbolic
backend) that tracks the *current* and *peak* number of resident words.
The peak counter is what Section 6.2 of the paper reasons about — e.g. that
Algorithm 1 on a 3D grid needs temporary memory asymptotically larger than
the minimum ``(mn + mk + nk) / P`` needed to hold the problem, while 1D and
2D grids need only a constant factor more.

An optional ``limit`` turns the store into a limited-memory machine: any
allocation pushing the current footprint above the limit raises
:class:`~repro.exceptions.MemoryLimitExceededError`.  The default limit is
``None`` (infinite memory), matching the paper's memory-independent setting.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from ..exceptions import MemoryLimitExceededError
from .backend import SymbolicBlock

__all__ = ["LocalStore"]


class LocalStore:
    """Named numpy arrays resident on one simulated processor.

    Parameters
    ----------
    rank:
        Owning processor's global rank (for error messages).
    limit:
        Maximum number of resident words ``M``, or ``None`` for infinite
        local memory.
    """

    def __init__(self, rank: int, limit: Optional[float] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError(f"memory limit must be positive or None, got {limit}")
        self.rank = rank
        self.limit = limit
        self._arrays: Dict[str, np.ndarray] = {}
        self.current_words: int = 0
        self.peak_words: int = 0

    # -- mapping protocol ------------------------------------------------ #

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def keys(self):
        return self._arrays.keys()

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(
                f"processor {self.rank} has no array named {name!r} "
                f"(resident: {sorted(self._arrays)})"
            ) from None

    def __setitem__(self, name: str, array: np.ndarray) -> None:
        self.put(name, array)

    def __delitem__(self, name: str) -> None:
        self.free(name)

    # -- allocation ------------------------------------------------------ #

    def put(self, name: str, array: np.ndarray) -> None:
        """Store ``array`` under ``name``, replacing any previous array.

        The footprint change is charged atomically: replacing an array of
        equal size never trips the memory limit.
        """
        if not isinstance(array, (np.ndarray, SymbolicBlock)):
            raise TypeError(
                f"stores hold blocks (numpy arrays or symbolic descriptors), "
                f"got {type(array).__name__} for {name!r}"
            )
        old_words = self._arrays[name].size if name in self._arrays else 0
        new_current = self.current_words - old_words + int(array.size)
        if self.limit is not None and new_current > self.limit:
            raise MemoryLimitExceededError(
                f"processor {self.rank}: storing {name!r} ({array.size} words) "
                f"would raise the footprint to {new_current} words, "
                f"exceeding the limit M={self.limit}"
            )
        self._arrays[name] = array
        self.current_words = new_current
        self.peak_words = max(self.peak_words, self.current_words)

    def free(self, name: str) -> None:
        """Release the array stored under ``name``."""
        array = self[name]
        self.current_words -= int(array.size)
        del self._arrays[name]

    def pop(self, name: str) -> np.ndarray:
        """Return the array stored under ``name`` and release it."""
        array = self[name]
        self.free(name)
        return array

    def clear(self) -> None:
        """Release everything (peak counter is preserved)."""
        self._arrays.clear()
        self.current_words = 0

    def reset_peak(self) -> None:
        """Reset the peak counter to the current footprint."""
        self.peak_words = self.current_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalStore(rank={self.rank}, arrays={sorted(self._arrays)}, "
            f"current={self.current_words}w, peak={self.peak_words}w)"
        )
