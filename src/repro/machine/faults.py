"""Seeded, deterministic fault injection for the simulated network.

The paper's model assumes a perfect network; this module deliberately
breaks that assumption so the rest of the stack can prove it fails *loudly*
or recovers *accountably* — never silently.  A :class:`FaultModel` describes
what can go wrong on the wire:

* **drop** — a message is lost in transit (detected by the modelled
  receive timeout: in god view, the round said a message was coming);
* **corrupt** — the payload is damaged in transit (data backend: a bit
  flip or a NaN write; symbolic backend: a shape perturbation), detected
  by the per-message checksum (:func:`payload_fingerprint`);
* **duplicate** — the network spuriously retransmits a delivered message;
  the receiver discards the second copy, but the wasted transmission is
  charged to the cost model;
* **stall** — the sender hiccups, delaying the round by extra
  latency-only rounds;
* **rank failure** — fail-stop death of a processor at a given round
  (:class:`~repro.exceptions.RankFailedError`); terminal unless the model
  carries a :class:`RecoveryConfig`, in which case a survivability layer
  (ABFT checksum algorithms or checkpoint/restart) may reconstruct the
  lost state from survivors with every recovery word charged.

A :class:`FaultInjector` turns the model into a deterministic event stream.
Two independent :class:`random.Random` generators keep runs reproducible
*across backends*: the **decision stream** (one draw per transmission
attempt) determines *which* messages fault, and is consumed identically
under the data and symbolic backends because schedules and message orders
are shared; the **detail stream** (which block, which element, which bit)
is only consumed when a corruption materializes and never influences
decisions, so backend-specific detail costs cannot desynchronize the two.

Cost-charging rules (see ``docs/ROBUSTNESS.md`` for the full contract):
every transmission attempt — original, faulted or not — charges the cost
model exactly as a clean transmission would (round, critical-path words,
per-rank sent/recv words).  Every *extra* transmission (a retry resend or
a spurious duplicate) additionally accrues ``words_resent``; backoff and
stalls add latency-only rounds.  Consequences, both exact:

* a recovered run's critical-path words equal the fault-free run's words
  **plus** ``words_resent`` (attainment degrades by exactly the resent
  words over the bound);
* the conservation invariant ``sum(sent_words) == sum(recv_words)`` holds
  at every span close.

Attach an injector to one machine with ``Machine(P, faults=model)``, or
ambiently with :func:`inject` so that machines constructed *inside*
library code (e.g. by :func:`repro.algorithms.registry.run_algorithm`)
pick it up::

    with inject(FaultModel(seed=7, drop=0.05, retry=RetryPolicy())) as inj:
        run = run_algorithm("alg1", A, B, P=8)
    assert run.cost.words == clean_words + inj.words_resent
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
import zlib
from typing import Any, List, Optional, Tuple

import numpy as np

from ..exceptions import FaultDetectedError, InvalidFaultConfigError
from .backend import SymbolicBlock, corrupt_block

__all__ = [
    "FAULT_KINDS",
    "RECOVERY_STRATEGIES",
    "FaultModel",
    "RetryPolicy",
    "RecoveryConfig",
    "FaultEvent",
    "FaultInjector",
    "payload_fingerprint",
    "inject",
    "active_injector",
    "coerce_injector",
]

#: Fault kinds a :class:`FaultModel` can draw, in decision-stream order.
FAULT_KINDS: Tuple[str, ...] = ("drop", "corrupt", "duplicate", "stall")

#: Seed perturbation separating the detail stream from the decision stream.
_DETAIL_SALT = 0x5DEECE66D


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for resending failed messages.

    Attempt ``k`` (1-based) first waits ``min(backoff_base * 2**(k-1),
    backoff_cap)`` latency-only rounds, then resends the message in a round
    of its own — fully charged to the cost model and accrued in
    ``words_resent``.  A resend is itself subject to fault injection; after
    ``max_attempts`` failed resends the fault is promoted to
    :class:`~repro.exceptions.FaultDetectedError`.
    """

    max_attempts: int = 3
    backoff_base: int = 1
    backoff_cap: int = 8

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise InvalidFaultConfigError(
                f"max_attempts must be an integer >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise InvalidFaultConfigError(
                f"backoff must be non-negative, got base={self.backoff_base} "
                f"cap={self.backoff_cap}"
            )

    def backoff_rounds(self, attempt: int) -> int:
        """Latency-only rounds to wait before resend attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        return min(self.backoff_base * 2 ** (attempt - 1), self.backoff_cap)

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
        }


#: Recovery strategies a :class:`RecoveryConfig` can request.
RECOVERY_STRATEGIES: Tuple[str, ...] = ("spare", "shrink")


@dataclasses.dataclass(frozen=True)
class RecoveryConfig:
    """Opt-in survivability policy for rank failures.

    Without one, rank failure stays fail-stop
    (:class:`~repro.exceptions.RankFailedError` propagates).  With one, a
    survivability layer — an ABFT checksum algorithm healing in place, or
    the checkpoint/restart wrapper
    (:func:`repro.analysis.survive.run_survivable`) — may catch the
    failure, charge ``detection_rounds`` of modelled timeout latency, and
    execute a typed :class:`~repro.machine.recovery.RecoveryPlan`.

    Parameters
    ----------
    strategy:
        ``"spare"`` (revive the dead rank's slot in place / restart on the
        same processor count) or ``"shrink"`` (redistribute over the
        survivors; only meaningful where the algorithm accepts ``P - 1``).
    detection_rounds:
        Latency-only rounds survivors spend detecting the death — the
        modelled timeout.
    max_recoveries:
        Rank failures absorbed before giving up and re-raising.
    """

    strategy: str = "spare"
    detection_rounds: int = 1
    max_recoveries: int = 1

    def __post_init__(self) -> None:
        if self.strategy not in RECOVERY_STRATEGIES:
            raise InvalidFaultConfigError(
                f"recovery strategy must be one of {RECOVERY_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if not isinstance(self.detection_rounds, int) or self.detection_rounds < 0:
            raise InvalidFaultConfigError(
                f"detection_rounds must be an integer >= 0, "
                f"got {self.detection_rounds!r}"
            )
        if not isinstance(self.max_recoveries, int) or self.max_recoveries < 1:
            raise InvalidFaultConfigError(
                f"max_recoveries must be an integer >= 1, "
                f"got {self.max_recoveries!r}"
            )

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "detection_rounds": self.detection_rounds,
            "max_recoveries": self.max_recoveries,
        }


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """A seeded description of what can go wrong on the network.

    Parameters
    ----------
    seed:
        Seeds both RNG streams; same seed + same schedule of rounds =
        byte-identical fault sequence (on either backend).
    drop, corrupt, duplicate, stall:
        Per-transmission probabilities of each fault kind; their sum must
        not exceed 1.  Zero-word messages (barrier signals) are never
        faulted — there is nothing to lose or damage.
    corrupt_mode:
        ``"bitflip"`` (flip one bit of one element) or ``"nan"`` (overwrite
        one element with NaN).  Data backend only; the symbolic backend
        perturbs the block's shape instead.
    stall_rounds:
        Latency-only rounds a stalled transmission adds.
    rank_failures:
        ``((rank, round), ...)`` — rank dies permanently once the network
        has executed ``round`` rounds; any later transmission involving it
        raises :class:`~repro.exceptions.RankFailedError`.
    retry:
        Recovery policy for dropped/corrupted messages, or ``None`` to
        fail fast with :class:`~repro.exceptions.FaultDetectedError`.
    recovery:
        Opt-in :class:`RecoveryConfig` for surviving rank failures, or
        ``None`` (the default) to keep them fail-stop.
    """

    seed: int = 0
    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    stall: float = 0.0
    corrupt_mode: str = "bitflip"
    stall_rounds: int = 1
    rank_failures: Tuple[Tuple[int, int], ...] = ()
    retry: Optional[RetryPolicy] = None
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        probs = {k: getattr(self, k) for k in FAULT_KINDS}
        for kind, p in probs.items():
            if not 0.0 <= p <= 1.0:
                raise InvalidFaultConfigError(
                    f"{kind} probability must be in [0, 1], got {p}"
                )
        if sum(probs.values()) > 1.0 + 1e-12:
            raise InvalidFaultConfigError(
                f"fault probabilities sum to {sum(probs.values())} > 1"
            )
        if self.corrupt_mode not in ("bitflip", "nan"):
            raise InvalidFaultConfigError(
                f"corrupt_mode must be 'bitflip' or 'nan', got {self.corrupt_mode!r}"
            )
        if self.stall_rounds < 1:
            raise InvalidFaultConfigError(
                f"stall_rounds must be >= 1, got {self.stall_rounds}"
            )
        coerced = []
        for failure in self.rank_failures:
            try:
                rank, at_round = failure
            except (TypeError, ValueError) as exc:
                raise InvalidFaultConfigError(
                    f"rank_failures entries must be (rank, round) pairs, "
                    f"got {failure!r}"
                ) from exc
            rank, at_round = int(rank), int(at_round)
            if rank < 0 or at_round < 0:
                raise InvalidFaultConfigError(
                    f"rank_failures entries must have rank >= 0 and "
                    f"round >= 0, got ({rank}, {at_round})"
                )
            coerced.append((rank, at_round))
        object.__setattr__(self, "rank_failures", tuple(coerced))
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise InvalidFaultConfigError(
                f"retry must be a RetryPolicy or None, got {type(self.retry).__name__}"
            )
        if self.recovery is not None and not isinstance(self.recovery, RecoveryConfig):
            raise InvalidFaultConfigError(
                f"recovery must be a RecoveryConfig or None, "
                f"got {type(self.recovery).__name__}"
            )

    def to_dict(self) -> dict:
        out = {
            "seed": self.seed,
            "drop": self.drop,
            "corrupt": self.corrupt,
            "duplicate": self.duplicate,
            "stall": self.stall,
            "corrupt_mode": self.corrupt_mode,
            "stall_rounds": self.stall_rounds,
            "rank_failures": [list(rf) for rf in self.rank_failures],
            "retry": None if self.retry is None else self.retry.to_dict(),
        }
        # Additive: fault-free and recovery-free serializations stay
        # byte-identical to the pre-recovery schema.
        if self.recovery is not None:
            out["recovery"] = self.recovery.to_dict()
        return out


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what happened, to which transmission."""

    kind: str
    src: int
    dest: int
    words: int
    round: int
    resend: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def payload_fingerprint(payload: Any) -> Tuple:
    """A checksum of a message payload, used to detect in-transit corruption.

    Data blocks fingerprint as ``(shape, dtype, crc32 of the raw bytes)``
    — CRC32 detects every single-bit error, so a bit flip or NaN write
    always changes the fingerprint.  Symbolic blocks carry no elements;
    their fingerprint is the shape, so the symbolic corruption mode (shape
    perturbation) is equally detectable.  Nested tuple/list payloads
    fingerprint structurally.
    """
    if isinstance(payload, SymbolicBlock):
        return ("sym", payload.shape)
    if isinstance(payload, np.ndarray):
        data = payload if payload.flags["C_CONTIGUOUS"] else np.ascontiguousarray(payload)
        return ("arr", payload.shape, str(payload.dtype), zlib.crc32(data.tobytes()))
    if isinstance(payload, (tuple, list)):
        return ("seq", tuple(payload_fingerprint(item) for item in payload))
    raise TypeError(
        f"cannot fingerprint payload of type {type(payload).__name__}"
    )


def _count_blocks(payload: Any) -> int:
    """Number of non-empty blocks in a (possibly nested) payload."""
    if isinstance(payload, (np.ndarray, SymbolicBlock)):
        return 1 if payload.size else 0
    if isinstance(payload, (tuple, list)):
        return sum(_count_blocks(item) for item in payload)
    return 0


def _corrupt_nth(payload: Any, target: int, state: List[int], rng, mode: str) -> Any:
    """Rebuild ``payload`` with its ``target``-th non-empty block corrupted."""
    if isinstance(payload, (np.ndarray, SymbolicBlock)):
        if not payload.size:
            return payload
        index = state[0]
        state[0] += 1
        return corrupt_block(payload, rng, mode) if index == target else payload
    if isinstance(payload, (tuple, list)):
        items = [_corrupt_nth(item, target, state, rng, mode) for item in payload]
        return tuple(items) if isinstance(payload, tuple) else items
    return payload


class FaultInjector:
    """Deterministic fault event source attached to one network.

    All statistics accumulate over the injector's lifetime (they are *not*
    zeroed by ``Machine.reset()`` — build a fresh injector per experiment);
    spans attribute faults by snapshot deltas, so per-phase numbers are
    exact either way.

    Attributes
    ----------
    faults_injected:
        Total faults materialized (all kinds).
    retries:
        Resend attempts made by the recovery layer.
    words_resent:
        Words of every extra transmission (retry resends and spurious
        duplicates) — exactly the amount by which a recovered run's
        critical-path words exceed the fault-free run's.
    recoveries:
        Rank-failure recoveries completed by a survivability layer.
    words_recovered:
        Critical-path words attributed to rank-failure recovery: wasted
        pre-failure work plus the recovery protocol's own traffic.  The
        extended conservation invariant is ``measured words == fault-free
        words + words_resent + words_recovered``, exactly.
    events:
        Chronological :class:`FaultEvent` log.
    """

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self._decide_rng = random.Random(model.seed)
        self._detail_rng = random.Random(model.seed ^ _DETAIL_SALT)
        self.events: List[FaultEvent] = []
        self.counts = {kind: 0 for kind in FAULT_KINDS}
        self.faults_injected = 0
        self.retries = 0
        self.words_resent = 0.0
        self.recoveries = 0
        self.words_recovered = 0.0
        self._handled_failures: set = set()

    def decide(self) -> str:
        """Draw the fate of one transmission: a fault kind or ``"none"``.

        Exactly one decision-stream draw per call, so decision alignment
        between backends only depends on the (shared) transmission order.
        """
        u = self._decide_rng.random()
        acc = 0.0
        for kind in FAULT_KINDS:
            acc += getattr(self.model, kind)
            if u < acc:
                return kind
        return "none"

    def record(self, kind: str, msg, round_index: int, resend: bool = False) -> None:
        """Log one materialized fault."""
        self.events.append(
            FaultEvent(
                kind=kind, src=msg.src, dest=msg.dest, words=msg.words,
                round=round_index, resend=resend,
            )
        )
        self.counts[kind] += 1
        self.faults_injected += 1

    def failed_rank(self, msg, round_index: int) -> Optional[int]:
        """The failed rank this message involves, or ``None``.

        ``round_index`` is the number of rounds the network has completed;
        a rank with failure round ``r`` is dead for every transmission at
        or after round index ``r``.
        """
        for rank, at_round in self.model.rank_failures:
            if (rank, at_round) in self._handled_failures:
                continue
            if round_index >= at_round and rank in (msg.src, msg.dest):
                return rank
        return None

    def handle_failure(self, rank: int) -> None:
        """Mark ``rank``'s scheduled failures as absorbed by a recovery.

        After this, the rank behaves as a healthy (spare or revived)
        processor again: :meth:`failed_rank` stops reporting it.  Only a
        survivability layer that has actually re-established consistent
        state (and charged the traffic) may call this.
        """
        self._handled_failures.update(
            (r, at) for r, at in self.model.rank_failures if r == rank
        )

    def corrupt_payload(self, payload: Any) -> Any:
        """A corrupted copy of ``payload`` (the original stays pristine for resends)."""
        n_blocks = _count_blocks(payload)
        if n_blocks == 0:
            raise FaultDetectedError(
                "cannot corrupt an empty payload (zero-word messages are "
                "exempt from fault injection)"
            )
        target = self._detail_rng.randrange(n_blocks)
        return _corrupt_nth(payload, target, [0], self._detail_rng, self.model.corrupt_mode)

    def summary(self) -> dict:
        """JSON-serializable statistics (ledger ``faults`` field material)."""
        out = {
            "model": self.model.to_dict(),
            "injected": self.faults_injected,
            "counts": dict(self.counts),
            "retries": self.retries,
            "words_resent": self.words_resent,
        }
        # Additive: absent unless a rank-failure recovery actually ran, so
        # recovery-free summaries stay byte-identical to the old schema.
        if self.recoveries:
            out["recoveries"] = self.recoveries
            out["words_recovered"] = self.words_recovered
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.model.seed}, injected={self.faults_injected}, "
            f"retries={self.retries}, words_resent={self.words_resent:g})"
        )


def coerce_injector(faults) -> Optional["FaultInjector"]:
    """Accept a :class:`FaultModel`, a :class:`FaultInjector`, or ``None``."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultModel):
        return FaultInjector(faults)
    raise TypeError(
        f"faults must be a FaultModel or FaultInjector, got {type(faults).__name__}"
    )


#: Stack of ambiently active injectors (innermost last).
_ACTIVE: List[FaultInjector] = []


def active_injector() -> Optional[FaultInjector]:
    """The innermost ambient injector opened with :func:`inject`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextlib.contextmanager
def inject(faults):
    """Ambient fault injection: machines built inside pick up the injector.

    This is how faults reach machines the library constructs internally
    (every registry algorithm builds its own
    :class:`~repro.machine.machine.Machine`).  Passing an explicit
    ``Machine(..., faults=...)`` overrides the ambient injector.

    Yields the :class:`FaultInjector`, whose statistics remain readable
    after the block exits.
    """
    injector = coerce_injector(faults)
    if injector is None:
        raise TypeError("inject() needs a FaultModel or FaultInjector")
    _ACTIVE.append(injector)
    try:
        yield injector
    finally:
        _ACTIVE.pop()
