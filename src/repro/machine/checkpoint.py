"""In-memory (diskless) buddy checkpointing with exact cost accounting.

The fallback survivability mechanism for algorithms without an ABFT
variant: before the computation starts, every rank sends a copy of its
protected blocks to its *buddy* — rank ``(r + 1) mod P`` — in a single
permutation round (every rank sends once and receives once, so the round
is legal under the one-send/one-receive rule and its critical-path cost
is the largest per-rank snapshot).  The copies live in the buddies'
:class:`~repro.machine.store.LocalStore`, so the peak-memory counters
honestly show the doubled footprint the paper's Section 6.2 reasoning
would charge a real diskless checkpoint.

After a rank failure, :meth:`CheckpointManager.restore` moves the dead
rank's snapshot from its buddy back to the revived slot (``"spare"``) or
to a surviving adopter (``"shrink"``) in one fully charged round, after
which the computation can restart from the checkpointed state.  Snapshot
and restore words accumulate on the manager so the survivability layer
(:mod:`repro.analysis.survive`) can attribute them to
``words_recovered`` exactly.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .message import Message

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Buddy-snapshot/restore for one machine's local stores.

    Parameters
    ----------
    machine:
        The :class:`~repro.machine.machine.Machine` whose stores are
        protected.  Buddy checkpointing needs ``P >= 2`` (a rank cannot
        back itself up — self-sends are not transmissible).
    """

    def __init__(self, machine) -> None:
        if machine.n_procs < 2:
            raise ValueError(
                f"buddy checkpointing needs P >= 2 (a rank cannot be its "
                f"own buddy), got P={machine.n_procs}"
            )
        self.machine = machine
        self._keys: Tuple[str, ...] = ()
        #: Critical-path words charged by snapshot rounds so far.
        self.checkpoint_words = 0.0
        #: Critical-path words charged by restore rounds so far.
        self.restore_words = 0.0

    def buddy(self, rank: int) -> int:
        """The rank holding ``rank``'s snapshot."""
        return (rank + 1) % self.machine.n_procs

    def checkpoint(self, keys: Sequence[str]) -> float:
        """Snapshot ``keys`` from every rank's store to its buddy.

        One permutation round ``r -> (r+1) mod P``; each message carries
        copies of the rank's blocks (missing keys are simply skipped, so
        ranks may protect different subsets).  Returns the critical-path
        words charged.
        """
        self._keys = tuple(keys)
        machine = self.machine
        before = machine.network.critical_words
        msgs = []
        for rank in range(machine.n_procs):
            store = machine.proc(rank).store
            payload = tuple(store[k] for k in self._keys if k in store)
            msgs.append(
                Message(rank, self.buddy(rank), payload, tag="checkpoint",
                        empty_ok=True)
            )
        with machine.span("checkpoint", kind="recovery"):
            deliveries = machine.exchange(msgs)
        for dest, payload in deliveries.items():
            src = (dest - 1) % machine.n_procs
            src_store = machine.proc(src).store
            held = [k for k in self._keys if k in src_store]
            for key, block in zip(held, payload):
                machine.proc(dest).store.put(f"ckpt:{src}:{key}", block)
        charged = machine.network.critical_words - before
        self.checkpoint_words += charged
        return charged

    def restore(self, rank: int, dest: int = None) -> float:
        """Move ``rank``'s snapshot from its buddy to ``dest``.

        ``dest`` defaults to ``rank`` itself (the ``"spare"`` strategy: a
        replacement processor revives the slot).  Under ``"shrink"`` pass
        a surviving rank; if the buddy itself adopts the snapshot the
        blocks are already local and no round is charged.  Returns the
        critical-path words charged.
        """
        machine = self.machine
        if dest is None:
            dest = rank
        buddy = self.buddy(rank)
        buddy_store = machine.proc(buddy).store
        held: Dict[str, object] = {
            key: buddy_store[f"ckpt:{rank}:{key}"]
            for key in self._keys
            if f"ckpt:{rank}:{key}" in buddy_store
        }
        if dest == buddy:
            # The buddy adopts the snapshot: a local rename, no traffic.
            for key, block in held.items():
                buddy_store.put(key, block)
            return 0.0
        before = machine.network.critical_words
        msg = Message(buddy, dest, tuple(held.values()), tag="restore",
                      empty_ok=True)
        with machine.span("restore", kind="recovery"):
            deliveries = machine.exchange([msg])
        for key, block in zip(held.keys(), deliveries[dest]):
            machine.proc(dest).store.put(key, block)
        charged = machine.network.critical_words - before
        self.restore_words += charged
        return charged
