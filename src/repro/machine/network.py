"""The fully connected network of the alpha-beta-gamma machine model.

The paper's machine model (Section 3.1):

* every pair of processors has a dedicated bidirectional link (no
  contention between different pairs);
* each processor can send at most one message **and** receive at most one
  message at the same time;
* the communication cost of simultaneously transmitted messages is that of
  the largest one, and the algorithm's communication cost is accumulated
  along the critical path.

:class:`FullyConnectedNetwork` executes *rounds*: a round is a set of
messages obeying the one-send/one-receive rule.  Executing a round

1. validates the rule (raising :class:`~repro.exceptions.NetworkContentionError`
   on violation),
2. charges ``1`` round and ``max(message words)`` critical-path words,
3. accumulates per-processor sent/received word counters, and
4. delivers the (copied) payloads to their destinations.

Collectives (see :mod:`repro.collectives`) are built purely out of rounds,
so their measured cost is exactly what the paper's analysis predicts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from ..exceptions import FaultDetectedError, NetworkContentionError, RankFailedError
from .cost import Cost
from .message import Message

__all__ = ["FullyConnectedNetwork", "RoundSummary"]


class RoundSummary:
    """Summary statistics of one executed network round."""

    __slots__ = ("index", "n_messages", "max_words", "total_words", "tags")

    def __init__(self, index: int, messages: Sequence[Message]) -> None:
        self.index = index
        self.n_messages = len(messages)
        self.max_words = max((m.words for m in messages), default=0)
        self.total_words = sum(m.words for m in messages)
        self.tags = tuple(sorted({m.tag for m in messages if m.tag}))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundSummary(#{self.index}: {self.n_messages} msgs, "
            f"max={self.max_words}w, total={self.total_words}w)"
        )


class FullyConnectedNetwork:
    """Executes communication rounds and accounts their cost.

    Parameters
    ----------
    n_procs:
        Number of processors ``P`` attached to the network.  Ranks are
        ``0 .. P-1``.
    """

    def __init__(self, n_procs: int) -> None:
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.n_procs = n_procs
        #: Attached :class:`~repro.machine.faults.FaultInjector`, or ``None``
        #: (the default — the clean fast path is then byte-identical to a
        #: build without the fault layer).  Survives :meth:`reset` so a
        #: machine reused across runs keeps its fault regime.
        self.fault_injector = None
        self.reset()

    # ------------------------------------------------------------------ #
    # counters                                                           #
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Zero every counter (rounds, critical words, per-processor volumes)."""
        self.rounds: int = 0
        self.critical_words: float = 0.0
        self.total_words: float = 0.0
        self.sent_words: List[float] = [0.0] * self.n_procs
        self.recv_words: List[float] = [0.0] * self.n_procs
        self.sent_messages: List[int] = [0] * self.n_procs
        self.recv_messages: List[int] = [0] * self.n_procs
        self.round_log: List[RoundSummary] = []
        #: Cumulative words per directed (src, dest) link — the traffic
        #: matrix, used by :mod:`repro.analysis.traffic`.
        self.edge_words: Dict[tuple, float] = {}

    @property
    def cost(self) -> Cost:
        """Communication cost accumulated so far (no flops — see Machine)."""
        return Cost(rounds=self.rounds, words=self.critical_words, flops=0.0)

    def per_processor_words(self, rank: int) -> float:
        """Words sent plus received by ``rank`` so far.

        For the symmetric collectives used by Algorithm 1 this equals twice
        the send volume; the lower bound of Theorem 3 counts the data a
        processor must *access*, which our verification layer compares with
        ``recv_words`` + initially owned data.
        """
        return self.sent_words[rank] + self.recv_words[rank]

    # ------------------------------------------------------------------ #
    # round execution                                                    #
    # ------------------------------------------------------------------ #

    def _validate_round(self, messages: Sequence[Message]) -> None:
        senders: Dict[int, Message] = {}
        receivers: Dict[int, Message] = {}
        for msg in messages:
            if not (0 <= msg.src < self.n_procs and 0 <= msg.dest < self.n_procs):
                raise NetworkContentionError(
                    f"message {msg!r} references a rank outside 0..{self.n_procs - 1}"
                )
            if msg.src in senders:
                raise NetworkContentionError(
                    f"processor {msg.src} attempts two sends in one round: "
                    f"{senders[msg.src]!r} and {msg!r}"
                )
            if msg.dest in receivers:
                raise NetworkContentionError(
                    f"processor {msg.dest} attempts two receives in one round: "
                    f"{receivers[msg.dest]!r} and {msg!r}"
                )
            senders[msg.src] = msg
            receivers[msg.dest] = msg

    def execute_round(self, messages: Iterable[Message]) -> Dict[int, Any]:
        """Execute one communication round.

        Parameters
        ----------
        messages:
            Messages to transmit concurrently.  Must obey the
            one-send/one-receive-per-processor rule.  An empty round is a
            no-op costing nothing (it is *not* counted as a round).

        Returns
        -------
        dict
            Mapping ``dest rank -> delivered payload``.  Payloads were
            already copied at :class:`~repro.machine.message.Message`
            construction, so receivers own their data.
        """
        msgs = list(messages)
        if not msgs:
            return {}
        self._validate_round(msgs)
        if self.fault_injector is not None:
            return self._execute_round_faulty(msgs, self.fault_injector)

        max_words = max(m.words for m in msgs)
        self.rounds += 1
        self.critical_words += max_words
        self.total_words += sum(m.words for m in msgs)
        self.round_log.append(RoundSummary(self.rounds, msgs))

        deliveries: Dict[int, Any] = {}
        for msg in msgs:
            self.sent_words[msg.src] += msg.words
            self.recv_words[msg.dest] += msg.words
            self.sent_messages[msg.src] += 1
            self.recv_messages[msg.dest] += 1
            key = (msg.src, msg.dest)
            self.edge_words[key] = self.edge_words.get(key, 0.0) + msg.words
            deliveries[msg.dest] = msg.payload
        return deliveries

    # ------------------------------------------------------------------ #
    # fault injection (see repro.machine.faults)                         #
    # ------------------------------------------------------------------ #
    #
    # Cost-charging contract: every transmission attempt — faulted or not
    # — charges exactly what a clean transmission would (round, critical
    # words, symmetric per-rank sent/recv).  Extra transmissions (retry
    # resends, spurious duplicates) additionally accrue ``words_resent``;
    # backoff and stalls add latency-only rounds.  Hence, exactly:
    #
    #   recovered_critical_words == clean_critical_words + words_resent
    #   sum(sent_words) == sum(recv_words)            (conservation)

    def _charge_message(self, msg: Message) -> None:
        """Per-rank accounting of one transmission (clean or faulted)."""
        self.sent_words[msg.src] += msg.words
        self.recv_words[msg.dest] += msg.words
        self.sent_messages[msg.src] += 1
        self.recv_messages[msg.dest] += 1
        key = (msg.src, msg.dest)
        self.edge_words[key] = self.edge_words.get(key, 0.0) + msg.words

    def _latency_rounds(self, count: int) -> None:
        """Charge ``count`` rounds of pure latency (backoff / stall)."""
        for _ in range(count):
            self.rounds += 1
            self.round_log.append(RoundSummary(self.rounds, ()))

    def _transmit_extra(self, msg: Message, injector) -> None:
        """One extra transmission of ``msg`` in a round of its own.

        Used for retry resends and spurious duplicates; fully charged and
        accrued in ``words_resent``.
        """
        self.rounds += 1
        self.critical_words += msg.words
        self.total_words += msg.words
        self.round_log.append(RoundSummary(self.rounds, (msg,)))
        self._charge_message(msg)
        injector.words_resent += msg.words

    def _check_rank_failures(self, msgs: Sequence[Message], injector) -> None:
        # Runs BEFORE the round is charged: a round that never happened
        # (the failure surfaced first) costs nothing.  The raised error
        # carries the counters at the moment of failure so a recovery
        # layer can attribute the wasted work exactly.
        for msg in msgs:
            rank = injector.failed_rank(msg, self.rounds)
            if rank is not None:
                verb = "send" if rank == msg.src else "receive"
                raise RankFailedError(
                    f"processor {rank} has failed (fail-stop) and cannot "
                    f"{verb} {msg!r} at round {self.rounds}; recovery "
                    f"requires a survivability layer "
                    f"(FaultModel(recovery=RecoveryConfig(...)))",
                    rank=rank,
                    round=self.rounds,
                    waste_words=self.critical_words,
                    waste_rounds=self.rounds,
                    waste_resent=injector.words_resent,
                )

    def _verify_delivery(self, msg: Message, delivered, injector) -> None:
        """Checksum the delivered payload against the sent one."""
        from .faults import payload_fingerprint

        if payload_fingerprint(delivered) == payload_fingerprint(msg.payload):
            raise FaultDetectedError(
                f"injected corruption of {msg!r} did not change its "
                f"fingerprint — the detection layer would have been blind "
                f"to it (corruption model bug)"
            )

    def _recover(self, msg: Message, reason: str, injector) -> Any:
        """Resend ``msg`` under the retry policy; return the delivered payload.

        Raises
        ------
        FaultDetectedError
            When no retry policy is configured or all attempts fault too.
        """
        policy = injector.model.retry
        if policy is None:
            raise FaultDetectedError(
                f"{msg!r} {reason} and no retry policy is configured; "
                f"pass FaultModel(retry=RetryPolicy(...)) to recover instead"
            )
        for attempt in range(1, policy.max_attempts + 1):
            self._latency_rounds(policy.backoff_rounds(attempt))
            injector.retries += 1
            self._transmit_extra(msg, injector)
            outcome = injector.decide()
            if outcome == "drop":
                injector.record("drop", msg, self.rounds, resend=True)
                continue
            if outcome == "corrupt":
                injector.record("corrupt", msg, self.rounds, resend=True)
                self._verify_delivery(msg, injector.corrupt_payload(msg.payload), injector)
                continue
            if outcome == "stall":
                injector.record("stall", msg, self.rounds, resend=True)
                self._latency_rounds(injector.model.stall_rounds)
            elif outcome == "duplicate":
                injector.record("duplicate", msg, self.rounds, resend=True)
                self._transmit_extra(msg, injector)
            return msg.payload
        raise FaultDetectedError(
            f"{msg!r} {reason}; recovery exhausted {policy.max_attempts} "
            f"resend attempts (every resend faulted too)"
        )

    def _execute_round_faulty(self, msgs: List[Message], injector) -> Dict[int, Any]:
        """The fault-injected variant of :meth:`execute_round`.

        The original round is charged exactly like the clean path (a lost
        transmission still occupied the channel), so fault-free draws stay
        bit-identical to an injector-less run.
        """
        self._check_rank_failures(msgs, injector)
        # Zero-word messages (barrier signals) carry nothing to lose,
        # damage or duplicate: they are exempt and draw no decision, so
        # decision streams align across payload-bearing schedules only.
        plan = [
            (msg, injector.decide() if msg.words else "none") for msg in msgs
        ]

        self.rounds += 1
        self.critical_words += max(m.words for m in msgs)
        self.total_words += sum(m.words for m in msgs)
        self.round_log.append(RoundSummary(self.rounds, msgs))
        for msg in msgs:
            self._charge_message(msg)

        deliveries: Dict[int, Any] = {}
        failed: List[tuple] = []
        for msg, outcome in plan:
            if outcome == "none":
                deliveries[msg.dest] = msg.payload
            elif outcome == "stall":
                injector.record("stall", msg, self.rounds)
                self._latency_rounds(injector.model.stall_rounds)
                deliveries[msg.dest] = msg.payload
            elif outcome == "duplicate":
                # Delivered fine, then spuriously retransmitted; the
                # receiver recognizes and discards the second copy (in god
                # view the network simply does not deliver it twice), but
                # the wasted transmission is charged.
                injector.record("duplicate", msg, self.rounds)
                deliveries[msg.dest] = msg.payload
                self._transmit_extra(msg, injector)
            elif outcome == "drop":
                injector.record("drop", msg, self.rounds)
                failed.append((msg, "was dropped in transit (receive timed out)"))
            else:  # corrupt
                injector.record("corrupt", msg, self.rounds)
                self._verify_delivery(msg, injector.corrupt_payload(msg.payload), injector)
                failed.append((msg, "arrived with a checksum mismatch"))
        # Recoveries run after the round completes, one resend round each:
        # sequential, so each resend's words land on the critical path.
        for msg, reason in failed:
            deliveries[msg.dest] = self._recover(msg, reason, injector)
        return deliveries
