"""The simulated distributed-memory machine.

:class:`Machine` bundles ``P`` :class:`~repro.machine.processor.Processor`
objects, a :class:`~repro.machine.network.FullyConnectedNetwork`, a
:class:`~repro.machine.cost.CostModel` and a
:class:`~repro.machine.trace.Trace`.  Algorithms obtain communicators from
it (see :mod:`repro.collectives.communicator`) and all data movement flows
through :meth:`Machine.exchange`, so cost accounting is complete by
construction.

Design notes
------------
The simulator is written in the "conductor" (god-view SPMD) style: one Python
thread orchestrates all ranks, but data locality is enforced — each rank's
arrays live in its own :class:`~repro.machine.store.LocalStore`, messages are
deep-copied in transit, and any access pattern that would be impossible on a
real distributed machine (reading another rank's store without a message)
simply is not offered by the API used by the algorithms.  This is the
standard approach for counting *model* quantities exactly: a real MPI run
(the paper is analysis-only) could confirm trends but its measured bytes
would include protocol overheads that obscure the constants the paper is
about.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional

from ..exceptions import FaultDetectedError
from ..obs.metrics import MetricsRegistry
from .backend import Backend, resolve_backend
from .cost import Cost, CostModel
from .faults import active_injector, coerce_injector
from .message import Message
from .network import FullyConnectedNetwork
from .processor import Processor
from .trace import Trace

__all__ = ["Machine", "CounterSnapshot"]


def _pairwise_delta(name: str, before: tuple, after: tuple) -> tuple:
    """``after - before`` element-wise; both sides must cover the same ranks."""
    if len(before) != len(after):
        raise ValueError(
            f"cannot diff {name}: snapshots cover {len(before)} vs "
            f"{len(after)} ranks (snapshots from different machines?)"
        )
    return tuple(b - a for a, b in zip(before, after))


@dataclasses.dataclass(frozen=True)
class CounterSnapshot:
    """Immutable snapshot of a machine's cumulative counters.

    The fault counters (``faults_injected``, ``retries``, ``words_resent``)
    come from the attached fault injector and stay zero on fault-free
    machines, so snapshots and their deltas are unchanged by the fault
    layer unless faults actually happen.
    """

    cost: Cost
    total_words: float
    sent_words: tuple
    recv_words: tuple
    flops: tuple
    sent_messages: tuple = ()
    recv_messages: tuple = ()
    faults_injected: int = 0
    retries: int = 0
    words_resent: float = 0.0
    recoveries: int = 0
    words_recovered: float = 0.0

    def delta(self, later: "CounterSnapshot") -> "CounterSnapshot":
        """Per-counter difference ``later - self``.

        Raises
        ------
        ValueError
            If the two snapshots cover different processor counts (the
            per-rank tuples would otherwise be silently truncated).
        """
        return CounterSnapshot(
            cost=later.cost - self.cost,
            total_words=later.total_words - self.total_words,
            sent_words=_pairwise_delta("sent_words", self.sent_words, later.sent_words),
            recv_words=_pairwise_delta("recv_words", self.recv_words, later.recv_words),
            flops=_pairwise_delta("flops", self.flops, later.flops),
            sent_messages=_pairwise_delta(
                "sent_messages", self.sent_messages, later.sent_messages
            ),
            recv_messages=_pairwise_delta(
                "recv_messages", self.recv_messages, later.recv_messages
            ),
            faults_injected=later.faults_injected - self.faults_injected,
            retries=later.retries - self.retries,
            words_resent=later.words_resent - self.words_resent,
            recoveries=later.recoveries - self.recoveries,
            words_recovered=later.words_recovered - self.words_recovered,
        )


class Machine:
    """A ``P``-processor distributed-memory machine in the alpha-beta-gamma model.

    Parameters
    ----------
    n_procs:
        Number of processors ``P >= 1``.
    cost_model:
        Machine parameters; defaults to ``alpha=1, beta=1, gamma=0``.
    memory_limit:
        Per-processor local memory ``M`` in words, or ``None`` (default)
        for the paper's memory-independent setting.
    backend:
        Execution backend (name or :class:`~repro.machine.backend.Backend`);
        ``None`` (default) selects the data backend.  The machine itself is
        backend-agnostic — blocks of either kind flow through the same
        stores, messages and counters — so this attribute is provenance:
        it records which mode the run was built for, and is surfaced in
        exporters and ledger records.
    faults:
        A :class:`~repro.machine.faults.FaultModel` or
        :class:`~repro.machine.faults.FaultInjector` attached to the
        network, or ``None`` (default) — in which case an ambient injector
        opened with :func:`repro.machine.faults.inject` is picked up, if
        one is active.  With no injector the network takes its unmodified
        fast path and costs are bit-identical to a fault-layer-free build.

    Examples
    --------
    >>> from repro.machine import Machine
    >>> m = Machine(4)
    >>> m.n_procs
    4
    >>> m.comm_world().size
    4
    """

    def __init__(
        self,
        n_procs: int,
        cost_model: Optional[CostModel] = None,
        memory_limit: Optional[float] = None,
        backend: Optional[Backend] = None,
        faults=None,
    ) -> None:
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.n_procs = n_procs
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.memory_limit = memory_limit
        self.backend = resolve_backend(backend)
        self.processors: List[Processor] = [
            Processor(rank, memory_limit=memory_limit) for rank in range(n_procs)
        ]
        self.network = FullyConnectedNetwork(n_procs)
        if faults is not None:
            self.network.fault_injector = coerce_injector(faults)
        else:
            self.network.fault_injector = active_injector()
        self.metrics = MetricsRegistry()
        self.trace = Trace(machine=self)

    # ------------------------------------------------------------------ #
    # access                                                             #
    # ------------------------------------------------------------------ #

    def proc(self, rank: int) -> Processor:
        """The processor with the given global rank."""
        if not 0 <= rank < self.n_procs:
            raise IndexError(f"rank {rank} outside 0..{self.n_procs - 1}")
        return self.processors[rank]

    def comm_world(self):
        """A communicator over all ``P`` processors.

        Imported lazily to avoid a circular import between the machine and
        collectives layers.
        """
        from ..collectives.communicator import Communicator

        return Communicator(self, tuple(range(self.n_procs)))

    # ------------------------------------------------------------------ #
    # execution primitives                                               #
    # ------------------------------------------------------------------ #

    def exchange(self, messages: Iterable[Message]) -> Dict[int, Any]:
        """Execute one network round; see
        :meth:`repro.machine.network.FullyConnectedNetwork.execute_round`."""
        return self.network.execute_round(messages)

    def compute(self, rank: int, flops: float) -> None:
        """Charge ``flops`` arithmetic operations to processor ``rank``."""
        self.proc(rank).compute(flops)

    def span(self, name: str, kind: str = "phase", groups=()):
        """Open a nested, auto-measured trace span (context manager).

        Example
        -------
        >>> m = Machine(2)
        >>> with m.span("allgather-A", kind="collective"):
        ...     pass  # collectives run here attribute to this span
        >>> m.trace.spans[0].name
        'allgather-A'
        """
        return self.trace.span(name, kind=kind, groups=groups)

    # ------------------------------------------------------------------ #
    # counters                                                           #
    # ------------------------------------------------------------------ #

    @property
    def cost(self) -> Cost:
        """Cumulative critical-path cost: network rounds/words plus the
        *maximum* per-processor flop count (compute proceeds in parallel)."""
        comm = self.network.cost
        max_flops = max((p.flops for p in self.processors), default=0.0)
        return Cost(rounds=comm.rounds, words=comm.words, flops=max_flops)

    @property
    def time(self) -> float:
        """Modelled execution time of everything run so far."""
        return self.cost_model.time(self.cost)

    @property
    def fault_injector(self):
        """The attached fault injector, or ``None`` on a clean machine."""
        return self.network.fault_injector

    def check_conservation(self) -> None:
        """Enforce the conservation invariant ``sum(sent) == sum(recv)``.

        Every transmission the network charges is symmetric — the words a
        sender pays are the words some receiver pays, faulted or not — so
        any imbalance means words leaked out of (or appeared in) the
        accounting: a fault-layer bug that would poison every measured
        cost downstream.  Checked automatically at span close whenever a
        fault injector is attached (zero overhead on clean machines).

        Raises
        ------
        FaultDetectedError
            On imbalance, reporting both sums and the drift.
        """
        sent = sum(self.network.sent_words)
        recv = sum(self.network.recv_words)
        if abs(sent - recv) > 1e-9 * max(1.0, abs(sent)):
            raise FaultDetectedError(
                f"conservation violated: sum(sent_words)={sent:g} but "
                f"sum(recv_words)={recv:g} (drift {sent - recv:+g}); some "
                f"transmission was charged asymmetrically"
            )

    def snapshot(self) -> CounterSnapshot:
        """Snapshot all cumulative counters (for delta measurements)."""
        injector = self.network.fault_injector
        return CounterSnapshot(
            cost=self.cost,
            total_words=self.network.total_words,
            sent_words=tuple(self.network.sent_words),
            recv_words=tuple(self.network.recv_words),
            flops=tuple(p.flops for p in self.processors),
            sent_messages=tuple(self.network.sent_messages),
            recv_messages=tuple(self.network.recv_messages),
            faults_injected=0 if injector is None else injector.faults_injected,
            retries=0 if injector is None else injector.retries,
            words_resent=0.0 if injector is None else injector.words_resent,
            recoveries=0 if injector is None else getattr(injector, "recoveries", 0),
            words_recovered=(
                0.0 if injector is None else getattr(injector, "words_recovered", 0.0)
            ),
        )

    def reset_counters(self) -> None:
        """Zero all cost counters, the trace and metrics; stores keep data."""
        self.network.reset()
        for p in self.processors:
            p.reset_counters()
        self.trace.clear()
        self.metrics.reset()

    def reset(self) -> None:
        """Full reset: counters, trace, and every processor's store."""
        self.reset_counters()
        for p in self.processors:
            p.store.clear()
            p.store.reset_peak()

    def peak_memory_words(self) -> int:
        """Largest peak store footprint over all processors."""
        return max(p.store.peak_words for p in self.processors)

    def rank_skew(self, counter: str = "sent_words"):
        """Load-imbalance summary of a per-rank counter vector.

        ``counter`` is one of ``"sent_words"``, ``"recv_words"`` or
        ``"flops"``.  The vector is derived from the recorded event spans'
        per-rank attribution when it reconciles exactly with the network
        counters (the zero-drift invariant), and falls back to the raw
        cumulative counters when some events were recorded with explicit
        costs only (the legacy ``trace.record`` path carries no per-rank
        attribution).  Either way the statistics describe exactly the words
        the machine moved.
        """
        from ..obs.metrics import rank_skew

        if counter == "flops":
            totals = [p.flops for p in self.processors]
        elif counter in ("sent_words", "recv_words"):
            totals = list(getattr(self.network, counter))
        else:
            raise ValueError(
                f"unknown counter {counter!r}; expected 'sent_words', "
                f"'recv_words' or 'flops'"
            )
        span_sums = [0.0] * self.n_procs
        for event in self.trace.recorder.events():
            per_rank = getattr(event, counter)
            if len(per_rank) == self.n_procs:
                for rank, value in enumerate(per_rank):
                    span_sums[rank] += value
        drift = any(
            abs(a - b) > 1e-9 * max(1.0, abs(b))
            for a, b in zip(span_sums, totals)
        )
        return rank_skew(totals if drift else span_sums)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(P={self.n_procs}, rounds={self.network.rounds}, "
            f"critical_words={self.network.critical_words})"
        )
