"""SPMD facade: write rank-local programs against the simulated machine.

The core library is written in "conductor" style (one driver orchestrates
all ranks), which is ideal for exact accounting but unlike how people
write MPI programs.  This module provides the familiar SPMD view: you
write ONE function that every rank executes, calling collective methods on
its :class:`RankContext` — and the runtime interleaves all ranks, matches
up their collective calls, and executes them through the normal accounting
machinery.

Rank programs must be *generator functions* (``yield`` at each collective)
so the runtime can suspend and resume them::

    def program(ctx):
        chunk = np.full(2, float(ctx.rank))
        gathered = yield ctx.allgather(chunk)     # list of all chunks
        total = yield ctx.allreduce(gathered[0])
        return total.sum()

    results = spmd_run(machine, program)           # {rank: return value}

Semantics and guard rails:

* A collective completes only when *every* rank of the group has called
  it; ranks that return early while peers still wait cause a
  :class:`~repro.exceptions.CommunicatorError` (a deadlock on a real
  machine, a loud error here).
* All ranks of a group must issue the *same* collective with compatible
  arguments; mismatches (one rank calls allgather while another calls
  reduce) are detected and reported with both call sites' descriptions.
* ``ctx.barrier()``, ``ctx.allgather``, ``ctx.reduce_scatter``,
  ``ctx.broadcast``, ``ctx.reduce``, ``ctx.allreduce``, ``ctx.alltoall``,
  ``ctx.scatter`` and ``ctx.gather`` are available, plus point-to-point
  ``ctx.sendrecv`` pairs.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CommunicatorError, RankFailedError
from .machine import Machine
from .message import Message

__all__ = ["RankContext", "CollectiveRequest", "spmd_run"]


@dataclasses.dataclass
class CollectiveRequest:
    """A pending collective call from one rank (yield this from a program)."""

    kind: str
    rank: int
    group: Tuple[int, ...]
    payload: Any = None
    root: Optional[int] = None
    partner: Optional[int] = None

    def signature(self) -> Tuple:
        """What must agree across the group for the calls to match."""
        return (self.kind, self.group, self.root)


class RankContext:
    """The per-rank handle a program receives.

    Provides ``rank``, ``size``, ``store`` (the rank's local store) and
    constructor methods for every collective; each returns a
    :class:`CollectiveRequest` the program must ``yield``.
    """

    def __init__(self, machine: Machine, rank: int, group: Tuple[int, ...]) -> None:
        self.machine = machine
        self.rank = rank
        self.group = group

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def index(self) -> int:
        """This rank's position within the group."""
        return self.group.index(self.rank)

    @property
    def store(self):
        return self.machine.proc(self.rank).store

    # -- collective constructors --------------------------------------- #
    #
    # Every constructor accepts an optional ``group`` (a tuple of global
    # ranks including this one) to run the collective over a *subgroup* —
    # e.g. a grid fiber.  Disjoint subgroups issuing the same collective
    # kind execute in MERGED network rounds, so fiber-parallel programs
    # (like Algorithm 1) get the correct critical path.

    def _group(self, group: Optional[Sequence[int]]) -> Tuple[int, ...]:
        if group is None:
            return self.group
        group = tuple(group)
        if self.rank not in group:
            raise CommunicatorError(
                f"rank {self.rank} issued a collective on group {group} "
                f"it does not belong to"
            )
        return group

    def barrier(self, group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("barrier", self.rank, self._group(group))

    def allgather(self, chunk: np.ndarray,
                  group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("allgather", self.rank, self._group(group),
                                 payload=chunk)

    def reduce_scatter(self, blocks: Sequence[np.ndarray],
                       group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("reduce_scatter", self.rank, self._group(group),
                                 payload=list(blocks))

    def broadcast(self, root: int, value: Optional[np.ndarray] = None,
                  group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("broadcast", self.rank, self._group(group),
                                 payload=value, root=root)

    def reduce(self, root: int, value: np.ndarray,
               group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("reduce", self.rank, self._group(group),
                                 payload=value, root=root)

    def allreduce(self, value: np.ndarray,
                  group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("allreduce", self.rank, self._group(group),
                                 payload=value)

    def alltoall(self, blocks: Sequence[np.ndarray],
                 group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("alltoall", self.rank, self._group(group),
                                 payload=list(blocks))

    def scatter(self, root: int, blocks: Optional[Sequence[np.ndarray]] = None,
                group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("scatter", self.rank, self._group(group),
                                 payload=None if blocks is None else list(blocks),
                                 root=root)

    def gather(self, root: int, chunk: np.ndarray,
               group: Optional[Sequence[int]] = None) -> CollectiveRequest:
        return CollectiveRequest("gather", self.rank, self._group(group),
                                 payload=chunk, root=root)

    def sendrecv(self, partner: int, value: np.ndarray) -> CollectiveRequest:
        """Pairwise exchange: send ``value`` to ``partner``, receive theirs."""
        return CollectiveRequest("sendrecv", self.rank, self.group,
                                 payload=value, partner=partner)


def _build_schedule(machine: Machine, kind: str, requests: Dict[int, CollectiveRequest]):
    """Construct the round schedule for one matched collective."""
    from ..collectives.allgather import allgather_schedule
    from ..collectives.allreduce import allreduce_schedule
    from ..collectives.alltoall import alltoall_schedule
    from ..collectives.barrier import barrier_dissemination
    from ..collectives.broadcast import broadcast_schedule
    from ..collectives.gather import gather_schedule
    from ..collectives.reduce import reduce_schedule
    from ..collectives.reduce_scatter import reduce_scatter_schedule
    from ..collectives.scatter import scatter_schedule

    group = next(iter(requests.values())).group

    if kind == "barrier":
        return barrier_dissemination(group)
    if kind == "allgather":
        chunks = {r: np.asarray(req.payload) for r, req in requests.items()}
        return allgather_schedule(group, chunks)
    if kind == "reduce_scatter":
        blocks = {r: req.payload for r, req in requests.items()}
        return reduce_scatter_schedule(group, blocks, machine=machine)
    if kind == "broadcast":
        root = next(iter(requests.values())).root
        value = requests[root].payload
        if value is None:
            raise CommunicatorError("broadcast root supplied no value")
        return broadcast_schedule(group, root, np.asarray(value))
    if kind == "reduce":
        root = next(iter(requests.values())).root
        values = {r: np.asarray(req.payload) for r, req in requests.items()}
        return reduce_schedule(group, root, values, machine=machine)
    if kind == "allreduce":
        values = {r: np.asarray(req.payload) for r, req in requests.items()}
        return allreduce_schedule(group, values, machine=machine)
    if kind == "alltoall":
        blocks = {r: req.payload for r, req in requests.items()}
        return alltoall_schedule(group, blocks)
    if kind == "scatter":
        root = next(iter(requests.values())).root
        payload = requests[root].payload
        if payload is None:
            raise CommunicatorError("scatter root supplied no blocks")
        blocks = {r: np.asarray(b) for r, b in zip(group, payload)}
        return scatter_schedule(group, root, blocks)
    if kind == "gather":
        root = next(iter(requests.values())).root
        chunks = {r: np.asarray(req.payload) for r, req in requests.items()}
        return gather_schedule(group, root, chunks)
    if kind == "sendrecv":
        msgs = []
        for r, req in requests.items():
            if req.partner not in requests or requests[req.partner].partner != r:
                raise CommunicatorError(
                    f"sendrecv mismatch: rank {r} targets {req.partner}"
                )
            msgs.append(Message(src=r, dest=req.partner,
                                payload=np.asarray(req.payload), tag="spmd"))

        def pair_schedule(messages=msgs):
            deliveries = yield messages
            return deliveries

        return pair_schedule()
    raise CommunicatorError(f"unknown collective kind {kind!r}")


def _execute_batch(
    machine: Machine,
    kind: str,
    batches: List[Dict[int, CollectiveRequest]],
) -> Dict[int, Any]:
    """Execute every complete collective of one kind in MERGED rounds.

    Disjoint groups (e.g. grid fibers) issuing the same collective at the
    same time share physical network rounds — matching the conductor-style
    ``parallel_*`` helpers, so SPMD programs measure the same critical
    path as the library algorithms.
    """
    from ..collectives.schedules import run_schedules

    schedules = [_build_schedule(machine, kind, reqs) for reqs in batches]
    groups = tuple(tuple(next(iter(reqs.values())).group) for reqs in batches)
    try:
        with machine.trace.measure("spmd", kind, groups=groups):
            results = run_schedules(machine, schedules)
    except RankFailedError as exc:
        # Tag the death with the collective it interrupted so a recovery
        # layer (or a human reading the traceback) knows which groups
        # need their state reconstructed.
        exc.collective = kind
        exc.groups = groups
        raise
    merged: Dict[int, Any] = {}
    for reqs, result in zip(batches, results):
        for r in reqs:
            merged[r] = result[r] if result is not None else None
    return merged


def spmd_run(
    machine: Machine,
    program: Callable[[RankContext], Any],
    ranks: Optional[Sequence[int]] = None,
) -> Dict[int, Any]:
    """Execute a rank-local generator ``program`` on every rank.

    Returns ``{rank: program return value}``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.machine import Machine
    >>> def program(ctx):
    ...     gathered = yield ctx.allgather(np.full(1, float(ctx.rank)))
    ...     return float(sum(c[0] for c in gathered))
    >>> spmd_run(Machine(4), program)
    {0: 6.0, 1: 6.0, 2: 6.0, 3: 6.0}
    """
    group = tuple(ranks) if ranks is not None else tuple(range(machine.n_procs))
    contexts = {r: RankContext(machine, r, group) for r in group}
    gens: Dict[int, Any] = {}
    results: Dict[int, Any] = {}
    pending: Dict[int, CollectiveRequest] = {}
    inbox: Dict[int, Any] = {}

    for r in group:
        gen = program(contexts[r])
        if not hasattr(gen, "send"):
            raise CommunicatorError(
                "SPMD programs must be generator functions (use 'yield' at "
                "every collective call)"
            )
        gens[r] = gen

    active = set(group)
    # Drive ranks round-robin; a rank blocks at its yielded collective until
    # all group members of that collective have arrived.
    while active or pending:
        progressed = False
        for r in list(active):
            if r in pending:
                continue
            try:
                if r in inbox:
                    request = gens[r].send(inbox.pop(r))
                else:
                    request = next(gens[r])
            except StopIteration as stop:
                results[r] = stop.value
                active.discard(r)
                progressed = True
                continue
            if not isinstance(request, CollectiveRequest):
                raise CommunicatorError(
                    f"rank {r} yielded {request!r}; programs must yield "
                    f"RankContext collective calls"
                )
            pending[r] = request
            progressed = True

        if pending:
            # Group by signature; batch all complete collectives of the
            # same kind into merged rounds (disjoint groups share rounds).
            by_sig: Dict[Tuple, Dict[int, CollectiveRequest]] = {}
            for r, req in pending.items():
                by_sig.setdefault(req.signature(), {})[r] = req
            ready_by_kind: Dict[str, List[Dict[int, CollectiveRequest]]] = {}
            for sig, reqs in by_sig.items():
                kind, grp, _ = sig
                if set(reqs) == set(grp):
                    ready_by_kind.setdefault(kind, []).append(reqs)
            executed = False
            for kind, batches in ready_by_kind.items():
                outcome = _execute_batch(machine, kind, batches)
                for reqs in batches:
                    for r in reqs:
                        inbox[r] = outcome.get(r)
                        del pending[r]
                executed = True
                progressed = True
            if not executed and not any(r not in pending for r in active):
                # Every active rank is blocked and nothing is complete.
                detail = {r: (req.kind, req.group) for r, req in pending.items()}
                missing = {
                    sig: sorted(set(sig[1]) - set(reqs))
                    for sig, reqs in by_sig.items()
                }
                raise CommunicatorError(
                    f"SPMD deadlock: mismatched or incomplete collectives. "
                    f"Blocked calls: {detail}; awaiting ranks: {missing}"
                )
        if not progressed and not pending:
            break

    if pending:
        raise CommunicatorError(
            f"ranks {sorted(pending)} are blocked in collectives but their "
            f"peers already returned"
        )
    return results
