"""Execution backends: cost accounting with or without real data movement.

The simulator exists to *count* — rounds, words, flops — yet historically it
always *moved* real numpy elements too: every rank's blocks lived in its
:class:`~repro.machine.store.LocalStore` and every
:class:`~repro.machine.message.Message` payload was deep-copied in transit.
That numeric execution is what lets small runs be verified against
``A @ B``, but it caps sweeps at toy processor counts: Theorem 3's three
regimes are boundaries in ``P``, and probing the regime map at
``P ~ 10^4 - 10^6`` (the scales of the Demmel et al. '13 strong-scaling
study and of COSMA's evaluation) cannot afford ``P`` dense blocks plus a
copy per message hop.

This module makes the execution mode an explicit seam:

``DataBackend``
    Today's behavior.  Blocks are numpy arrays, messages copy elements,
    results are numerically verified.  The only mode in which ``C`` holds
    real numbers.

``SymbolicBackend``
    Blocks are :class:`SymbolicBlock` descriptors — a shape and nothing
    else.  Slicing, reshaping, ``@``, elementwise ufuncs, ``concatenate``
    and ``array_split`` all propagate *shapes* (validating them exactly as
    numpy would), so the one algorithm code path runs unchanged and every
    counter — words per message, rounds, flops charged from block
    dimensions — is **identical by construction** to the data backend's.
    What is lost is only the numeric check: symbolic mode is sound for
    cost-model questions, never for verifying arithmetic.

Algorithms stay backend-agnostic by construction sites going through the
helpers here: :func:`as_block` instead of ``np.asarray``, and
:func:`empty_block` / :func:`zeros_block` (keyed on a ``like`` operand)
instead of ``np.empty`` / ``np.zeros``.  A :class:`SymbolicBlock` entering
any *unsupported* numpy operation raises instead of silently degrading, so
the accounting stays honest.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "SymbolicBlock",
    "Backend",
    "DataBackend",
    "SymbolicBackend",
    "DATA_BACKEND",
    "SYMBOLIC_BACKEND",
    "BACKENDS",
    "as_block",
    "empty_block",
    "zeros_block",
    "is_symbolic",
    "backend_for",
    "corrupt_block",
    "resolve_backend",
    "symbolic_operands",
]

_FLOAT = np.dtype(float)


def _shape_of(x: Any) -> Tuple[int, ...]:
    """Shape of a block, numpy array, or scalar (scalars are 0-d)."""
    if isinstance(x, SymbolicBlock):
        return x.shape
    return np.shape(x)


class SymbolicBlock:
    """A matrix block reduced to its shape: the symbolic backend's payload.

    Behaves like a read-only float64 ndarray for every operation the
    simulator performs — slicing, reshaping, transposition, ``@``,
    elementwise arithmetic, ``np.concatenate`` / ``np.array_split`` — but
    carries no elements.  All shape arithmetic is validated exactly as
    numpy would validate it, so a schedule that would crash on real data
    crashes symbolically too.  Unsupported operations raise ``TypeError``
    rather than degrade, keeping the word/flop accounting honest.
    """

    __slots__ = ("shape", "size")

    def __init__(self, shape: Union[int, Sequence[int]]) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(d) for d in shape)
        for d in shape:
            if d < 0:
                raise ValueError(f"negative dimension in shape {shape}")
        self.shape = shape
        size = 1
        for d in shape:
            size *= d
        self.size = size

    @staticmethod
    def _new(shape: Tuple[int, ...], size: int) -> "SymbolicBlock":
        # Internal fast constructor for pre-validated shapes: symbolic
        # sweeps at production-sized P create blocks millions of times,
        # so skipping __init__'s normalization is a measurable win.
        block = SymbolicBlock.__new__(SymbolicBlock)
        block.shape = shape
        block.size = size
        return block

    # -- ndarray-protocol surface --------------------------------------- #

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self) -> np.dtype:
        return _FLOAT

    @property
    def T(self) -> "SymbolicBlock":
        return SymbolicBlock(self.shape[::-1])

    def copy(self) -> "SymbolicBlock":
        # Immutable: a copy is indistinguishable from the original, and
        # skipping the allocation is exactly the point of this backend.
        return self

    def astype(self, dtype: Any, **kwargs: Any) -> "SymbolicBlock":
        return self

    def reshape(self, *shape: Any) -> "SymbolicBlock":
        if len(shape) == 1 and shape[0] == -1:
            if len(self.shape) == 1:
                return self
            return SymbolicBlock._new((self.size,), self.size)
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        dims = [int(d) for d in shape]
        negatives = [i for i, d in enumerate(dims) if d < 0]
        if len(negatives) > 1:
            raise ValueError("can only specify one unknown dimension")
        if negatives:
            known = 1
            for i, d in enumerate(dims):
                if i != negatives[0]:
                    known *= d
            if known == 0 or self.size % known != 0:
                raise ValueError(
                    f"cannot reshape block of size {self.size} into shape {tuple(dims)}"
                )
            dims[negatives[0]] = self.size // known
        out = SymbolicBlock(tuple(dims))
        if out.size != self.size:
            raise ValueError(
                f"cannot reshape block of size {self.size} into shape {out.shape}"
            )
        return out

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized symbolic block")
        return self.shape[0]

    # -- indexing -------------------------------------------------------- #

    def _index_shape(self, index: Any) -> Tuple[int, ...]:
        """Resulting shape of ``self[index]`` (ints and slices only)."""
        if type(index) is slice and self.shape:
            return (len(range(*index.indices(self.shape[0]))),) + self.shape[1:]
        if not isinstance(index, tuple):
            index = (index,)
        if len(index) > self.ndim:
            raise IndexError(
                f"too many indices for symbolic block of shape {self.shape}"
            )
        out = []
        for axis, ix in enumerate(index):
            d = self.shape[axis]
            if isinstance(ix, slice):
                out.append(len(range(d)[ix]))
            elif isinstance(ix, (int, np.integer)):
                ii = int(ix)
                if ii < -d or ii >= d:
                    raise IndexError(
                        f"index {ii} out of bounds for axis {axis} with size {d}"
                    )
                # integer index drops the axis
            else:
                raise TypeError(
                    f"symbolic blocks support int/slice indexing only, "
                    f"got {type(ix).__name__}"
                )
        out.extend(self.shape[len(index):])
        return tuple(out)

    def __getitem__(self, index: Any) -> "SymbolicBlock":
        shape = self._index_shape(index)
        size = 1
        for d in shape:
            size *= d
        return SymbolicBlock._new(shape, size)

    def __setitem__(self, index: Any, value: Any) -> None:
        # Writes carry no elements, but the shapes must still line up —
        # this is what catches mis-addressed block assembly symbolically.
        target = self._index_shape(index)
        vshape = _shape_of(value)
        try:
            if np.broadcast_shapes(target, vshape) != target:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"could not broadcast value of shape {vshape} into "
                f"region of shape {target}"
            ) from None

    # -- arithmetic ------------------------------------------------------ #

    def _broadcast(self, other: Any) -> "SymbolicBlock":
        # Blocks are immutable value objects, so a same-shape (or scalar)
        # result can share self instead of allocating.
        if (isinstance(other, SymbolicBlock) and other.shape == self.shape) \
                or isinstance(other, (int, float)):
            return self
        try:
            shape = np.broadcast_shapes(self.shape, _shape_of(other))
        except ValueError:
            raise ValueError(
                f"operands could not be broadcast together with shapes "
                f"{self.shape} and {_shape_of(other)}"
            ) from None
        return SymbolicBlock(shape)

    def __add__(self, other: Any) -> "SymbolicBlock":
        return self._broadcast(other)

    __radd__ = __add__
    __iadd__ = __add__
    __sub__ = __add__
    __rsub__ = __add__
    __isub__ = __add__
    __mul__ = __add__
    __rmul__ = __add__
    __truediv__ = __add__
    __rtruediv__ = __add__

    def __neg__(self) -> "SymbolicBlock":
        return self

    def __pos__(self) -> "SymbolicBlock":
        return self

    def __matmul__(self, other: Any) -> "SymbolicBlock":
        a, b = self.shape, _shape_of(other)
        if len(a) != 2 or len(b) != 2:
            raise ValueError(
                f"symbolic matmul is defined for 2-D blocks, got {a} @ {b}"
            )
        if a[1] != b[0]:
            raise ValueError(
                f"matmul shape mismatch: {a} @ {b} (inner dimensions differ)"
            )
        return SymbolicBlock((a[0], b[1]))

    def __rmatmul__(self, other: Any) -> "SymbolicBlock":
        a, b = _shape_of(other), self.shape
        if len(a) != 2 or len(b) != 2:
            raise ValueError(
                f"symbolic matmul is defined for 2-D blocks, got {a} @ {b}"
            )
        if a[1] != b[0]:
            raise ValueError(
                f"matmul shape mismatch: {a} @ {b} (inner dimensions differ)"
            )
        return SymbolicBlock((a[0], b[1]))

    # -- numpy dispatch -------------------------------------------------- #

    def __array__(self, dtype: Any = None, copy: Any = None) -> None:
        # Refuse silent coercion: np.asarray(symbolic) would otherwise
        # produce a useless 0-d object array and corrupt the accounting.
        raise TypeError(
            "symbolic blocks carry no elements; route this call through "
            "repro.machine.backend.as_block or a *_like factory"
        )

    def __array_ufunc__(self, ufunc: Any, method: str, *inputs: Any, **kwargs: Any):
        if method != "__call__" or kwargs.get("out") is not None or ufunc.nout != 1:
            return NotImplemented
        if ufunc is np.matmul:
            # ndarray @ SymbolicBlock arrives here (np.matmul is a ufunc),
            # not at __rmatmul__ — route it to the matmul shape rule.
            if len(inputs) != 2:
                return NotImplemented
            a, b = _shape_of(inputs[0]), _shape_of(inputs[1])
            if len(a) != 2 or len(b) != 2:
                raise ValueError(
                    f"symbolic matmul is defined for 2-D blocks, got {a} @ {b}"
                )
            if a[1] != b[0]:
                raise ValueError(
                    f"matmul shape mismatch: {a} @ {b} (inner dimensions differ)"
                )
            return SymbolicBlock((a[0], b[1]))
        if len(inputs) == 2:
            a, b = inputs
            if isinstance(a, SymbolicBlock) and isinstance(b, SymbolicBlock) \
                    and a.shape == b.shape:
                return a
        for x in inputs:
            if not isinstance(x, (SymbolicBlock, np.ndarray, int, float, np.number)):
                return NotImplemented
        try:
            shape = np.broadcast_shapes(*[_shape_of(x) for x in inputs])
        except ValueError:
            raise ValueError(
                f"operands could not be broadcast together with shapes "
                f"{[_shape_of(x) for x in inputs]}"
            ) from None
        return SymbolicBlock(shape)

    def __array_function__(self, func: Any, types: Any, args: Any, kwargs: Any):
        handler = _HANDLED_FUNCTIONS.get(func)
        if handler is None:
            return NotImplemented
        return handler(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymbolicBlock(shape={self.shape})"


# ---------------------------------------------------------------------- #
# __array_function__ handlers                                            #
# ---------------------------------------------------------------------- #

_HANDLED_FUNCTIONS = {}


def _handles(numpy_function):
    def decorator(fn):
        _HANDLED_FUNCTIONS[numpy_function] = fn
        return fn

    return decorator


@_handles(np.concatenate)
def _concatenate(arrays, axis=0, **kwargs):
    arrays = list(arrays)
    if axis == 0 and arrays and all(
        type(a) is SymbolicBlock and len(a.shape) == 1 for a in arrays
    ):
        total = sum(a.size for a in arrays)
        return SymbolicBlock._new((total,), total)
    shapes = [_shape_of(a) for a in arrays]
    if not shapes:
        raise ValueError("need at least one block to concatenate")
    ndim = len(shapes[0])
    if axis is None:
        return SymbolicBlock((sum(int(np.prod(s)) for s in shapes),))
    if any(len(s) != ndim for s in shapes):
        raise ValueError(f"all blocks must have the same ndim, got {shapes}")
    axis = axis % ndim if ndim else 0
    for s in shapes[1:]:
        for d in range(ndim):
            if d != axis and s[d] != shapes[0][d]:
                raise ValueError(
                    f"all block dimensions except the concatenation axis "
                    f"must match, got {shapes}"
                )
    out = list(shapes[0])
    out[axis] = sum(s[axis] for s in shapes)
    return SymbolicBlock(tuple(out))


@_handles(np.array_split)
def _array_split(ary, sections, axis=0):
    shape = _shape_of(ary)
    if not isinstance(sections, (int, np.integer)):
        raise TypeError("symbolic array_split supports an integer section count only")
    p = int(sections)
    if p <= 0:
        raise ValueError("number of sections must be larger than 0")
    d = shape[axis]
    base, extra = divmod(d, p)
    out = []
    for j in range(p):
        piece = list(shape)
        piece[axis] = base + (1 if j < extra else 0)
        out.append(SymbolicBlock(tuple(piece)))
    return out


def _like_factory(a, dtype=None, shape=None, **kwargs):
    return SymbolicBlock(_shape_of(a) if shape is None else shape)


_HANDLED_FUNCTIONS[np.zeros_like] = _like_factory
_HANDLED_FUNCTIONS[np.empty_like] = _like_factory
_HANDLED_FUNCTIONS[np.ones_like] = _like_factory


@_handles(np.full_like)
def _full_like(a, fill_value, dtype=None, shape=None, **kwargs):
    return SymbolicBlock(_shape_of(a) if shape is None else shape)


@_handles(np.transpose)
def _transpose(a, axes=None):
    shape = _shape_of(a)
    if axes is None:
        return SymbolicBlock(shape[::-1])
    return SymbolicBlock(tuple(shape[ax] for ax in axes))


# ---------------------------------------------------------------------- #
# backend objects                                                        #
# ---------------------------------------------------------------------- #


class Backend:
    """One execution mode: how blocks are materialized.

    ``name`` identifies the backend in ledgers / CLI flags; ``verifies``
    says whether results carry real elements that can be checked against a
    reference product.
    """

    name: str = "abstract"
    verifies: bool = False

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        raise NotImplementedError

    def empty(self, shape: Sequence[int]) -> Any:
        raise NotImplementedError

    def zeros(self, shape: Sequence[int]) -> Any:
        raise NotImplementedError

    def matmul(self, a: Any, b: Any, semiring: Any = None) -> Any:
        """The block product of ``a`` and ``b`` under ``semiring``.

        ``semiring`` is a name, :class:`~repro.machine.semiring.Semiring`
        instance, or ``None`` (= ``plus_times``).  The cost model never
        calls this — flops are charged from shapes — so the dispatch only
        decides the *numerics* of the result.
        """
        raise NotImplementedError

    def operands(self, shape, seed: int = 0, kind: str = "random") -> Tuple[Any, Any]:
        """An ``(A, B)`` operand pair for ``shape = (n1, n2, n3)``."""
        raise NotImplementedError

    def corrupt_block(self, block: Any, rng, mode: str = "bitflip") -> Any:
        """A damaged copy of ``block``, as in-transit corruption would leave it.

        Used only by the fault-injection layer (:mod:`repro.machine.faults`);
        the damage must always change the block's
        :func:`~repro.machine.faults.payload_fingerprint` so the detection
        layer can prove it catches every injected corruption.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class DataBackend(Backend):
    """Real numpy payloads; numerically verified results (the default)."""

    name = "data"
    verifies = True

    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(x) if dtype is None else np.asarray(x, dtype=dtype)

    def empty(self, shape: Sequence[int]) -> np.ndarray:
        return np.empty(shape)

    def zeros(self, shape: Sequence[int]) -> np.ndarray:
        return np.zeros(shape)

    def matmul(self, a: Any, b: Any, semiring: Any = None) -> np.ndarray:
        """Run the semiring's scalar kernel on real numpy operands."""
        from .semiring import resolve_semiring

        return resolve_semiring(semiring).matmul_data(a, b)

    def operands(self, shape, seed: int = 0, kind: str = "random"):
        from ..core.shapes import ProblemShape
        from ..workloads.generators import operand_pair

        if not hasattr(shape, "dims"):
            shape = ProblemShape(*tuple(shape))
        return operand_pair(shape, kind=kind, seed=seed)

    def corrupt_block(self, block: Any, rng, mode: str = "bitflip") -> np.ndarray:
        """Flip one bit of (or write NaN into) one element of a copy of ``block``.

        ``mode="nan"`` falls back to a bit flip on non-float dtypes, where
        NaN does not exist.  Either damage changes the payload bytes, so the
        CRC32 fingerprint always catches it.
        """
        out = np.array(block, copy=True)
        if out.size == 0:
            raise ValueError("cannot corrupt an empty block")
        if mode == "nan" and np.issubdtype(out.dtype, np.floating):
            out.reshape(-1)[rng.randrange(out.size)] = np.nan
            return out
        raw = out.reshape(-1).view(np.uint8)
        bit = rng.randrange(raw.size * 8)
        raw[bit // 8] ^= np.uint8(1 << (bit % 8))
        return out


class SymbolicBackend(Backend):
    """Shape-descriptor payloads; exact cost accounting, no elements."""

    name = "symbolic"
    verifies = False

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        return as_block(x, dtype=dtype)

    def empty(self, shape: Sequence[int]) -> SymbolicBlock:
        return SymbolicBlock(shape)

    def zeros(self, shape: Sequence[int]) -> SymbolicBlock:
        return SymbolicBlock(shape)

    def matmul(self, a: Any, b: Any, semiring: Any = None) -> Any:
        """Shape-rule product: identical in every semiring, zero-copy.

        A :class:`SymbolicBlock` has no elements, and the matmul *shape*
        rule does not depend on the scalar semiring, so symbolic runs need
        no dispatch — which is what keeps them cost-identical by
        construction.
        """
        return a @ b

    def operands(self, shape, seed: int = 0, kind: str = "random"):
        return symbolic_operands(shape)

    def corrupt_block(self, block: Any, rng, mode: str = "bitflip") -> SymbolicBlock:
        """Perturb the block's shape — the symbolic analogue of bit damage.

        A shape descriptor has no bits to flip; what corruption *can* do to
        it is make the receiver see a block of the wrong extent, which is
        exactly what a length-prefix error would do on a real wire.  One
        dimension grows by one element, so the shape fingerprint always
        changes.  ``mode`` is accepted for signature compatibility.
        """
        shape = tuple(block.shape)
        if not shape or block.size == 0:
            return SymbolicBlock((int(block.size) + 1,))
        dim = rng.randrange(len(shape))
        return SymbolicBlock(shape[:dim] + (shape[dim] + 1,) + shape[dim + 1:])


DATA_BACKEND = DataBackend()
SYMBOLIC_BACKEND = SymbolicBackend()

BACKENDS = {
    DATA_BACKEND.name: DATA_BACKEND,
    SYMBOLIC_BACKEND.name: SYMBOLIC_BACKEND,
}


def resolve_backend(backend: Union[None, str, Backend]) -> Backend:
    """Accept a backend name, instance, or ``None`` (= data)."""
    if backend is None:
        return DATA_BACKEND
    if isinstance(backend, Backend):
        return backend
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        ) from None


def is_symbolic(x: Any) -> bool:
    """True when ``x`` is a shape-only block (no elements)."""
    return isinstance(x, SymbolicBlock)


def as_block(x: Any, dtype: Any = None) -> Any:
    """Backend-polymorphic ``np.asarray``: symbolic blocks pass through."""
    if type(x) is SymbolicBlock or isinstance(x, SymbolicBlock):
        return x
    return np.asarray(x) if dtype is None else np.asarray(x, dtype=dtype)


def empty_block(shape: Sequence[int], like: Any) -> Any:
    """An uninitialized block of ``shape``, in the same backend as ``like``."""
    if isinstance(like, SymbolicBlock):
        return SymbolicBlock(shape)
    return np.empty(shape)


def zeros_block(shape: Sequence[int], like: Any) -> Any:
    """A zero block of ``shape``, in the same backend as ``like``.

    Symbolically a zero block is just its shape — additions into it
    propagate shapes identically either way.
    """
    if isinstance(like, SymbolicBlock):
        return SymbolicBlock(shape)
    return np.zeros(shape)


def backend_for(*blocks: Any) -> Backend:
    """Infer the backend from operand types (symbolic wins)."""
    for b in blocks:
        if isinstance(b, SymbolicBlock):
            return SYMBOLIC_BACKEND
    return DATA_BACKEND


def corrupt_block(block: Any, rng, mode: str = "bitflip") -> Any:
    """Backend-polymorphic block corruption (see ``Backend.corrupt_block``)."""
    return backend_for(block).corrupt_block(block, rng, mode=mode)


def symbolic_operands(shape) -> Tuple[SymbolicBlock, SymbolicBlock]:
    """Shape-only ``(A, B)`` operands for ``shape = (n1, n2, n3)``."""
    n1, n2, n3 = shape.dims if hasattr(shape, "dims") else tuple(shape)
    return SymbolicBlock((int(n1), int(n2))), SymbolicBlock((int(n2), int(n3)))
