"""The semiring seam: pluggable scalar ``(+, x)`` for every algorithm.

Theorem 3's memory-independent communication lower bounds are proved on
the *classical matrix multiplication computation DAG*: which block of
``C`` depends on which blocks of ``A`` and ``B``.  Nothing in the proof
looks at what the scalar multiply-add actually computes, so the same
bounds — and the same attainment gauges, oracle formulas, and
cross-backend parity machinery — apply verbatim when the scalar semiring
``(+, x)`` over floats is replaced by another semiring with the same DAG.
The canonical example is the *min-plus (tropical) semiring*
``(min, +)``: the "product" ``C[i,j] = min_k (A[i,k] + B[k,j])`` computes
single-step shortest-path relaxation, and ``ceil(log2 (n-1))`` repeated
squarings of a digraph's weight matrix solve all-pairs shortest paths.

This module defines the :class:`Semiring` objects the rest of the stack
threads through.  The invariants that keep the cost model honest:

* **Costs are shape-derived.**  Every flop charge in the simulator is
  computed from block shapes (``a*b*c`` for an ``a x b x c`` local
  product, ``incoming.size`` for a reduction combine), never from
  elements, and every word count is a payload size.  Swapping the scalar
  operations therefore cannot change any counter: a ``min_plus`` run
  charges *exactly* the words/rounds/flops of the ``plus_times`` run of
  the same schedule.  ``flops`` counts semiring multiply-add pairs
  (see :class:`repro.machine.processor.Processor`).
* **Symbolic blocks are semiring-blind.**  A
  :class:`~repro.machine.backend.SymbolicBlock` is only a shape, and the
  shape rules of ``matmul``/elementwise-add are identical in every
  semiring, so the symbolic backend needs no dispatch at all — the PR-3
  cross-backend parity harness then proves data and symbolic runs agree
  under any semiring.
* **Reductions use the semiring's add.**  The additive monoid of the
  semiring is the reduction operator of the collectives
  (``"sum"`` for ``plus_times``, ``"min"`` for ``min_plus`` — both
  registered in :data:`repro.collectives.ops.REDUCE_OPS`), so
  Reduce/All-Reduce/Reduce-Scatter accumulation is correct under
  ``min_plus`` without touching any schedule.

Examples
--------
>>> import numpy as np
>>> sr = resolve_semiring("min_plus")
>>> A = np.array([[0.0, 1.0], [np.inf, 0.0]])
>>> sr.matmul(A, A)
array([[ 0.,  1.],
       [inf,  0.]])
>>> resolve_semiring(None).name
'plus_times'
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Sequence, Union

import numpy as np

from ..exceptions import SemiringError
from .backend import SymbolicBlock, as_block, is_symbolic

__all__ = [
    "MIN_PLUS",
    "PLUS_TIMES",
    "SEMIRINGS",
    "Semiring",
    "resolve_semiring",
]


def _matmul_plus_times(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b


def _matmul_min_plus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # C[i,j] = min_k (A[i,k] + B[k,j]).  The broadcast forms an
    # (n1, n2, n3) tensor of all pairwise path sums; fine for the block
    # sizes the simulator multiplies locally.
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(
            f"min_plus matmul: incompatible shapes {a.shape} and {b.shape}"
        )
    return np.min(a[:, :, None] + b[None, :, :], axis=1)


@dataclasses.dataclass(frozen=True)
class Semiring:
    """A scalar semiring ``(add, multiply)`` with identities.

    Attributes
    ----------
    name:
        Registry key, recorded in ledgers and CLI flags.
    zero:
        The additive identity (``0.0`` for ``plus_times``, ``+inf`` for
        ``min_plus``): the fill value of an empty accumulator block.
    one:
        The multiplicative identity (``1.0`` / ``0.0``): e.g. the diagonal
        of a distance matrix is ``one`` (a zero-length path).
    reduce_op:
        Name of the additive reduction in
        :data:`repro.collectives.ops.REDUCE_OPS` — what the reducing
        collectives use to accumulate partial products.
    add_ufunc:
        The elementwise additive combine (``np.add`` / ``np.minimum``).
    matmul_data:
        The block product kernel on real numpy operands.
    """

    name: str
    zero: float
    one: float
    reduce_op: str
    add_ufunc: Callable
    matmul_data: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def matmul(self, a: Any, b: Any) -> Any:
        """The semiring block product; dispatched through the backend.

        Symbolic blocks short-circuit to the shape rule (identical in
        every semiring, zero-copy); data blocks run the scalar kernel.
        """
        from .backend import backend_for

        return backend_for(a, b).matmul(a, b, semiring=self)

    def add(self, a: Any, b: Any) -> Any:
        """Elementwise semiring addition (accumulation of partial products).

        Works unchanged on :class:`~repro.machine.backend.SymbolicBlock`
        operands: same-shape binary ufuncs propagate the shape.
        """
        return self.add_ufunc(a, b)

    def zeros(self, shape: Sequence[int], like: Any = None) -> Any:
        """An additive-identity block of ``shape`` in ``like``'s backend.

        The semiring-aware replacement for
        :func:`~repro.machine.backend.zeros_block`: a fresh accumulator
        such that ``add(zeros, x) == x``.
        """
        if like is not None and is_symbolic(like):
            return SymbolicBlock(shape)
        if self.zero == 0.0:
            return np.zeros(shape)
        return np.full(shape, self.zero, dtype=float)

    def eye(self, n: int) -> np.ndarray:
        """The ``n x n`` multiplicative-identity matrix of the semiring.

        ``one`` on the diagonal, ``zero`` elsewhere — for ``min_plus``
        this is the zero-length-path matrix (0 diagonal, +inf off it).
        """
        out = np.full((n, n), self.zero, dtype=float)
        np.fill_diagonal(out, self.one)
        return out

    def allclose(self, a: Any, b: Any, rtol: float = 1e-05, atol: float = 1e-08) -> bool:
        """``np.allclose`` that treats matching infinities as equal.

        ``min_plus`` matrices legitimately contain ``+inf`` (no path);
        plain ``allclose`` already handles that via ``equal_nan=False``
        semantics for infinities, but we centralize the comparison here so
        workloads do not reimplement it.
        """
        return bool(np.allclose(as_block(a, dtype=float), as_block(b, dtype=float),
                                rtol=rtol, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Semiring({self.name!r})"


#: The classical ``(+, x)`` semiring over floats — the default everywhere.
PLUS_TIMES = Semiring(
    name="plus_times",
    zero=0.0,
    one=1.0,
    reduce_op="sum",
    add_ufunc=np.add,
    matmul_data=_matmul_plus_times,
)

#: The tropical ``(min, +)`` semiring: shortest-path relaxation.
MIN_PLUS = Semiring(
    name="min_plus",
    zero=float("inf"),
    one=0.0,
    reduce_op="min",
    add_ufunc=np.minimum,
    matmul_data=_matmul_min_plus,
)

#: name -> semiring instance.
SEMIRINGS: Dict[str, Semiring] = {
    PLUS_TIMES.name: PLUS_TIMES,
    MIN_PLUS.name: MIN_PLUS,
}


def resolve_semiring(semiring: Union[None, str, Semiring]) -> Semiring:
    """Accept a semiring name, instance, or ``None`` (= ``plus_times``)."""
    if semiring is None:
        return PLUS_TIMES
    if isinstance(semiring, Semiring):
        return semiring
    try:
        return SEMIRINGS[semiring]
    except (KeyError, TypeError):
        raise SemiringError(
            f"unknown semiring {semiring!r}; choose from {sorted(SEMIRINGS)}"
        ) from None
