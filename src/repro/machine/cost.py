"""Cost accounting for the alpha-beta-gamma parallel machine model.

The paper (Section 3.1) uses the standard distributed-memory cost model of
Thakur et al. (2005) and Chan et al. (2007):

* sending a message of ``w`` words from one processor to another costs
  ``alpha + beta * w`` — ``alpha`` is the per-message latency and ``beta``
  the per-word (reciprocal) bandwidth;
* a single arithmetic operation costs ``gamma``;
* the communication cost of an algorithm is counted **along the critical
  path**: when several pairs of processors exchange messages simultaneously,
  the round costs ``alpha + beta * max(w)``.

This module provides the immutable :class:`Cost` record (number of rounds,
words moved along the critical path, and flops along the critical path)
together with :class:`CostModel`, which converts a :class:`Cost` into time.
Keeping the three components separate lets tests assert *exact* word counts,
which is how we reproduce the paper's constants without any hardware noise.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["Cost", "CostModel", "ZERO_COST"]


@dataclasses.dataclass(frozen=True)
class Cost:
    """An immutable cost record in the alpha-beta-gamma model.

    Attributes
    ----------
    rounds:
        Number of communication rounds along the critical path.  Each round
        contributes one ``alpha`` to the total time (all messages within a
        round are concurrent).
    words:
        Words of data moved along the critical path, i.e. the sum over
        rounds of the largest message in each round.  This is the quantity
        bounded below by Theorem 3 of the paper.
    flops:
        Arithmetic operations along the critical path (the maximum over
        processors of the work they perform, summed across compute phases).
    """

    rounds: int = 0
    words: float = 0.0
    flops: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(
            rounds=self.rounds + other.rounds,
            words=self.words + other.words,
            flops=self.flops + other.flops,
        )

    def __sub__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(
            rounds=self.rounds - other.rounds,
            words=self.words - other.words,
            flops=self.flops - other.flops,
        )

    def scaled(self, factor: float) -> "Cost":
        """Return a copy with every component multiplied by ``factor``."""
        return Cost(
            rounds=int(round(self.rounds * factor)),
            words=self.words * factor,
            flops=self.flops * factor,
        )

    def is_zero(self) -> bool:
        """True when no rounds, words or flops have been accumulated."""
        return self.rounds == 0 and self.words == 0.0 and self.flops == 0.0

    def isclose(self, other: "Cost", rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> bool:
        """Component-wise approximate equality (exact on ``rounds``)."""
        return (
            self.rounds == other.rounds
            and math.isclose(self.words, other.words, rel_tol=rel_tol, abs_tol=abs_tol)
            and math.isclose(self.flops, other.flops, rel_tol=rel_tol, abs_tol=abs_tol)
        )


ZERO_COST = Cost()
"""The additive identity: zero rounds, zero words, zero flops."""


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Machine parameters of the alpha-beta-gamma model.

    Parameters
    ----------
    alpha:
        Per-message latency cost.  Dominated by bandwidth for the dense
        matrix multiplications studied here (paper, Section 3.1), but we
        track it so the latency trade-offs between collective algorithms
        (e.g. ring vs. recursive doubling, Reduce-Scatter vs. All-to-All)
        remain visible.
    beta:
        Per-word bandwidth cost.
    gamma:
        Cost of one arithmetic operation.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError(
                f"cost model parameters must be non-negative, got "
                f"alpha={self.alpha}, beta={self.beta}, gamma={self.gamma}"
            )

    def time(self, cost: Cost) -> float:
        """Total modelled execution time of ``cost`` under this machine.

        ``T = alpha * rounds + beta * words + gamma * flops``.
        """
        return self.alpha * cost.rounds + self.beta * cost.words + self.gamma * cost.flops

    def message_time(self, words: float) -> float:
        """Time for a single message of ``words`` words: ``alpha + beta*w``."""
        return self.alpha + self.beta * words


#: A cost model that charges only bandwidth — convenient for tests that
#: compare against the paper's pure word-count bounds.
BANDWIDTH_ONLY = CostModel(alpha=0.0, beta=1.0, gamma=0.0)
