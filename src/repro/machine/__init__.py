"""Simulated distributed-memory machine in the alpha-beta-gamma model.

This subpackage is the substrate everything else runs on: ``P`` processors
with private numpy stores, a fully connected bidirectional network executing
validated communication rounds, and exact critical-path cost accounting
(latency rounds, bandwidth words, flops).

See the paper's Section 3.1 for the model being simulated.
"""

from .backend import (
    BACKENDS,
    Backend,
    DATA_BACKEND,
    DataBackend,
    SYMBOLIC_BACKEND,
    SymbolicBackend,
    SymbolicBlock,
    as_block,
    backend_for,
    empty_block,
    is_symbolic,
    resolve_backend,
    symbolic_operands,
    zeros_block,
)
from .cost import BANDWIDTH_ONLY, Cost, CostModel, ZERO_COST
from .checkpoint import CheckpointManager
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultModel,
    RecoveryConfig,
    RetryPolicy,
    active_injector,
    inject,
    payload_fingerprint,
)
from .machine import CounterSnapshot, Machine
from .recovery import RecoveryManager, RecoveryPlan
from .message import Message, payload_words
from .network import FullyConnectedNetwork, RoundSummary
from .processor import Processor
from .semiring import (
    MIN_PLUS,
    PLUS_TIMES,
    SEMIRINGS,
    Semiring,
    resolve_semiring,
)
from .sequential import FastMemory, IOStats
from .spmd import CollectiveRequest, RankContext, spmd_run
from .store import LocalStore
from .trace import Trace, TraceEvent

__all__ = [
    "BACKENDS",
    "BANDWIDTH_ONLY",
    "Backend",
    "CheckpointManager",
    "Cost",
    "CostModel",
    "CounterSnapshot",
    "DATA_BACKEND",
    "DataBackend",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "FullyConnectedNetwork",
    "LocalStore",
    "Machine",
    "Message",
    "FastMemory",
    "IOStats",
    "Processor",
    "RankContext",
    "CollectiveRequest",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryPlan",
    "RetryPolicy",
    "RoundSummary",
    "MIN_PLUS",
    "PLUS_TIMES",
    "SEMIRINGS",
    "Semiring",
    "SYMBOLIC_BACKEND",
    "SymbolicBackend",
    "SymbolicBlock",
    "spmd_run",
    "Trace",
    "TraceEvent",
    "ZERO_COST",
    "active_injector",
    "as_block",
    "backend_for",
    "empty_block",
    "inject",
    "is_symbolic",
    "payload_fingerprint",
    "payload_words",
    "resolve_backend",
    "resolve_semiring",
    "symbolic_operands",
    "zeros_block",
]
