"""A sequential two-level memory (cache) simulator.

The memory-*dependent* side of the paper's story (Section 2.1, Section
6.2) lives in the sequential two-level I/O model of Hong & Kung: a fast
memory of ``M`` words backed by unbounded slow memory, with the I/O cost
being the words moved between the levels.  The tight sequential bound is
``2 n1 n2 n3 / sqrt(M)`` words to leading order (Smith et al. 2019), and
dividing by ``P`` gives the parallel memory-dependent bound
``2 mnk / (P sqrt(M))`` that Section 6.2 plays against Theorem 3.

:class:`FastMemory` simulates the fast level with *explicit, exact* load
and store counting: algorithms must ``load`` a region before computing on
it and ``store`` results back; capacity is enforced, evictions are
explicit, and every transferred word is counted.  The blocked GEMM in
:mod:`repro.algorithms.blocked_gemm` runs on it and lands within a small
factor of the ``2 mnk / sqrt(M)`` bound, while the naive algorithm pays
the classic ``~2 mnk`` when no operand fits.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import MemoryLimitExceededError
from .backend import Backend, is_symbolic, resolve_backend

__all__ = ["FastMemory", "IOStats"]


@dataclasses.dataclass
class IOStats:
    """Cumulative two-level traffic counters (in words)."""

    loads: float = 0.0
    stores: float = 0.0

    @property
    def total(self) -> float:
        return self.loads + self.stores


class FastMemory:
    """An explicitly managed fast memory of ``M`` words.

    Algorithms interact with it through named *regions* (numpy arrays).
    ``load`` copies a slow-memory array in (counting its words), ``alloc``
    creates an output buffer without traffic, ``store`` writes a region
    back out (counting its words) and ``evict`` drops one for free (clean
    data needs no write-back when the caller knows it is unmodified).

    Parameters
    ----------
    M:
        Capacity in words, or ``None`` for unlimited (useful in tests).
    backend:
        Execution backend (name or :class:`~repro.machine.backend.Backend`)
        governing how ``alloc`` materializes regions; defaults to the data
        backend.  Word counting is identical across backends.
    """

    def __init__(self, M: Optional[float] = None,
                 backend: Optional[Backend] = None) -> None:
        if M is not None and M <= 0:
            raise ValueError(f"fast memory size must be positive or None, got {M}")
        self.M = M
        self.backend = resolve_backend(backend)
        self.stats = IOStats()
        self._regions: Dict[str, np.ndarray] = {}
        self.current_words: int = 0
        self.peak_words: int = 0

    # ------------------------------------------------------------------ #

    def _charge_capacity(self, extra: int, name: str) -> None:
        new_current = self.current_words + extra
        if self.M is not None and new_current > self.M:
            raise MemoryLimitExceededError(
                f"loading {name!r} ({extra} words) would raise fast-memory "
                f"use to {new_current} words, exceeding M={self.M}"
            )
        self.current_words = new_current
        self.peak_words = max(self.peak_words, self.current_words)

    def load(self, name: str, data: np.ndarray) -> np.ndarray:
        """Bring ``data`` into fast memory under ``name`` (counts reads)."""
        if name in self._regions:
            raise KeyError(f"region {name!r} is already resident")
        array = data if is_symbolic(data) else np.array(data, dtype=float)
        self._charge_capacity(int(array.size), name)
        self.stats.loads += array.size
        self._regions[name] = array
        return array

    def alloc(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        """Create an output region (no slow-memory traffic)."""
        if name in self._regions:
            raise KeyError(f"region {name!r} is already resident")
        array = self.backend.zeros(shape)
        self._charge_capacity(int(array.size), name)
        self._regions[name] = array
        return array

    def get(self, name: str) -> np.ndarray:
        return self._regions[name]

    def store(self, name: str) -> np.ndarray:
        """Write a region back to slow memory (counts writes) and evict it."""
        array = self._regions.pop(name)
        self.stats.stores += array.size
        self.current_words -= int(array.size)
        return array

    def evict(self, name: str) -> None:
        """Drop a clean region without write-back (no traffic)."""
        array = self._regions.pop(name)
        self.current_words -= int(array.size)

    def resident(self) -> Tuple[str, ...]:
        return tuple(sorted(self._regions))

    def reset(self) -> None:
        self._regions.clear()
        self.current_words = 0
        self.peak_words = 0
        self.stats = IOStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastMemory(M={self.M}, resident={self.resident()}, "
            f"loads={self.stats.loads}, stores={self.stats.stores})"
        )
