"""Structured event trace of a simulated execution.

The trace records high-level events — collective operations, compute phases,
distribution/assembly steps — each annotated with the communication cost
delta it incurred.  Benchmarks use it to reproduce Figure 1 of the paper
(which processors participate in which collectives, and how many words each
collective moves), and tests use it to pin per-phase costs to the closed-form
expressions of Section 5.1.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from .cost import Cost

__all__ = ["TraceEvent", "Trace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    kind:
        Event category, e.g. ``"allgather"``, ``"reduce-scatter"``,
        ``"compute"``, ``"distribute"``.
    label:
        Free-form description (e.g. which matrix / which grid fiber).
    groups:
        The processor groups involved (a tuple of rank tuples); empty for
        purely local events.
    cost:
        Communication cost delta attributable to the event.
    """

    kind: str
    label: str
    groups: Tuple[Tuple[int, ...], ...] = ()
    cost: Cost = Cost()


class Trace:
    """An append-only list of :class:`TraceEvent` with simple queries."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(
        self,
        kind: str,
        label: str,
        groups: Tuple[Tuple[int, ...], ...] = (),
        cost: Cost = Cost(),
    ) -> TraceEvent:
        event = TraceEvent(kind=kind, label=label, groups=groups, cost=cost)
        self.events.append(event)
        return event

    def clear(self) -> None:
        self.events.clear()

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All events of the given category, in execution order."""
        return [e for e in self.events if e.kind == kind]

    def total_cost(self, kind: Optional[str] = None) -> Cost:
        """Sum of cost deltas, optionally restricted to one event kind."""
        total = Cost()
        for event in self.events:
            if kind is None or event.kind == kind:
                total = total + event.cost
        return total

    def groups_involving(self, rank: int) -> List[TraceEvent]:
        """Events whose processor groups include ``rank``.

        This is exactly the information highlighted for processor (1,3,1)
        in Figure 1 of the paper: the three collective fibers a processor
        participates in.
        """
        return [
            e for e in self.events if any(rank in group for group in e.groups)
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
