"""Structured trace of a simulated execution, backed by nested spans.

Historically this module held a flat append-only event list.  The trace is
now a *view* over the span tree recorded by
:class:`~repro.obs.span.SpanRecorder` (see :mod:`repro.obs`): collectives
and compute phases record **event spans** (the unit of cost accounting),
and algorithm-level code groups them under structural spans with
``machine.span("allgather-A")``.  The flat query API below — ``record``,
``by_kind``, ``total_cost``, ``groups_involving`` — is unchanged and
operates on the event spans in execution order, so all code written against
the old flat trace keeps working; the span tree, timestamps, and per-rank
attribution are available through :attr:`Trace.recorder` / :attr:`Trace.spans`.

Benchmarks use the trace to reproduce Figure 1 of the paper (which
processors participate in which collectives, and how many words each
collective moves), and tests use it to pin per-phase costs to the
closed-form expressions of Section 5.1.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..obs.span import Span, SpanRecorder
from .cost import Cost

__all__ = ["TraceEvent", "Trace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """Flat view of one recorded event span.

    Attributes
    ----------
    kind:
        Event category, e.g. ``"allgather"``, ``"reduce-scatter"``,
        ``"compute"``, ``"distribute"``.
    label:
        Free-form description (e.g. which matrix / which grid fiber).
    groups:
        The processor groups involved (a tuple of rank tuples); empty for
        purely local events.
    cost:
        Communication cost delta attributable to the event.
    """

    kind: str
    label: str
    groups: Tuple[Tuple[int, ...], ...] = ()
    cost: Cost = dataclasses.field(default_factory=Cost)


class Trace:
    """Span-backed trace with the legacy flat-event query API.

    Parameters
    ----------
    machine:
        Optional :class:`~repro.machine.machine.Machine`; when given,
        spans opened through this trace measure cost and per-rank counter
        deltas automatically and events land on the modelled timeline.
    """

    def __init__(self, machine=None) -> None:
        self.recorder = SpanRecorder(machine)

    # ------------------------------------------------------------------ #
    # recording                                                          #
    # ------------------------------------------------------------------ #

    def record(
        self,
        kind: str,
        label: str,
        groups: Tuple[Tuple[int, ...], ...] = (),
        cost: Optional[Cost] = None,
    ) -> TraceEvent:
        """Record an event with an explicit cost delta (legacy API).

        The event becomes a closed leaf span under the innermost open
        span.  ``cost=None`` means zero cost.
        """
        span = self.recorder.record_event(kind, label, groups=groups, cost=cost)
        return self._as_event(span)

    def span(self, name: str, kind: str = "phase", groups=()):
        """Open a nested structural span (context manager).

        Structural spans measure *inclusive* cost but are not events: the
        flat queries below do not see them, so wrapping existing code in
        spans never changes legacy accounting.
        """
        return self.recorder.span(name, kind=kind, groups=groups)

    def measure(self, name: str, kind: str, groups=()):
        """Open an auto-measured *event* span (context manager).

        This is how collectives attribute their exact cost and per-rank
        word counts; see :class:`~repro.obs.span.SpanRecorder.measure`.
        """
        return self.recorder.measure(name, kind=kind, groups=groups)

    def clear(self) -> None:
        self.recorder.clear()

    # ------------------------------------------------------------------ #
    # flat queries (legacy API)                                          #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _as_event(span: Span) -> TraceEvent:
        return TraceEvent(
            kind=span.kind, label=span.name, groups=span.groups, cost=span.cost
        )

    @property
    def events(self) -> List[TraceEvent]:
        """All event spans as flat :class:`TraceEvent`, execution order."""
        return [self._as_event(s) for s in self.recorder.events()]

    @property
    def spans(self) -> List[Span]:
        """Root spans of the recorded span tree."""
        return self.recorder.roots

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All events of the given category, in execution order."""
        return [e for e in self.events if e.kind == kind]

    def total_cost(self, kind: Optional[str] = None) -> Cost:
        """Sum of event cost deltas, optionally restricted to one kind."""
        total = Cost()
        for event in self.events:
            if kind is None or event.kind == kind:
                total = total + event.cost
        return total

    def groups_involving(self, rank: int) -> List[TraceEvent]:
        """Events whose processor groups include ``rank``.

        This is exactly the information highlighted for processor (1,3,1)
        in Figure 1 of the paper: the three collective fibers a processor
        participates in.
        """
        return [
            e for e in self.events if any(rank in group for group in e.groups)
        ]

    def __len__(self) -> int:
        return len(self.recorder.events())

    def __iter__(self):
        return iter(self.events)
