"""A single simulated processor: local store plus arithmetic counters."""

from __future__ import annotations

from typing import Optional

from .store import LocalStore

__all__ = ["Processor"]


class Processor:
    """One of the ``P`` processors of the alpha-beta-gamma machine.

    Attributes
    ----------
    rank:
        Global rank in ``0 .. P-1``.
    store:
        The processor's private :class:`~repro.machine.store.LocalStore`.
    flops:
        Arithmetic operations performed so far.  For matrix multiplication
        we follow the paper and count *semiring multiply-add pairs* (one
        scalar multiply fused with its accumulation), so a local
        ``a x b x c`` block product adds ``a*b*c`` regardless of the
        semiring — ``x, +`` under ``plus_times``, ``+, min`` under
        ``min_plus`` (see :mod:`repro.machine.semiring`).  Charges are
        always derived from block *shapes*, never from elements, which is
        what makes every counter semiring-independent by construction.
    """

    def __init__(self, rank: int, memory_limit: Optional[float] = None) -> None:
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        self.rank = rank
        self.store = LocalStore(rank, limit=memory_limit)
        self.flops: float = 0.0

    def compute(self, flops: float) -> None:
        """Charge ``flops`` arithmetic operations to this processor."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self.flops += flops

    def reset_counters(self) -> None:
        """Zero the flop counter (the store's contents are untouched)."""
        self.flops = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Processor(rank={self.rank}, flops={self.flops}, {len(self.store)} arrays)"
