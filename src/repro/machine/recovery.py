"""Machine-level rank-failure recovery protocol.

A rank failure surfaces as :class:`~repro.exceptions.RankFailedError`
raised *before* the failing round is charged.  Without a
:class:`~repro.machine.faults.RecoveryConfig` on the fault model, that is
the end of the run (fail-stop leg of the quadchotomy).  With one, a
survivability layer — an ABFT checksum algorithm healing in place
(:mod:`repro.algorithms.abft`) or the checkpoint/restart wrapper
(:mod:`repro.analysis.survive`) — drives a :class:`RecoveryManager`:

1. **Detect.**  Survivors notice the death via the modelled timeout:
   ``detection_rounds`` latency-only rounds are charged.
2. **Plan.**  A typed :class:`RecoveryPlan` decides whether the dead
   rank's slot is revived in place (``"spare"`` — the simulator's ranks
   are slots, so a spare processor takes over the same rank id) or the
   computation shrinks onto the survivors (``"shrink"``).
3. **Fence and repair.**  Recovery traffic runs on a *fenced* channel:
   the injector is detached while survivors reconstruct the lost state,
   so the protocol itself is not re-faulted (the single-failure model
   standard in ABFT analyses) and draws no decision-stream randoms —
   fault sequences stay aligned with the fault-free schedule.  Every
   word/round/flop of the repair is charged to the machine as usual.
4. **Account.**  The waste (critical-path words charged before the
   failure that the redo will repeat) plus the protocol's own traffic
   accrue in ``injector.words_recovered``, giving the extended
   conservation invariant::

       measured words == fault-free words + words_resent + words_recovered

All of it deterministic: same seed, same schedule, same recovery, on
either backend.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Optional

from ..exceptions import RankFailedError

__all__ = ["RecoveryPlan", "RecoveryManager"]


@dataclasses.dataclass(frozen=True)
class RecoveryPlan:
    """A typed decision about how to survive one concrete rank failure.

    Attributes
    ----------
    strategy:
        ``"spare"`` or ``"shrink"`` (from the
        :class:`~repro.machine.faults.RecoveryConfig`).
    failed_rank, failed_round:
        Where and when the death surfaced.
    replacement_rank:
        The rank id the repaired state lands on: under ``"spare"`` the
        same slot (a spare processor assumes the dead rank's identity);
        under ``"shrink"`` ``None`` — the caller redistributes over the
        survivors.
    detection_rounds:
        Modelled timeout latency the survivors paid to detect the death.
    """

    strategy: str
    failed_rank: int
    failed_round: int
    replacement_rank: Optional[int]
    detection_rounds: int


class RecoveryManager:
    """Drives detection, planning, fencing and accounting for one machine.

    Usage pattern (see :mod:`repro.algorithms.abft` for real call sites)::

        mgr = RecoveryManager(machine)
        while True:
            before = mgr.begin_attempt()
            try:
                return phase()                  # normal charged execution
            except RankFailedError as exc:
                plan = mgr.on_failure(exc, before)
                with mgr.fence():
                    repair(plan)                # charged, fault-fenced
                # loop: redo the phase from the repaired state

    ``on_failure`` re-raises when recovery is not configured or the
    budget (``max_recoveries``) is exhausted, so un-opted-in runs keep
    their fail-stop behaviour bit-exactly.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.recovered = 0

    @property
    def injector(self):
        return self.machine.fault_injector

    @property
    def config(self):
        injector = self.injector
        return None if injector is None else injector.model.recovery

    def begin_attempt(self):
        """Counter snapshot at the start of a recoverable phase attempt."""
        return self.machine.snapshot()

    def on_failure(self, exc: RankFailedError, before) -> RecoveryPlan:
        """Account a detected rank failure and produce the recovery plan.

        Charges the waste (critical-path words this attempt accrued before
        dying, minus retry resends already attributed to ``words_resent``)
        to ``words_recovered``, charges ``detection_rounds`` of timeout
        latency, and marks the failure handled on the injector so the
        revived slot transmits again.  Re-raises ``exc`` when no recovery
        is configured or the budget is exhausted.
        """
        config = self.config
        if config is None or exc.rank is None:
            raise exc
        if self.recovered >= config.max_recoveries:
            raise exc
        injector = self.injector
        now = self.machine.snapshot()
        delta = before.delta(now)
        waste = delta.cost.words - delta.words_resent
        # Survivors detect the death via the modelled timeout.
        self.machine.network._latency_rounds(config.detection_rounds)
        injector.handle_failure(exc.rank)
        injector.words_recovered += waste
        self.recovered += 1
        return RecoveryPlan(
            strategy=config.strategy,
            failed_rank=exc.rank,
            failed_round=exc.round,
            replacement_rank=exc.rank if config.strategy == "spare" else None,
            detection_rounds=config.detection_rounds,
        )

    def revive(self, rank: int) -> None:
        """Clear the dead rank's store: the spare starts from nothing."""
        store = self.machine.proc(rank).store
        store.clear()

    @contextlib.contextmanager
    def fence(self):
        """Fenced recovery channel: charged, but not re-faulted.

        Detaches the injector for the duration, so the reconstruction
        traffic cannot itself fault (single-failure model) and consumes
        no decision-stream draws.  On exit the injector is re-attached
        and the protocol's critical-path words accrue to
        ``words_recovered``; the final recovery count is bumped.
        """
        injector = self.injector
        network = self.machine.network
        before = self.machine.snapshot()
        network.fault_injector = None
        try:
            yield
        finally:
            network.fault_injector = injector
        protocol = self.machine.snapshot().cost.words - before.cost.words
        injector.words_recovered += protocol
        injector.recoveries += 1
