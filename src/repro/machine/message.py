"""Point-to-point messages exchanged on the simulated network.

A :class:`Message` carries a payload from a source processor to a
destination processor.  Under the data backend the payload is real numpy
data, copied at send time so that the receiver can never alias the sender's
memory — exactly as on a real distributed-memory machine, and important for
catching algorithmic bugs that a shared-memory shortcut would hide.  Under
the symbolic backend (:mod:`repro.machine.backend`) payloads are
shape-only :class:`~repro.machine.backend.SymbolicBlock` descriptors;
"copying" one is the identity, but the word count charged to the network is
the same by construction.

Copying and word-counting share a single payload traversal performed once
at construction (``Message.words`` is the cached count); earlier revisions
walked nested tuple/list payloads once per hop, which dominated schedule
build time for the recursive-doubling collectives.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Tuple

import numpy as np

from ..exceptions import InvalidMessageError
from .backend import SymbolicBlock

__all__ = ["Message", "payload_words"]


def payload_words(payload: Any) -> int:
    """Number of words in a message payload.

    A "word" is one matrix element, matching the paper's unit of
    communication.  Payloads are blocks (numpy arrays or symbolic
    descriptors) or (possibly nested) tuples / lists of blocks; anything
    else is rejected to keep the accounting honest.
    """
    if isinstance(payload, (np.ndarray, SymbolicBlock)):
        return int(payload.size)
    if isinstance(payload, (tuple, list)):
        return sum(payload_words(item) for item in payload)
    raise TypeError(
        f"message payloads must be blocks or tuples/lists of them, "
        f"got {type(payload).__name__}"
    )


def _copy_payload(payload: Any) -> Any:
    """Deep-copy a payload so sender and receiver never share memory."""
    return _prepare_payload(payload)[0]


def _prepare_payload(payload: Any) -> Tuple[Any, int]:
    """Copy a payload and count its words in one traversal.

    Symbolic blocks are immutable, so their "copy" is the block itself —
    with its precomputed ``size``, preparing a symbolic payload allocates
    nothing at all.
    """
    if type(payload) is SymbolicBlock:
        return payload, payload.size
    if type(payload) is tuple:
        # All-symbolic tuples (the collectives' common payload shape) need
        # no copy at all: count words and pass the tuple through as-is.
        words = 0
        for item in payload:
            if type(item) is not SymbolicBlock:
                break
            words += item.size
        else:
            return payload, words
    if isinstance(payload, np.ndarray):
        return payload.copy(), int(payload.size)
    if isinstance(payload, SymbolicBlock):
        return payload, payload.size
    if isinstance(payload, (tuple, list)):
        items = []
        words = 0
        for item in payload:
            copied, w = _prepare_payload(item)
            items.append(copied)
            words += w
        if isinstance(payload, tuple):
            return tuple(items), words
        return items, words
    raise TypeError(
        f"message payloads must be blocks or tuples/lists of them, "
        f"got {type(payload).__name__}"
    )


@dataclasses.dataclass
class Message:
    """A single point-to-point message.

    Parameters
    ----------
    src:
        Global rank of the sending processor.
    dest:
        Global rank of the receiving processor (must differ from ``src``).
    payload:
        Block or tuple/list of blocks; copied on construction.
    tag:
        Optional label recorded in the machine trace (useful for debugging
        collective schedules).
    empty_ok:
        Zero-word payloads are rejected by default — a message that moves
        no data almost always means a bug upstream (an empty shard sent by
        mistake) that would otherwise *silently count zero words*.
        Schedules whose messages are pure latency signals by design (the
        dissemination barrier) opt in explicitly.

    Raises
    ------
    InvalidMessageError
        On a self-send, a negative rank, or an empty payload without
        ``empty_ok`` (a :class:`ValueError` subclass, so legacy callers
        keep working).
    """

    src: int
    dest: int
    payload: Any
    tag: str = ""
    empty_ok: bool = False

    #: Cached number of words in the payload, computed at construction.
    words: int = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        if self.src == self.dest:
            raise InvalidMessageError(
                f"processor {self.src} cannot send a message to itself"
            )
        if self.src < 0 or self.dest < 0:
            raise InvalidMessageError(
                f"ranks must be non-negative, got src={self.src} dest={self.dest}"
            )
        self.payload, self.words = _prepare_payload(self.payload)
        if self.words == 0 and not self.empty_ok:
            raise InvalidMessageError(
                f"message {self.src}->{self.dest} carries an empty payload, "
                f"which would silently count zero words; pass empty_ok=True "
                f"if a pure latency signal is intended"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.src}->{self.dest}, {self.words} words, tag={self.tag!r})"
