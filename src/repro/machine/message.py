"""Point-to-point messages exchanged on the simulated network.

A :class:`Message` carries a *real* numpy payload from a source processor to
a destination processor.  The payload is copied at send time so that the
receiver can never alias the sender's memory — exactly as on a real
distributed-memory machine, and important for catching algorithmic bugs that
a shared-memory shortcut would hide.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

__all__ = ["Message", "payload_words"]


def payload_words(payload: Any) -> int:
    """Number of words in a message payload.

    A "word" is one matrix element, matching the paper's unit of
    communication.  Payloads are numpy arrays or (possibly nested) tuples /
    lists of numpy arrays; anything else is rejected to keep the accounting
    honest.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (tuple, list)):
        return sum(payload_words(item) for item in payload)
    raise TypeError(
        f"message payloads must be numpy arrays or tuples/lists of them, "
        f"got {type(payload).__name__}"
    )


def _copy_payload(payload: Any) -> Any:
    """Deep-copy a payload so sender and receiver never share memory."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(item) for item in payload)
    if isinstance(payload, list):
        return [_copy_payload(item) for item in payload]
    raise TypeError(
        f"message payloads must be numpy arrays or tuples/lists of them, "
        f"got {type(payload).__name__}"
    )


@dataclasses.dataclass
class Message:
    """A single point-to-point message.

    Parameters
    ----------
    src:
        Global rank of the sending processor.
    dest:
        Global rank of the receiving processor (must differ from ``src``).
    payload:
        Numpy array or tuple/list of numpy arrays; copied on construction.
    tag:
        Optional label recorded in the machine trace (useful for debugging
        collective schedules).
    """

    src: int
    dest: int
    payload: Any
    tag: str = ""

    #: Cached number of words in the payload, computed at construction.
    words: int = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        if self.src == self.dest:
            raise ValueError(f"processor {self.src} cannot send a message to itself")
        if self.src < 0 or self.dest < 0:
            raise ValueError(f"ranks must be non-negative, got src={self.src} dest={self.dest}")
        self.payload = _copy_payload(self.payload)
        self.words = payload_words(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.src}->{self.dest}, {self.words} words, tag={self.tag!r})"
