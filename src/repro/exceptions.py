"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish model violations (e.g. two sends from the same processor
in one network round) from plain usage errors (e.g. a processor grid that does
not divide the matrix dimensions).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelViolationError",
    "NetworkContentionError",
    "InvalidMessageError",
    "MemoryLimitExceededError",
    "GridError",
    "DistributionError",
    "CommunicatorError",
    "ReduceOpError",
    "SemiringError",
    "ShapeError",
    "InvalidProblemError",
    "VerificationError",
    "NumericalMismatchError",
    "BoundViolationError",
    "BackendMismatchError",
    "OracleUnsupportedError",
    "OracleMismatchError",
    "FaultError",
    "InvalidFaultConfigError",
    "FaultDetectedError",
    "RankFailedError",
    "LedgerError",
    "BaselineError",
    "TaskError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelViolationError(ReproError):
    """The alpha-beta-gamma machine model's rules were violated.

    The model (paper, Section 3.1) states that each processor can send at
    most one message and receive at most one message per communication round.
    Violations of these rules — or sends from a processor to itself — raise
    this error (or the more specific :class:`NetworkContentionError`).
    """


class NetworkContentionError(ModelViolationError):
    """Two messages in a single round contend for the same send or receive port."""


class InvalidMessageError(ModelViolationError, ValueError):
    """A message that could never be transmitted on the modelled network.

    Raised at :class:`~repro.machine.message.Message` construction for
    self-sends, negative ranks, and empty payloads (which would silently
    count zero words — schedules that legitimately send pure latency
    signals, like the dissemination barrier, must say so explicitly with
    ``empty_ok=True``).  Subclasses :class:`ValueError` for backward
    compatibility with callers that caught the previous untyped error.
    """


class MemoryLimitExceededError(ReproError):
    """A processor's local store exceeded the configured memory limit ``M``.

    Raised only when the :class:`repro.machine.Machine` is constructed with a
    finite ``memory_limit``; the paper's memory-independent analysis assumes
    ``M`` is infinite, which is the default.
    """


class GridError(ReproError):
    """An invalid processor grid, e.g. dimensions whose product is not ``P``."""


class DistributionError(ReproError):
    """A matrix cannot be distributed as requested (e.g. indivisible blocks)."""


class CommunicatorError(ReproError):
    """Invalid communicator usage, e.g. overlapping groups run in parallel."""


class ReduceOpError(CommunicatorError, ValueError):
    """A reduction operator that the collectives refuse to run.

    Every reduction schedule (tree, ring, halving) combines partial values
    in a schedule-dependent order, so the operator must be associative and
    commutative for all schedules to agree.  :func:`repro.collectives.ops.resolve_op`
    therefore accepts only *registered* operators — the built-in names in
    :data:`~repro.collectives.ops.REDUCE_OPS` or callables registered via
    :func:`~repro.collectives.ops.register_reduce_op` — and raises this
    error for anonymous callables, whose algebraic properties it cannot
    vouch for (and whose ``repr`` would pollute traces and ledger records).
    Subclasses :class:`ValueError` for callers that caught the previous
    untyped error on unknown names.
    """


class SemiringError(ReproError):
    """An unknown or invalid semiring was requested.

    Raised by :func:`repro.machine.semiring.resolve_semiring` for names
    outside :data:`~repro.machine.semiring.SEMIRINGS` and by workloads that
    require a specific semiring (e.g. APSP requires ``min_plus``).
    """


class ShapeError(ReproError):
    """Invalid problem shape (non-positive dimensions, mismatched operands)."""


class InvalidProblemError(ShapeError):
    """An algorithm was asked to run a problem it cannot run.

    Raised by :func:`repro.algorithms.registry.run_algorithm` before any
    machine is built: non-positive or mismatched dimensions, a processor
    count the algorithm cannot factor into its grid, or a grid that does
    not divide the matrix dimensions.  The message always says *why* the
    combination is infeasible and which registered algorithms could run
    it instead — sweeps filter with
    :func:`~repro.algorithms.registry.applicable_algorithms` and never see
    this error.
    """


class VerificationError(ReproError):
    """An executed algorithm violated one of the paper's verifiable claims.

    Unlike a plain ``assert``, these survive ``python -O``: the sweep and
    bench drivers *must not* silently record a numerically wrong product or
    a bound-beating cost, because every downstream comparison (ledger
    records, regression baselines, EXPERIMENTS.md tables) would inherit the
    poisoned measurement.
    """


class NumericalMismatchError(VerificationError):
    """A simulated algorithm produced a product that differs from ``A @ B``."""


class BoundViolationError(VerificationError):
    """A measured communication cost fell below the Theorem 3 lower bound.

    No correct execution can beat the bound, so this always indicates a
    cost-accounting bug in the simulator or an algorithm implementation.
    """


class BackendMismatchError(VerificationError):
    """Symbolic- and data-backend runs of the same algorithm disagreed.

    The symbolic backend must charge exactly the counters the data backend
    does — the schedules are shared and every cost is derived from shapes.
    Any divergence means a backend leaked element-dependent accounting.
    """


class OracleUnsupportedError(ReproError):
    """The analytic cost oracle cannot predict this configuration exactly.

    The oracle (:mod:`repro.analysis.oracle`) promises *bit-exact*
    agreement with the simulator or nothing: configurations with ragged
    blocks or uneven shards (where the simulated critical path charges the
    largest piece per round) are refused rather than approximated.  Callers
    that want a fast path should catch this and fall back to simulation.
    """


class OracleMismatchError(VerificationError):
    """The analytic oracle and the simulator disagreed on a counter.

    The oracle's contract is exact equality on words, rounds (messages),
    flops and bound attainment wherever :func:`repro.analysis.oracle.predict_cost`
    accepts the configuration.  Any divergence means either a formula bug in
    the oracle or a cost-accounting bug in the simulator — both are
    reportable defects, which is what makes the oracle an independent
    correctness witness.
    """


class FaultError(ReproError):
    """Base class for injected-fault outcomes the run could not absorb.

    The fault-injection layer (:mod:`repro.machine.faults`) guarantees a
    quadchotomy: a faulted run either recovers with the extra communication
    charged to the cost model, reconstructs lost state after a rank failure
    (ABFT checksums or checkpoint/restart, every recovery word charged),
    raises a :class:`FaultError` subclass, or — never — corrupts results
    silently.  Catching this class covers the loud legs.
    """


class InvalidFaultConfigError(FaultError, ValueError):
    """A fault-injection configuration that can never be valid.

    Raised at :class:`~repro.machine.faults.FaultModel` /
    :class:`~repro.machine.faults.RetryPolicy` /
    :class:`~repro.machine.faults.RecoveryConfig` construction for
    out-of-range probabilities, negative backoffs or attempt counts,
    negative failure ranks/rounds, and unknown strategy names.
    Subclasses :class:`ValueError` for backward compatibility with callers
    that caught the previous untyped rejections.
    """


class FaultDetectedError(FaultError):
    """The detection layer caught an unrecoverable message fault.

    Raised when a dropped or checksum-mismatched message has no retry
    policy to fall back on, when the configured retries are exhausted, or
    when the machine-level conservation invariant
    ``sum(sent_words) == sum(recv_words)`` fails at span close.
    """


class RankFailedError(FaultError):
    """A processor failed permanently; messages involving it cannot complete.

    Rank failures are fail-stop for the *transport*: no retry policy can
    resurrect the dead rank, so without a recovery protocol this is the
    fail-stop leg of the quadchotomy.  A survivability layer (ABFT checksum
    algorithms or the checkpoint/restart wrapper) may catch this error,
    reconstruct the lost state from survivors with every word charged, and
    continue — that is the reconstructed leg.

    Attributes
    ----------
    rank, round:
        The failed rank and the network round index at which the failure
        surfaced (``None`` when raised without structured context).
    waste_words, waste_rounds, waste_resent:
        Machine counters at the moment of failure — total critical-path
        words, rounds, and injector ``words_resent`` — so a recovery layer
        can attribute the wasted work exactly.
    """

    def __init__(
        self,
        message: str,
        *,
        rank=None,
        round=None,
        waste_words=0.0,
        waste_rounds=0,
        waste_resent=0.0,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.round = round
        self.waste_words = waste_words
        self.waste_rounds = waste_rounds
        self.waste_resent = waste_resent


class LedgerError(ReproError):
    """An experiment-ledger file is missing, corrupt, or schema-incompatible."""


class BaselineError(ReproError):
    """A benchmark baseline file is missing, corrupt, or schema-incompatible."""


class TaskError(ReproError):
    """Context for a :func:`repro.parallel.parallel_map` task failure.

    When a pooled task raises, the original exception is re-raised in the
    parent **from** a ``TaskError`` naming the failing task's index, its
    item ``repr`` and the worker-side traceback — so a failure deep in a
    500-shape sweep points at the shape that broke instead of a bare
    pickled traceback.  Callers that catch the original exception type
    are unaffected; the context rides along on ``__cause__``.
    """
