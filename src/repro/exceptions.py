"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish model violations (e.g. two sends from the same processor
in one network round) from plain usage errors (e.g. a processor grid that does
not divide the matrix dimensions).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelViolationError",
    "NetworkContentionError",
    "MemoryLimitExceededError",
    "GridError",
    "DistributionError",
    "CommunicatorError",
    "ShapeError",
    "VerificationError",
    "NumericalMismatchError",
    "BoundViolationError",
    "BackendMismatchError",
    "LedgerError",
    "BaselineError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelViolationError(ReproError):
    """The alpha-beta-gamma machine model's rules were violated.

    The model (paper, Section 3.1) states that each processor can send at
    most one message and receive at most one message per communication round.
    Violations of these rules — or sends from a processor to itself — raise
    this error (or the more specific :class:`NetworkContentionError`).
    """


class NetworkContentionError(ModelViolationError):
    """Two messages in a single round contend for the same send or receive port."""


class MemoryLimitExceededError(ReproError):
    """A processor's local store exceeded the configured memory limit ``M``.

    Raised only when the :class:`repro.machine.Machine` is constructed with a
    finite ``memory_limit``; the paper's memory-independent analysis assumes
    ``M`` is infinite, which is the default.
    """


class GridError(ReproError):
    """An invalid processor grid, e.g. dimensions whose product is not ``P``."""


class DistributionError(ReproError):
    """A matrix cannot be distributed as requested (e.g. indivisible blocks)."""


class CommunicatorError(ReproError):
    """Invalid communicator usage, e.g. overlapping groups run in parallel."""


class ShapeError(ReproError):
    """Invalid problem shape (non-positive dimensions, mismatched operands)."""


class VerificationError(ReproError):
    """An executed algorithm violated one of the paper's verifiable claims.

    Unlike a plain ``assert``, these survive ``python -O``: the sweep and
    bench drivers *must not* silently record a numerically wrong product or
    a bound-beating cost, because every downstream comparison (ledger
    records, regression baselines, EXPERIMENTS.md tables) would inherit the
    poisoned measurement.
    """


class NumericalMismatchError(VerificationError):
    """A simulated algorithm produced a product that differs from ``A @ B``."""


class BoundViolationError(VerificationError):
    """A measured communication cost fell below the Theorem 3 lower bound.

    No correct execution can beat the bound, so this always indicates a
    cost-accounting bug in the simulator or an algorithm implementation.
    """


class BackendMismatchError(VerificationError):
    """Symbolic- and data-backend runs of the same algorithm disagreed.

    The symbolic backend must charge exactly the counters the data backend
    does — the schedules are shared and every cost is derived from shapes.
    Any divergence means a backend leaked element-dependent accounting.
    """


class LedgerError(ReproError):
    """An experiment-ledger file is missing, corrupt, or schema-incompatible."""


class BaselineError(ReproError):
    """A benchmark baseline file is missing, corrupt, or schema-incompatible."""
