"""Tests for Lemma 1 (per-array access lower bounds)."""

import pytest

from repro.core import (
    ProblemShape,
    access_lower_bounds,
    min_elements_accessed,
    multiplications_per_element,
    sorted_access_lower_bounds,
)
from repro.exceptions import ShapeError


class TestMultiplicationsPerElement:
    def test_counts(self):
        s = ProblemShape(4, 6, 8)
        assert multiplications_per_element(s) == {"A": 8, "B": 4, "C": 6}

    def test_each_element_times_its_count_covers_volume(self):
        s = ProblemShape(4, 6, 8)
        per = multiplications_per_element(s)
        sizes = s.matrix_sizes()
        for name in ("A", "B", "C"):
            assert per[name] * sizes[name] == s.volume


class TestGenericBound:
    def test_basic(self):
        assert min_elements_accessed(100, 50, 10) == 5.0

    def test_rejects_impossible_share(self):
        with pytest.raises(ShapeError):
            min_elements_accessed(100, 200, 10)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ShapeError):
            min_elements_accessed(100, -1, 10)
        with pytest.raises(ShapeError):
            min_elements_accessed(100, 10, 0)


class TestMatmulBounds:
    def test_paper_values(self):
        s = ProblemShape(4, 6, 8)
        assert access_lower_bounds(s, 2) == {"A": 12.0, "B": 24.0, "C": 16.0}

    def test_p1_requires_whole_matrices(self):
        s = ProblemShape(4, 6, 8)
        bounds = access_lower_bounds(s, 1)
        assert bounds == {"A": 24.0, "B": 48.0, "C": 32.0}
        assert bounds == {k: float(v) for k, v in s.matrix_sizes().items()}

    def test_sorted_bounds_are_lemma2_rhs(self):
        s = ProblemShape(9600, 2400, 600)
        b = sorted_access_lower_bounds(s, 36)
        assert b["x1"] == 2400 * 600 / 36
        assert b["x2"] == 9600 * 600 / 36
        assert b["x3"] == 9600 * 2400 / 36
        assert b["x1"] <= b["x2"] <= b["x3"]

    def test_invalid_P(self):
        with pytest.raises(ShapeError):
            access_lower_bounds(ProblemShape(2, 2, 2), 0)

    def test_scaling_in_P(self):
        s = ProblemShape(12, 12, 12)
        b2 = access_lower_bounds(s, 2)
        b4 = access_lower_bounds(s, 4)
        for name in ("A", "B", "C"):
            assert b2[name] == 2 * b4[name]
