"""Tests for Lemma 2's optimization problem and its solvers."""

import math

import pytest

from repro.core import (
    Regime,
    feasible,
    lemma2_constraints,
    solve_general,
    solve_lemma2,
    solve_numerically,
)
from repro.exceptions import ShapeError

CASES = [
    # (m, n, k, P, regime)
    (9600, 2400, 600, 3, Regime.ONE_D),
    (9600, 2400, 600, 36, Regime.TWO_D),
    (9600, 2400, 600, 512, Regime.THREE_D),
    (100, 10, 1, 5, Regime.ONE_D),
    (50, 50, 2, 100, Regime.TWO_D),
    (8, 8, 8, 64, Regime.THREE_D),
    (7, 5, 3, 1, Regime.ONE_D),
    (12, 4, 4, 3, Regime.ONE_D),
]


class TestAnalyticSolution:
    @pytest.mark.parametrize("m,n,k,P,regime", CASES)
    def test_case_classification(self, m, n, k, P, regime):
        assert solve_lemma2(m, n, k, P).regime is regime

    def test_case1_values(self):
        sol = solve_lemma2(9600, 2400, 600, 3)
        assert sol.x == (2400 * 600, 9600 * 600 / 3, 9600 * 2400 / 3)
        assert sol.active == (1, 2)

    def test_case2_values(self):
        m, n, k, P = 9600, 2400, 600, 36
        sol = solve_lemma2(m, n, k, P)
        s = math.sqrt(m * n * k * k / P)
        assert sol.x == pytest.approx((s, s, m * n / P))
        assert sol.active == (2,)

    def test_case3_values(self):
        sol = solve_lemma2(8, 8, 8, 64)
        assert sol.x == pytest.approx((4.0, 4.0, 4.0))
        assert sol.active == ()

    @pytest.mark.parametrize("m,n,k,P,_", CASES)
    def test_solution_is_feasible(self, m, n, k, P, _):
        sol = solve_lemma2(m, n, k, P)
        assert feasible(sol.x, m, n, k, P)

    def test_value_continuous_at_boundaries(self):
        m, n, k = 9600, 2400, 600
        # Boundary P = m/n = 4 between cases 1 and 2.
        case1 = (m * n + m * k) / 4 + n * k
        case2 = 2 * math.sqrt(m * n * k * k / 4) + m * n / 4
        assert case1 == pytest.approx(case2)
        assert solve_lemma2(m, n, k, 4).value == pytest.approx(case1)
        # Boundary P = mn/k^2 = 64 between cases 2 and 3.
        case2b = 2 * math.sqrt(m * n * k * k / 64) + m * n / 64
        case3b = 3 * (m * n * k / 64) ** (2 / 3)
        assert case2b == pytest.approx(case3b)
        assert solve_lemma2(m, n, k, 64).value == pytest.approx(case2b)

    def test_value_decreasing_in_P(self):
        m, n, k = 9600, 2400, 600
        values = [solve_lemma2(m, n, k, P).value for P in range(1, 200)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            solve_lemma2(2, 3, 1, 1)  # m < n
        with pytest.raises(ShapeError):
            solve_lemma2(3, 2, 0.5, 1)  # k < 1
        with pytest.raises(ShapeError):
            solve_lemma2(3, 2, 1, 0.5)  # P < 1


class TestNumericCrossCheck:
    @pytest.mark.parametrize("m,n,k,P,_", CASES)
    def test_slsqp_agrees(self, m, n, k, P, _):
        sol = solve_lemma2(m, n, k, P)
        _, value = solve_numerically(m, n, k, P)
        assert value == pytest.approx(sol.value, rel=1e-6)

    def test_from_far_away_start(self):
        m, n, k, P = 9600, 2400, 600, 36
        sol = solve_lemma2(m, n, k, P)
        L, bounds = lemma2_constraints(m, n, k, P)
        x0 = (bounds[0] * 100, bounds[1] * 100, bounds[2] * 100)
        _, value = solve_numerically(m, n, k, P, x0=x0)
        assert value == pytest.approx(sol.value, rel=1e-5)


class TestGeneralSolver:
    @pytest.mark.parametrize("m,n,k,P,_", CASES)
    def test_matches_lemma2_for_d3(self, m, n, k, P, _):
        sol = solve_lemma2(m, n, k, P)
        L, bounds = lemma2_constraints(m, n, k, P)
        x, value = solve_general(L, bounds)
        assert value == pytest.approx(sol.value, rel=1e-12)
        assert x == pytest.approx(sol.x, rel=1e-12)

    def test_bounds_alone_feasible(self):
        # Product of bounds already exceeds L: bounds are optimal.
        x, value = solve_general(5.0, [2.0, 3.0, 4.0])
        assert x == (2.0, 3.0, 4.0)
        assert value == 9.0

    def test_no_bounds_active(self):
        x, value = solve_general(8.0, [0.1, 0.1, 0.1])
        assert x == pytest.approx((2.0, 2.0, 2.0))

    def test_general_dimension(self):
        # d=4, two large bounds become active.
        x, value = solve_general(10000.0, [1.0, 1.0, 10.0, 20.0])
        # active: 20, 10 -> free pair shares t = sqrt(10000/200) ~ 7.07 >= 1.
        t = math.sqrt(10000.0 / 200.0)
        assert x == pytest.approx((t, t, 10.0, 20.0))
        assert value == pytest.approx(2 * t + 30.0)

    def test_result_in_input_order(self):
        x, _ = solve_general(10000.0, [20.0, 1.0, 10.0, 1.0])
        assert x[0] == 20.0 and x[2] == 10.0

    def test_d1(self):
        assert solve_general(5.0, [1.0]) == ((5.0,), 5.0)
        assert solve_general(5.0, [9.0]) == ((9.0,), 9.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            solve_general(0.0, [1.0])
        with pytest.raises(ValueError):
            solve_general(1.0, [])
        with pytest.raises(ValueError):
            solve_general(1.0, [1.0, -2.0])


class TestFeasibility:
    def test_rejects_product_violation(self):
        assert not feasible((1.0, 1.0, 1.0), 10, 10, 10, 1)

    def test_rejects_bound_violation(self):
        m, n, k, P = 10, 10, 10, 1
        # Product fine but x1 below nk/P = 100.
        assert not feasible((50.0, 10000.0, 10000.0), m, n, k, P)

    def test_accepts_scaled_optimum(self):
        m, n, k, P = 9600, 2400, 600, 36
        sol = solve_lemma2(m, n, k, P)
        bigger = tuple(2 * x for x in sol.x)
        assert feasible(bigger, m, n, k, P)
