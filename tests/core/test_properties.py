"""Property-based tests for the bound machinery (hypothesis)."""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    ProblemShape,
    classify,
    communication_lower_bound,
    dual_variables,
    feasible,
    kkt_residuals,
    lemma2_constraints,
    memory_independent_bound,
    solve_general,
    solve_lemma2,
)

dims = st.integers(min_value=1, max_value=500)
procs = st.integers(min_value=1, max_value=10000)
positive = st.floats(min_value=0.05, max_value=50.0, allow_nan=False)


def sorted_dims(n1, n2, n3):
    m, n, k = sorted((n1, n2, n3), reverse=True)
    return m, n, k


@settings(max_examples=150, deadline=None)
@given(n1=dims, n2=dims, n3=dims, P=procs)
def test_kkt_certificate_everywhere(n1, n2, n3, P):
    """The paper's dual variables certify optimality at every point."""
    m, n, k = sorted_dims(n1, n2, n3)
    sol = solve_lemma2(m, n, k, P)
    mu = dual_variables(m, n, k, P)
    res = kkt_residuals(sol.x, mu, m, n, k, P)
    assert res.max_violation() < 1e-7, (m, n, k, P, res)


@settings(max_examples=150, deadline=None)
@given(n1=dims, n2=dims, n3=dims, P=procs,
       f1=positive, f2=positive, f3=positive)
def test_no_feasible_point_beats_optimum(n1, n2, n3, P, f1, f2, f3):
    """Random feasible points never undercut the analytic minimum."""
    m, n, k = sorted_dims(n1, n2, n3)
    sol = solve_lemma2(m, n, k, P)
    L, bounds = lemma2_constraints(m, n, k, P)
    # Build a random point that respects the per-variable bounds, then
    # scale it up to satisfy the product constraint.
    x = [bounds[0] * (1 + f1), bounds[1] * (1 + f2), bounds[2] * (1 + f3)]
    prod = x[0] * x[1] * x[2]
    if prod < L:
        scale = (L / prod) ** (1 / 3)
        x = [v * scale for v in x]
    assume(feasible(x, m, n, k, P))
    assert sum(x) >= sol.value * (1 - 1e-9)


@settings(max_examples=150, deadline=None)
@given(n1=dims, n2=dims, n3=dims, P=procs)
def test_bound_nonnegative_and_below_accessed(n1, n2, n3, P):
    shape = ProblemShape(n1, n2, n3)
    lb = memory_independent_bound(shape, P)
    assert lb.communicated >= -1e-6
    assert lb.communicated <= lb.accessed + 1e-9
    assert lb.leading <= lb.accessed * (1 + 1e-9)


@settings(max_examples=100, deadline=None)
@given(n1=dims, n2=dims, n3=dims, P=st.integers(1, 400))
def test_bound_decreasing_in_P_for_accessed_data(n1, n2, n3, P):
    """D (accessed data) never increases when processors are added."""
    shape = ProblemShape(n1, n2, n3)
    d1 = memory_independent_bound(shape, P).accessed
    d2 = memory_independent_bound(shape, P + 1).accessed
    assert d2 <= d1 * (1 + 1e-12)


@settings(max_examples=100, deadline=None)
@given(n1=dims, n2=dims, n3=dims, P=procs)
def test_bound_symmetric_under_dimension_permutation(n1, n2, n3, P):
    """Theorem 3 depends only on {n1, n2, n3} as a multiset."""
    base = communication_lower_bound(ProblemShape(n1, n2, n3), P)
    for perm in [(n1, n3, n2), (n2, n1, n3), (n3, n2, n1), (n2, n3, n1), (n3, n1, n2)]:
        other = communication_lower_bound(ProblemShape(*perm), P)
        assert other == pytest.approx(base, rel=1e-12, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    L=st.floats(min_value=0.01, max_value=1e9),
    bounds=st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=6),
)
def test_general_solver_feasible_and_product_tight_or_bounds(L, bounds):
    """solve_general returns a feasible point; the product constraint is
    tight unless the bounds alone already satisfy it."""
    x, value = solve_general(L, bounds)
    assert value == pytest.approx(sum(x))
    for xi, bi in zip(x, bounds):
        assert xi >= bi * (1 - 1e-9)
    prod = math.prod(x)
    prod_bounds = math.prod(bounds)
    if prod_bounds >= L:
        assert x == tuple(bounds)
    else:
        assert prod >= L * (1 - 1e-9)
        assert prod == pytest.approx(L, rel=1e-6)


@settings(max_examples=100, deadline=None)
@given(n1=dims, n2=dims, n3=dims, P=st.integers(1, 500))
def test_regime_consistent_between_classify_and_solver(n1, n2, n3, P):
    shape = ProblemShape(n1, n2, n3)
    m, n, k = shape.sorted_dims
    assert classify(shape, P) is solve_lemma2(m, n, k, P).regime
