"""Tests for the Table 1 comparison constants."""

import math

import pytest

from repro.core import (
    ProblemShape,
    Regime,
    TABLE1_CONSTANTS,
    aggarwal1990_bound,
    classify,
    demmel2013_bound,
    evaluate_bound,
    irony2004_bound,
    leading_terms,
    table1_rows,
    thiswork_bound,
)

PAPER = ProblemShape(9600, 2400, 600)


class TestTableStructure:
    def test_rows_present(self):
        assert set(TABLE1_CONSTANTS) == {
            "aggarwal1990", "irony2004", "demmel2013", "thiswork",
        }

    def test_constants_match_paper_table1(self):
        t = TABLE1_CONSTANTS
        assert t["aggarwal1990"].constants == (None, None, pytest.approx(0.5 ** (2 / 3)))
        assert t["irony2004"].constants == (None, None, 0.5)
        assert t["demmel2013"].constants == (
            pytest.approx(16 / 25), pytest.approx(math.sqrt(2 / 3)), 1.0,
        )
        assert t["thiswork"].constants == (1.0, 2.0, 3.0)

    def test_numeric_values_from_paper(self):
        # The paper prints ~.63, .5, (.64, ~.82, 1).
        assert TABLE1_CONSTANTS["aggarwal1990"].constants[2] == pytest.approx(0.63, abs=0.005)
        assert TABLE1_CONSTANTS["demmel2013"].constants[1] == pytest.approx(0.82, abs=0.005)


class TestEvaluation:
    def test_dashes_outside_case3(self):
        assert aggarwal1990_bound(PAPER, 3) is None
        assert aggarwal1990_bound(PAPER, 36) is None
        assert irony2004_bound(PAPER, 36) is None
        assert aggarwal1990_bound(PAPER, 512) is not None

    def test_demmel_covers_all_cases(self):
        for P in [3, 36, 512]:
            assert demmel2013_bound(PAPER, P) is not None

    def test_thiswork_is_tightest_everywhere(self):
        for P in [2, 3, 36, 512, 10**6]:
            ours = thiswork_bound(PAPER, P)
            for key in ("aggarwal1990", "irony2004", "demmel2013"):
                other = evaluate_bound(key, PAPER, P)
                if other is not None:
                    assert ours > other

    def test_improvement_factors(self):
        # Case 1: 1 / (16/25) = 25/16; case 2: 2/sqrt(2/3) = sqrt(6);
        # case 3: 3/1 = 3 over Demmel et al.
        assert thiswork_bound(PAPER, 2) / demmel2013_bound(PAPER, 2) == pytest.approx(25 / 16)
        assert thiswork_bound(PAPER, 36) / demmel2013_bound(PAPER, 36) == pytest.approx(
            math.sqrt(6)
        )
        assert thiswork_bound(PAPER, 512) / demmel2013_bound(PAPER, 512) == pytest.approx(3.0)

    def test_leading_terms_values(self):
        nk, case2, case3 = leading_terms(PAPER, 512)
        assert nk == 2400 * 600
        assert case2 == pytest.approx(math.sqrt(9600 * 2400 * 600**2 / 512))
        assert case3 == pytest.approx((9600 * 2400 * 600 / 512) ** (2 / 3))

    def test_table1_rows_iteration_order(self):
        keys = [key for key, _, _ in table1_rows(PAPER, 512)]
        assert keys == ["aggarwal1990", "irony2004", "demmel2013", "thiswork"]

    def test_row_values_use_current_regime(self):
        P = 36
        assert classify(PAPER, P) is Regime.TWO_D
        value = evaluate_bound("thiswork", PAPER, P)
        assert value == pytest.approx(2 * leading_terms(PAPER, P)[1])
