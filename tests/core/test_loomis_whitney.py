"""Tests (incl. property-based) for the Loomis-Whitney machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    brick,
    loomis_whitney_bound,
    matmul_projections,
    projection_sizes,
    projections,
    satisfies_loomis_whitney,
)

points = st.tuples(
    st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)
)
point_sets = st.sets(points, min_size=0, max_size=80)


class TestProjections:
    def test_single_point(self):
        proj = projections([(1, 2, 3)])
        assert proj["A"] == frozenset({(1, 2)})
        assert proj["B"] == frozenset({(2, 3)})
        assert proj["C"] == frozenset({(1, 3)})

    def test_brick_faces(self):
        V = brick((0, 3), (0, 4), (0, 5))
        assert projection_sizes(V) == (12, 20, 15)

    def test_duplicates_ignored(self):
        assert projection_sizes([(0, 0, 0), (0, 0, 0)]) == (1, 1, 1)

    def test_matmul_projection_names(self):
        V = brick((0, 2), (0, 3), (0, 4))
        assert matmul_projections(V) == {"A": 6, "B": 12, "C": 8}


class TestInequality:
    def test_brick_is_tight(self):
        V = brick((1, 4), (2, 6), (0, 5))
        assert len(V) ** 2 == loomis_whitney_bound(V)

    def test_diagonal_is_loose(self):
        V = [(i, i, i) for i in range(5)]
        assert loomis_whitney_bound(V) == 125
        assert len(V) ** 2 == 25 < 125
        assert satisfies_loomis_whitney(V)

    def test_empty_set(self):
        assert satisfies_loomis_whitney([])
        assert loomis_whitney_bound([]) == 0

    @settings(max_examples=200, deadline=None)
    @given(V=point_sets)
    def test_holds_for_random_sets(self, V):
        """Lemma 1 as a property test: |V|^2 <= |phi_A||phi_B||phi_C|."""
        assert satisfies_loomis_whitney(V)

    @settings(max_examples=100, deadline=None)
    @given(V=point_sets)
    def test_equality_iff_brick_closure(self, V):
        """|V| equals the bound iff V is the full 'combinatorial box' of its
        projections — bricks in particular."""
        if not V:
            return
        proj = projections(V)
        closure = {
            (i, j, k)
            for (i, j) in proj["A"]
            for (j2, k) in proj["B"]
            if j2 == j and (i, k) in proj["C"]
        }
        assert V <= closure
        if len(V) ** 2 == loomis_whitney_bound(V):
            # Tightness forces the closure to coincide (box structure):
            # |closure| <= bound always; V == closure when V attains it.
            assert len(closure) == len(V)


class TestBrick:
    def test_volume(self):
        assert len(brick((0, 2), (0, 3), (0, 4))) == 24

    def test_offset_brick(self):
        V = brick((5, 7), (1, 2), (0, 1))
        assert (5, 1, 0) in V and (6, 1, 0) in V and len(V) == 2

    def test_degenerate_ok(self):
        assert len(brick((0, 0), (0, 3), (0, 4))) == 0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            brick((3, 1), (0, 2), (0, 2))
