"""Tests for the three-regime classification."""

import math

import pytest

from repro.core import ProblemShape, Regime, boundary_processor_counts, classify, regime_interval

PAPER = ProblemShape(9600, 2400, 600)


class TestClassify:
    @pytest.mark.parametrize(
        "P,regime",
        [
            (1, Regime.ONE_D),
            (3, Regime.ONE_D),
            (4, Regime.ONE_D),      # boundary m/n = 4 belongs to case 1
            (5, Regime.TWO_D),
            (36, Regime.TWO_D),
            (64, Regime.TWO_D),     # boundary mn/k^2 = 64 belongs to case 2
            (65, Regime.THREE_D),
            (512, Regime.THREE_D),
            (10**9, Regime.THREE_D),
        ],
    )
    def test_paper_example(self, P, regime):
        assert classify(PAPER, P) is regime

    def test_square_always_3d_beyond_p1(self):
        s = ProblemShape(7, 7, 7)
        for P in [2, 10, 1000]:
            assert classify(s, P) is Regime.THREE_D

    def test_square_boundaries_degenerate(self):
        # m/n = 1 and mn/k^2 = 1: both boundaries at P = 1.
        s = ProblemShape(7, 7, 7)
        assert classify(s, 1) is Regime.ONE_D  # ties go to the smaller case

    def test_exact_integer_boundaries(self):
        # Thresholds compared in exact integer arithmetic, no float fuzz.
        s = ProblemShape(10**9, 10**6, 10**3)
        assert classify(s, 10**3) is Regime.ONE_D
        assert classify(s, 10**3 + 1) is Regime.TWO_D
        assert classify(s, 10**9) is Regime.TWO_D
        assert classify(s, 10**9 + 1) is Regime.THREE_D

    def test_invalid_P(self):
        with pytest.raises(ValueError):
            classify(PAPER, 0)

    def test_classification_monotone_in_P(self):
        prev = 0
        for P in range(1, 200):
            value = classify(PAPER, P).value
            assert value >= prev
            prev = value


class TestIntervals:
    def test_intervals_tile_the_P_axis(self):
        lo1, hi1 = regime_interval(PAPER, Regime.ONE_D)
        lo2, hi2 = regime_interval(PAPER, Regime.TWO_D)
        lo3, hi3 = regime_interval(PAPER, Regime.THREE_D)
        assert lo1 == 1.0
        assert hi1 == lo2 == 4.0
        assert hi2 == lo3 == 64.0
        assert math.isinf(hi3)

    def test_boundaries(self):
        assert boundary_processor_counts(PAPER) == (4.0, 64.0)
