"""Tests for the KKT certificate — an executable version of the Lemma 2 proof."""

import numpy as np
import pytest

from repro.core import (
    Regime,
    check_kkt,
    dual_variables,
    kkt_residuals,
    quasiconvexity_witness,
    solve_lemma2,
)

SWEEP = [
    (9600, 2400, 600, P) for P in [1, 2, 3, 4, 5, 16, 36, 63, 64, 65, 128, 512, 4096]
] + [
    (8, 8, 8, 27),
    (100, 10, 1, 5),
    (100, 10, 1, 50),
    (100, 10, 1, 5000),
    (50, 50, 2, 100),
    (7, 5, 3, 1),
]


class TestPaperDuals:
    @pytest.mark.parametrize("m,n,k,P", SWEEP)
    def test_kkt_conditions_hold(self, m, n, k, P):
        """The paper's (x*, mu*) satisfies all four KKT conditions."""
        check_kkt(m, n, k, P)

    def test_case1_duals_match_paper(self):
        m, n, k, P = 9600, 2400, 600, 3
        mu = dual_variables(m, n, k, P)
        assert mu[0] == pytest.approx(P**2 / (m**2 * n * k))
        assert mu[1] == 0.0
        assert mu[2] == pytest.approx(1 - P * n / m)
        assert mu[3] == pytest.approx(1 - P * k / m)

    def test_case2_duals_match_paper(self):
        m, n, k, P = 9600, 2400, 600, 36
        mu = dual_variables(m, n, k, P)
        assert mu[0] == pytest.approx((P / (m * n * k ** (2 / 3))) ** 1.5)
        assert mu[1] == mu[2] == 0.0
        assert mu[3] == pytest.approx(1 - (P * k * k / (m * n)) ** 0.5)

    def test_case3_duals_match_paper(self):
        m, n, k, P = 9600, 2400, 600, 512
        mu = dual_variables(m, n, k, P)
        assert mu[0] == pytest.approx((P / (m * n * k)) ** (4 / 3))
        assert mu[1:] == (0.0, 0.0, 0.0)

    @pytest.mark.parametrize("m,n,k,P", SWEEP)
    def test_duals_nonnegative(self, m, n, k, P):
        assert all(mu >= -1e-12 for mu in dual_variables(m, n, k, P))


class TestResidualDetection:
    def test_wrong_primal_detected(self):
        m, n, k, P = 9600, 2400, 600, 36
        mu = dual_variables(m, n, k, P)
        bad_x = (1.0, 1.0, 1.0)  # violates everything
        res = kkt_residuals(bad_x, mu, m, n, k, P)
        assert res.primal > 0

    def test_wrong_duals_break_stationarity(self):
        m, n, k, P = 9600, 2400, 600, 36
        sol = solve_lemma2(m, n, k, P)
        res = kkt_residuals(sol.x, (0.0, 0.0, 0.0, 0.0), m, n, k, P)
        assert res.stationarity == pytest.approx(1.0)  # grad f alone

    def test_complementarity_violation_detected(self):
        m, n, k, P = 9600, 2400, 600, 512
        sol = solve_lemma2(m, n, k, P)
        mu = (1e-3, 1.0, 0.0, 0.0)  # mu2 > 0 but constraint 2 is slack
        res = kkt_residuals(sol.x, mu, m, n, k, P)
        assert res.complementarity > 0

    def test_check_kkt_raises_on_failure(self, monkeypatch):
        import repro.core.kkt as kkt_mod

        monkeypatch.setattr(kkt_mod, "dual_variables", lambda *a: (0.0, 0.0, 0.0, 0.0))
        with pytest.raises(AssertionError, match="KKT violation"):
            kkt_mod.check_kkt(9600, 2400, 600, 36)


class TestQuasiconvexity:
    def test_lemma5_inequality_on_random_points(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = rng.uniform(0.1, 10.0, size=3)
            y = rng.uniform(0.1, 10.0, size=3)
            w = quasiconvexity_witness(x, y)
            if w != float("-inf"):  # premise g0(y) <= g0(x) held
                assert w <= 1e-9

    def test_premise_filter(self):
        # y with a smaller product has g0(y) > g0(x): premise fails.
        assert quasiconvexity_witness((2, 2, 2), (1, 1, 1)) == float("-inf")

    def test_positive_octant_required(self):
        with pytest.raises(ValueError):
            quasiconvexity_witness((1, -1, 1), (1, 1, 1))
