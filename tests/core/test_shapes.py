"""Tests for repro.core.shapes."""

import pytest

from repro.core import ProblemShape
from repro.exceptions import ShapeError


class TestSortedView:
    def test_paper_example(self):
        s = ProblemShape(9600, 2400, 600)
        assert (s.m, s.n, s.k) == (9600, 2400, 600)

    def test_sorting_any_order(self):
        s = ProblemShape(600, 9600, 2400)
        assert s.sorted_dims == (9600, 2400, 600)

    def test_square(self):
        s = ProblemShape(5, 5, 5)
        assert s.sorted_dims == (5, 5, 5)
        assert s.is_square()

    def test_not_square(self):
        assert not ProblemShape(5, 5, 6).is_square()


class TestDerivedQuantities:
    def test_volume(self):
        assert ProblemShape(2, 3, 4).volume == 24

    def test_matrix_sizes(self):
        sizes = ProblemShape(2, 3, 4).matrix_sizes()
        assert sizes == {"A": 6, "B": 12, "C": 8}

    def test_total_data(self):
        assert ProblemShape(2, 3, 4).total_data == 6 + 12 + 8

    def test_matrices_by_size(self):
        # A = n1 n2 = 6 (smallest), C = 8, B = 12 (largest)
        assert ProblemShape(2, 3, 4).matrices_by_size() == ("A", "C", "B")

    def test_matrices_by_size_ties_alphabetical(self):
        assert ProblemShape(3, 3, 3).matrices_by_size() == ("A", "B", "C")

    def test_aspect_ratio_thresholds(self):
        s = ProblemShape(9600, 2400, 600)
        assert s.aspect_ratio_thresholds() == (4.0, 64.0)

    def test_str(self):
        assert str(ProblemShape(2, 3, 4)) == "2x3x4"


class TestValidation:
    @pytest.mark.parametrize("dims", [(0, 1, 1), (1, -2, 1), (1, 1, 0)])
    def test_nonpositive_rejected(self, dims):
        with pytest.raises(ShapeError):
            ProblemShape(*dims)

    def test_non_integer_rejected(self):
        with pytest.raises(ShapeError):
            ProblemShape(2.5, 3, 4)

    def test_bool_rejected(self):
        with pytest.raises(ShapeError):
            ProblemShape(True, 3, 4)

    def test_frozen(self):
        s = ProblemShape(2, 3, 4)
        with pytest.raises(Exception):
            s.n1 = 5
